//! Deterministic-equivalence tests for the synthesis engine: on every
//! application graph the workspace ships, the engine's default
//! configuration must reproduce the classic serial pipeline bit-for-bit,
//! and parallel evaluation must change nothing but wall time.

use sdfmem::alloc::{allocate_both_orders, validate_allocation, Allocation};
use sdfmem::apps::extended::extended_systems;
use sdfmem::apps::homogeneous::homogeneous_grid;
use sdfmem::apps::registry::table1_systems;
use sdfmem::core::{RepetitionsVector, SdfGraph};
use sdfmem::lifetime::clique::{mcw_optimistic, mcw_pessimistic};
use sdfmem::lifetime::tree::ScheduleTree;
use sdfmem::lifetime::wig::IntersectionGraph;
use sdfmem::pipeline::Analysis;
use sdfmem::sched::{apgan, rpmc, sdppo, LoopVariant};
use sdfmem::{AnalysisBuilder, Heuristic};

fn all_app_graphs() -> Vec<SdfGraph> {
    let mut graphs = table1_systems();
    graphs.extend(extended_systems());
    graphs.push(homogeneous_grid(4, 4));
    graphs.push(homogeneous_grid(7, 5));
    graphs
}

/// The pre-engine pipeline, transliterated: per heuristic take SDPPO,
/// prefer ffdur on ties, then keep the strictly better heuristic.
fn classic_baseline(graph: &SdfGraph) -> (Heuristic, u64, u64, Allocation, u64, u64) {
    let q = RepetitionsVector::compute(graph).expect("consistent");
    let mut best: Option<(Heuristic, Allocation, u64, u64)> = None;
    let mut best_nonshared = u64::MAX;
    for (heuristic, order) in [
        (Heuristic::Rpmc, rpmc(graph, &q).expect("acyclic")),
        (Heuristic::Apgan, apgan(graph, &q).expect("acyclic")),
    ] {
        best_nonshared =
            best_nonshared.min(sdfmem::sched::dppo(graph, &q, &order).expect("dppo").bufmem);
        let shared = sdppo(graph, &q, &order).expect("sdppo");
        let tree = ScheduleTree::build(graph, &q, &shared.tree).expect("tree");
        let wig = IntersectionGraph::build(graph, &q, &tree);
        let (ffdur, ffstart) = allocate_both_orders(&wig);
        validate_allocation(&wig, &ffdur.allocation).expect("ffdur valid");
        validate_allocation(&wig, &ffstart.allocation).expect("ffstart valid");
        let allocation = if ffdur.allocation.total() <= ffstart.allocation.total() {
            ffdur.allocation
        } else {
            ffstart.allocation
        };
        let better = match &best {
            None => true,
            Some((_, alloc, _, _)) => allocation.total() < alloc.total(),
        };
        if better {
            best = Some((
                heuristic,
                allocation,
                mcw_optimistic(&wig),
                mcw_pessimistic(&wig),
            ));
        }
    }
    let (winner, allocation, mco, mcp) = best.expect("both heuristics ran");
    let total = allocation.total();
    (winner, best_nonshared, total, allocation, mco, mcp)
}

#[test]
fn default_engine_reproduces_classic_pipeline_on_every_app() {
    for graph in all_app_graphs() {
        let (winner, nonshared, total, allocation, mco, mcp) = classic_baseline(&graph);
        let an = AnalysisBuilder::default().run(&graph).expect("engine");
        assert_eq!(an.winner, winner, "{}", graph.name());
        assert_eq!(an.nonshared_bufmem, nonshared, "{}", graph.name());
        assert_eq!(an.shared_total(), total, "{}", graph.name());
        assert_eq!(an.allocation, allocation, "{}", graph.name());
        assert_eq!(an.mco, mco, "{}", graph.name());
        assert_eq!(an.mcp, mcp, "{}", graph.name());
    }
}

#[test]
fn analysis_run_is_the_default_builder() {
    for graph in all_app_graphs() {
        let wrapped = Analysis::run(&graph).expect("pipeline");
        let direct = AnalysisBuilder::default().run(&graph).expect("engine");
        assert_eq!(wrapped.winner, direct.winner, "{}", graph.name());
        assert_eq!(wrapped.allocation, direct.allocation, "{}", graph.name());
        assert_eq!(
            wrapped.nonshared_bufmem,
            direct.nonshared_bufmem,
            "{}",
            graph.name()
        );
        assert_eq!(wrapped.mco, direct.mco, "{}", graph.name());
        assert_eq!(wrapped.mcp, direct.mcp, "{}", graph.name());
    }
}

#[test]
fn parallel_matches_serial_on_every_app() {
    for graph in all_app_graphs() {
        let serial = AnalysisBuilder::new()
            .loop_opts(LoopVariant::ALL)
            .parallel(false)
            .run_full(&graph)
            .expect("serial engine");
        let parallel = AnalysisBuilder::new()
            .loop_opts(LoopVariant::ALL)
            .parallel(true)
            .run_full(&graph)
            .expect("parallel engine");
        assert_eq!(
            serial.candidates.len(),
            parallel.candidates.len(),
            "{}",
            graph.name()
        );
        for (s, p) in serial.candidates.iter().zip(&parallel.candidates) {
            assert_eq!(s.heuristic, p.heuristic, "{}", graph.name());
            assert_eq!(s.loop_opt, p.loop_opt, "{}", graph.name());
            assert_eq!(s.allocation_order, p.allocation_order, "{}", graph.name());
            assert_eq!(s.shared_total, p.shared_total, "{}", graph.name());
            assert_eq!(s.allocation, p.allocation, "{}", graph.name());
        }
        assert_eq!(
            serial.report.winner,
            parallel.report.winner,
            "{}",
            graph.name()
        );
        assert_eq!(
            serial.analysis.shared_total(),
            parallel.analysis.shared_total(),
            "{}",
            graph.name()
        );
    }
}

#[test]
fn tracing_never_changes_engine_results() {
    // The acceptance bar for the observability layer: a run under an
    // installed recorder must be bit-for-bit identical to a run with
    // tracing disabled — instruments observe, never steer.
    for graph in all_app_graphs() {
        let plain = AnalysisBuilder::new()
            .loop_opts(LoopVariant::ALL)
            .run_full(&graph)
            .expect("untraced engine");
        let recorder = std::sync::Arc::new(sdfmem::trace::Recorder::new());
        let traced = sdfmem::trace::scoped(&recorder, || {
            AnalysisBuilder::new()
                .loop_opts(LoopVariant::ALL)
                .run_full(&graph)
        })
        .expect("traced engine");
        assert_eq!(
            plain.analysis.winner,
            traced.analysis.winner,
            "{}",
            graph.name()
        );
        assert_eq!(
            plain.analysis.allocation,
            traced.analysis.allocation,
            "{}",
            graph.name()
        );
        assert_eq!(
            plain.analysis.schedule,
            traced.analysis.schedule,
            "{}",
            graph.name()
        );
        assert_eq!(plain.candidates.len(), traced.candidates.len());
        for (p, t) in plain.candidates.iter().zip(&traced.candidates) {
            assert_eq!(p.shared_total, t.shared_total, "{}", graph.name());
            assert_eq!(p.allocation, t.allocation, "{}", graph.name());
        }
        // Only the traced run populates counters; the untraced one must
        // not have paid for any.
        assert!(plain.report.counters.is_empty(), "{}", graph.name());
        assert!(!traced.report.counters.is_empty(), "{}", graph.name());
        // Spans were recorded for the traced run.
        assert!(!recorder.snapshot().events.is_empty(), "{}", graph.name());
    }
}

#[test]
fn serial_traced_runs_attribute_counters_per_candidate() {
    use std::collections::BTreeMap;
    for graph in [table1_systems().remove(0), homogeneous_grid(3, 3)] {
        let recorder = std::sync::Arc::new(sdfmem::trace::Recorder::new());
        let traced = sdfmem::trace::scoped(&recorder, || {
            AnalysisBuilder::new()
                .loop_opts(LoopVariant::ALL)
                .parallel(false)
                .run_full(&graph)
        })
        .expect("serial traced engine");
        // Every candidate carries a sorted, non-empty delta (each one at
        // least runs first-fit), and the deltas sum exactly to the run
        // totals — no work double-counted, none lost.
        let mut summed: BTreeMap<String, u64> = BTreeMap::new();
        for c in &traced.candidates {
            assert!(!c.counters.is_empty(), "{}", graph.name());
            assert!(
                c.counters.windows(2).all(|w| w[0].0 < w[1].0),
                "{}: unsorted candidate counters",
                graph.name()
            );
            for (name, delta) in &c.counters {
                *summed.entry(name.clone()).or_default() += delta;
            }
        }
        let totals: BTreeMap<String, u64> = traced.report.counters.iter().cloned().collect();
        for (name, sum) in &summed {
            let total = totals.get(name).copied().unwrap_or(0);
            assert!(
                *sum <= total,
                "{}: candidate deltas for {name} exceed the run total ({sum} > {total})",
                graph.name()
            );
        }
        // Counters recorded inside candidate evaluation are fully
        // attributed (run-level counters like engine.candidates are not).
        for probe in ["alloc.first_fit.probes", "lifetime.wig.edge_tests"] {
            if let Some(total) = totals.get(probe) {
                assert_eq!(
                    summed.get(probe),
                    Some(total),
                    "{}: {probe} not fully attributed",
                    graph.name()
                );
            }
        }
        // The report mirrors the candidates and stays sorted.
        for (c, r) in traced.candidates.iter().zip(&traced.report.candidates) {
            assert_eq!(c.counters, r.counters, "{}", graph.name());
        }
        assert!(traced.report.counters.windows(2).all(|w| w[0].0 < w[1].0));
        // Parallel and untraced runs skip attribution.
        let parallel =
            sdfmem::trace::scoped(&std::sync::Arc::new(sdfmem::trace::Recorder::new()), || {
                AnalysisBuilder::new().parallel(true).run_full(&graph)
            })
            .expect("parallel traced engine");
        assert!(parallel.candidates.iter().all(|c| c.counters.is_empty()));
        let untraced = AnalysisBuilder::new()
            .parallel(false)
            .run_full(&graph)
            .expect("untraced engine");
        assert!(untraced.candidates.iter().all(|c| c.counters.is_empty()));
    }
}

#[test]
fn candidate_counters_serialise_in_the_report() {
    let graph = homogeneous_grid(3, 3);
    let recorder = std::sync::Arc::new(sdfmem::trace::Recorder::new());
    let traced = sdfmem::trace::scoped(&recorder, || {
        AnalysisBuilder::new().parallel(false).run_full(&graph)
    })
    .expect("serial traced engine");
    let json = traced.report.to_json();
    let doc = sdfmem::trace::json::parse(&json).expect("report JSON parses");
    let candidates = doc
        .get("candidates")
        .and_then(|c| c.as_array())
        .expect("candidates array");
    for (c, parsed) in traced.candidates.iter().zip(candidates) {
        let counters = parsed.get("counters").expect("counters object");
        for (name, delta) in &c.counters {
            assert_eq!(
                counters.get(name).and_then(|v| v.as_num()),
                Some(*delta as f64),
                "{name}"
            );
        }
    }
}

#[test]
fn widening_the_lattice_never_regresses() {
    // Widening the lattice can only improve (or match) the winning pool.
    for graph in all_app_graphs() {
        let narrow = AnalysisBuilder::default().run(&graph).expect("default");
        let wide = AnalysisBuilder::new()
            .loop_opts(LoopVariant::ALL)
            .run(&graph)
            .expect("full lattice");
        assert!(
            wide.shared_total() <= narrow.shared_total(),
            "{}: widened lattice regressed {} -> {}",
            graph.name(),
            narrow.shared_total(),
            wide.shared_total()
        );
    }
}

#[test]
fn exact_and_windowed_dp_agree_on_every_app_graph() {
    // The windowed DP is exact by construction; the whole synthesis —
    // schedules, allocations, pool totals — must be bit-for-bit
    // identical under both modes on every graph the workspace ships.
    use sdfmem::sched::DpMode;
    for graph in all_app_graphs() {
        let exact = AnalysisBuilder::new()
            .loop_opts(LoopVariant::ALL)
            .dp_mode(DpMode::Exact)
            .run_full(&graph)
            .expect("exact run");
        let windowed = AnalysisBuilder::new()
            .loop_opts(LoopVariant::ALL)
            .dp_mode(DpMode::Windowed)
            .run_full(&graph)
            .expect("windowed run");
        assert_eq!(
            exact.candidates.len(),
            windowed.candidates.len(),
            "{}",
            graph.name()
        );
        for (e, w) in exact.candidates.iter().zip(&windowed.candidates) {
            assert_eq!(e.schedule, w.schedule, "{}", graph.name());
            assert_eq!(e.shared_total, w.shared_total, "{}", graph.name());
            assert_eq!(e.allocation, w.allocation, "{}", graph.name());
        }
        assert_eq!(
            exact.report.winner,
            windowed.report.winner,
            "{}",
            graph.name()
        );
        assert_eq!(
            exact.analysis.nonshared_bufmem,
            windowed.analysis.nonshared_bufmem,
            "{}",
            graph.name()
        );
    }
}
