//! Allocation-provenance invariants on every registry graph.
//!
//! The `allocation_explain` ledger and occupancy timeline are not
//! best-effort diagnostics: on every application graph the workspace
//! ships, the per-buffer fragmentation attributions must sum exactly
//! to the run's `alloc.fragmentation_words`, and the occupancy
//! timeline's occupied-words peak must equal the shared pool size bit
//! for bit.

use sdf_service::{
    execute_request, ExplainReport, ResponsePayload, ServiceRequest, ServiceResponse,
};
use sdfmem::apps::registry::{cd_dat, table1_systems};
use sdfmem::core::io::to_text;
use sdfmem::trace::json::{parse, Json};

#[test]
fn explain_invariants_hold_on_every_registry_graph() {
    let mut graphs = table1_systems();
    graphs.push(cd_dat());
    assert!(graphs.len() > 10, "registry unexpectedly small");
    for graph in &graphs {
        let report = ExplainReport::build(graph)
            .unwrap_or_else(|e| panic!("{}: explain failed: {}", graph.name(), e.message));
        // Every buffer has exactly one ledger entry.
        assert_eq!(report.ledger.len(), report.edges, "{}", graph.name());
        // Ledger invariant: attributions sum to the run total.
        let ledger_sum: u64 = report.ledger.iter().map(|e| e.fragmentation).sum();
        assert_eq!(
            ledger_sum,
            report.fragmentation_words,
            "{}: ledger does not sum to the run's fragmentation",
            graph.name()
        );
        // Occupancy invariant: the occupied peak is the pool size.
        assert_eq!(
            report.peak_occupied,
            report.pool_total,
            "{}: occupancy peak must equal the shared pool size",
            graph.name()
        );
        assert!(report.lower_bound <= report.pool_total, "{}", graph.name());
        assert_eq!(
            report.waste,
            report.pool_total - report.lower_bound,
            "{}",
            graph.name()
        );
        // The document round-trips through the workspace's own parser
        // and preserves both invariants.
        let doc = parse(&report.to_json())
            .unwrap_or_else(|e| panic!("{}: bad explain JSON: {e}", graph.name()));
        assert_eq!(
            doc.get("kind").and_then(Json::as_str),
            Some("allocation_explain"),
            "{}",
            graph.name()
        );
        let json_sum: f64 = doc
            .get("ledger")
            .and_then(Json::as_array)
            .expect("ledger array")
            .iter()
            .map(|e| e.get("fragmentation").and_then(Json::as_num).unwrap())
            .sum();
        #[allow(clippy::cast_precision_loss)]
        {
            assert_eq!(
                json_sum,
                report.fragmentation_words as f64,
                "{}",
                graph.name()
            );
        }
        assert_eq!(
            doc.get("timeline")
                .and_then(|t| t.get("peak_occupied"))
                .and_then(Json::as_num),
            doc.get("pool_total").and_then(Json::as_num),
            "{}",
            graph.name()
        );
    }
}

#[test]
fn explain_requests_return_the_same_document() {
    // The service op and the direct builder agree byte for byte.
    let graph = cd_dat();
    let request = ServiceRequest::Explain {
        graph: to_text(&graph),
    };
    let ServiceResponse::Ok(payload) = execute_request(&request) else {
        panic!("explain request failed");
    };
    let ResponsePayload::Explain { report } = payload else {
        panic!("explain produced a foreign payload");
    };
    let direct = ExplainReport::build(&graph).expect("direct build");
    assert_eq!(report.to_json(), direct.to_json());
}
