//! Round-trip tests for the machine-readable exports: the engine report
//! JSON and both trace exports must parse with the workspace's own JSON
//! parser and preserve the key fields.

use std::sync::Arc;

use sdfmem::apps::dsp::cd_to_dat;
use sdfmem::trace::json::{parse, Json};
use sdfmem::trace::{Recorder, SCHEMA_VERSION};
use sdfmem::AnalysisBuilder;

fn counter(report: &Json, name: &str) -> u64 {
    report
        .get("counters")
        .and_then(|c| c.get(name))
        .and_then(Json::as_num)
        .unwrap_or_else(|| panic!("counter {name} missing")) as u64
}

#[test]
fn engine_report_json_round_trips() {
    let graph = cd_to_dat();
    let recorder = Arc::new(Recorder::new());
    let synthesis = sdfmem::trace::scoped(&recorder, || {
        AnalysisBuilder::new().parallel(false).run_full(&graph)
    })
    .expect("engine");
    let text = synthesis.report.to_json();
    let json = parse(&text).expect("report JSON parses");

    assert_eq!(
        json.get("schema_version").and_then(Json::as_num),
        Some(f64::from(SCHEMA_VERSION))
    );
    assert_eq!(
        json.get("graph").and_then(Json::as_str),
        Some("cd2dat"),
        "{text}"
    );
    let candidates = json
        .get("candidates")
        .and_then(Json::as_array)
        .expect("candidates array");
    assert!(!candidates.is_empty());
    for candidate in candidates {
        assert!(candidate.get("heuristic").and_then(Json::as_str).is_some());
        assert!(candidate
            .get("shared_total")
            .and_then(Json::as_num)
            .is_some());
        let timings = candidate.get("timings").expect("per-candidate timings");
        for stage in [
            "schedule_us",
            "lifetime_us",
            "wig_us",
            "alloc_us",
            "total_us",
        ] {
            assert!(
                timings.get(stage).and_then(Json::as_num).is_some(),
                "missing timings.{stage} in {text}"
            );
        }
    }
    // The top-level winner indexes a candidate flagged as the winner.
    let winner = json.get("winner").and_then(Json::as_num).expect("winner") as usize;
    assert_eq!(
        candidates[winner].get("winner").and_then(Json::as_bool),
        Some(true)
    );
    assert!(json.get("total_us").and_then(Json::as_num).is_some());

    // The traced run must surface non-trivial work from every pipeline
    // stage (the acceptance bar: DP cells, WIG edge tests and first-fit
    // probes all positive on a non-trivial graph).
    assert!(counter(&json, "sched.dppo.cells") > 0);
    assert!(counter(&json, "lifetime.wig.edge_tests") > 0);
    assert!(counter(&json, "alloc.first_fit.probes") > 0);
    assert!(counter(&json, "engine.candidates") > 0);
}

#[test]
fn untraced_report_has_empty_counters_object() {
    let graph = cd_to_dat();
    let synthesis = AnalysisBuilder::new()
        .parallel(false)
        .run_full(&graph)
        .expect("engine");
    let json = parse(&synthesis.report.to_json()).expect("report JSON parses");
    let counters = json.get("counters").expect("counters key present");
    assert_eq!(counters.members().map(<[_]>::len), Some(0));
}

#[test]
fn chrome_trace_round_trips_with_nested_candidate_spans() {
    let graph = cd_to_dat();
    let recorder = Arc::new(Recorder::new());
    sdfmem::trace::scoped(&recorder, || {
        AnalysisBuilder::new().parallel(false).run_full(&graph)
    })
    .expect("engine");
    let snapshot = recorder.snapshot();

    let chrome = parse(&snapshot.to_chrome_trace_json()).expect("chrome JSON parses");
    assert_eq!(
        chrome.get("schema_version").and_then(Json::as_num),
        Some(f64::from(SCHEMA_VERSION))
    );
    let events = chrome
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array");
    let span = |name: &str| {
        events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some(name))
            .unwrap_or_else(|| panic!("no {name} span"))
    };
    // With serial evaluation every candidate stage nests (by time
    // containment) inside its candidate, which nests inside the run.
    let run = span("engine.run");
    let candidate = span("engine.candidate");
    let alloc = span("candidate.alloc");
    let contains = |outer: &Json, inner: &Json| {
        let ts = |e: &Json| e.get("ts").and_then(Json::as_num).unwrap();
        let end = |e: &Json| ts(e) + e.get("dur").and_then(Json::as_num).unwrap();
        ts(outer) <= ts(inner) && end(inner) <= end(outer)
    };
    assert!(contains(run, candidate));
    assert!(contains(candidate, alloc));

    let jsonl = snapshot.to_jsonl();
    let mut span_lines = 0usize;
    for line in jsonl.lines() {
        let parsed = parse(line).expect("every JSONL line parses");
        if parsed.get("type").and_then(Json::as_str) == Some("span") {
            span_lines += 1;
        }
    }
    assert_eq!(span_lines, snapshot.events.len());
}
