//! Golden-file pinning of the generated C.
//!
//! The shared-model output is the paper's end product (§9, Fig. 21), and
//! downstream consumers diff it, so its bytes are pinned: these goldens
//! were captured from the pre-plan-IR string emitter, and the plan-IR
//! backend must reproduce them bit for bit.  To adopt a deliberate
//! format change, rerun with `SDFMEM_GOLDEN_REFRESH=1` and commit the
//! rewritten `tests/golden/*.c` alongside the change that motivates it
//! (same workflow as the `bench/baselines` refresh).

use sdf_alloc::{allocate, AllocationOrder, PlacementPolicy};
use sdf_core::RepetitionsVector;
use sdf_lifetime::tree::ScheduleTree;
use sdf_lifetime::wig::IntersectionGraph;
use sdf_sched::{apgan, dppo, sdppo};
use sdfmem::pipeline::Analysis;

const GRAPHS: [&str; 3] = ["satrec", "qmf23_2d", "cd_dat"];
const REFRESH_ENV: &str = "SDFMEM_GOLDEN_REFRESH";

fn load(name: &str) -> sdf_core::SdfGraph {
    let path = format!("{}/examples/graphs/{name}.sdf", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    sdf_core::io::parse_graph(&text).unwrap_or_else(|e| panic!("parse {path}: {e}"))
}

fn check(name: &str, kind: &str, code: &str) {
    let path = format!(
        "{}/tests/golden/{name}.{kind}.c",
        env!("CARGO_MANIFEST_DIR")
    );
    if std::env::var(REFRESH_ENV).is_ok() {
        std::fs::write(&path, code).unwrap_or_else(|e| panic!("write {path}: {e}"));
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    assert!(
        golden == code,
        "{name} ({kind}): generated C differs from the pre-refactor golden {path}; \
         if the format change is deliberate, rerun with {REFRESH_ENV}=1 and commit \
         the refreshed goldens"
    );
}

/// The `sdfmem codegen` paths: apgan + SDPPO + ffdur first-fit for the
/// shared model, apgan + DPPO for the non-shared one.
#[test]
fn cli_codegen_output_matches_goldens() {
    for name in GRAPHS {
        let g = load(name);
        let q = RepetitionsVector::compute(&g).expect("consistent");
        let order = apgan(&g, &q).expect("order");
        let shared = sdppo(&g, &q, &order).expect("sdppo");
        let tree = ScheduleTree::build(&g, &q, &shared.tree).expect("tree");
        let wig = IntersectionGraph::build(&g, &q, &tree);
        let alloc = allocate(
            &wig,
            AllocationOrder::DurationDescending,
            PlacementPolicy::FirstFit,
        );
        let code =
            sdf_codegen::generate_shared_c(&g, &q, &shared.tree, &wig, &alloc).expect("shared C");
        check(name, "shared", &code);
        let nonshared = dppo(&g, &q, &order).expect("dppo");
        let code = sdf_codegen::generate_nonshared_c(&g, &q, &nonshared.tree.to_looped_schedule())
            .expect("non-shared C");
        check(name, "nonshared", &code);
    }
}

/// The one-call pipeline: `Analysis::generate_c` (which routes through
/// the plan IR) must emit the same bytes the classic emitter did for the
/// lattice winner.
#[test]
fn analysis_generate_c_matches_goldens() {
    for name in GRAPHS {
        let g = load(name);
        let analysis = Analysis::run(&g).expect("analysis");
        let code = analysis.generate_c(&g).expect("shared C");
        check(name, "analysis", &code);
    }
}
