//! The example graph corpus under `examples/graphs/` must stay parseable,
//! consistent, and in sync with the `sdf-apps` registry — it is the input
//! set of the regression sentinel (`engine_sweep --baseline/--gate`), so
//! a file drifting from its registry twin would silently change what the
//! perf gate measures.

use sdfmem::apps::registry::by_name;
use sdfmem::core::RepetitionsVector;
use sdfmem::AnalysisBuilder;

fn corpus_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/graphs")
}

fn corpus_files() -> Vec<std::path::PathBuf> {
    let mut files: Vec<_> = std::fs::read_dir(corpus_dir())
        .expect("examples/graphs exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "sdf"))
        .collect();
    files.sort();
    files
}

#[test]
fn corpus_parses_and_is_consistent() {
    let files = corpus_files();
    assert!(files.len() >= 5, "corpus shrank: {files:?}");
    for path in files {
        let text = std::fs::read_to_string(&path).expect("readable");
        let graph = sdfmem::core::io::parse_graph(&text)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let q = RepetitionsVector::compute(&graph)
            .unwrap_or_else(|e| panic!("{}: inconsistent: {e}", path.display()));
        assert!(q.total_firings() > 0, "{}", path.display());
        // The sentinel runs the full engine over each corpus graph, so
        // each one must synthesise cleanly.
        let analysis = AnalysisBuilder::new()
            .run(&graph)
            .unwrap_or_else(|e| panic!("{}: engine failed: {e}", path.display()));
        assert!(
            analysis.shared_total() <= analysis.nonshared_bufmem,
            "{}",
            path.display()
        );
    }
}

#[test]
fn registry_twins_match_their_files() {
    for name in ["satrec", "qmf23_2d", "qmf12_2d", "16qamModem"] {
        let registry = by_name(name).expect("registry graph");
        let path = corpus_dir().join(format!("{name}.sdf"));
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let parsed = sdfmem::core::io::parse_graph(&text).expect("parses");
        assert_eq!(parsed.name(), registry.name(), "{name}");
        assert_eq!(parsed.actor_count(), registry.actor_count(), "{name}");
        assert_eq!(parsed.edge_count(), registry.edge_count(), "{name}");
        // Round-tripping the registry graph reproduces the file exactly,
        // so regenerating via export_graphs is always a no-op diff.
        assert_eq!(
            sdfmem::core::io::to_text(&registry),
            text,
            "{name}: file drifted from the registry — regenerate with export_graphs"
        );
    }
}

fn mode_corpus_files() -> Vec<std::path::PathBuf> {
    let mut files: Vec<_> = std::fs::read_dir(corpus_dir())
        .expect("examples/graphs exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "sdfm"))
        .collect();
    files.sort();
    files
}

#[test]
fn mode_corpus_parses_and_synthesises_cleanly() {
    let files = mode_corpus_files();
    assert!(files.len() >= 2, "mode corpus shrank: {files:?}");
    for path in files {
        let text = std::fs::read_to_string(&path).expect("readable");
        let mg = sdfmem::core::mode::parse_mode_graph(&text)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let synth = sdfmem::modes::synthesize_modes(&mg)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        // The merged pool must beat separate per-mode pools strictly,
        // respect its gate, and transition cleanly — the promises the
        // CLI examples and CI smoke make.
        assert!(
            synth.merged_pool_words < synth.sum_pool_words,
            "{}: merged {} not better than separate {}",
            path.display(),
            synth.merged_pool_words,
            synth.sum_pool_words
        );
        assert!(synth.gate_ok, "{}", path.display());
        synth
            .exec
            .as_ref()
            .unwrap_or_else(|e| panic!("{}: oracle: {e}", path.display()));
    }
}

#[test]
fn mode_registry_twins_match_their_files() {
    for (name, registry) in sdfmem::apps::modes::mode_graphs() {
        let path = corpus_dir().join(format!("{name}.sdfm"));
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert_eq!(
            sdfmem::core::mode::to_mode_text(&registry),
            text,
            "{name}: file drifted from the registry — regenerate with export_graphs"
        );
        // And parsing the file reproduces the registry graph's shape.
        let parsed = sdfmem::core::mode::parse_mode_graph(&text).expect("parses");
        assert_eq!(parsed.name(), registry.name());
        assert_eq!(parsed.modes().len(), registry.modes().len());
        assert_eq!(parsed.persistent().len(), registry.persistent().len());
    }
}
