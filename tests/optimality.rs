//! Brute-force optimality verification on small instances.
//!
//! DPPO claims *order-optimality*: minimal `bufmem` among all R-schedules
//! with a given lexical order.  These tests enumerate every binary
//! parenthesisation (Catalan-many) of small chains, measure each by
//! ground-truth simulation, and check the DP result matches the minimum.
//! SDPPO gets the analogous sanity bound (its heuristic cost is within
//! the brute-force best shared allocation's reach).

use rand::SeedableRng;
use sdfmem::alloc::{allocate, AllocationOrder, PlacementPolicy};
use sdfmem::apps::random::{random_sdf_graph, RandomGraphConfig};
use sdfmem::core::math::gcd_iter;
use sdfmem::core::simulate::validate_schedule;
use sdfmem::core::{ActorId, RepetitionsVector, SasNode, SasTree, SdfGraph};
use sdfmem::lifetime::{tree::ScheduleTree, wig::IntersectionGraph};
use sdfmem::sched::{dppo::dppo, sdppo::sdppo};

/// Enumerates every fully-factored R-schedule tree for `order[lo..=hi]`,
/// with `applied` the product of enclosing loop factors.
fn enumerate_trees(
    order: &[ActorId],
    q: &RepetitionsVector,
    lo: usize,
    hi: usize,
    applied: u64,
) -> Vec<SasNode> {
    if lo == hi {
        return vec![SasNode::leaf(order[lo], q.get(order[lo]) / applied)];
    }
    let g = gcd_iter(order[lo..=hi].iter().map(|&a| q.get(a)));
    let count = g / applied;
    let mut out = Vec::new();
    for k in lo..hi {
        for left in enumerate_trees(order, q, lo, k, g) {
            for right in enumerate_trees(order, q, k + 1, hi, g) {
                out.push(SasNode::branch(count, left.clone(), right.clone()));
            }
        }
    }
    out
}

fn brute_force_best_bufmem(graph: &SdfGraph, q: &RepetitionsVector, order: &[ActorId]) -> u64 {
    enumerate_trees(order, q, 0, order.len() - 1, 1)
        .into_iter()
        .map(|root| {
            let tree = SasTree::new(root);
            tree.validate(graph, q).expect("enumerated trees are valid");
            validate_schedule(graph, &tree.to_looped_schedule(), q)
                .expect("SAS executes")
                .bufmem()
        })
        .min()
        .expect("at least one parenthesisation")
}

fn brute_force_best_shared(graph: &SdfGraph, q: &RepetitionsVector, order: &[ActorId]) -> u64 {
    enumerate_trees(order, q, 0, order.len() - 1, 1)
        .into_iter()
        .map(|root| {
            let sas = SasTree::new(root);
            let tree = ScheduleTree::build(graph, q, &sas).expect("valid");
            let wig = IntersectionGraph::build(graph, q, &tree);
            let d = allocate(
                &wig,
                AllocationOrder::DurationDescending,
                PlacementPolicy::FirstFit,
            );
            let s = allocate(
                &wig,
                AllocationOrder::StartAscending,
                PlacementPolicy::FirstFit,
            );
            d.total().min(s.total())
        })
        .min()
        .expect("at least one parenthesisation")
}

fn chain(rates: &[(u64, u64)]) -> (SdfGraph, RepetitionsVector, Vec<ActorId>) {
    let mut g = SdfGraph::new("chain");
    let ids: Vec<_> = (0..=rates.len())
        .map(|i| g.add_actor(format!("x{i}")))
        .collect();
    for (i, &(p, c)) in rates.iter().enumerate() {
        g.add_edge(ids[i], ids[i + 1], p, c).unwrap();
    }
    let q = RepetitionsVector::compute(&g).unwrap();
    (g, q, ids)
}

#[test]
fn dppo_is_order_optimal_on_small_chains() {
    for rates in [
        vec![(2u64, 3u64), (1, 2), (4, 1)],
        vec![(1, 1), (2, 3), (2, 7)],
        vec![(3, 5), (5, 3), (2, 2), (6, 4)],
        vec![(2, 4), (3, 2), (1, 3), (5, 1)],
        vec![(7, 3), (2, 5)],
    ] {
        let (g, q, order) = chain(&rates);
        let dp = dppo(&g, &q, &order).unwrap();
        let brute = brute_force_best_bufmem(&g, &q, &order);
        assert_eq!(
            dp.bufmem, brute,
            "DPPO not order-optimal on {rates:?}: dp {} vs brute {}",
            dp.bufmem, brute
        );
    }
}

#[test]
fn dppo_is_order_optimal_on_random_dags() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(4242);
    for _ in 0..15 {
        let g = random_sdf_graph(&RandomGraphConfig::paper_style(6), &mut rng);
        let q = RepetitionsVector::compute(&g).unwrap();
        let order = g.topological_sort().unwrap();
        let dp = dppo(&g, &q, &order).unwrap();
        let brute = brute_force_best_bufmem(&g, &q, &order);
        assert_eq!(dp.bufmem, brute, "graph {}", g.name());
    }
}

#[test]
fn sdppo_allocation_close_to_brute_force_shared_optimum() {
    // SDPPO is a heuristic; assert it lands within 2x of the brute-force
    // best shared allocation over all parenthesisations (in practice it
    // usually ties — the factor-2 guard keeps the test robust).
    for rates in [
        vec![(2u64, 3u64), (1, 2), (4, 1)],
        vec![(3, 5), (5, 3), (2, 2)],
        vec![(2, 4), (3, 2), (1, 3)],
    ] {
        let (g, q, order) = chain(&rates);
        let shared = sdppo(&g, &q, &order).unwrap();
        let tree = ScheduleTree::build(&g, &q, &shared.tree).unwrap();
        let wig = IntersectionGraph::build(&g, &q, &tree);
        let d = allocate(
            &wig,
            AllocationOrder::DurationDescending,
            PlacementPolicy::FirstFit,
        );
        let s = allocate(
            &wig,
            AllocationOrder::StartAscending,
            PlacementPolicy::FirstFit,
        );
        let achieved = d.total().min(s.total());
        let brute = brute_force_best_shared(&g, &q, &order);
        assert!(
            achieved <= 2 * brute,
            "sdppo allocation {achieved} vs brute-force shared {brute} on {rates:?}"
        );
        assert!(achieved >= brute, "cannot beat the brute-force minimum");
    }
}

#[test]
fn enumeration_counts_are_catalan() {
    // Sanity-check the enumerator itself: C(n-1) parenthesisations.
    let (_, q, order) = chain(&[(1, 1), (1, 1), (1, 1), (1, 1)]);
    // 5 actors -> C4 = 14 binary trees.
    assert_eq!(enumerate_trees(&order, &q, 0, 4, 1).len(), 14);
    let (_, q3, order3) = chain(&[(2, 3), (1, 2)]);
    // 3 actors -> C2 = 2.
    assert_eq!(enumerate_trees(&order3, &q3, 0, 2, 1).len(), 2);
}
