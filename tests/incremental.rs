//! Bit-identity guarantees of the incremental re-synthesis path.
//!
//! Every test here compares a warm [`IncrementalSession`] result against
//! a cold `AnalysisBuilder` run (no memo store, no previous state) on
//! the same edited graph — schedules, allocation offsets, clique
//! estimates and the full `ExecutablePlan` JSON must match byte for
//! byte at every step of every edit stream, including under a
//! constantly-evicting memo store.

use std::sync::Arc;

use proptest::prelude::*;
use rand::{Rng, SeedableRng};

use sdfmem::apps::random::{random_sdf_graph, RandomGraphConfig};
use sdfmem::apps::satrec::satellite_receiver;
use sdfmem::core::math::gcd;
use sdfmem::core::{RepetitionsVector, SdfGraph};
use sdfmem::engine::AnalysisBuilder;
use sdfmem::incremental::{
    apply_edits, dirty_edges, EditOp, EditScript, IncrementalResult, IncrementalSession,
};
use sdfmem::sched::apgan::apgan;
use sdfmem::sched::MemoStore;

/// Asserts the incremental result is bit-identical to a cold engine run
/// (default options, no memo) on the same graph, down to the plan JSON.
fn assert_matches_cold(graph: &SdfGraph, warm: &IncrementalResult, context: &str) {
    let cold = AnalysisBuilder::default().run(graph).unwrap();
    let w = &warm.analysis;
    assert_eq!(w.repetitions, cold.repetitions, "{context}: repetitions");
    assert_eq!(w.winner, cold.winner, "{context}: winner");
    assert_eq!(
        w.nonshared_bufmem, cold.nonshared_bufmem,
        "{context}: nonshared bufmem"
    );
    assert_eq!(w.schedule, cold.schedule, "{context}: schedule tree");
    assert_eq!(w.allocation, cold.allocation, "{context}: allocation");
    assert_eq!(w.mco, cold.mco, "{context}: mco");
    assert_eq!(w.mcp, cold.mcp, "{context}: mcp");
    let warm_json = warm.plan(graph).unwrap().to_json();
    let cold_json = cold.plan(graph).unwrap().to_json();
    assert_eq!(warm_json, cold_json, "{context}: plan JSON bytes");
}

/// Generates one consistency-preserving random edit against `current`.
/// Rate edits scale both rates of an edge by a common factor (preserving
/// the balance ratio), added edges point from a lower to a higher actor
/// index with balance-derived rates, and removals are only proposed when
/// the graph stays connected without the edge.
fn random_op<R: Rng>(current: &SdfGraph, rng: &mut R) -> Option<EditOp> {
    let edge_list: Vec<_> = current.edges().map(|(id, e)| (id, *e)).collect();
    if edge_list.is_empty() {
        return None;
    }
    let name = |a| current.actor_name(a).to_string();
    let ordinal_of = |idx: usize| {
        let (_, e) = edge_list[idx];
        edge_list[..idx]
            .iter()
            .filter(|(_, o)| o.src == e.src && o.snk == e.snk)
            .count()
    };
    for _ in 0..8 {
        let kind = rng.gen_range(0u32..4);
        match kind {
            0 => {
                let idx = rng.gen_range(0..edge_list.len());
                let (_, e) = edge_list[idx];
                return Some(EditOp::SetDelay {
                    src: name(e.src),
                    snk: name(e.snk),
                    ordinal: ordinal_of(idx),
                    delay: e.cons * rng.gen_range(0..=2),
                });
            }
            1 => {
                let idx = rng.gen_range(0..edge_list.len());
                let (_, e) = edge_list[idx];
                let g = gcd(e.prod, e.cons);
                let f = rng.gen_range(1..=3u64);
                return Some(EditOp::SetRate {
                    src: name(e.src),
                    snk: name(e.snk),
                    ordinal: ordinal_of(idx),
                    prod: e.prod / g * f,
                    cons: e.cons / g * f,
                });
            }
            2 => {
                if current.actor_count() < 2 {
                    continue;
                }
                let q = RepetitionsVector::compute(current).unwrap();
                let actors: Vec<_> = current.actors().collect();
                let i = rng.gen_range(0..actors.len() - 1);
                let j = rng.gen_range(i + 1..actors.len());
                let (qi, qj) = (q.get(actors[i]), q.get(actors[j]));
                let g = gcd(qi, qj);
                let f = rng.gen_range(1..=2u64);
                return Some(EditOp::AddEdge {
                    src: name(actors[i]),
                    snk: name(actors[j]),
                    prod: qj / g * f,
                    cons: qi / g * f,
                    delay: if rng.gen_bool(0.3) { qi / g * f } else { 0 },
                });
            }
            _ => {
                let idx = rng.gen_range(0..edge_list.len());
                let (_, e) = edge_list[idx];
                let op = EditOp::RemoveEdge {
                    src: name(e.src),
                    snk: name(e.snk),
                    ordinal: ordinal_of(idx),
                };
                let script = EditScript {
                    ops: vec![op.clone()],
                };
                let after = apply_edits(current, &script).unwrap();
                if after.edge_count() > 0 && after.is_connected() {
                    return Some(op);
                }
            }
        }
    }
    None
}

/// Replays `steps` random edit scripts through `session`, asserting
/// bit-identity against a cold run after every step. Returns cumulative
/// memo hits observed.
fn replay_random_stream(session: &mut IncrementalSession, seed: u64, steps: usize) -> u64 {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut hits = 0;
    for step in 0..steps {
        let current = session.graph().expect("seeded").clone();
        let mut ops = Vec::new();
        for _ in 0..rng.gen_range(1..=2) {
            // Later ops in one script address the intermediate graph, so
            // generate each against the staged application of the prefix.
            let staged = apply_edits(&current, &EditScript { ops: ops.clone() }).unwrap();
            if let Some(op) = random_op(&staged, &mut rng) {
                ops.push(op);
            }
        }
        if ops.is_empty() {
            continue;
        }
        let script = EditScript { ops };
        let edited = apply_edits(&current, &script).unwrap();
        let warm = session.apply_edits(&script).unwrap();
        assert!(!warm.stats.cold, "step {step} took the cold path");
        hits += warm.stats.memo_hits;
        assert_matches_cold(
            &edited,
            &warm,
            &format!("seed {seed} step {step} [{script}]"),
        );
        assert_eq!(
            sdfmem::core::io::to_text(session.graph().unwrap()),
            sdfmem::core::io::to_text(&edited),
            "session graph diverged from reference application"
        );
    }
    hits
}

fn chain_graph(delays: &[u64]) -> SdfGraph {
    let mut g = SdfGraph::new("edit_chain");
    let a = g.add_actor("A");
    let b = g.add_actor("B");
    let c = g.add_actor("C");
    let d = g.add_actor("D");
    g.add_edge_with_delay(a, b, 2, 1, delays[0]).unwrap();
    g.add_edge_with_delay(b, c, 1, 1, delays[1]).unwrap();
    g.add_edge_with_delay(c, d, 1, 2, delays[2]).unwrap();
    g
}

#[test]
fn seeding_run_matches_cold_engine() {
    for graph in [satellite_receiver(), chain_graph(&[0, 0, 0])] {
        let mut session = IncrementalSession::new(AnalysisBuilder::default().options().clone());
        let r = session.synthesize(&graph).unwrap();
        assert!(r.stats.cold);
        assert_matches_cold(&graph, &r, graph.name());
    }
}

#[test]
fn noop_edit_reuses_everything() {
    let mut session = IncrementalSession::new(AnalysisBuilder::default().options().clone());
    session.synthesize(&satellite_receiver()).unwrap();
    // Rewriting an existing delay with its current value leaves every
    // edge record identical: nothing is dirty, every stage splices.
    let script = EditScript::parse("set-delay A B 0").unwrap();
    let r = session.apply_edits(&script).unwrap();
    assert_eq!(r.stats.dirty_edges, 0);
    assert!(r.stats.apgan_order_reused);
    assert_eq!(r.stats.cells_recomputed, 0);
    assert!(r.stats.cells_spliced > 0);
    assert_eq!(r.stats.lifetimes_recomputed, 0);
    assert!(r.stats.lifetimes_reused > 0);
    assert_eq!(r.stats.placements_recomputed, 0);
    assert!(r.stats.placements_reused > 0);
    assert!(r.stats.memo_hits > 0, "chain DP cells should all hit");
    assert_eq!(r.stats.memo_misses, 0, "no new subchain content appeared");
    assert_matches_cold(&satellite_receiver(), &r, "noop edit");
}

#[test]
fn delay_edit_on_chain_is_bit_identical() {
    let mut session = IncrementalSession::new(AnalysisBuilder::default().options().clone());
    session.synthesize(&chain_graph(&[0, 0, 0])).unwrap();
    for (step, delays) in [[0, 3, 0], [1, 3, 0], [1, 3, 7], [0, 0, 0]]
        .iter()
        .enumerate()
    {
        let script = EditScript::parse(&format!(
            "set-delay A B {}\nset-delay B C {}\nset-delay C D {}",
            delays[0], delays[1], delays[2]
        ))
        .unwrap();
        let warm = session.apply_edits(&script).unwrap();
        assert!(warm.stats.apgan_order_reused, "APGAN is delay-blind");
        assert_matches_cold(
            &chain_graph(delays),
            &warm,
            &format!("delays {delays:?} step {step}"),
        );
    }
}

#[test]
fn structural_edits_are_bit_identical() {
    let mut session = IncrementalSession::new(AnalysisBuilder::default().options().clone());
    let base = chain_graph(&[0, 1, 0]);
    session.synthesize(&base).unwrap();
    // Grow a new actor, re-rate an edge, then remove an added edge again
    // (the A->D shortcut, so the graph stays connected).
    for text in [
        "add-edge B E 1 2",
        "set-rate A B 4 2",
        "add-edge A D 1 1 delay 2",
        "remove-edge A D",
    ] {
        let script = EditScript::parse(text).unwrap();
        let expect = apply_edits(session.graph().unwrap(), &script).unwrap();
        let warm = session.apply_edits(&script).unwrap();
        assert_matches_cold(&expect, &warm, text);
    }
}

#[test]
fn random_streams_on_app_graphs_are_bit_identical() {
    let mut session = IncrementalSession::new(AnalysisBuilder::default().options().clone());
    session.synthesize(&satellite_receiver()).unwrap();
    let hits = replay_random_stream(&mut session, 0xed17, 6);
    assert!(hits > 0, "warm steps should hit the memo store");
}

#[test]
fn eviction_pressure_does_not_change_results() {
    // A 3-entry store evicts on almost every insert; correctness must
    // not depend on what happens to be resident.
    let tiny = Arc::new(MemoStore::with_capacity(3));
    let mut session = IncrementalSession::with_store(
        AnalysisBuilder::default().options().clone(),
        Arc::clone(&tiny),
    );
    session.synthesize(&satellite_receiver()).unwrap();
    replay_random_stream(&mut session, 0x5EED, 4);
    let stats = tiny.stats();
    assert!(stats.evictions > 0, "capacity 3 must evict: {stats:?}");
    assert!(stats.occupancy <= 3);
}

#[test]
fn apgan_order_is_delay_invariant() {
    // The fingerprint-based APGAN reuse rests on APGAN never reading
    // delays; verify that directly over random graphs.
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    for n in [6, 12, 24] {
        let cfg = RandomGraphConfig {
            delay_probability: 0.4,
            ..RandomGraphConfig::paper_style(n)
        };
        for _ in 0..8 {
            let g = random_sdf_graph(&cfg, &mut rng);
            let q = RepetitionsVector::compute(&g).unwrap();
            let base_order = apgan(&g, &q).unwrap();
            // Rewrite every delay and recompute.
            let mut script = String::new();
            for (idx, (_, e)) in g.edges().enumerate() {
                let ord = g
                    .edges()
                    .take(idx)
                    .filter(|(_, o)| o.src == e.src && o.snk == e.snk)
                    .count();
                script.push_str(&format!(
                    "set-delay {} {} {} @{}\n",
                    g.actor_name(e.src),
                    g.actor_name(e.snk),
                    e.cons * 3,
                    ord
                ));
            }
            let edited = apply_edits(&g, &EditScript::parse(&script).unwrap()).unwrap();
            let q2 = RepetitionsVector::compute(&edited).unwrap();
            assert_eq!(apgan(&edited, &q2).unwrap(), base_order, "n={n}");
        }
    }
}

#[test]
fn edit_script_round_trips_and_rejects_garbage() {
    let text = "set-rate A B 4 2\nset-delay B C 7 @1\nadd-edge C D 1 1 delay 3\nremove-edge A B\n";
    let script = EditScript::parse(text).unwrap();
    assert_eq!(script.ops.len(), 4);
    assert_eq!(script.to_text(), text);
    assert_eq!(EditScript::parse(&script.to_text()).unwrap(), script);
    // Comments and blank lines are skipped.
    let commented = EditScript::parse("# header\n\nset-delay A B 1 # trailing\n").unwrap();
    assert_eq!(commented.ops.len(), 1);
    for bad in [
        "set-rate A B 4",
        "set-delay A B x",
        "add-edge A B 1 1 delay",
        "frobnicate A B",
        "set-delay A B 1 2 3",
    ] {
        assert!(EditScript::parse(bad).is_err(), "{bad} should not parse");
    }
}

#[test]
fn bad_edits_leave_the_session_usable() {
    let mut session = IncrementalSession::new(AnalysisBuilder::default().options().clone());
    assert!(
        session
            .apply_edits(&EditScript::parse("set-delay A B 1").unwrap())
            .is_err(),
        "unseeded session must refuse edits"
    );
    session.synthesize(&chain_graph(&[0, 0, 0])).unwrap();
    let err = session
        .apply_edits(&EditScript::parse("set-delay A Z 1").unwrap())
        .unwrap_err();
    assert!(err.to_string().contains("nonexistent"), "{err}");
    // The failed edit must not have advanced or wedged the session.
    let ok = session
        .apply_edits(&EditScript::parse("set-delay A B 2").unwrap())
        .unwrap();
    assert_matches_cold(&chain_graph(&[2, 0, 0]), &ok, "after failed edit");
}

#[test]
fn dirty_edges_flags_exactly_the_changed_records() {
    let base = chain_graph(&[0, 1, 0]);
    let edited = apply_edits(&base, &EditScript::parse("set-delay B C 9").unwrap()).unwrap();
    assert_eq!(dirty_edges(&base, &edited), vec![false, true, false]);
    let grown = apply_edits(&base, &EditScript::parse("add-edge A D 1 1").unwrap()).unwrap();
    assert_eq!(dirty_edges(&base, &grown), vec![false, false, false, true]);
    let shrunk = apply_edits(&base, &EditScript::parse("remove-edge A B").unwrap()).unwrap();
    // Removal shifts every id: all positions diverge.
    assert_eq!(dirty_edges(&base, &shrunk), vec![true, true]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random graphs × random edit streams: every step bit-identical.
    #[test]
    fn random_edit_streams_are_bit_identical(seed in 0u64..1000) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let cfg = RandomGraphConfig {
            delay_probability: 0.3,
            ..RandomGraphConfig::paper_style(rng.gen_range(5..14))
        };
        let graph = random_sdf_graph(&cfg, &mut rng);
        let mut session = IncrementalSession::new(AnalysisBuilder::default().options().clone());
        let seeded = session.synthesize(&graph).unwrap();
        assert_matches_cold(&graph, &seeded, &format!("seed {seed} cold"));
        replay_random_stream(&mut session, seed.wrapping_mul(0x9e3779b9), 4);
    }
}
