//! Property-based tests over random SDF graphs and random periodic
//! lifetimes: invariants the whole stack must maintain no matter the
//! input.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};

use sdfmem::alloc::{allocate, validate_allocation, AllocationOrder, PlacementPolicy};
use sdfmem::apps::random::{random_sdf_graph, RandomGraphConfig};
use sdfmem::core::simulate::validate_schedule;
use sdfmem::core::RepetitionsVector;
use sdfmem::lifetime::interval::{Period, PeriodicLifetime};
use sdfmem::lifetime::{tree::ScheduleTree, wig::IntersectionGraph};
use sdfmem::sched::topsort::random_topological_sort;
use sdfmem::sched::{apgan::apgan, dppo::dppo, rpmc::rpmc, sdppo::sdppo};

/// A strategy for structurally valid periodic lifetimes: nesting strides,
/// occurrence length within the innermost stride.
fn lifetime_strategy() -> impl Strategy<Value = PeriodicLifetime> {
    (
        0u64..50,                                        // start
        1u64..8,                                         // dur
        prop::collection::vec((2u64..5, 2u64..4), 0..3), // (stride factor, count)
        1u64..100,                                       // size
    )
        .prop_map(|(start, dur, levels, size)| {
            let mut periods = Vec::new();
            let mut stride = dur; // innermost stride >= dur
            for (factor, count) in levels {
                stride *= factor;
                periods.push(Period { stride, count });
                stride *= count;
            }
            PeriodicLifetime::periodic(start, dur, size, periods)
        })
}

/// Brute-force liveness by expanding all occurrences.
fn live_brute(lt: &PeriodicLifetime, t: u64) -> bool {
    let mut starts = vec![lt.start()];
    for p in lt.periods() {
        let mut next = Vec::new();
        for s in &starts {
            for k in 0..p.count {
                next.push(s + k * p.stride);
            }
        }
        starts = next;
    }
    starts.iter().any(|&s| s <= t && t < s + lt.dur())
}

proptest! {
    #[test]
    fn liveness_query_matches_brute_force(lt in lifetime_strategy(), t in 0u64..400) {
        prop_assert_eq!(lt.live_at(t), live_brute(&lt, t));
    }

    #[test]
    fn next_occurrence_is_correct(lt in lifetime_strategy(), t in 0u64..400) {
        // The reported next occurrence start is >= t, is a real occurrence
        // start, and no occurrence start lies in [t, reported).
        match lt.next_occurrence_at_or_after(t) {
            Some(s) => {
                prop_assert!(s >= t);
                prop_assert!(lt.live_at(s));
                prop_assert!(s == lt.start() || !lt.live_at(s.saturating_sub(1)) || lt.dur() > 1);
                for x in t..s {
                    // No occurrence may *start* strictly before s in [t, s).
                    if lt.live_at(x) {
                        // x can only be live as the tail of an occurrence
                        // that started before t.
                        prop_assert!(x < t + lt.dur());
                    }
                }
            }
            None => {
                // All occurrence starts are before t.
                prop_assert!(t > lt.start());
            }
        }
    }

    #[test]
    fn intersection_symmetric_and_conservative(
        a in lifetime_strategy(),
        b in lifetime_strategy()
    ) {
        prop_assert_eq!(a.intersects(&b), b.intersects(&a));
        // Brute-force ground truth over the shared horizon.
        let horizon = a.envelope_end().max(b.envelope_end());
        let truth = (0..horizon).any(|t| live_brute(&a, t) && live_brute(&b, t));
        // The exact test matches truth whenever enumeration is feasible
        // (always, for these small strategies).
        prop_assert_eq!(a.intersects(&b), truth);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn pipeline_invariants_on_random_graphs(seed in 0u64..500, size in 3usize..24) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let graph = random_sdf_graph(&RandomGraphConfig::paper_style(size), &mut rng);
        let q = RepetitionsVector::compute(&graph).expect("consistent by construction");

        for order in [
            rpmc(&graph, &q).expect("acyclic"),
            apgan(&graph, &q).expect("acyclic"),
            random_topological_sort(&graph, &mut rng).expect("acyclic"),
        ] {
            // DPPO: estimate equals simulated bufmem.
            let nonshared = dppo(&graph, &q, &order).expect("dppo");
            let sim = validate_schedule(&graph, &nonshared.tree.to_looped_schedule(), &q)
                .expect("dppo schedule must be valid");
            prop_assert_eq!(sim.bufmem(), nonshared.bufmem);

            // SDPPO: schedule valid; allocation conflict-free and no worse
            // than the non-shared total of its own schedule.
            let shared = sdppo(&graph, &q, &order).expect("sdppo");
            validate_schedule(&graph, &shared.tree.to_looped_schedule(), &q)
                .expect("sdppo schedule must be valid");
            let tree = ScheduleTree::build(&graph, &q, &shared.tree).expect("tree");
            let wig = IntersectionGraph::build(&graph, &q, &tree);
            for (ord, pol) in [
                (AllocationOrder::DurationDescending, PlacementPolicy::FirstFit),
                (AllocationOrder::StartAscending, PlacementPolicy::FirstFit),
                (AllocationOrder::Insertion, PlacementPolicy::FirstFit),
                (AllocationOrder::DurationDescending, PlacementPolicy::BestFit),
            ] {
                let alloc = allocate(&wig, ord, pol);
                validate_allocation(&wig, &alloc).expect("allocation must be conflict-free");
                prop_assert!(alloc.total() <= wig.total_size());
            }
        }
    }

    #[test]
    fn provenance_ledger_and_occupancy_invariants(seed in 0u64..500, size in 3usize..24) {
        use sdfmem::alloc::allocate_with_provenance;
        use sdfmem::lifetime::occupancy::OccupancyTimeline;

        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let graph = random_sdf_graph(&RandomGraphConfig::paper_style(size), &mut rng);
        let q = RepetitionsVector::compute(&graph).expect("consistent by construction");
        let order = apgan(&graph, &q).expect("acyclic");
        let shared = sdppo(&graph, &q, &order).expect("sdppo");
        let tree = ScheduleTree::build(&graph, &q, &shared.tree).expect("tree");
        let wig = IntersectionGraph::build(&graph, &q, &tree);
        for (ord, pol) in [
            (AllocationOrder::DurationDescending, PlacementPolicy::FirstFit),
            (AllocationOrder::StartAscending, PlacementPolicy::FirstFit),
            (AllocationOrder::Insertion, PlacementPolicy::FirstFit),
            (AllocationOrder::DurationDescending, PlacementPolicy::BestFit),
        ] {
            // The audit layer is pure observation: same offsets as the
            // plain allocator.
            let plain = allocate(&wig, ord, pol);
            let recorder = std::sync::Arc::new(sdfmem::trace::Recorder::new());
            let (alloc, log) = sdfmem::trace::scoped(&recorder, || {
                allocate_with_provenance(&wig, ord, pol)
            });
            prop_assert_eq!(plain.offsets(), alloc.offsets());

            // Ledger invariant: the per-decision fragmentation
            // attributions sum exactly to the run's traced total.
            let snap = recorder.snapshot();
            let run_total = snap
                .gauges
                .iter()
                .find(|(n, _)| n == "alloc.fragmentation_words")
                .map(|&(_, v)| v)
                .expect("traced run records the fragmentation gauge");
            let ledger_sum: u64 = log.decisions.iter().map(|d| d.fragmentation).sum();
            prop_assert_eq!(ledger_sum, run_total);
            prop_assert_eq!(log.fragmentation_words(), run_total);
            // The per-run counter (regression-sentinel gate) agrees.
            let counter = snap
                .counters
                .iter()
                .find(|(n, _)| n == "alloc.first_fit.fragmentation")
                .map(|&(_, v)| v)
                .expect("per-run fragmentation counter");
            prop_assert_eq!(counter, run_total);

            // Occupancy invariant: the timeline's occupied peak equals
            // the allocator's pool size bit for bit, and the live peak
            // bounds it from below.
            let timeline = OccupancyTimeline::build(&wig, alloc.offsets());
            prop_assert_eq!(timeline.peak_occupied(), alloc.total());
            // The MCW lower bound never exceeds what any allocator
            // actually uses (the envelope-model live peak can, when
            // exact lifetimes interleave inside overlapping envelopes).
            prop_assert!(sdfmem::lifetime::mcw_optimistic(&wig) <= alloc.total());
        }
    }

    #[test]
    fn loopify_round_trips_and_never_grows(seq_spec in prop::collection::vec(0u8..4, 1..40)) {
        use sdfmem::core::ActorId;
        use sdfmem::sched::loopify::compress;
        let seq: Vec<ActorId> = seq_spec.iter().map(|&i| ActorId::from_index(i as usize)).collect();
        let r = compress(&seq, 0);
        let expanded: Vec<ActorId> = r.schedule.firings().collect();
        prop_assert_eq!(&expanded, &seq);
        // Code size never exceeds the flat encoding (runs coalesced).
        let mut runs = 1u64;
        for w in seq.windows(2) {
            if w[0] != w[1] {
                runs += 1;
            }
        }
        prop_assert!(r.code_size <= runs);
    }

    #[test]
    fn graph_io_round_trips_random_graphs(seed in 0u64..300) {
        use sdfmem::core::io::{parse_graph, to_text};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let cfg = RandomGraphConfig {
            actors: 10,
            edges: 16,
            max_rate_multiplier: 3,
            delay_probability: 0.3,
        };
        let g = random_sdf_graph(&cfg, &mut rng);
        let back = parse_graph(&to_text(&g)).expect("serialised graphs parse");
        prop_assert_eq!(back.actor_count(), g.actor_count());
        prop_assert_eq!(back.edge_count(), g.edge_count());
        let orig: Vec<_> = g.edges().map(|(_, e)| *e).collect();
        let round: Vec<_> = back.edges().map(|(_, e)| *e).collect();
        prop_assert_eq!(orig, round);
    }

    #[test]
    fn schedule_display_round_trips(seed in 0u64..200, size in 2usize..10) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let graph = random_sdf_graph(&RandomGraphConfig::paper_style(size), &mut rng);
        let q = RepetitionsVector::compute(&graph).expect("consistent");
        let order = apgan(&graph, &q).expect("acyclic");
        let sas = sdppo(&graph, &q, &order).expect("sdppo").tree;
        let schedule = sas.to_looped_schedule();
        let text = schedule.display(&graph).to_string();
        let back = sdfmem::core::LoopedSchedule::parse(&text, &graph)
            .unwrap_or_else(|e| panic!("reparse of {text:?} failed: {e}"));
        let a: Vec<_> = schedule.firings().collect();
        let b: Vec<_> = back.firings().collect();
        prop_assert_eq!(a, b, "{}", text);
    }

    #[test]
    fn fact1_factoring_preserves_validity_and_nonshared_bufmem(seed in 0u64..200, size in 2usize..12) {
        // Fact 1: fully factoring a valid SAS keeps it valid and never
        // increases bufmem under the non-shared model.
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let graph = random_sdf_graph(&RandomGraphConfig::paper_style(size), &mut rng);
        let q = RepetitionsVector::compute(&graph).expect("consistent");
        let order = rpmc(&graph, &q).expect("acyclic");
        // Use an sdppo schedule: its heuristic leaves some loops
        // unfactored, giving the transformation something to do.
        let s = sdppo(&graph, &q, &order).expect("sdppo").tree.to_looped_schedule();
        let f = s.fully_factored();
        let before = validate_schedule(&graph, &s, &q).expect("valid").bufmem();
        let after = validate_schedule(&graph, &f, &q)
            .expect("factored schedule must stay valid")
            .bufmem();
        prop_assert!(after <= before, "factoring increased bufmem: {after} > {before}");
    }

    #[test]
    fn input_buffer_requirement_bounded(seed in 0u64..100) {
        use sdfmem::core::timing::{source_buffer_requirement, ExecutionTimes};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let graph = random_sdf_graph(&RandomGraphConfig::paper_style(8), &mut rng);
        let q = RepetitionsVector::compute(&graph).expect("consistent");
        let Some(source) = graph.actors().find(|&a| graph.in_edges(a).is_empty()) else {
            return Ok(());
        };
        let order = apgan(&graph, &q).expect("acyclic");
        let sas = dppo(&graph, &q, &order).expect("dppo").tree;
        let exec = ExecutionTimes::uniform(&graph, 3);
        let req = source_buffer_requirement(
            &graph,
            &q,
            &sas.to_looped_schedule(),
            &exec,
            source,
        )
        .expect("valid schedule");
        // At least one slot, at most the whole period's worth of samples.
        prop_assert!(req >= 1);
        prop_assert!(req <= q.get(source));
    }

    #[test]
    fn engine_invariants_on_random_graphs(seed in 0u64..400, size in 2usize..9) {
        use sdfmem::sched::LoopVariant;
        use sdfmem::AnalysisBuilder;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let graph = random_sdf_graph(&RandomGraphConfig::paper_style(size), &mut rng);
        let synthesis = AnalysisBuilder::new()
            .loop_opts(LoopVariant::ALL)
            .run_full(&graph)
            .expect("engine on consistent random graph");
        let an = &synthesis.analysis;
        // Sharing never loses to the per-edge baseline.
        prop_assert!(an.shared_total() <= an.nonshared_bufmem);
        // Clique estimates bracket correctly.
        prop_assert!(an.mco <= an.mcp);
        // Every candidate's allocation is conflict-free and consistent
        // with its own WIG.
        for c in &synthesis.candidates {
            validate_allocation(&c.wig, &c.allocation)
                .expect("every lattice candidate must allocate conflict-free");
            prop_assert_eq!(c.shared_total, c.allocation.total());
            prop_assert!(c.mco <= c.mcp);
            prop_assert!(c.shared_total <= c.wig.total_size());
        }
        // The recorded winner really is the lattice minimum.
        let min = synthesis.candidates.iter().map(|c| c.shared_total).min().unwrap();
        prop_assert_eq!(an.shared_total(), min);
    }

    #[test]
    fn wig_sweep_matches_brute_force_on_random_schedules(seed in 0u64..10_000, size in 3usize..20) {
        use sdfmem::lifetime::interval::buffer_lifetime;
        use sdfmem::lifetime::wig::Buffer;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let graph = random_sdf_graph(&RandomGraphConfig::paper_style(size), &mut rng);
        let q = RepetitionsVector::compute(&graph).expect("consistent");
        let order = apgan(&graph, &q).expect("acyclic");
        let sas = sdppo(&graph, &q, &order).expect("sdppo").tree;
        let tree = ScheduleTree::build(&graph, &q, &sas).expect("tree");
        let buffers: Vec<Buffer> = graph
            .edges()
            .map(|(id, _)| Buffer {
                edge: id,
                lifetime: buffer_lifetime(&graph, &q, &tree, id),
            })
            .collect();
        let sweep = IntersectionGraph::from_buffers(buffers.clone());
        let brute = IntersectionGraph::from_buffers_all_pairs(buffers);
        for i in 0..sweep.len() {
            prop_assert_eq!(sweep.neighbours(i), brute.neighbours(i));
        }
    }

    #[test]
    fn random_graphs_with_delays_still_allocate_safely(seed in 0u64..200) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let cfg = RandomGraphConfig {
            actors: 12,
            edges: 18,
            max_rate_multiplier: 2,
            delay_probability: 0.3,
        };
        let graph = random_sdf_graph(&cfg, &mut rng);
        let q = RepetitionsVector::compute(&graph).expect("consistent");
        let order = apgan(&graph, &q).expect("acyclic");
        let shared = sdppo(&graph, &q, &order).expect("sdppo");
        validate_schedule(&graph, &shared.tree.to_looped_schedule(), &q)
            .expect("schedule must respect delays");
        let tree = ScheduleTree::build(&graph, &q, &shared.tree).expect("tree");
        let wig = IntersectionGraph::build(&graph, &q, &tree);
        let alloc = allocate(&wig, AllocationOrder::DurationDescending, PlacementPolicy::FirstFit);
        validate_allocation(&wig, &alloc).expect("conflict-free");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The bound-guided windowed DP must be bit-identical to the dense
    /// exact scan — values, bufmem AND chosen split trees — on random
    /// rate-changing chains with sporadic delays, for both the Sum (DPPO)
    /// and Max (SDPPO) recurrences.
    #[test]
    fn windowed_dp_is_bit_identical_to_exact_on_random_chains(seed in 0u64..1_000_000) {
        use sdfmem::core::SdfGraph;
        use sdfmem::sched::{
            dppo_from_tables, sdppo_from_tables, ChainTables, DpMode, FactoringPolicy,
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut rates = || -> (u64, u64) {
            // Mostly-homogeneous chains with sparse converters, like real
            // multistage systems; bounded ratios keep q in u64 range.
            if rng.gen_bool(0.7) {
                (1, 1)
            } else {
                [(1, 2), (2, 1), (2, 3), (3, 2), (1, 3), (3, 1)]
                    [rng.gen_range(0..6)]
            }
        };
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(seed ^ 0xD1CE);
        let n = 2 + (seed % 27) as usize;
        let mut g = SdfGraph::new("chain");
        let ids: Vec<_> = (0..n).map(|i| g.add_actor(format!("a{i}"))).collect();
        for i in 0..n - 1 {
            let (prod, cons) = rates();
            let delay = if rng2.gen_bool(0.15) { cons * rng2.gen_range(1..=2u64) } else { 0 };
            g.add_edge_with_delay(ids[i], ids[i + 1], prod, cons, delay).expect("rates");
        }
        let q = RepetitionsVector::compute(&g).expect("chains are consistent");
        let order = g.chain_order().expect("chain");
        let ct = ChainTables::build(&g, &q, &order).expect("topological");

        let e = dppo_from_tables(&ct, &q, DpMode::Exact);
        let w = dppo_from_tables(&ct, &q, DpMode::Windowed);
        prop_assert_eq!(e.bufmem, w.bufmem);
        prop_assert_eq!(e.tree, w.tree);

        let es = sdppo_from_tables(&ct, &q, FactoringPolicy::Heuristic, DpMode::Exact);
        let ws = sdppo_from_tables(&ct, &q, FactoringPolicy::Heuristic, DpMode::Windowed);
        prop_assert_eq!(es.shared_cost, ws.shared_cost);
        prop_assert_eq!(es.tree, ws.tree);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lowering a random consistent graph to the shared-model
    /// [`ExecutablePlan`] and firing it through the interpreter oracle
    /// must come back clean: the coarse periodic-lifetime model that
    /// sized the pool is an upper bound on what the flattened schedule
    /// actually touches, so peak live never exceeds the pool and no two
    /// live buffers ever overlap.
    #[test]
    fn random_shared_plans_execute_clean(seed in 0u64..300) {
        use sdfmem::codegen::{execute_plan, ExecutablePlan};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let cfg = RandomGraphConfig {
            actors: 10,
            edges: 14,
            max_rate_multiplier: 3,
            delay_probability: 0.25,
        };
        let graph = random_sdf_graph(&cfg, &mut rng);
        let q = RepetitionsVector::compute(&graph).expect("consistent");
        let order = apgan(&graph, &q).expect("acyclic");
        let shared = sdppo(&graph, &q, &order).expect("sdppo");
        let tree = ScheduleTree::build(&graph, &q, &shared.tree).expect("tree");
        let wig = IntersectionGraph::build(&graph, &q, &tree);
        let alloc = allocate(&wig, AllocationOrder::DurationDescending, PlacementPolicy::FirstFit);
        let plan = ExecutablePlan::lower_shared(&graph, &q, &shared.tree, &wig, &alloc)
            .expect("lowering");
        let report = execute_plan(&plan).expect("oracle must be clean");
        prop_assert_eq!(report.firings, q.total_firings());
        prop_assert!(report.peak_live_words <= plan.pool_words);
    }

    /// The non-shared plan over the same random graphs is clean too, and
    /// its pool equals the DPPO bufmem sum exactly.
    #[test]
    fn random_nonshared_plans_execute_clean(seed in 0u64..300) {
        use sdfmem::codegen::{execute_plan, ExecutablePlan};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xBEEF);
        let cfg = RandomGraphConfig {
            actors: 10,
            edges: 14,
            max_rate_multiplier: 3,
            delay_probability: 0.25,
        };
        let graph = random_sdf_graph(&cfg, &mut rng);
        let q = RepetitionsVector::compute(&graph).expect("consistent");
        let order = apgan(&graph, &q).expect("acyclic");
        let r = dppo(&graph, &q, &order).expect("dppo");
        let plan = ExecutablePlan::lower_nonshared(&graph, &q, &r.tree.to_looped_schedule())
            .expect("lowering");
        prop_assert_eq!(plan.pool_words, r.bufmem);
        let report = execute_plan(&plan).expect("oracle must be clean");
        prop_assert_eq!(report.firings, q.total_firings());
        prop_assert!(report.peak_live_words <= plan.pool_words);
    }
}

/// The oracle is falsifiable: force two simultaneously-live buffers onto
/// the same words (a deliberately corrupt allocation) and the
/// interpreter must refuse the plan rather than report it clean.
#[test]
fn deliberately_overlapping_allocation_trips_the_oracle() {
    use sdfmem::alloc::Allocation;
    use sdfmem::codegen::{execute_plan, ExecutablePlan};
    use sdfmem::core::SdfGraph;

    let mut g = SdfGraph::new("overlap");
    let a = g.add_actor("A");
    let b = g.add_actor("B");
    let c = g.add_actor("C");
    g.add_edge(a, b, 20, 10).unwrap();
    g.add_edge(b, c, 20, 10).unwrap();
    let q = RepetitionsVector::compute(&g).unwrap();
    let order = apgan(&g, &q).unwrap();
    let shared = sdppo(&g, &q, &order).unwrap();
    let tree = ScheduleTree::build(&g, &q, &shared.tree).unwrap();
    let wig = IntersectionGraph::build(&g, &q, &tree);
    // Both buffers at offset 0: their live ranges collide mid-schedule.
    let bad = Allocation::from_parts(vec![0; wig.len()], 20);
    let plan = ExecutablePlan::lower_shared(&g, &q, &shared.tree, &wig, &bad).unwrap();
    let err = execute_plan(&plan).unwrap_err().to_string();
    assert!(
        err.contains("overlap") || err.contains("poisoned"),
        "wrong diagnostic: {err}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Multi-mode synthesis over random mode sets: the merged
    /// allocation respects every cross-mode conflict, persistent
    /// buffers keep one offset in every mode, and the transition
    /// oracle conserves tokens over a randomized switch sequence that
    /// re-enters every mode.
    #[test]
    fn random_mode_graphs_share_one_pool_cleanly(seed in 0u64..10_000) {
        use sdfmem::apps::modes::random_mode_graph;
        use sdfmem::codegen::execute_mode_plan;
        use sdfmem::modes::synthesize_modes;

        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x3A0DE5);
        let cfg = RandomGraphConfig {
            actors: 6,
            edges: 8,
            max_rate_multiplier: 3,
            delay_probability: 0.2,
        };
        let n_modes = 2 + (seed as usize % 3);
        let delay = 1 + seed % 3;
        let mg = random_mode_graph(&cfg, n_modes, delay, &mut rng);
        let synth = synthesize_modes(&mg).expect("synthesis");

        // One pool, conflict-free: the merged graph encodes
        // persistent-vs-all and same-mode conflicts, and cross-mode
        // locals are free to overlap.
        validate_allocation(&synth.merged, &synth.merged_allocation)
            .expect("merged allocation must respect every conflict");
        prop_assert!(synth.gate_ok,
            "merged {} exceeds gate {}", synth.merged_pool_words, synth.gate_bound);
        prop_assert!(synth.merged_pool_words <= synth.sum_pool_words);

        // Persistent offsets survive every transition: each mode's
        // binding of the persistent edge sits at the table's offset.
        for p in &synth.plan.persistent {
            prop_assert_eq!(p.bindings.len(), synth.plan.modes.len());
            for (m, &ib) in p.bindings.iter().enumerate() {
                let b = &synth.plan.modes[m].plan.bindings[ib];
                prop_assert_eq!(b.offset, p.offset,
                    "mode {} moved persistent {} -> {}", m, &p.src, &p.snk);
                prop_assert_eq!(b.delay, p.delay);
            }
        }

        // The default round-robin sequence already ran inside
        // synthesize_modes; a randomized sequence visiting every mode
        // (with repeats and immediate re-entries) must be clean too.
        let mut sequence: Vec<usize> = (0..n_modes).collect();
        for _ in 0..(4 + seed as usize % 5) {
            sequence.push(rng.gen_range(0..n_modes));
        }
        let report = execute_mode_plan(&synth.plan, &sequence)
            .expect("random switch sequence must conserve tokens");
        prop_assert_eq!(report.transitions, sequence.len() as u64 - 1);
        prop_assert!(report.peak_live_words <= synth.plan.pool_words);
    }
}
