//! End-to-end integration tests: the full Fig. 21 flow over every
//! practical benchmark, checked against ground-truth simulation.

use sdfmem::alloc::{allocate_both_orders, validate_allocation};
use sdfmem::apps::registry::table1_systems;
use sdfmem::core::simulate::validate_schedule;
use sdfmem::core::RepetitionsVector;
use sdfmem::lifetime::clique::{mcw_optimistic, mcw_pessimistic};
use sdfmem::lifetime::{tree::ScheduleTree, wig::IntersectionGraph};
use sdfmem::sched::{apgan::apgan, dppo::dppo, rpmc::rpmc, sdppo::sdppo};

#[test]
fn full_pipeline_on_every_practical_system() {
    for graph in table1_systems() {
        let q =
            RepetitionsVector::compute(&graph).unwrap_or_else(|e| panic!("{}: {e}", graph.name()));
        for (label, order) in [
            ("rpmc", rpmc(&graph, &q).unwrap()),
            ("apgan", apgan(&graph, &q).unwrap()),
        ] {
            let ctx = format!("{} / {label}", graph.name());

            // Non-shared schedule: DP estimate must equal simulation.
            let nonshared = dppo(&graph, &q, &order).unwrap_or_else(|e| panic!("{ctx}: {e}"));
            let sim = validate_schedule(&graph, &nonshared.tree.to_looped_schedule(), &q)
                .unwrap_or_else(|e| panic!("{ctx}: invalid dppo schedule: {e}"));
            assert_eq!(sim.bufmem(), nonshared.bufmem, "{ctx}: dppo estimate");

            // Shared schedule: valid, and its lifetimes allocate safely.
            let shared = sdppo(&graph, &q, &order).unwrap();
            validate_schedule(&graph, &shared.tree.to_looped_schedule(), &q)
                .unwrap_or_else(|e| panic!("{ctx}: invalid sdppo schedule: {e}"));
            let tree = ScheduleTree::build(&graph, &q, &shared.tree).unwrap();
            let wig = IntersectionGraph::build(&graph, &q, &tree);
            let (ffdur, ffstart) = allocate_both_orders(&wig);
            validate_allocation(&wig, &ffdur.allocation)
                .unwrap_or_else(|e| panic!("{ctx}: ffdur overlap: {e}"));
            validate_allocation(&wig, &ffstart.allocation)
                .unwrap_or_else(|e| panic!("{ctx}: ffstart overlap: {e}"));

            // Estimates are ordered; allocations sit below the non-shared
            // total of the same schedule.
            let (mco, mcp) = (mcw_optimistic(&wig), mcw_pessimistic(&wig));
            assert!(mco <= mcp, "{ctx}: mco {mco} > mcp {mcp}");
            let best = ffdur.allocation.total().min(ffstart.allocation.total());
            assert!(best <= wig.total_size(), "{ctx}: sharing must not lose");
            assert!(best >= 1, "{ctx}: empty allocation");
        }
    }
}

#[test]
fn wig_sizes_match_simulated_maxima_on_delayless_systems() {
    // Under the coarse model the per-edge buffer size equals the simulated
    // max_tokens of the same schedule for delayless forward edges.
    for name in ["qmf12_2d", "qmf23_2d", "satrec", "overAddFFT"] {
        let graph = sdfmem::apps::registry::by_name(name).unwrap();
        let q = RepetitionsVector::compute(&graph).unwrap();
        let order = apgan(&graph, &q).unwrap();
        let shared = sdppo(&graph, &q, &order).unwrap();
        let sim = validate_schedule(&graph, &shared.tree.to_looped_schedule(), &q).unwrap();
        let tree = ScheduleTree::build(&graph, &q, &shared.tree).unwrap();
        let wig = IntersectionGraph::build(&graph, &q, &tree);
        for (i, buf) in wig.buffers().iter().enumerate() {
            assert_eq!(
                buf.lifetime.size(),
                sim.max_tokens(buf.edge),
                "{name}: edge {} (buffer {i})",
                buf.edge
            );
        }
    }
}

#[test]
fn shared_buffers_beat_nonshared_on_every_practical_system() {
    for graph in table1_systems() {
        let row = sdf_bench_best(&graph);
        assert!(
            row.1 <= row.0,
            "{}: shared {} > non-shared {}",
            graph.name(),
            row.1,
            row.0
        );
    }
}

/// (best non-shared, best shared) across both heuristics.
fn sdf_bench_best(graph: &sdfmem::core::SdfGraph) -> (u64, u64) {
    let q = RepetitionsVector::compute(graph).unwrap();
    let mut ns = u64::MAX;
    let mut sh = u64::MAX;
    for order in [rpmc(graph, &q).unwrap(), apgan(graph, &q).unwrap()] {
        ns = ns.min(dppo(graph, &q, &order).unwrap().bufmem);
        let shared = sdppo(graph, &q, &order).unwrap();
        let tree = ScheduleTree::build(graph, &q, &shared.tree).unwrap();
        let wig = IntersectionGraph::build(graph, &q, &tree);
        let (d, s) = allocate_both_orders(&wig);
        sh = sh.min(d.allocation.total()).min(s.allocation.total());
    }
    (ns, sh)
}

#[test]
fn pipeline_scales_to_hundreds_of_actors() {
    // The paper runs 188-actor filterbanks; make sure nothing in the
    // pipeline is accidentally exponential well past that.
    use rand::SeedableRng;
    use sdfmem::apps::random::{random_sdf_graph, RandomGraphConfig};
    let mut rng = rand::rngs::StdRng::seed_from_u64(31337);
    let graph = random_sdf_graph(&RandomGraphConfig::paper_style(300), &mut rng);
    let q = RepetitionsVector::compute(&graph).unwrap();
    let order = rpmc(&graph, &q).unwrap();
    let shared = sdppo(&graph, &q, &order).unwrap();
    let tree = ScheduleTree::build(&graph, &q, &shared.tree).unwrap();
    let wig = IntersectionGraph::build(&graph, &q, &tree);
    let (ffdur, _) = allocate_both_orders(&wig);
    validate_allocation(&wig, &ffdur.allocation).unwrap();
    assert!(ffdur.allocation.total() >= 1);
    assert!(ffdur.allocation.total() <= wig.total_size());
}

#[test]
fn homogeneous_grid_reaches_m_plus_one() {
    use sdfmem::apps::homogeneous::{homogeneous_grid, shared_optimum};
    for (m, n) in [(2u64, 3u64), (3, 4), (5, 6)] {
        let graph = homogeneous_grid(m as usize, n as usize);
        let (_, shared) = sdf_bench_best(&graph);
        assert_eq!(
            shared,
            shared_optimum(m),
            "grid {m}x{n}: expected M+1 = {}",
            shared_optimum(m)
        );
    }
}
