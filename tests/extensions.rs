//! Integration tests for the extension modules: the fine-grained model,
//! buffer merging, cyclic graphs, graph I/O and the exact MCW.

use rand::SeedableRng;

use sdfmem::alloc::{allocate, validate_allocation, AllocationOrder, PlacementPolicy};
use sdfmem::apps::random::{random_sdf_graph, RandomGraphConfig};
use sdfmem::apps::registry::{by_name, table1_systems};
use sdfmem::core::simulate::validate_schedule;
use sdfmem::core::RepetitionsVector;
use sdfmem::lifetime::clique::{mcw_exact, mcw_optimistic, mcw_pessimistic};
use sdfmem::lifetime::fine::FineIntersectionGraph;
use sdfmem::lifetime::merge::{CbpSpec, MergedGraph};
use sdfmem::lifetime::{tree::ScheduleTree, wig::IntersectionGraph};
use sdfmem::sched::cycles::acyclic_skeleton;
use sdfmem::sched::{apgan::apgan, sdppo::sdppo};

#[test]
fn fine_model_never_worse_than_coarse_on_random_graphs() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    for size in [5usize, 10, 20] {
        for _ in 0..10 {
            let g = random_sdf_graph(&RandomGraphConfig::paper_style(size), &mut rng);
            let q = RepetitionsVector::compute(&g).unwrap();
            let order = apgan(&g, &q).unwrap();
            let sas = sdppo(&g, &q, &order).unwrap().tree;
            let tree = ScheduleTree::build(&g, &q, &sas).unwrap();
            let coarse = IntersectionGraph::build(&g, &q, &tree);
            let fine = FineIntersectionGraph::build(&g, &q, &sas);
            let ac = allocate(
                &coarse,
                AllocationOrder::DurationDescending,
                PlacementPolicy::FirstFit,
            );
            let af = allocate(
                &fine,
                AllocationOrder::DurationDescending,
                PlacementPolicy::FirstFit,
            );
            validate_allocation(&fine, &af).unwrap();
            assert!(
                af.total() <= ac.total(),
                "{}: fine {} > coarse {}",
                g.name(),
                af.total(),
                ac.total()
            );
        }
    }
}

#[test]
fn fine_model_strictly_helps_on_feedback_ring() {
    // A 4-ring with a unit-delay feedback edge: the feedback buffer drains
    // at the first firing and refills at the last, so the fine model sees
    // the gap [1, 3) while the coarse model pins it for the whole period.
    use sdfmem::core::{SasNode, SasTree, SdfGraph};
    let mut g = SdfGraph::new("ring4");
    let a = g.add_actor("A");
    let b = g.add_actor("B");
    let c = g.add_actor("C");
    let d = g.add_actor("D");
    g.add_edge(a, b, 1, 1).unwrap();
    g.add_edge(b, c, 1, 1).unwrap();
    g.add_edge(c, d, 1, 1).unwrap();
    g.add_edge_with_delay(d, a, 1, 1, 1).unwrap();
    let q = RepetitionsVector::compute(&g).unwrap();
    let sas = SasTree::new(SasNode::branch(
        1,
        SasNode::branch(1, SasNode::leaf(a, 1), SasNode::leaf(b, 1)),
        SasNode::branch(1, SasNode::leaf(c, 1), SasNode::leaf(d, 1)),
    ));
    let tree = ScheduleTree::build(&g, &q, &sas).unwrap();
    let coarse = IntersectionGraph::build(&g, &q, &tree);
    let fine = FineIntersectionGraph::build(&g, &q, &sas);
    // Feedback buffer (edge 3): live [0,1) and [3,4) only.
    assert_eq!(fine.buffers()[3].lifetime.intervals(), &[(0, 1), (3, 4)]);
    let ac = allocate(
        &coarse,
        AllocationOrder::DurationDescending,
        PlacementPolicy::FirstFit,
    );
    let af = allocate(
        &fine,
        AllocationOrder::DurationDescending,
        PlacementPolicy::FirstFit,
    );
    validate_allocation(&fine, &af).unwrap();
    assert!(
        af.total() < ac.total(),
        "fine {} should beat coarse {} here",
        af.total(),
        ac.total()
    );
}

#[test]
fn merging_never_hurts_on_practical_systems() {
    for graph in table1_systems() {
        let q = RepetitionsVector::compute(&graph).unwrap();
        let order = apgan(&graph, &q).unwrap();
        let sas = sdppo(&graph, &q, &order).unwrap().tree;
        let tree = ScheduleTree::build(&graph, &q, &sas).unwrap();
        let wig = IntersectionGraph::build(&graph, &q, &tree);
        let merged = MergedGraph::build(&graph, &wig, &CbpSpec::all_in_place(&graph));
        let plain = allocate(
            &wig,
            AllocationOrder::DurationDescending,
            PlacementPolicy::FirstFit,
        );
        let packed = allocate(
            &merged,
            AllocationOrder::DurationDescending,
            PlacementPolicy::FirstFit,
        );
        validate_allocation(&merged, &packed).unwrap();
        assert!(
            packed.total() <= plain.total(),
            "{}: merged {} > plain {}",
            graph.name(),
            packed.total(),
            plain.total()
        );
    }
}

#[test]
fn cyclic_graph_scheduled_through_skeleton() {
    // satrec with an added control feedback loop carrying ample delay.
    let mut g = by_name("satrec").unwrap();
    let v = g.actor_by_name("V").unwrap();
    let a = g.actor_by_name("A").unwrap();
    // q(A) = 1056, cons 1: delay 1056 covers one period.
    g.add_edge_with_delay(v, a, 1056, 1, 1056).unwrap();
    let q = RepetitionsVector::compute(&g).unwrap();
    assert!(!g.is_acyclic());
    let (skeleton, feedback) = acyclic_skeleton(&g, &q).unwrap();
    assert_eq!(feedback.len(), 1);
    let order = apgan(&skeleton, &q).unwrap();
    let sas = sdppo(&skeleton, &q, &order).unwrap().tree;
    // Valid on the FULL cyclic graph.
    validate_schedule(&g, &sas.to_looped_schedule(), &q).unwrap();
    // Lifetime analysis and allocation run on the full graph too: the
    // feedback buffer is solid whole-period.
    let tree = ScheduleTree::build(&g, &q, &sas).unwrap();
    let wig = IntersectionGraph::build(&g, &q, &tree);
    let alloc = allocate(
        &wig,
        AllocationOrder::DurationDescending,
        PlacementPolicy::FirstFit,
    );
    validate_allocation(&wig, &alloc).unwrap();
    // The feedback pool adds at least its delay to the footprint.
    assert!(alloc.total() >= 1056);
}

#[test]
fn exact_mcw_brackets_estimates_on_benchmarks() {
    for name in ["qmf12_2d", "qmf23_2d", "16qamModem", "overAddFFT", "cd2dat"] {
        let graph = match name {
            "cd2dat" => sdfmem::apps::dsp::cd_to_dat(),
            _ => by_name(name).unwrap(),
        };
        let q = RepetitionsVector::compute(&graph).unwrap();
        let order = apgan(&graph, &q).unwrap();
        let sas = sdppo(&graph, &q, &order).unwrap().tree;
        let tree = ScheduleTree::build(&graph, &q, &sas).unwrap();
        let wig = IntersectionGraph::build(&graph, &q, &tree);
        let Some(exact) = mcw_exact(&wig, 1 << 20) else {
            continue;
        };
        assert!(mcw_optimistic(&wig) <= exact, "{name}: mco above exact");
        assert!(exact <= mcw_pessimistic(&wig), "{name}: exact above mcp");
    }
}

#[test]
fn graph_io_round_trips_every_benchmark() {
    for graph in table1_systems() {
        let text = sdfmem::core::io::to_text(&graph);
        let back = sdfmem::core::io::parse_graph(&text).unwrap();
        assert_eq!(back.name(), graph.name());
        assert_eq!(back.actor_count(), graph.actor_count());
        assert_eq!(back.edge_count(), graph.edge_count());
        let q1 = RepetitionsVector::compute(&graph).unwrap();
        let q2 = RepetitionsVector::compute(&back).unwrap();
        assert_eq!(q1.as_slice(), q2.as_slice(), "{}", graph.name());
    }
}

#[test]
fn generated_c_has_balanced_braces_for_every_benchmark() {
    use sdfmem::codegen::generate_shared_c;
    for graph in table1_systems().into_iter().take(6) {
        let q = RepetitionsVector::compute(&graph).unwrap();
        let order = apgan(&graph, &q).unwrap();
        let sas = sdppo(&graph, &q, &order).unwrap().tree;
        let tree = ScheduleTree::build(&graph, &q, &sas).unwrap();
        let wig = IntersectionGraph::build(&graph, &q, &tree);
        let alloc = allocate(
            &wig,
            AllocationOrder::DurationDescending,
            PlacementPolicy::FirstFit,
        );
        let code = generate_shared_c(&graph, &q, &sas, &wig, &alloc).unwrap();
        let opens = code.matches('{').count();
        let closes = code.matches('}').count();
        assert_eq!(opens, closes, "{}", graph.name());
        assert!(code.contains("run_schedule"));
    }
}

#[test]
fn generated_c_compiles_if_cc_available() {
    // Syntax-check the generated C with a real compiler when one exists;
    // silently skip otherwise (CI containers may lack cc).
    let cc = ["cc", "gcc", "clang"].into_iter().find(|c| {
        std::process::Command::new(c)
            .arg("--version")
            .output()
            .is_ok()
    });
    let Some(cc) = cc else { return };

    let graph = by_name("satrec").unwrap();
    let q = RepetitionsVector::compute(&graph).unwrap();
    let order = apgan(&graph, &q).unwrap();
    let sas = sdppo(&graph, &q, &order).unwrap().tree;
    let tree = ScheduleTree::build(&graph, &q, &sas).unwrap();
    let wig = IntersectionGraph::build(&graph, &q, &tree);
    let alloc = allocate(
        &wig,
        AllocationOrder::DurationDescending,
        PlacementPolicy::FirstFit,
    );
    let code = sdfmem::codegen::generate_shared_c(&graph, &q, &sas, &wig, &alloc).unwrap();

    let dir = std::env::temp_dir().join("sdfmem-cc-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("satrec-{}.c", std::process::id()));
    std::fs::write(&path, &code).unwrap();
    let out = std::process::Command::new(cc)
        .args(["-fsyntax-only", "-Wall"])
        .arg(&path)
        .output()
        .expect("compiler runs");
    assert!(
        out.status.success(),
        "{cc} rejected generated C:\n{}\n{}",
        String::from_utf8_lossy(&out.stderr),
        code
    );
}
