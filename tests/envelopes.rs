//! Envelope sweep: every machine-readable document the workspace emits
//! opens with the same two members, in the same order —
//! `{"kind":"<kind>","schema_version":<V>,` — so consumers can dispatch
//! on `kind` and version-check before reading anything else.

use sdf_service::{
    execute_request, MemoryModel, OrderMethod, ResponsePayload, ServiceRequest, ServiceResponse,
};
use sdfmem::sentinel::{capture_profile, CaptureOptions};
use sdfmem::trace::json::document_header;
use sdfmem::trace::SCHEMA_VERSION;

const FIG2: &str = "graph fig2\nedge A B 20 10\nedge B C 20 10\n";

fn header(kind: &str) -> String {
    format!("{{\"kind\":\"{kind}\",\"schema_version\":{SCHEMA_VERSION},")
}

fn payload_of(request: &ServiceRequest) -> String {
    match execute_request(request) {
        ServiceResponse::Ok(payload) => payload.to_json(),
        other => panic!("{} failed with status {}", request.op(), other.status()),
    }
}

#[test]
fn every_document_kind_opens_with_the_unified_envelope() {
    let graph = sdfmem::core::io::parse_graph(FIG2).expect("graph");
    let options = CaptureOptions {
        repeats: 1,
        ..CaptureOptions::default()
    };
    let profile_json = capture_profile(&graph, &options)
        .expect("profile")
        .to_json();

    let mut docs: Vec<(&str, String)> = vec![
        (
            "engine_report",
            payload_of(&ServiceRequest::Analyze {
                graph: FIG2.to_string(),
                serial: false,
                full: false,
            }),
        ),
        (
            "executable_plan",
            payload_of(&ServiceRequest::Plan {
                graph: FIG2.to_string(),
                method: OrderMethod::Apgan,
                model: MemoryModel::Shared,
            }),
        ),
        (
            "simulation_report",
            payload_of(&ServiceRequest::Simulate {
                graph: FIG2.to_string(),
                method: OrderMethod::Apgan,
                model: MemoryModel::Shared,
            }),
        ),
        (
            "allocation_explain",
            payload_of(&ServiceRequest::Explain {
                graph: FIG2.to_string(),
            }),
        ),
        (
            "baseline_profile",
            payload_of(&ServiceRequest::Baseline {
                graph: FIG2.to_string(),
                repeats: 1,
                full: false,
                perturb: None,
            }),
        ),
        (
            "regression_report",
            payload_of(&ServiceRequest::Compare {
                baseline: profile_json.clone(),
                candidate: profile_json.clone(),
                gate: false,
                allow: Vec::new(),
            }),
        ),
        (
            "service_stats",
            ResponsePayload::Stats {
                counters: vec![("service.requests".into(), 1)],
                gauges: Vec::new(),
                histograms: Vec::new(),
            }
            .to_json(),
        ),
        (
            "service_metrics",
            ResponsePayload::Metrics {
                exposition: "# TYPE service_requests counter\nservice_requests 1\n".into(),
            }
            .to_json(),
        ),
        (
            "service_events",
            ResponsePayload::Events {
                capacity: 8,
                dropped: 0,
                records: Vec::new(),
            }
            .to_json(),
        ),
        ("service_request", ServiceRequest::Stats.to_json("sweep")),
    ];
    // The response envelope wraps a payload; its own header must match
    // the same shape.
    let response = execute_request(&ServiceRequest::Plan {
        graph: FIG2.to_string(),
        method: OrderMethod::Apgan,
        model: MemoryModel::Shared,
    });
    docs.push(("service_response", response.to_json("sweep", false)));

    for (kind, doc) in &docs {
        let expected = header(kind);
        assert!(
            doc.starts_with(&expected),
            "{kind} document does not open with {expected}: {}",
            &doc[..doc.len().min(120)]
        );
    }
}

#[test]
fn bench_documents_share_the_header_builder() {
    // The bench binaries build their documents through the same
    // `document_header` helper, so checking the helper's output pins
    // their envelopes too.
    for kind in ["engine_sweep", "bench_trajectory"] {
        assert_eq!(document_header(kind), header(kind));
    }
}
