//! Plan-IR oracle sweep: every registry graph plus the n=128 scale
//! corpus is lowered to an [`ExecutablePlan`] and executed under the
//! deterministic interpreter, which re-proves the four safety
//! invariants end to end — token conservation, producer-stamped reads,
//! peak live ≤ pool, and disjointness of simultaneously-live buffers.

use sdfmem::apps::extended::extended_systems;
use sdfmem::apps::homogeneous::homogeneous_grid;
use sdfmem::apps::registry::table1_systems;
use sdfmem::apps::scale::{scale_chain, scale_dag, scale_tree};
use sdfmem::codegen::{execute_plan, ExecutablePlan, TOKEN_BYTES};
use sdfmem::core::{RepetitionsVector, SdfGraph};
use sdfmem::pipeline::Analysis;
use sdfmem::sched::{apgan, dppo};

fn all_app_graphs() -> Vec<SdfGraph> {
    let mut graphs = table1_systems();
    graphs.extend(extended_systems());
    graphs.push(homogeneous_grid(4, 4));
    graphs.push(homogeneous_grid(7, 5));
    graphs
}

fn scale_graphs() -> Vec<SdfGraph> {
    vec![scale_chain(128), scale_tree(128), scale_dag(128, 7)]
}

/// Shared-model oracle: `Analysis::run` → `plan` → `execute_plan` must
/// come back clean on every graph, with the interpreter's own peak
/// never exceeding the allocator's pool.
#[test]
fn shared_plans_execute_clean_on_every_graph() {
    for graph in all_app_graphs().into_iter().chain(scale_graphs()) {
        let analysis = Analysis::run(&graph).unwrap_or_else(|e| {
            panic!("analysis failed on {}: {e}", graph.name());
        });
        let plan = analysis.plan(&graph).unwrap_or_else(|e| {
            panic!("lowering failed on {}: {e}", graph.name());
        });
        assert_eq!(plan.pool_words, analysis.shared_total(), "{}", graph.name());
        let report = execute_plan(&plan).unwrap_or_else(|e| {
            panic!("oracle violation on {}: {e}", graph.name());
        });
        let q = RepetitionsVector::compute(&graph).unwrap();
        assert_eq!(
            report.firings,
            q.total_firings(),
            "{}: plan fired a different period than q",
            graph.name()
        );
        assert!(
            report.peak_live_words <= plan.pool_words,
            "{}: peak {} exceeds pool {}",
            graph.name(),
            report.peak_live_words,
            plan.pool_words
        );
        assert_eq!(report.peak_live_bytes, report.peak_live_words * TOKEN_BYTES);
        // Token conservation: the interpreter already asserts this, but
        // check the reported final counts against the graph's delays too.
        for (i, (_, edge)) in graph.edges().enumerate() {
            assert_eq!(
                report.final_tokens[i],
                edge.delay,
                "{}: edge {i} did not return to its delay count",
                graph.name()
            );
        }
    }
}

/// Non-shared plans (dedicated per-edge buffers laid out back to back)
/// must execute clean too, and their pool equals the `bufmem` sum.
#[test]
fn nonshared_plans_execute_clean_on_every_graph() {
    for graph in all_app_graphs() {
        let q = RepetitionsVector::compute(&graph).unwrap();
        let order = apgan(&graph, &q).unwrap();
        let r = dppo(&graph, &q, &order).unwrap();
        let plan =
            ExecutablePlan::lower_nonshared(&graph, &q, &r.tree.to_looped_schedule()).unwrap();
        assert_eq!(plan.pool_words, r.bufmem, "{}", graph.name());
        let report = execute_plan(&plan).unwrap_or_else(|e| {
            panic!("oracle violation on {}: {e}", graph.name());
        });
        assert_eq!(report.firings, q.total_firings(), "{}", graph.name());
        assert!(
            report.peak_live_words <= plan.pool_words,
            "{}",
            graph.name()
        );
    }
}

/// The shared pool is never larger than the non-shared layout on the
/// same schedule, and on the registry graphs it is strictly smaller
/// somewhere — the paper's headline, re-proven at the IR level.
#[test]
fn shared_pools_never_exceed_nonshared_on_registry() {
    let mut strictly_smaller = 0usize;
    for graph in all_app_graphs() {
        let analysis = Analysis::run(&graph).unwrap();
        let shared = analysis.plan(&graph).unwrap();
        assert!(
            shared.pool_words <= analysis.nonshared_bufmem,
            "{}: shared pool {} > non-shared {}",
            graph.name(),
            shared.pool_words,
            analysis.nonshared_bufmem
        );
        if shared.pool_words < analysis.nonshared_bufmem {
            strictly_smaller += 1;
        }
    }
    assert!(strictly_smaller > 0, "sharing never won on any graph");
}

/// The plan JSON document for every registry graph parses back with the
/// workspace's own JSON reader and declares the current schema version.
#[test]
fn every_registry_plan_serialises_and_parses() {
    for graph in all_app_graphs() {
        let analysis = Analysis::run(&graph).unwrap();
        let plan = analysis.plan(&graph).unwrap();
        let doc = sdfmem::trace::json::parse(&plan.to_json())
            .unwrap_or_else(|e| panic!("{}: plan JSON invalid: {e}", graph.name()));
        assert_eq!(
            doc.get("kind").and_then(|k| k.as_str()),
            Some("executable_plan"),
            "{}",
            graph.name()
        );
        assert_eq!(
            doc.get("op_count").and_then(|n| n.as_num()),
            Some(plan.ops.len() as f64),
            "{}",
            graph.name()
        );
    }
}
