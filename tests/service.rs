//! Integration tests for the `sdfmemd` synthesis service.
//!
//! These exercise the daemon end to end over real TCP connections:
//! the content-addressed cache under concurrent clients, the
//! byte-identity contract between cached and fresh responses,
//! queue backpressure, malformed-request handling, and the stats
//! and shutdown control operations.

use std::thread;

use sdf_service::{
    execute_request, Client, MemoryModel, OrderMethod, Server, ServerConfig, ServiceRequest,
    ServiceResponse,
};
use sdf_trace::json::{self, Json};

const FIG2: &str = "graph fig2\nedge A B 20 10\nedge B C 20 10\n";

fn start(config: ServerConfig) -> (Server, String) {
    let server = Server::bind("127.0.0.1:0", config).expect("bind ephemeral port");
    let addr = server.local_addr().to_string();
    (server, addr)
}

fn counter(server: &Server, name: &str) -> u64 {
    server
        .recorder()
        .counters()
        .into_iter()
        .find(|(n, _)| n == name)
        .map_or(0, |(_, v)| v)
}

fn gauge(server: &Server, name: &str) -> u64 {
    server
        .recorder()
        .gauges()
        .into_iter()
        .find(|(n, _)| n == name)
        .map_or(0, |(_, v)| v)
}

fn analyze(graph: &str) -> ServiceRequest {
    ServiceRequest::Analyze {
        graph: graph.to_string(),
        serial: false,
        full: false,
    }
}

fn plan(graph: &str) -> ServiceRequest {
    ServiceRequest::Plan {
        graph: graph.to_string(),
        method: OrderMethod::Apgan,
        model: MemoryModel::Shared,
    }
}

#[test]
fn concurrent_clients_hit_the_cache_once_per_distinct_key() {
    // M threads, each with its own distinct graph, submit N times
    // sequentially. Every thread's first submission is the miss that
    // populates its slot; the remaining N-1 are hits, regardless of
    // how the threads interleave (per-thread submissions are
    // sequential, so each key is populated before its repeats).
    const M: usize = 4;
    const N: usize = 5;
    let (server, addr) = start(ServerConfig::default());
    let handles: Vec<_> = (0..M)
        .map(|i| {
            let addr = addr.clone();
            thread::spawn(move || {
                let graph = format!("graph g{i}\nedge A B {} {}\n", 6 * (i + 1), 3 * (i + 1));
                let mut client = Client::connect(&addr).expect("connect");
                let mut payloads = Vec::new();
                for rep in 0..N {
                    let id = format!("t{i}-r{rep}");
                    let response = client.call(&id, &analyze(&graph)).expect("call");
                    assert!(response.is_ok(), "{response:?}");
                    assert_eq!(response.request_id, id);
                    assert_eq!(response.cached, rep > 0, "rep {rep} of thread {i}");
                    payloads.push(response.payload.expect("payload"));
                }
                payloads
            })
        })
        .collect();
    for handle in handles {
        let payloads = handle.join().expect("thread");
        // Byte identity: every cached payload equals the bytes the
        // first (miss) submission produced.
        for repeat in &payloads[1..] {
            assert_eq!(repeat, &payloads[0]);
        }
    }
    assert_eq!(counter(&server, "service.cache.hits"), (M * (N - 1)) as u64);
    assert_eq!(counter(&server, "service.cache.misses"), M as u64);
    assert_eq!(counter(&server, "service.jobs.complete"), M as u64);
    server.shutdown();
    server.wait();
}

#[test]
fn cached_plan_payload_matches_direct_execution_bytes() {
    // Plan documents embed no wall-clock timings, so the wire payload
    // must be byte-identical to an in-process run of the same request
    // — whether served fresh or from cache.
    let request = plan(FIG2);
    let direct = match execute_request(&request) {
        ServiceResponse::Ok(payload) => payload.to_json(),
        other => panic!("direct execution failed with status {}", other.status()),
    };
    let (server, addr) = start(ServerConfig::default());
    let mut client = Client::connect(&addr).expect("connect");
    let fresh = client.call("p1", &request).expect("call");
    let cached = client.call("p2", &request).expect("call");
    assert!(!fresh.cached && cached.cached);
    assert_eq!(fresh.payload.as_deref(), Some(direct.as_str()));
    assert_eq!(cached.payload, fresh.payload);
    server.shutdown();
    server.wait();
}

#[test]
fn serial_analyze_is_served_from_the_parallel_slot() {
    // The engine guarantees serial and parallel analysis pick the same
    // winner, so the daemon normalises serial requests onto the
    // parallel cache slot: the second submission is a hit even though
    // its options differ.
    let (server, addr) = start(ServerConfig::default());
    let mut client = Client::connect(&addr).expect("connect");
    let parallel = client.call("a", &analyze(FIG2)).expect("call");
    let serial = client
        .call(
            "b",
            &ServiceRequest::Analyze {
                graph: FIG2.to_string(),
                serial: true,
                full: false,
            },
        )
        .expect("call");
    assert!(!parallel.cached);
    assert!(serial.cached, "{serial:?}");
    assert_eq!(serial.payload, parallel.payload);
    server.shutdown();
    server.wait();
}

#[test]
fn full_queue_rejects_cleanly_and_shutdown_drains_parked_jobs() {
    // No workers, a queue of two: the first two submissions park in
    // the queue, the third bounces with a `rejected` envelope, and
    // shutdown answers the parked jobs with `unavailable` instead of
    // hanging their clients.
    let (server, addr) = start(ServerConfig {
        workers: 0,
        cache_capacity: 8,
        queue_capacity: 2,
        ..ServerConfig::default()
    });
    let parked: Vec<_> = (0..2)
        .map(|i| {
            let addr = addr.clone();
            thread::spawn(move || {
                let graph = format!("graph park{i}\nedge A B 4 2\n");
                let mut client = Client::connect(&addr).expect("connect");
                client
                    .call(&format!("park{i}"), &analyze(&graph))
                    .expect("call")
            })
        })
        .collect();
    // Wait until both jobs are actually enqueued before probing.
    while counter(&server, "service.jobs.enqueued") < 2 {
        thread::yield_now();
    }
    let mut prober = Client::connect(&addr).expect("connect");
    let bounced = prober
        .call("probe", &analyze("graph probe\nedge A B 2 1\n"))
        .expect("call");
    assert_eq!(bounced.status, "rejected", "{bounced:?}");
    let error = bounced.error.expect("error object");
    assert_eq!(error.code, "unavailable");
    assert_eq!(counter(&server, "service.jobs.rejected"), 1);
    server.shutdown();
    for handle in parked {
        let response = handle.join().expect("thread");
        assert_eq!(response.status, "error", "{response:?}");
        assert_eq!(response.error.expect("error").code, "unavailable");
    }
    server.wait();
}

#[test]
fn malformed_lines_get_error_envelopes_not_disconnects() {
    let (server, addr) = start(ServerConfig::default());
    let mut client = Client::connect(&addr).expect("connect");
    // The unknown-op line must carry the *current* schema version, or
    // the version check would reject it before the op dispatch runs.
    let unknown_op = format!(
        "{{\"kind\":\"service_request\",\"schema_version\":{},\"op\":\"conjure\"}}",
        sdf_trace::SCHEMA_VERSION
    );
    for bad in [
        "this is not json",
        "{\"kind\":\"engine_report\",\"schema_version\":7}",
        "{\"kind\":\"service_request\",\"schema_version\":1,\"op\":\"stats\"}",
        unknown_op.as_str(),
    ] {
        let response = client
            .send_raw(bad)
            .expect("error envelope, not a disconnect");
        assert_eq!(response.status, "error", "{bad}: {response:?}");
        assert_eq!(response.error.expect("error").code, "bad_request", "{bad}");
    }
    // A graph that fails to parse is attributed to the graph input.
    let response = client
        .call("bad-graph", &analyze("graph broken\nedge A\n"))
        .expect("call");
    assert_eq!(response.status, "error");
    let error = response.error.expect("error");
    assert_eq!(error.code, "parse_error");
    assert_eq!(error.input.as_deref(), Some("graph"));
    assert_eq!(counter(&server, "service.requests.malformed"), 4);
    // The connection survived all of it.
    let ok = client.call("after", &analyze(FIG2)).expect("call");
    assert!(ok.is_ok());
    server.shutdown();
    server.wait();
}

#[test]
fn stats_reports_live_counters_and_shutdown_is_clean() {
    let (server, addr) = start(ServerConfig::default());
    let mut client = Client::connect(&addr).expect("connect");
    for id in ["s1", "s2"] {
        let response = client.call(id, &analyze(FIG2)).expect("call");
        assert!(response.is_ok());
    }
    let stats = client.call("stats", &ServiceRequest::Stats).expect("call");
    assert!(stats.is_ok());
    let doc = json::parse(stats.payload.as_deref().expect("payload")).expect("stats JSON");
    assert_eq!(
        doc.get("kind").and_then(Json::as_str),
        Some("service_stats")
    );
    let counters = doc.get("counters").expect("counters object");
    let get = |name: &str| counters.get(name).and_then(Json::as_num);
    assert_eq!(get("service.cache.hits"), Some(1.0));
    assert_eq!(get("service.cache.misses"), Some(1.0));
    assert_eq!(get("service.requests"), Some(3.0));
    // Histogram summaries ride along: both analyze submissions (the
    // miss and the hit) recorded a latency sample, and the bucket
    // counts sum to the histogram's count.
    let latency = doc
        .get("histograms")
        .and_then(|h| h.get("service.op.analyze.latency"))
        .expect("analyze latency histogram");
    assert_eq!(latency.get("count").and_then(Json::as_num), Some(2.0));
    let buckets = latency
        .get("buckets")
        .and_then(Json::as_array)
        .expect("bucket triples");
    let total: f64 = buckets
        .iter()
        .filter_map(|b| b.as_array()?.get(2)?.as_num())
        .sum();
    assert_eq!(total, 2.0);
    // Shutdown also answers with a final stats snapshot.
    let bye = client.call("bye", &ServiceRequest::Shutdown).expect("call");
    assert!(bye.is_ok(), "{bye:?}");
    server.wait();
    assert!(Client::connect(&addr).is_err(), "daemon still listening");
}

#[test]
fn lru_eviction_keeps_the_cache_bounded() {
    let (server, addr) = start(ServerConfig {
        workers: 1,
        cache_capacity: 2,
        queue_capacity: 8,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(&addr).expect("connect");
    let graphs: Vec<String> = (0..3)
        .map(|i| format!("graph e{i}\nedge A B {} {}\n", 4 * (i + 1), 2 * (i + 1)))
        .collect();
    for (i, graph) in graphs.iter().enumerate() {
        let response = client
            .call(&format!("fill{i}"), &analyze(graph))
            .expect("call");
        assert!(!response.cached);
    }
    // Graph 0 was evicted to admit graph 2; graph 2 is still resident.
    assert_eq!(counter(&server, "service.cache.evictions"), 1);
    let revisit = client.call("revisit", &analyze(&graphs[2])).expect("call");
    assert!(revisit.cached);
    let evicted = client.call("evicted", &analyze(&graphs[0])).expect("call");
    assert!(!evicted.cached);
    server.shutdown();
    server.wait();
}

#[test]
fn cached_payloads_stay_byte_identical_while_telemetry_differs() {
    // The tentpole contract: telemetry is composed per request
    // *outside* the cached bytes, so a hit reuses the payload verbatim
    // yet tells its own story in the envelope.
    let (server, addr) = start(ServerConfig::default());
    let mut client = Client::connect(&addr).expect("connect");
    let fresh = client.call("f", &analyze(FIG2)).expect("call");
    let cached = client.call("c", &analyze(FIG2)).expect("call");
    assert!(!fresh.cached && cached.cached);
    assert_eq!(fresh.payload, cached.payload, "payload bytes must agree");
    let fresh_t = fresh.telemetry.expect("fresh telemetry");
    let cached_t = cached.telemetry.expect("cached telemetry");
    assert_ne!(fresh_t, cached_t, "telemetry must be per-request");
    // The miss ran the pipeline: its stage tree starts at `parse` and
    // its counters moved. The hit only touched the cache.
    let fresh_doc = json::parse(&fresh_t).expect("telemetry JSON");
    assert_eq!(fresh_doc.get("cache").and_then(Json::as_str), Some("miss"));
    let stages = fresh_doc
        .get("stages")
        .and_then(Json::as_array)
        .expect("stages");
    let names: Vec<&str> = stages
        .iter()
        .filter_map(|s| s.get("name").and_then(Json::as_str))
        .collect();
    assert!(names.contains(&"parse"), "{names:?}");
    assert!(names.contains(&"engine"), "{names:?}");
    let cached_doc = json::parse(&cached_t).expect("telemetry JSON");
    assert_eq!(cached_doc.get("cache").and_then(Json::as_str), Some("hit"));
    let hit_stages = cached_doc
        .get("stages")
        .and_then(Json::as_array)
        .expect("stages");
    assert_eq!(
        hit_stages
            .first()
            .and_then(|s| s.get("name").and_then(Json::as_str)),
        Some("cache.lookup")
    );
    // The same contract holds for `explain`: the allocation_explain
    // payload repeats byte-for-byte from the cache while each response
    // carries its own telemetry.
    let explain = ServiceRequest::Explain {
        graph: FIG2.to_string(),
    };
    let explain_fresh = client.call("ef", &explain).expect("call");
    let explain_cached = client.call("ec", &explain).expect("call");
    assert!(!explain_fresh.cached && explain_cached.cached);
    assert_eq!(
        explain_fresh.payload, explain_cached.payload,
        "explain payload bytes must agree"
    );
    let explain_doc =
        json::parse(explain_fresh.payload.as_deref().expect("payload")).expect("payload JSON");
    assert_eq!(
        explain_doc.get("kind").and_then(Json::as_str),
        Some("allocation_explain")
    );
    assert_ne!(
        explain_fresh.telemetry, explain_cached.telemetry,
        "telemetry must be per-request"
    );
    server.shutdown();
    server.wait();
}

#[test]
fn metrics_op_returns_valid_exposition_text() {
    let (server, addr) = start(ServerConfig::default());
    let mut client = Client::connect(&addr).expect("connect");
    assert!(client.call("a", &analyze(FIG2)).expect("call").is_ok());
    let metrics = client
        .call("m", &ServiceRequest::Metrics)
        .expect("metrics call");
    assert!(metrics.is_ok(), "{metrics:?}");
    let doc = json::parse(metrics.payload.as_deref().expect("payload")).expect("metrics JSON");
    assert_eq!(
        doc.get("kind").and_then(Json::as_str),
        Some("service_metrics")
    );
    let text = doc
        .get("exposition")
        .and_then(Json::as_str)
        .expect("exposition text");
    sdf_trace::expo::validate_exposition(text).expect("exposition validates");
    assert!(
        text.contains("# TYPE service_op_analyze_latency histogram"),
        "{text}"
    );
    assert!(
        text.contains("service_op_analyze_latency_count 1"),
        "{text}"
    );
    assert!(text.contains("service_requests 2"), "{text}");
    server.shutdown();
    server.wait();
}

#[test]
fn flight_recorder_caps_at_capacity_and_drains_oldest_first() {
    let (server, addr) = start(ServerConfig {
        flight_capacity: 4,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(&addr).expect("connect");
    // Six distinct graphs = six misses = six flight records; the ring
    // holds four, so records 1 and 2 fall off the front.
    for i in 0..6 {
        let graph = format!("graph fl{i}\nedge A B {} {}\n", 2 * (i + 1), i + 1);
        assert!(client
            .call(&format!("fl{i}"), &analyze(&graph))
            .expect("call")
            .is_ok());
    }
    let events = client.call("e1", &ServiceRequest::Events).expect("call");
    let doc = json::parse(events.payload.as_deref().expect("payload")).expect("events JSON");
    assert_eq!(
        doc.get("kind").and_then(Json::as_str),
        Some("service_events")
    );
    assert_eq!(doc.get("capacity").and_then(Json::as_num), Some(4.0));
    assert_eq!(doc.get("dropped").and_then(Json::as_num), Some(2.0));
    let records = doc
        .get("events")
        .and_then(Json::as_array)
        .expect("events array");
    let seqs: Vec<f64> = records
        .iter()
        .filter_map(|r| r.get("seq").and_then(Json::as_num))
        .collect();
    assert_eq!(seqs, vec![3.0, 4.0, 5.0, 6.0], "oldest-first, capped");
    for record in records {
        assert_eq!(record.get("op").and_then(Json::as_str), Some("analyze"));
        assert_eq!(
            record.get("outcome").and_then(Json::as_str),
            Some("complete")
        );
        assert_eq!(record.get("cache").and_then(Json::as_str), Some("miss"));
    }
    // Draining resets the ring: a second drain is empty with nothing
    // newly dropped.
    let again = client.call("e2", &ServiceRequest::Events).expect("call");
    let doc = json::parse(again.payload.as_deref().expect("payload")).expect("events JSON");
    assert_eq!(doc.get("dropped").and_then(Json::as_num), Some(0.0));
    assert_eq!(
        doc.get("events").and_then(Json::as_array).map(<[_]>::len),
        Some(0)
    );
    server.shutdown();
    server.wait();
}

#[test]
fn edit_flow_chains_sessions_and_keeps_byte_identity() {
    let edit = |graph: &str, edits: &str| ServiceRequest::Edit {
        graph: graph.to_string(),
        edits: edits.to_string(),
    };
    let (server, addr) = start(ServerConfig::default());
    let mut client = Client::connect(&addr).expect("connect");
    // Cold edit: no session knows FIG2 yet. The payload must equal the
    // stateless in-process run byte for byte — the delta machinery may
    // never leak into result bytes.
    let first = client
        .call("e1", &edit(FIG2, "set-delay A B 5\n"))
        .expect("call");
    assert!(first.is_ok(), "{first:?}");
    assert!(!first.cached);
    let direct = match execute_request(&edit(FIG2, "set-delay A B 5\n")) {
        ServiceResponse::Ok(payload) => payload.to_json(),
        other => panic!("direct edit failed with status {}", other.status()),
    };
    assert_eq!(first.payload.as_deref(), Some(direct.as_str()));
    let doc = json::parse(first.payload.as_deref().expect("payload")).expect("payload JSON");
    assert_eq!(doc.get("kind").and_then(Json::as_str), Some("edit_report"));
    assert_eq!(counter(&server, "engine.incremental.cold_runs"), 1);
    assert_eq!(gauge(&server, "engine.incremental.sessions"), 1);
    assert!(
        gauge(&server, "engine.incremental.memo.occupancy") > 0,
        "cold run must seed the memo store"
    );
    // Chained edit: the base is the previous edit's result, so the
    // daemon finds the live session and rides the delta path.
    let edited = "graph fig2\nedge A B 20 10 delay 5\nedge B C 20 10\n";
    let second = client
        .call("e2", &edit(edited, "set-delay A B 7\n"))
        .expect("call");
    assert!(second.is_ok(), "{second:?}");
    assert!(!second.cached);
    assert_eq!(counter(&server, "engine.incremental.delta_runs"), 1);
    let direct2 = match execute_request(&edit(edited, "set-delay A B 7\n")) {
        ServiceResponse::Ok(payload) => payload.to_json(),
        other => panic!("direct edit failed with status {}", other.status()),
    };
    assert_eq!(
        second.payload.as_deref(),
        Some(direct2.as_str()),
        "delta-path payload must be byte-identical to a cold run"
    );
    // The identical request repeats from the result cache, verbatim.
    let repeat = client
        .call("e3", &edit(FIG2, "set-delay A B 5\n"))
        .expect("call");
    assert!(repeat.cached, "{repeat:?}");
    assert_eq!(repeat.payload, first.payload);
    // Edit counters surface through the stats op like any service.*
    // instrument.
    let stats = client.call("stats", &ServiceRequest::Stats).expect("call");
    let doc = json::parse(stats.payload.as_deref().expect("payload")).expect("stats JSON");
    let counters = doc.get("counters").expect("counters");
    assert_eq!(
        counters
            .get("engine.incremental.delta_runs")
            .and_then(Json::as_num),
        Some(1.0)
    );
    // A bad script is a typed parse error attributed to the edits
    // input, and it neither wedges the session nor counts as a run.
    let bad = client
        .call("bad", &edit(FIG2, "frobnicate A B\n"))
        .expect("call");
    assert_eq!(bad.status, "error");
    let error = bad.error.expect("error");
    assert_eq!(error.code, "parse_error");
    assert_eq!(error.input.as_deref(), Some("edits"));
    assert_eq!(counter(&server, "engine.incremental.cold_runs"), 1);
    assert_eq!(counter(&server, "engine.incremental.delta_runs"), 1);
    server.shutdown();
    server.wait();
}

#[test]
fn trace_dir_writes_one_parseable_trace_per_completed_job() {
    let dir = std::env::temp_dir().join(format!("sdfmem-trace-dir-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("trace dir");
    let (server, addr) = start(ServerConfig {
        trace_dir: Some(dir.clone()),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(&addr).expect("connect");
    for (i, graph) in ["graph t0\nedge A B 4 2\n", "graph t1\nedge A B 6 3\n"]
        .iter()
        .enumerate()
    {
        assert!(client
            .call(&format!("t{i}"), &analyze(graph))
            .expect("call")
            .is_ok());
    }
    // A cache hit reuses stored bytes without re-running the job, so
    // it must NOT add a trace file.
    assert!(
        client
            .call("hit", &analyze("graph t0\nedge A B 4 2\n"))
            .expect("call")
            .cached
    );
    server.shutdown();
    server.wait();
    let mut files: Vec<_> = std::fs::read_dir(&dir)
        .expect("read trace dir")
        .map(|e| e.expect("entry").path())
        .collect();
    files.sort();
    assert_eq!(files.len(), 2, "{files:?}");
    for path in &files {
        let text = std::fs::read_to_string(path).expect("read trace");
        let parsed = json::parse(&text).expect("chrome trace JSON parses");
        let events = parsed
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents");
        let names: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("name").and_then(Json::as_str))
            .collect();
        assert!(names.contains(&"service.job"), "{names:?}");
        assert!(names.contains(&"parse"), "{names:?}");
        assert!(names.contains(&"engine"), "{names:?}");
        let _ = std::fs::remove_file(path);
    }
    let _ = std::fs::remove_dir(&dir);
}
