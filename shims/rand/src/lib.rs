//! Offline stand-in for the `rand` crate (see `shims/README.md`).
//!
//! Provides the subset of the `rand` 0.8 API this workspace uses:
//! [`Rng::gen_range`] / [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`]
//! and [`rngs::StdRng`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic for a fixed seed, though its stream differs
//! from the real crate's ChaCha-based `StdRng`.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Integer types uniform ranges can produce (mirror of rand's
/// `SampleUniform`; keeping the range impls generic over this trait is
/// what lets integer-literal ranges unify with surrounding expressions).
pub trait SampleUniform: Copy {
    /// Widens to `i128` (lossless for every implementor).
    fn to_i128(self) -> i128;
    /// Narrows from `i128` (callers stay within the type's range).
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_i128(self) -> i128 {
                self as i128
            }
            #[allow(clippy::cast_possible_truncation)]
            fn from_i128(v: i128) -> $t {
                v as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Sampling a value of type `T` from a range, driven by a word source.
pub trait SampleRange<T> {
    /// Draws one value using `next` for raw randomness.
    fn sample_from(self, next: &mut dyn FnMut() -> u64) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from(self, next: &mut dyn FnMut() -> u64) -> T {
        let (lo, hi) = (self.start.to_i128(), self.end.to_i128());
        assert!(lo < hi, "cannot sample empty range");
        let v = (next() as u128) % ((hi - lo) as u128);
        T::from_i128(lo + v as i128)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from(self, next: &mut dyn FnMut() -> u64) -> T {
        let (lo, hi) = (self.start().to_i128(), self.end().to_i128());
        assert!(lo <= hi, "cannot sample empty range");
        let v = (next() as u128) % ((hi - lo + 1) as u128);
        T::from_i128(lo + v as i128)
    }
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (modulo-biased for spans that
    /// do not divide 2^64; negligible for the small ranges used here).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        let mut next = || self.next_u64();
        range.sample_from(&mut next)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding routine.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5i64..=9);
            assert!((5..=9).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn spread_covers_small_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
