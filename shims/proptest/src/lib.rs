//! Offline stand-in for the `proptest` crate (see `shims/README.md`).
//!
//! Implements the subset of the `proptest` 1.x API this workspace uses:
//! the [`proptest!`] macro (with an optional `#![proptest_config(...)]`
//! header), [`prop_assert!`] / [`prop_assert_eq!`], the [`Strategy`]
//! trait with `prop_map`, integer-range and tuple strategies, and
//! [`collection::vec`]. Inputs are generated from a seed derived from
//! the test name, so every run is reproducible; failing inputs are
//! **not** shrunk.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The error carried out of a failing property body.
pub type TestCaseError = String;

/// Runner configuration; only `cases` is honoured.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to execute per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; 64 keeps the heavier pipeline
        // properties fast while still exercising plenty of inputs.
        ProptestConfig { cases: 64 }
    }
}

/// A recipe for generating random values of an associated type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Strategies over collections.
pub mod collection {
    use super::{Rng, StdRng, Strategy};

    /// The strategy returned by [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// Generates `Vec`s of `element` values with a length drawn from
    /// `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = if self.len.start + 1 >= self.len.end {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Deterministic per-test RNG: FNV-1a over the test name.
#[doc(hidden)]
pub fn rng_for(test_name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// Executes `cases` random cases of a property, panicking on the first
/// failure with the case index and message.
#[doc(hidden)]
pub fn run_cases<F>(cases: u32, test_name: &str, mut body: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    let mut rng = rng_for(test_name);
    for case in 0..cases {
        if let Err(message) = body(&mut rng) {
            panic!("property `{test_name}` failed at case {case}/{cases}: {message}");
        }
    }
}

/// Declares property-based tests.
///
/// Supports the `proptest` 1.x surface used in this workspace: an
/// optional `#![proptest_config(expr)]` header followed by any number of
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_cases(config.cases, stringify!($name), |rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), rng);)+
                    let result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    result
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)*);
    };
}

/// Fails the enclosing property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)*));
        }
    };
}

/// Fails the enclosing property case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), ::std::format!($($fmt)*), l, r
            ));
        }
    }};
}

/// The glob-import surface mirroring `proptest::prelude`.
pub mod prelude {
    /// Mirror of the real prelude's `prop` re-export of the crate root.
    pub use crate as prop;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u64..10, y in 0usize..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn tuples_and_maps(v in (0u8..4, 1u64..9).prop_map(|(a, b)| a as u64 + b)) {
            prop_assert!(v < 13);
        }

        #[test]
        fn vec_lengths(v in prop::collection::vec(0u8..4, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&b| b < 4));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_header_accepted(x in 0u32..100) {
            prop_assert_eq!(x, x);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics() {
        crate::run_cases(10, "always_fails", |_| Err("boom".to_string()));
    }
}
