//! Offline stand-in for the `rayon` crate (see `shims/README.md`).
//!
//! Provides the subset of the `rayon` 1.x API this workspace uses:
//! [`join`], [`current_num_threads`] and the
//! `prelude::{IntoParallelIterator, ParallelIterator}` `map`/`collect`
//! chain. Parallelism comes from a scoped pool of
//! `min(available_parallelism, items)` OS threads pulling items off a
//! shared atomic cursor — adequate for this workspace's coarse-grained
//! candidate evaluation (a dozen tasks, each milliseconds or more);
//! there is no work stealing. On a single-core machine the map adapter
//! falls back to a plain serial loop, so enabling parallelism never
//! costs more than thread-free execution.

#![warn(missing_docs)]

/// Runs both closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon shim: joined task panicked"))
    })
}

/// Number of threads the "pool" would use (the machine's parallelism).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Parallel iterator traits and adapters.
pub mod iter {
    /// Conversion into a parallel iterator.
    pub trait IntoParallelIterator {
        /// The element type.
        type Item: Send;
        /// The concrete parallel iterator.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// Converts `self` into a parallel iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    /// A value whose elements can be processed in parallel.
    pub trait ParallelIterator: Sized {
        /// The element type.
        type Item: Send;

        /// Consumes the iterator, returning its items in order.
        fn drive(self) -> Vec<Self::Item>;

        /// Maps each element through `op` in parallel.
        fn map<U, F>(self, op: F) -> Map<Self, F>
        where
            U: Send,
            F: Fn(Self::Item) -> U + Sync + Send,
        {
            Map { base: self, op }
        }

        /// Collects the results. Only `Vec<Item>` is supported.
        fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
            C::from_par_iter(self.drive())
        }
    }

    /// Collection from an evaluated parallel iterator.
    pub trait FromParallelIterator<T> {
        /// Builds the collection from in-order items.
        fn from_par_iter(items: Vec<T>) -> Self;
    }

    impl<T> FromParallelIterator<T> for Vec<T> {
        fn from_par_iter(items: Vec<T>) -> Self {
            items
        }
    }

    impl<T, E, C: FromParallelIterator<T>> FromParallelIterator<Result<T, E>> for Result<C, E> {
        fn from_par_iter(items: Vec<Result<T, E>>) -> Self {
            items
                .into_iter()
                .collect::<Result<Vec<T>, E>>()
                .map(C::from_par_iter)
        }
    }

    /// Root parallel iterator over an owned `Vec`.
    pub struct VecIter<T> {
        items: Vec<T>,
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = VecIter<T>;
        fn into_par_iter(self) -> VecIter<T> {
            VecIter { items: self }
        }
    }

    impl<T: Send> ParallelIterator for VecIter<T> {
        type Item = T;
        fn drive(self) -> Vec<T> {
            self.items
        }
    }

    /// The parallel `map` adapter; evaluation runs on a scoped pool of
    /// `min(available_parallelism, items)` threads sharing an atomic
    /// cursor over the items (plain serial execution on one core).
    pub struct Map<B, F> {
        base: B,
        op: F,
    }

    impl<B, U, F> ParallelIterator for Map<B, F>
    where
        B: ParallelIterator,
        U: Send,
        F: Fn(B::Item) -> U + Sync + Send,
    {
        type Item = U;
        fn drive(self) -> Vec<U> {
            use std::sync::atomic::{AtomicUsize, Ordering};
            use std::sync::Mutex;

            let op = &self.op;
            let items = self.base.drive();
            let n = items.len();
            let workers = super::current_num_threads().min(n);
            if workers <= 1 {
                return items.into_iter().map(op).collect();
            }
            let inputs: Vec<Mutex<Option<B::Item>>> =
                items.into_iter().map(|i| Mutex::new(Some(i))).collect();
            let outputs: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
            let cursor = AtomicUsize::new(0);
            std::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(|| loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let item = inputs[i]
                            .lock()
                            .expect("rayon shim: input lock poisoned")
                            .take()
                            .expect("rayon shim: item taken twice");
                        let result = op(item);
                        *outputs[i].lock().expect("rayon shim: output lock poisoned") =
                            Some(result);
                    });
                }
            });
            outputs
                .into_iter()
                .map(|m| {
                    m.into_inner()
                        .expect("rayon shim: output lock poisoned")
                        .expect("rayon shim: parallel task produced no result")
                })
                .collect()
        }
    }
}

/// The glob-import surface mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, ParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0u64..50)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|x| x * x)
            .collect();
        assert_eq!(v, (0u64..50).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn fallible_collect_short_circuits_to_err() {
        let r: Result<Vec<u64>, String> = vec![1u64, 2, 3]
            .into_par_iter()
            .map(|x| {
                if x == 2 {
                    Err("two".to_string())
                } else {
                    Ok(x)
                }
            })
            .collect();
        assert_eq!(r, Err("two".to_string()));
    }

    #[test]
    fn threads_reported() {
        assert!(super::current_num_threads() >= 1);
    }
}
