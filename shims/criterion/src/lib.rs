//! Offline stand-in for the `criterion` crate (see `shims/README.md`).
//!
//! Provides the subset of the `criterion` 0.5 API this workspace uses —
//! [`Criterion::benchmark_group`], [`Criterion::bench_function`],
//! `bench_with_input`, [`Bencher::iter`], [`BenchmarkId`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Each benchmark is
//! timed with a short fixed wall-clock budget and the median iteration
//! time is printed as plain text; there is no statistical analysis,
//! plotting or baseline comparison.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target measurement budget per benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(40);
/// Minimum timed iterations per benchmark.
const MIN_ITERS: u32 = 5;

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id composed of a function name and a parameter.
    pub fn new<F: Display, P: Display>(function: F, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// An id consisting of just a parameter.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Drives the iteration loop of one benchmark.
pub struct Bencher {
    median_ns: u128,
}

impl Bencher {
    /// Times `routine`, storing the median per-iteration wall time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and per-iteration estimate.
        let start = Instant::now();
        std::hint::black_box(routine());
        let estimate = start.elapsed().max(Duration::from_nanos(1));
        let iters = u32::try_from(MEASURE_BUDGET.as_nanos() / estimate.as_nanos())
            .unwrap_or(u32::MAX)
            .clamp(MIN_ITERS, 10_000);
        let mut samples: Vec<u128> = Vec::with_capacity(iters as usize);
        for _ in 0..iters {
            let t = Instant::now();
            std::hint::black_box(routine());
            samples.push(t.elapsed().as_nanos());
        }
        samples.sort_unstable();
        self.median_ns = samples[samples.len() / 2];
    }
}

/// The benchmark driver handed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, f);
        self
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark of the group with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.id), |b| f(b, input));
        self
    }

    /// Ends the group (accepted for API compatibility; no-op).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, mut f: F) {
    let mut bencher = Bencher { median_ns: 0 };
    f(&mut bencher);
    let ns = bencher.median_ns;
    if ns >= 1_000_000 {
        println!("{label:<50} {:>12.3} ms", ns as f64 / 1e6);
    } else {
        println!("{label:<50} {:>12.3} µs", ns as f64 / 1e3);
    }
}

/// Collects benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits a `main` that runs the given groups, ignoring harness flags
/// (`--bench`, `--test`, filters) passed by cargo.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(c: &mut Criterion) {
        c.bench_function("spin", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut group = c.benchmark_group("grouped");
        group.bench_with_input(BenchmarkId::new("sum", 7), &7u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        group.bench_with_input(BenchmarkId::from_parameter("param"), &3u64, |b, &n| {
            b.iter(|| n * n)
        });
        group.finish();
    }

    criterion_group!(benches, spin);

    #[test]
    fn group_runs_to_completion() {
        benches();
    }
}
