//! Scheduling a **cyclic** graph: the LMS adaptive filter, whose
//! coefficient-update loop feeds back into the FIR.  Feedback edges with a
//! full period of initial tokens impose no precedence, so the acyclic
//! skeleton schedules normally and the feedback buffer is allocated as a
//! whole-period resident.
//!
//! Run with `cargo run --example adaptive_filter`.

use sdfmem::alloc::{allocate, allocation_stats, AllocationOrder, PlacementPolicy};
use sdfmem::apps::extended::lms_adaptive;
use sdfmem::core::simulate::validate_schedule;
use sdfmem::core::RepetitionsVector;
use sdfmem::lifetime::{tree::ScheduleTree, wig::IntersectionGraph};
use sdfmem::sched::cycles::acyclic_skeleton;
use sdfmem::sched::{apgan::apgan, sdppo::sdppo};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = lms_adaptive();
    println!("{graph}");
    println!("acyclic: {}\n", graph.is_acyclic());

    let q = RepetitionsVector::compute(&graph)?;

    // 1. Break the cycle: edges whose delay covers a period of consumption
    //    impose no precedence.
    let (skeleton, feedback) = acyclic_skeleton(&graph, &q)?;
    println!(
        "removed {} non-blocking feedback edge(s); skeleton has {} edges",
        feedback.len(),
        skeleton.edge_count()
    );

    // 2. Schedule the skeleton, validate against the FULL cyclic graph.
    let order = apgan(&skeleton, &q)?;
    let shared = sdppo(&skeleton, &q, &order)?;
    let schedule = shared.tree.to_looped_schedule();
    validate_schedule(&graph, &schedule, &q)?;
    println!("schedule: {}\n", schedule.display(&graph));

    // 3. Lifetime analysis and allocation on the full graph — the feedback
    //    buffer shows up as a whole-period solid lifetime.
    let tree = ScheduleTree::build(&graph, &q, &shared.tree)?;
    let wig = IntersectionGraph::build(&graph, &q, &tree);
    let alloc = allocate(
        &wig,
        AllocationOrder::DurationDescending,
        PlacementPolicy::FirstFit,
    );
    let stats = allocation_stats(&wig, &alloc);
    println!(
        "pool {} words (per-edge would need {}), packing {:.2}x",
        stats.total, stats.nonshared_total, stats.packing_factor
    );
    for (i, buf) in wig.buffers().iter().enumerate() {
        let e = graph.edge(buf.edge);
        let marker = if feedback.contains(&buf.edge) {
            "  <- feedback"
        } else {
            ""
        };
        println!(
            "  {:>3}..{:<3} {} -> {}{marker}",
            alloc.offset(i),
            alloc.offset(i) + buf.lifetime.size(),
            graph.actor_name(e.src),
            graph.actor_name(e.snk),
        );
    }
    Ok(())
}
