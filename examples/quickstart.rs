//! Quickstart: build an SDF graph, schedule it, and compare the shared
//! memory pool with per-edge buffers.
//!
//! Run with `cargo run --example quickstart`.

use sdfmem::alloc::{allocate, AllocationOrder, PlacementPolicy};
use sdfmem::core::simulate::validate_schedule;
use sdfmem::core::{RepetitionsVector, SdfError, SdfGraph};
use sdfmem::lifetime::tree::ScheduleTree;
use sdfmem::lifetime::wig::IntersectionGraph;
use sdfmem::sched::{apgan::apgan, dppo::dppo, sdppo::sdppo};

fn main() -> Result<(), SdfError> {
    // The paper's Fig. 2 example: A --20,10--> B --20,10--> C.
    let mut graph = SdfGraph::new("fig2");
    let a = graph.add_actor("A");
    let b = graph.add_actor("B");
    let c = graph.add_actor("C");
    graph.add_edge(a, b, 20, 10)?;
    graph.add_edge(b, c, 20, 10)?;
    println!("{graph}");

    // 1. Balance equations: how often must each actor fire?
    let q = RepetitionsVector::compute(&graph)?;
    println!("repetitions vector: {:?}", q.as_slice());

    // 2. A topological sort via APGAN, then the two loop-hierarchy DPs.
    let order = apgan(&graph, &q)?;
    let nonshared = dppo(&graph, &q, &order)?;
    let shared = sdppo(&graph, &q, &order)?;
    println!(
        "non-shared optimal schedule: {}  (bufmem = {})",
        nonshared.tree.to_looped_schedule().display(&graph),
        nonshared.bufmem
    );
    println!(
        "shared-model schedule:       {}  (Eq.5 cost = {})",
        shared.tree.to_looped_schedule().display(&graph),
        shared.shared_cost
    );

    // 3. Ground truth: simulate the schedule token by token.
    let report = validate_schedule(&graph, &shared.tree.to_looped_schedule(), &q)?;
    println!("simulated per-edge maxima: {:?}", report.max_tokens_slice());

    // 4. Lifetime analysis and first-fit packing into one pool.
    let tree = ScheduleTree::build(&graph, &q, &shared.tree)?;
    let wig = IntersectionGraph::build(&graph, &q, &tree);
    let alloc = allocate(
        &wig,
        AllocationOrder::DurationDescending,
        PlacementPolicy::FirstFit,
    );
    println!(
        "shared pool: {} words (vs {} words with one buffer per edge)",
        alloc.total(),
        wig.total_size()
    );
    for (i, buf) in wig.buffers().iter().enumerate() {
        let e = graph.edge(buf.edge);
        println!(
            "  {} -> {}: offset {}, {} words, live from step {} for {} steps",
            graph.actor_name(e.src),
            graph.actor_name(e.snk),
            alloc.offset(i),
            buf.lifetime.size(),
            buf.lifetime.start(),
            buf.lifetime.dur()
        );
    }
    Ok(())
}
