//! The §11.1.3 scheduling-spectrum demo on the CD-to-DAT converter: from
//! the all-schedules lower bound (reachable only by giving up single
//! appearance code) through the BMLB to what DPPO/SDPPO actually achieve.
//!
//! Run with `cargo run --example cd_dat_bounds`.

use sdfmem::apps::dsp::cd_to_dat;
use sdfmem::core::bounds::{bmlb, min_buffer_bound};
use sdfmem::core::simulate::validate_schedule;
use sdfmem::core::{LoopedSchedule, RepetitionsVector, SdfError};
use sdfmem::sched::demand::demand_driven_schedule;
use sdfmem::sched::{apgan::apgan, chain_precise::chain_precise, dppo::dppo};

fn main() -> Result<(), SdfError> {
    let graph = cd_to_dat();
    let q = RepetitionsVector::compute(&graph)?;
    println!("CD-to-DAT: q = {:?}\n", q.as_slice());

    let greedy = demand_driven_schedule(&graph, &q)?;
    let greedy_mem = validate_schedule(&graph, &greedy, &q)?.bufmem();
    let order = apgan(&graph, &q)?;
    let flat = LoopedSchedule::flat_sas(&order, &q);
    let flat_mem = validate_schedule(&graph, &flat, &q)?.bufmem();
    let nested = dppo(&graph, &q, &order)?;
    let precise = chain_precise(&graph, &q, 8)?;

    println!(
        "all-schedules lower bound:        {}",
        min_buffer_bound(&graph)
    );
    println!("greedy demand-driven (non-SAS):   {greedy_mem}");
    println!("BMLB (lower bound over SASs):     {}", bmlb(&graph));
    println!("DPPO nested SAS (non-shared):     {}", nested.bufmem);
    println!("chain-precise shared estimate:    {}", precise.cost.center);
    println!("flat SAS (non-shared):            {flat_mem}");
    println!(
        "\nschedule (DPPO):          {}",
        nested.tree.to_looped_schedule().display(&graph)
    );
    println!(
        "schedule (chain-precise): {}",
        precise.tree.to_looped_schedule().display(&graph)
    );
    println!(
        "\nThe greedy schedule needs ~{}x less data memory than the flat SAS \
         but its program is {} firings long — the code-size/buffer trade-off \
         the paper's SAS focus resolves.",
        flat_mem / greedy_mem.max(1),
        q.total_firings()
    );
    Ok(())
}
