//! A tour of the filterbank family (Figs. 22–23): how buffer sharing pays
//! off more and more as the analysis/synthesis tree deepens, because the
//! two sides of the tree are never live simultaneously.
//!
//! Run with `cargo run --example filterbank_tour --release`.

use sdfmem::apps::filterbank::{one_sided_filterbank, two_sided_filterbank, FilterbankRates};
use sdfmem::core::SdfError;

fn main() -> Result<(), SdfError> {
    println!(
        "{:>12} {:>7} {:>12} {:>10} {:>8}",
        "bank", "actors", "non-shared", "shared", "saving"
    );
    for rates in [
        FilterbankRates::HALVES,
        FilterbankRates::THIRDS,
        FilterbankRates::FIFTHS,
    ] {
        for depth in 1..=4 {
            let graph = two_sided_filterbank(depth, rates);
            report(&graph)?;
        }
    }
    for depth in 2..=4 {
        let graph = one_sided_filterbank(depth, FilterbankRates::THIRDS);
        report(&graph)?;
    }
    println!(
        "\nThe deepest 1/2-1/2 bank is where the paper sees its best result \
         (83% at depth 5) — the two subtrees overlay almost perfectly."
    );
    Ok(())
}

fn report(graph: &sdfmem::core::SdfGraph) -> Result<(), SdfError> {
    let row = sdf_bench_row(graph)?;
    println!(
        "{:>12} {:>7} {:>12} {:>10} {:>7.0}%",
        graph.name(),
        graph.actor_count(),
        row.0,
        row.1,
        (row.0 as f64 - row.1 as f64) / row.0 as f64 * 100.0
    );
    Ok(())
}

/// Runs the two-heuristic pipeline and returns (best non-shared, best
/// shared).
fn sdf_bench_row(graph: &sdfmem::core::SdfGraph) -> Result<(u64, u64), SdfError> {
    use sdfmem::alloc::{allocate_both_orders, validate_allocation};
    use sdfmem::core::RepetitionsVector;
    use sdfmem::lifetime::{tree::ScheduleTree, wig::IntersectionGraph};
    use sdfmem::sched::{apgan::apgan, dppo::dppo, rpmc::rpmc, sdppo::sdppo};

    let q = RepetitionsVector::compute(graph)?;
    let mut best_nonshared = u64::MAX;
    let mut best_shared = u64::MAX;
    for order in [rpmc(graph, &q)?, apgan(graph, &q)?] {
        best_nonshared = best_nonshared.min(dppo(graph, &q, &order)?.bufmem);
        let shared = sdppo(graph, &q, &order)?;
        let tree = ScheduleTree::build(graph, &q, &shared.tree)?;
        let wig = IntersectionGraph::build(graph, &q, &tree);
        let (ffdur, ffstart) = allocate_both_orders(&wig);
        validate_allocation(&wig, &ffdur.allocation)?;
        validate_allocation(&wig, &ffstart.allocation)?;
        best_shared = best_shared
            .min(ffdur.allocation.total())
            .min(ffstart.allocation.total());
    }
    Ok((best_nonshared, best_shared))
}
