//! The paper's flagship case study: the satellite receiver of Ritz et al.
//! (Fig. 24).  Reproduces the §10.1 headline — shared allocation around
//! 1000 words against ~1500 for the best non-shared SAS — and prints the
//! actual schedules both heuristics construct.
//!
//! Run with `cargo run --example satellite_receiver`.

use sdfmem::alloc::{allocate_both_orders, validate_allocation};
use sdfmem::apps::satrec::satellite_receiver;
use sdfmem::core::{RepetitionsVector, SdfError};
use sdfmem::lifetime::clique::{mcw_optimistic, mcw_pessimistic};
use sdfmem::lifetime::tree::ScheduleTree;
use sdfmem::lifetime::wig::IntersectionGraph;
use sdfmem::sched::{apgan::apgan, dppo::dppo, rpmc::rpmc, sdppo::sdppo};

fn main() -> Result<(), SdfError> {
    let graph = satellite_receiver();
    let q = RepetitionsVector::compute(&graph)?;
    println!(
        "satellite receiver: {} actors, {} edges, period of {} firings\n",
        graph.actor_count(),
        graph.edge_count(),
        q.total_firings()
    );

    for (label, order) in [("RPMC", rpmc(&graph, &q)?), ("APGAN", apgan(&graph, &q)?)] {
        let nonshared = dppo(&graph, &q, &order)?;
        let shared = sdppo(&graph, &q, &order)?;
        let tree = ScheduleTree::build(&graph, &q, &shared.tree)?;
        let wig = IntersectionGraph::build(&graph, &q, &tree);
        let (ffdur, ffstart) = allocate_both_orders(&wig);
        validate_allocation(&wig, &ffdur.allocation)?;
        validate_allocation(&wig, &ffstart.allocation)?;

        println!("== {label} ==");
        println!(
            "  schedule: {}",
            shared.tree.to_looped_schedule().display(&graph)
        );
        println!("  non-shared (dppo):   {}", nonshared.bufmem);
        println!("  shared DP estimate:  {}", shared.shared_cost);
        println!(
            "  clique estimates:    mco {} / mcp {}",
            mcw_optimistic(&wig),
            mcw_pessimistic(&wig)
        );
        println!(
            "  first-fit:           ffdur {} / ffstart {}",
            ffdur.allocation.total(),
            ffstart.allocation.total()
        );
        let best = ffdur.allocation.total().min(ffstart.allocation.total());
        println!(
            "  saving vs non-shared: {:.0}%\n",
            (nonshared.bufmem as f64 - best as f64) / nonshared.bufmem as f64 * 100.0
        );
    }
    println!(
        "Paper reference points: non-shared 1542, shared 991 (>35% saving);\n\
         Ritz et al. >2000 on the same system; dynamic EDF scheduling 1101."
    );
    Ok(())
}
