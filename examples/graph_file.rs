//! Working from a graph *file*: parse the text interchange format, run
//! the one-call [`sdfmem::pipeline::Analysis`] API and inspect the timed
//! schedule tree — the flow a downstream user (or the `sdfmem` CLI)
//! follows.
//!
//! Run with `cargo run --example graph_file`.

use sdfmem::core::io::parse_graph;
use sdfmem::lifetime::tree::ScheduleTree;
use sdfmem::pipeline::Analysis;

const CD_DAT: &str = "
# CD (44.1 kHz) to DAT (48 kHz) sample rate conversion,
# factored as 1:1, 2:3, 2:7, 8:7, 5:1.
graph cd2dat
edge cdSrc  stage1 1 1
edge stage1 stage2 2 3
edge stage2 stage3 2 7
edge stage3 stage4 8 7
edge stage4 datSink 5 1
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = parse_graph(CD_DAT)?;
    println!("{graph}");

    let analysis = Analysis::run(&graph)?;
    println!(
        "winner: {}  —  shared pool {} words vs non-shared {} ({:.0}% saved)\n",
        analysis.winner,
        analysis.shared_total(),
        analysis.nonshared_bufmem,
        analysis.saving_percent()
    );

    println!(
        "schedule: {}\n",
        analysis.schedule.to_looped_schedule().display(&graph)
    );

    // The timed schedule tree that drives the lifetime analysis.
    let tree = ScheduleTree::build(&graph, &analysis.repetitions, &analysis.schedule)?;
    println!("{}", tree.render(&graph));

    // Buffer map of the shared pool.
    for (i, buf) in analysis.wig.buffers().iter().enumerate() {
        let e = graph.edge(buf.edge);
        println!(
            "pool[{:>4}..{:<4}]  {} -> {}",
            analysis.allocation.offset(i),
            analysis.allocation.offset(i) + buf.lifetime.size(),
            graph.actor_name(e.src),
            graph.actor_name(e.snk),
        );
    }
    Ok(())
}
