//! Emits the C implementation of the CD-to-DAT converter under both
//! memory models, showing the generated loop nest and the shared pool's
//! offset map.
//!
//! Run with `cargo run --example codegen_demo`.

use sdfmem::alloc::{allocate, AllocationOrder, PlacementPolicy};
use sdfmem::apps::dsp::cd_to_dat;
use sdfmem::codegen::{generate_nonshared_c, generate_shared_c};
use sdfmem::core::{RepetitionsVector, SdfError};
use sdfmem::lifetime::{tree::ScheduleTree, wig::IntersectionGraph};
use sdfmem::sched::{apgan::apgan, dppo::dppo, sdppo::sdppo};

fn main() -> Result<(), SdfError> {
    let graph = cd_to_dat();
    let q = RepetitionsVector::compute(&graph)?;
    let order = apgan(&graph, &q)?;

    println!("/* ---------- non-shared (DPPO schedule) ---------- */");
    let nonshared = dppo(&graph, &q, &order)?;
    println!(
        "{}",
        generate_nonshared_c(&graph, &q, &nonshared.tree.to_looped_schedule())?
    );

    println!("/* ---------- shared pool (SDPPO schedule + first-fit) ---------- */");
    let shared = sdppo(&graph, &q, &order)?;
    let tree = ScheduleTree::build(&graph, &q, &shared.tree)?;
    let wig = IntersectionGraph::build(&graph, &q, &tree);
    let alloc = allocate(
        &wig,
        AllocationOrder::DurationDescending,
        PlacementPolicy::FirstFit,
    );
    println!(
        "{}",
        generate_shared_c(&graph, &q, &shared.tree, &wig, &alloc)?
    );
    Ok(())
}
