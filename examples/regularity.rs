//! The §12 regularity story end to end: author a fine-grained FIR with
//! the `Chain` higher-order constructor, schedule it greedily, and let
//! the loop compressor recover the compact `(n(G A))` structure a human
//! would write — then emit the C.
//!
//! Run with `cargo run --example regularity`.

use sdfmem::codegen::generate_nonshared_c;
use sdfmem::core::hof::{chain, Template};
use sdfmem::core::{RepetitionsVector, SdfGraph};
use sdfmem::sched::demand::demand_driven_schedule;
use sdfmem::sched::loopify::compress;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 12-tap FIR: input -> 12 x (gain -> add) -> output.
    let mut graph = SdfGraph::new("fir12");
    let input = graph.add_actor("in");
    let mac = Template {
        actors: vec!["gain".into(), "add".into()],
        edges: vec![(0, 1, 1, 1, 0)],
        input: (0, 1),
        output: (1, 1),
    };
    let last = chain(&mut graph, input, 1, &mac, 12)?;
    let output = graph.add_actor("out");
    graph.add_edge(last, output, 1, 1)?;
    println!(
        "FIR specification: {} actors, {} edges (authored via the Chain combinator)\n",
        graph.actor_count(),
        graph.edge_count()
    );

    // Naive threading emits one inline call per firing: every instance is
    // a distinct actor, so there is no repetition to compress...
    let q = RepetitionsVector::compute(&graph)?;
    let schedule = demand_driven_schedule(&graph, &q)?;
    let firing_sequence: Vec<_> = schedule.firings().collect();
    let inline = compress(&firing_sequence, 0);
    println!(
        "inline code: {} firings -> {} appearances (no repetition across distinct instances)",
        firing_sequence.len(),
        inline.code_size
    );

    // ...but §12's observation: represent instances of the same basic
    // actor by one label (sharing the code via a procedure call with the
    // instance index as parameter), and the regularity appears.
    let mut labels = SdfGraph::new("fir12_labels");
    let mut label_of = std::collections::HashMap::new();
    let label_seq: Vec<_> = firing_sequence
        .iter()
        .map(|&a| {
            let stem = graph
                .actor_name(a)
                .split('_')
                .next()
                .expect("nonempty name")
                .to_string();
            *label_of
                .entry(stem.clone())
                .or_insert_with(|| labels.add_actor(stem))
        })
        .collect();
    let folded = compress(&label_seq, 0);
    println!(
        "with code sharing over labels: {} appearances — {}",
        folded.code_size,
        folded.schedule.display(&labels)
    );
    println!("(the paper's §12 FIR example: G0 G1 A0 G2 A1 … becomes G0 (n(G A)))\n");

    // The inline C for reference (non-shared buffers).
    let code = generate_nonshared_c(&graph, &q, &inline.schedule)?;
    println!(
        "inline C: {} firing calls, {} buffer arrays",
        code.matches("fire_").count() - graph.actor_count(),
        graph.edge_count()
    );
    Ok(())
}
