//! Diffing two [`Profile`]s into a structured [`RegressionReport`].

use std::fmt::Write as _;

use crate::profile::{Profile, TimingStat};
use sdf_trace::json::escape;

/// How a single compared item fared.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    /// The candidate is strictly better (smaller pool, fewer probes);
    /// still a gate failure for exact-match sections — refresh the
    /// baseline to bank the win.
    Improved,
    /// Worth a look but not gated (timing drift, new counters).
    Warning,
    /// A gated behaviour change: more work, worse memory, lost counters.
    Regression,
    /// The item changed but an allow-list entry exempts it.
    Allowed,
}

impl Severity {
    /// Tag rendered in text and markdown reports.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Improved => "IMPROVED",
            Severity::Warning => "WARNING",
            Severity::Regression => "REGRESSION",
            Severity::Allowed => "ALLOWED",
        }
    }
}

/// One compared item that differed between baseline and candidate.
#[derive(Clone, Debug)]
pub struct DiffEntry {
    /// Which section the item belongs to: `meta`, `outcome`, `counter`
    /// or `timing`.
    pub section: &'static str,
    /// The item name (counter/timing/outcome field).
    pub name: String,
    /// Baseline rendering.
    pub baseline: String,
    /// Candidate rendering.
    pub candidate: String,
    /// How bad it is.
    pub severity: Severity,
    /// Whether this entry fails the gate (exit-nonzero) under the
    /// options the diff ran with.
    pub gated: bool,
    /// Human explanation (direction, band, allow-list reason).
    pub note: String,
}

/// Output format of a rendered [`RegressionReport`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ReportFormat {
    /// Aligned plain text.
    #[default]
    Text,
    /// A schema-version-3 JSON document.
    Json,
    /// A GitHub-flavoured markdown table (CI artifact / PR comment).
    Markdown,
}

/// Tuning knobs for [`diff`].
#[derive(Clone, Debug)]
pub struct DiffOptions {
    /// Names exempt from the exact-match gate. An entry ending in `*`
    /// matches any name with that prefix (`sched.sdppo.*`); anything
    /// else must match exactly.
    pub allow: Vec<String>,
    /// Width of the timing noise band in baseline MADs.
    pub band_mads: f64,
    /// Minimum band as a fraction of the baseline median (guards
    /// against a suspiciously quiet capture machine).
    pub band_rel_floor: f64,
    /// Absolute minimum band, microseconds.
    pub band_floor_us: f64,
    /// Gate on timing-band violations too (off by default: wall clocks
    /// are not comparable across machines, counters are).
    pub gate_timings: bool,
}

impl Default for DiffOptions {
    fn default() -> Self {
        DiffOptions {
            allow: Vec::new(),
            band_mads: 5.0,
            band_rel_floor: 0.25,
            band_floor_us: 50.0,
            gate_timings: false,
        }
    }
}

impl DiffOptions {
    fn allowed(&self, name: &str) -> bool {
        self.allow.iter().any(|pat| match pat.strip_suffix('*') {
            Some(prefix) => name.starts_with(prefix),
            None => pat == name,
        })
    }
}

/// The structured result of comparing a candidate profile against a
/// baseline.
#[derive(Clone, Debug)]
pub struct RegressionReport {
    /// Graph name (the baseline's).
    pub graph: String,
    /// Items that matched exactly (counters + outcomes + meta).
    pub matched: usize,
    /// Everything that differed, in comparison order.
    pub entries: Vec<DiffEntry>,
}

impl RegressionReport {
    /// Number of entries that fail the gate.
    pub fn gate_failures(&self) -> usize {
        self.entries.iter().filter(|e| e.gated).count()
    }

    /// Whether the candidate passes the gate.
    pub fn is_clean(&self) -> bool {
        self.gate_failures() == 0
    }

    /// Number of non-gated advisory entries.
    pub fn warnings(&self) -> usize {
        self.entries.iter().filter(|e| !e.gated).count()
    }

    /// Renders the report in the requested format.
    pub fn render(&self, format: ReportFormat) -> String {
        match format {
            ReportFormat::Text => self.to_text(),
            ReportFormat::Json => self.to_json(),
            ReportFormat::Markdown => self.to_markdown(),
        }
    }

    /// One-line verdict used by every renderer.
    fn verdict(&self) -> String {
        format!(
            "{}: {} gate failure(s), {} advisory, {} item(s) matched",
            self.graph,
            self.gate_failures(),
            self.warnings(),
            self.matched
        )
    }

    /// Aligned plain-text rendering.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "regression report — {}", self.verdict());
        if self.entries.is_empty() {
            out.push_str("no differences\n");
            return out;
        }
        for e in &self.entries {
            let _ = writeln!(
                out,
                "  [{:<10}] {} {}: {} -> {} ({})",
                e.severity.as_str(),
                e.section,
                e.name,
                e.baseline,
                e.candidate,
                e.note
            );
        }
        out
    }

    /// JSON rendering (kind `regression_report`) with the workspace's
    /// unified `kind` + `schema_version` envelope.
    pub fn to_json(&self) -> String {
        let mut s = sdf_trace::json::document_header("regression_report");
        s.reserve(512);
        let _ = write!(
            s,
            "\"graph\":\"{}\",\
             \"gate_failures\":{},\"warnings\":{},\"matched\":{},\"entries\":[",
            escape(&self.graph),
            self.gate_failures(),
            self.warnings(),
            self.matched
        );
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"section\":\"{}\",\"name\":\"{}\",\"baseline\":\"{}\",\"candidate\":\"{}\",\
                 \"severity\":\"{}\",\"gated\":{},\"note\":\"{}\"}}",
                escape(e.section),
                escape(&e.name),
                escape(&e.baseline),
                escape(&e.candidate),
                e.severity.as_str(),
                e.gated,
                escape(&e.note)
            );
        }
        s.push_str("]}\n");
        s
    }

    /// Markdown rendering: a verdict line plus a table of differences.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let icon = if self.is_clean() { "✅" } else { "❌" };
        let _ = writeln!(out, "{icon} **{}**\n", self.verdict());
        if self.entries.is_empty() {
            out.push_str("No differences.\n");
            return out;
        }
        out.push_str("| severity | section | name | baseline | candidate | note |\n");
        out.push_str("|---|---|---|---|---|---|\n");
        for e in &self.entries {
            let _ = writeln!(
                out,
                "| {} | {} | `{}` | {} | {} | {} |",
                e.severity.as_str(),
                e.section,
                e.name,
                e.baseline,
                e.candidate,
                e.note
            );
        }
        out
    }
}

/// Compares `candidate` against `baseline`.
///
/// Counters, allocation outcomes, and graph shape are gated on exact
/// match (unless allow-listed); timings are compared against a noise
/// band of `max(band_mads × MAD, band_rel_floor × median,
/// band_floor_us)` around the baseline median and gate only when
/// [`DiffOptions::gate_timings`] is set. Candidate-only counters are
/// advisory warnings *unless* the baseline lost them (a removed counter
/// is gated — instrumentation silently disappearing is exactly the kind
/// of regression a sentinel exists to catch).
pub fn diff(baseline: &Profile, candidate: &Profile, opts: &DiffOptions) -> RegressionReport {
    let mut entries = Vec::new();
    let mut matched = 0usize;

    // Meta: comparing different graphs (or the same graph after a shape
    // change) can never pass the exact gate; say so up front.
    for (name, base, cand) in [
        ("graph", baseline.graph.clone(), candidate.graph.clone()),
        (
            "actors",
            baseline.actors.to_string(),
            candidate.actors.to_string(),
        ),
        (
            "edges",
            baseline.edges.to_string(),
            candidate.edges.to_string(),
        ),
    ] {
        if base == cand {
            matched += 1;
        } else {
            entries.push(DiffEntry {
                section: "meta",
                name: name.to_string(),
                baseline: base,
                candidate: cand,
                severity: Severity::Regression,
                gated: true,
                note: "profiles describe different graphs".to_string(),
            });
        }
    }
    if baseline.full != candidate.full {
        entries.push(DiffEntry {
            section: "meta",
            name: "full".to_string(),
            baseline: baseline.full.to_string(),
            candidate: candidate.full.to_string(),
            severity: Severity::Regression,
            gated: true,
            note: "captures swept different loop-optimizer sets".to_string(),
        });
    } else {
        matched += 1;
    }

    // Outcomes: exact match, with direction-aware severity.
    let outcome_rows: [(&str, u64, u64, bool); 4] = [
        (
            "shared_bufmem",
            baseline.outcomes.shared_bufmem,
            candidate.outcomes.shared_bufmem,
            true,
        ),
        (
            "nonshared_bufmem",
            baseline.outcomes.nonshared_bufmem,
            candidate.outcomes.nonshared_bufmem,
            true,
        ),
        (
            "fragmentation",
            baseline.outcomes.fragmentation,
            candidate.outcomes.fragmentation,
            true,
        ),
        (
            "candidates",
            baseline.outcomes.candidates,
            candidate.outcomes.candidates,
            false,
        ),
    ];
    for (name, base, cand, smaller_is_better) in outcome_rows {
        push_exact(
            &mut entries,
            &mut matched,
            opts,
            "outcome",
            name,
            base,
            cand,
            smaller_is_better,
        );
    }
    if baseline.outcomes.winner == candidate.outcomes.winner {
        matched += 1;
    } else {
        let allowed = opts.allowed("winner");
        entries.push(DiffEntry {
            section: "outcome",
            name: "winner".to_string(),
            baseline: baseline.outcomes.winner.clone(),
            candidate: candidate.outcomes.winner.clone(),
            severity: if allowed {
                Severity::Allowed
            } else {
                Severity::Regression
            },
            gated: !allowed,
            note: "a different lattice point now wins".to_string(),
        });
    }

    // Counters: exact match over the union of names.
    let mut base_it = baseline.counters.iter().peekable();
    let mut cand_it = candidate.counters.iter().peekable();
    loop {
        match (base_it.peek(), cand_it.peek()) {
            (None, None) => break,
            (Some((name, base)), None) => {
                push_removed(&mut entries, opts, name, *base);
                base_it.next();
            }
            (None, Some((name, cand))) => {
                push_added(&mut entries, opts, name, *cand);
                cand_it.next();
            }
            (Some((bn, base)), Some((cn, cand))) => match bn.cmp(cn) {
                std::cmp::Ordering::Less => {
                    push_removed(&mut entries, opts, bn, *base);
                    base_it.next();
                }
                std::cmp::Ordering::Greater => {
                    push_added(&mut entries, opts, cn, *cand);
                    cand_it.next();
                }
                std::cmp::Ordering::Equal => {
                    push_exact(
                        &mut entries,
                        &mut matched,
                        opts,
                        "counter",
                        bn,
                        *base,
                        *cand,
                        true,
                    );
                    base_it.next();
                    cand_it.next();
                }
            },
        }
    }

    // Timings: noise-band check on names present in both profiles.
    for (name, base) in &baseline.timings {
        let Some((_, cand)) = candidate.timings.iter().find(|(n, _)| n == name) else {
            continue;
        };
        push_timing(&mut entries, &mut matched, opts, name, base, cand);
    }

    RegressionReport {
        graph: baseline.graph.clone(),
        matched,
        entries,
    }
}

#[allow(clippy::too_many_arguments)]
fn push_exact(
    entries: &mut Vec<DiffEntry>,
    matched: &mut usize,
    opts: &DiffOptions,
    section: &'static str,
    name: &str,
    base: u64,
    cand: u64,
    smaller_is_better: bool,
) {
    if base == cand {
        *matched += 1;
        return;
    }
    let allowed = opts.allowed(name);
    let improved = smaller_is_better && cand < base;
    let severity = if allowed {
        Severity::Allowed
    } else if improved {
        Severity::Improved
    } else {
        Severity::Regression
    };
    let delta = cand as i128 - base as i128;
    let note = if allowed {
        "differs, allow-listed".to_string()
    } else if improved {
        format!("{delta:+} — improvement; refresh the baseline to keep it")
    } else {
        format!("{delta:+} vs baseline")
    };
    entries.push(DiffEntry {
        section,
        name: name.to_string(),
        baseline: base.to_string(),
        candidate: cand.to_string(),
        severity,
        gated: !allowed,
        note,
    });
}

fn push_removed(entries: &mut Vec<DiffEntry>, opts: &DiffOptions, name: &str, base: u64) {
    let allowed = opts.allowed(name);
    entries.push(DiffEntry {
        section: "counter",
        name: name.to_string(),
        baseline: base.to_string(),
        candidate: "absent".to_string(),
        severity: if allowed {
            Severity::Allowed
        } else {
            Severity::Regression
        },
        gated: !allowed,
        note: "counter disappeared from the candidate".to_string(),
    });
}

fn push_added(entries: &mut Vec<DiffEntry>, opts: &DiffOptions, name: &str, cand: u64) {
    let allowed = opts.allowed(name);
    entries.push(DiffEntry {
        section: "counter",
        name: name.to_string(),
        baseline: "absent".to_string(),
        candidate: cand.to_string(),
        severity: if allowed {
            Severity::Allowed
        } else {
            Severity::Warning
        },
        gated: false,
        note: "new counter — refresh the baseline to start gating it".to_string(),
    });
}

fn push_timing(
    entries: &mut Vec<DiffEntry>,
    matched: &mut usize,
    opts: &DiffOptions,
    name: &str,
    base: &TimingStat,
    cand: &TimingStat,
) {
    let band = (opts.band_mads * base.mad_us)
        .max(opts.band_rel_floor * base.median_us)
        .max(opts.band_floor_us);
    let delta = cand.median_us - base.median_us;
    if delta.abs() <= band {
        *matched += 1;
        return;
    }
    let slower = delta > 0.0;
    let allowed = opts.allowed(name);
    let gated = slower && opts.gate_timings && !allowed;
    entries.push(DiffEntry {
        section: "timing",
        name: name.to_string(),
        baseline: format!("{:.1}µs ±{:.1}", base.median_us, band),
        candidate: format!("{:.1}µs", cand.median_us),
        severity: if allowed {
            Severity::Allowed
        } else if slower {
            if opts.gate_timings {
                Severity::Regression
            } else {
                Severity::Warning
            }
        } else {
            Severity::Improved
        },
        gated,
        note: format!(
            "median {} the noise band by {:.1}µs",
            if slower { "above" } else { "below" },
            delta.abs() - band
        ),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Outcomes;
    use sdf_trace::json::parse;

    fn profile() -> Profile {
        Profile {
            graph: "fig2".to_string(),
            actors: 3,
            edges: 2,
            repeats: 3,
            full: true,
            outcomes: Outcomes {
                shared_bufmem: 30,
                nonshared_bufmem: 40,
                fragmentation: 0,
                winner: "apgan/sdppo/ffdur".to_string(),
                candidates: 10,
            },
            counters: vec![
                ("alloc.first_fit.probes".to_string(), 12),
                ("sched.dppo.cells".to_string(), 21),
            ],
            timings: vec![(
                "engine.total".to_string(),
                TimingStat {
                    median_us: 1000.0,
                    mad_us: 10.0,
                    samples: 3,
                },
            )],
        }
    }

    #[test]
    fn identical_profiles_are_clean() {
        let report = diff(&profile(), &profile(), &DiffOptions::default());
        assert!(report.is_clean());
        assert_eq!(report.entries.len(), 0);
        assert!(report.matched > 8);
        assert!(report.to_text().contains("no differences"));
        assert!(report.to_markdown().contains("✅"));
    }

    #[test]
    fn counter_change_names_the_counter() {
        let mut cand = profile();
        cand.apply_perturbation("sched.dppo.cells=+9").unwrap();
        let report = diff(&profile(), &cand, &DiffOptions::default());
        assert_eq!(report.gate_failures(), 1);
        let text = report.to_text();
        assert!(text.contains("sched.dppo.cells"), "{text}");
        assert!(text.contains("REGRESSION"), "{text}");
        assert!(text.contains("+9"), "{text}");
    }

    #[test]
    fn counter_decrease_is_improved_but_still_gated() {
        let mut cand = profile();
        cand.apply_perturbation("alloc.first_fit.probes=-5")
            .unwrap();
        let report = diff(&profile(), &cand, &DiffOptions::default());
        assert_eq!(report.gate_failures(), 1);
        assert_eq!(report.entries[0].severity, Severity::Improved);
        assert!(report.entries[0].note.contains("refresh"));
    }

    #[test]
    fn allowlist_exempts_exact_and_prefix() {
        let mut cand = profile();
        cand.apply_perturbation("sched.dppo.cells=+9").unwrap();
        cand.apply_perturbation("alloc.first_fit.probes=+1")
            .unwrap();
        let opts = DiffOptions {
            allow: vec!["sched.*".to_string(), "alloc.first_fit.probes".to_string()],
            ..DiffOptions::default()
        };
        let report = diff(&profile(), &cand, &opts);
        assert!(report.is_clean(), "{}", report.to_text());
        assert_eq!(report.entries.len(), 2);
        assert!(report
            .entries
            .iter()
            .all(|e| e.severity == Severity::Allowed));
    }

    #[test]
    fn removed_counter_gates_added_counter_warns() {
        let mut cand = profile();
        cand.counters.remove(0); // alloc.first_fit.probes gone
        cand.counters.push(("zz.new.counter".to_string(), 5));
        cand.counters.sort();
        let report = diff(&profile(), &cand, &DiffOptions::default());
        assert_eq!(report.gate_failures(), 1);
        assert_eq!(report.warnings(), 1);
        let text = report.to_text();
        assert!(text.contains("disappeared"), "{text}");
        assert!(text.contains("new counter"), "{text}");
    }

    #[test]
    fn memory_outcome_regression_gates() {
        let mut cand = profile();
        cand.outcomes.shared_bufmem = 35;
        let report = diff(&profile(), &cand, &DiffOptions::default());
        assert_eq!(report.gate_failures(), 1);
        assert!(report.to_text().contains("shared_bufmem"));
    }

    #[test]
    fn winner_flip_gates_unless_allowed() {
        let mut cand = profile();
        cand.outcomes.winner = "rpmc/dppo/ffstart".to_string();
        assert_eq!(
            diff(&profile(), &cand, &DiffOptions::default()).gate_failures(),
            1
        );
        let opts = DiffOptions {
            allow: vec!["winner".to_string()],
            ..DiffOptions::default()
        };
        assert!(diff(&profile(), &cand, &opts).is_clean());
    }

    #[test]
    fn timing_band_is_advisory_by_default() {
        let mut cand = profile();
        cand.timings[0].1.median_us = 2000.0; // way past 1000 ± max(50, 250, 50)
        let default_report = diff(&profile(), &cand, &DiffOptions::default());
        assert!(default_report.is_clean());
        assert_eq!(default_report.warnings(), 1);
        assert!(default_report.to_text().contains("above the noise band"));
        let gated = diff(
            &profile(),
            &cand,
            &DiffOptions {
                gate_timings: true,
                ..DiffOptions::default()
            },
        );
        assert_eq!(gated.gate_failures(), 1);
        // Faster is an improvement, never gated.
        cand.timings[0].1.median_us = 100.0;
        let faster = diff(
            &profile(),
            &cand,
            &DiffOptions {
                gate_timings: true,
                ..DiffOptions::default()
            },
        );
        assert!(faster.is_clean());
        assert_eq!(faster.entries[0].severity, Severity::Improved);
    }

    #[test]
    fn timing_inside_band_matches() {
        let mut cand = profile();
        cand.timings[0].1.median_us = 1200.0; // band = max(50, 250, 50) = 250
        let report = diff(&profile(), &cand, &DiffOptions::default());
        assert!(report.entries.iter().all(|e| e.section != "timing"));
    }

    #[test]
    fn different_graphs_cannot_pass() {
        let mut cand = profile();
        cand.graph = "other".to_string();
        cand.actors = 7;
        let report = diff(&profile(), &cand, &DiffOptions::default());
        assert!(report.gate_failures() >= 2);
        assert!(report.to_text().contains("different graphs"));
    }

    #[test]
    fn json_rendering_parses_and_carries_entries() {
        let mut cand = profile();
        cand.apply_perturbation("sched.dppo.cells=+9").unwrap();
        let report = diff(&profile(), &cand, &DiffOptions::default());
        let doc = parse(&report.to_json()).expect("valid JSON");
        assert_eq!(
            doc.get("kind").and_then(|k| k.as_str()),
            Some("regression_report")
        );
        assert_eq!(doc.get("gate_failures").and_then(|g| g.as_num()), Some(1.0));
        let entries = doc.get("entries").and_then(|e| e.as_array()).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(
            entries[0].get("name").and_then(|n| n.as_str()),
            Some("sched.dppo.cells")
        );
        let md = report.to_markdown();
        assert!(md.contains("| REGRESSION |"), "{md}");
        assert!(md.contains("`sched.dppo.cells`"), "{md}");
    }
}
