//! The baseline profile document: what one graph's synthesis run *does*,
//! snapshotted for later comparison.

use sdf_trace::json::{escape, parse, Json};

/// Robust summary of repeated wall-time measurements: the median and the
/// median absolute deviation (MAD), both in microseconds.
///
/// The median ignores the occasional descheduled repeat entirely, and
/// the MAD gives [`crate::diff`] a noise band that widens exactly when
/// the machine was noisy at capture time.
///
/// # Examples
///
/// ```
/// use sdf_regress::TimingStat;
///
/// let stat = TimingStat::from_samples_ns(&[100_000, 110_000, 500_000]);
/// assert_eq!(stat.median_us, 110.0);
/// assert_eq!(stat.mad_us, 10.0);
/// assert_eq!(stat.samples, 3);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct TimingStat {
    /// Median of the samples, microseconds.
    pub median_us: f64,
    /// Median absolute deviation from the median, microseconds.
    pub mad_us: f64,
    /// How many samples went into the statistics.
    pub samples: u32,
}

impl TimingStat {
    /// Computes median and MAD from nanosecond samples. An empty slice
    /// yields the zero statistic.
    pub fn from_samples_ns(samples_ns: &[u64]) -> TimingStat {
        if samples_ns.is_empty() {
            return TimingStat::default();
        }
        let us: Vec<f64> = samples_ns.iter().map(|&ns| ns as f64 / 1e3).collect();
        let median = median_of(us.clone());
        let deviations: Vec<f64> = us.iter().map(|v| (v - median).abs()).collect();
        TimingStat {
            median_us: median,
            mad_us: median_of(deviations),
            samples: samples_ns.len() as u32,
        }
    }
}

fn median_of(mut values: Vec<f64>) -> f64 {
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite timing"));
    let n = values.len();
    if n == 0 {
        0.0
    } else if n % 2 == 1 {
        values[n / 2]
    } else {
        (values[n / 2 - 1] + values[n / 2]) / 2.0
    }
}

/// The allocation-quality results of a run — the numbers the paper's
/// Table 1 reports per system.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Outcomes {
    /// Winning shared pool size, words.
    pub shared_bufmem: u64,
    /// Best non-shared baseline over the swept orders, words.
    pub nonshared_bufmem: u64,
    /// Words skipped below first-fit placements in the last candidate
    /// evaluated (lattice order, so deterministic for serial captures).
    pub fragmentation: u64,
    /// Winning lattice point, `heuristic/loop_opt/allocation_order`.
    pub winner: String,
    /// Number of candidates the lattice sweep evaluated.
    pub candidates: u64,
}

/// A captured performance baseline for one graph (schema version 3).
///
/// Contains everything [`crate::diff`] gates on: deterministic work
/// counters, allocation outcomes, and median/MAD timings. Serialises to
/// a self-contained JSON document via [`Profile::to_json`] and parses
/// back (using the workspace's own `sdf_trace::json` parser) via
/// [`Profile::parse`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Profile {
    /// Graph name the profile was captured from.
    pub graph: String,
    /// Actor count at capture time.
    pub actors: u64,
    /// Edge count at capture time.
    pub edges: u64,
    /// How many repeats the timing statistics summarise.
    pub repeats: u32,
    /// Whether the capture swept every loop-optimizer variant.
    pub full: bool,
    /// Allocation outcomes.
    pub outcomes: Outcomes,
    /// Deterministic work counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Median/MAD timing statistics, sorted by name.
    pub timings: Vec<(String, TimingStat)>,
}

impl Profile {
    /// An empty profile for `graph` (used by tests and builders).
    pub fn new(graph: &str) -> Profile {
        Profile {
            graph: graph.to_string(),
            ..Profile::default()
        }
    }

    /// Looks up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Applies a perturbation spec — the regression-gate *test hook*.
    ///
    /// `spec` is `name=+N` / `name=-N` (adjust) or `name=N` (set); the
    /// named counter is created if absent. Capture front ends apply the
    /// `SDF_REGRESS_PERTURB` environment variable through this, so tests
    /// (and the acceptance check) can inject a counter change and watch
    /// the gate trip.
    ///
    /// # Errors
    ///
    /// Returns a message for a spec without `=` or a non-numeric amount.
    pub fn apply_perturbation(&mut self, spec: &str) -> Result<(), String> {
        let (name, amount) = spec
            .split_once('=')
            .ok_or_else(|| format!("perturbation `{spec}` is not name=value"))?;
        let value = |digits: &str| -> Result<u64, String> {
            digits
                .parse::<u64>()
                .map_err(|_| format!("perturbation amount `{amount}` is not a number"))
        };
        let index = match self.counters.iter().position(|(n, _)| n == name) {
            Some(i) => i,
            None => {
                self.counters.push((name.to_string(), 0));
                self.counters.sort();
                self.counters
                    .iter()
                    .position(|(n, _)| n == name)
                    .expect("just inserted")
            }
        };
        let slot = &mut self.counters[index].1;
        *slot = match amount.as_bytes().first() {
            Some(b'+') => slot.saturating_add(value(&amount[1..])?),
            Some(b'-') => slot.saturating_sub(value(&amount[1..])?),
            _ => value(amount)?,
        };
        Ok(())
    }

    /// Serialises the profile as a JSON document with the workspace's
    /// unified `kind` + `schema_version` envelope.
    pub fn to_json(&self) -> String {
        let mut s = sdf_trace::json::document_header("baseline_profile");
        s.reserve(1024);
        write_kv_str(&mut s, "graph", &self.graph);
        s.push(',');
        write_kv_num(&mut s, "actors", self.actors);
        s.push(',');
        write_kv_num(&mut s, "edges", self.edges);
        s.push(',');
        write_kv_num(&mut s, "repeats", u64::from(self.repeats));
        s.push_str(",\"full\":");
        s.push_str(if self.full { "true" } else { "false" });
        s.push_str(",\"outcomes\":{");
        write_kv_num(&mut s, "shared_bufmem", self.outcomes.shared_bufmem);
        s.push(',');
        write_kv_num(&mut s, "nonshared_bufmem", self.outcomes.nonshared_bufmem);
        s.push(',');
        write_kv_num(&mut s, "fragmentation", self.outcomes.fragmentation);
        s.push(',');
        write_kv_str(&mut s, "winner", &self.outcomes.winner);
        s.push(',');
        write_kv_num(&mut s, "candidates", self.outcomes.candidates);
        s.push_str("},\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            write_kv_num(&mut s, name, *value);
        }
        s.push_str("},\"timings\":{");
        for (i, (name, stat)) in self.timings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = std::fmt::Write::write_fmt(
                &mut s,
                format_args!(
                    "\"{}\":{{\"median_us\":{:.3},\"mad_us\":{:.3},\"samples\":{}}}",
                    escape(name),
                    stat.median_us,
                    stat.mad_us,
                    stat.samples
                ),
            );
        }
        s.push_str("}}\n");
        s
    }

    /// Parses a profile document produced by [`Profile::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a readable message on malformed JSON, a missing or
    /// foreign `schema_version`, the wrong `kind`, or missing sections.
    pub fn parse(text: &str) -> Result<Profile, String> {
        let doc = parse(text).map_err(|e| format!("invalid profile JSON: {e}"))?;
        let version = doc
            .get("schema_version")
            .and_then(Json::as_num)
            .ok_or("profile has no schema_version")?;
        if version != f64::from(sdf_trace::SCHEMA_VERSION) {
            return Err(format!(
                "profile schema_version {} is not the supported {}",
                version,
                sdf_trace::SCHEMA_VERSION
            ));
        }
        match doc.get("kind").and_then(Json::as_str) {
            Some("baseline_profile") => {}
            other => return Err(format!("document kind {other:?} is not baseline_profile")),
        }
        let str_of = |j: &Json, key: &str| -> Result<String, String> {
            j.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("profile is missing string `{key}`"))
        };
        let num_of = |j: &Json, key: &str| -> Result<u64, String> {
            j.get(key)
                .and_then(Json::as_num)
                .map(|n| n as u64)
                .ok_or_else(|| format!("profile is missing number `{key}`"))
        };
        let outcomes_doc = doc.get("outcomes").ok_or("profile is missing outcomes")?;
        let outcomes = Outcomes {
            shared_bufmem: num_of(outcomes_doc, "shared_bufmem")?,
            nonshared_bufmem: num_of(outcomes_doc, "nonshared_bufmem")?,
            fragmentation: num_of(outcomes_doc, "fragmentation")?,
            winner: str_of(outcomes_doc, "winner")?,
            candidates: num_of(outcomes_doc, "candidates")?,
        };
        let mut counters = Vec::new();
        for (name, value) in doc
            .get("counters")
            .and_then(Json::members)
            .ok_or("profile is missing counters")?
        {
            let value = value
                .as_num()
                .ok_or_else(|| format!("counter `{name}` is not a number"))?;
            counters.push((name.clone(), value as u64));
        }
        counters.sort();
        let mut timings = Vec::new();
        for (name, stat) in doc
            .get("timings")
            .and_then(Json::members)
            .ok_or("profile is missing timings")?
        {
            let field = |key: &str| -> Result<f64, String> {
                stat.get(key)
                    .and_then(Json::as_num)
                    .ok_or_else(|| format!("timing `{name}` is missing `{key}`"))
            };
            timings.push((
                name.clone(),
                TimingStat {
                    median_us: field("median_us")?,
                    mad_us: field("mad_us")?,
                    samples: field("samples")? as u32,
                },
            ));
        }
        timings.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(Profile {
            graph: str_of(&doc, "graph")?,
            actors: num_of(&doc, "actors")?,
            edges: num_of(&doc, "edges")?,
            repeats: num_of(&doc, "repeats")? as u32,
            full: doc.get("full").and_then(Json::as_bool).unwrap_or(false),
            outcomes,
            counters,
            timings,
        })
    }
}

fn write_kv_str(s: &mut String, key: &str, value: &str) {
    s.push('"');
    s.push_str(&escape(key));
    s.push_str("\":\"");
    s.push_str(&escape(value));
    s.push('"');
}

fn write_kv_num(s: &mut String, key: &str, value: u64) {
    s.push('"');
    s.push_str(&escape(key));
    s.push_str("\":");
    s.push_str(&value.to_string());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Profile {
        Profile {
            graph: "satrec".to_string(),
            actors: 26,
            edges: 29,
            repeats: 3,
            full: true,
            outcomes: Outcomes {
                shared_bufmem: 1542,
                nonshared_bufmem: 1920,
                fragmentation: 12,
                winner: "apgan/sdppo/ffdur".to_string(),
                candidates: 14,
            },
            counters: vec![
                ("alloc.first_fit.probes".to_string(), 321),
                ("sched.dppo.cells".to_string(), 210),
            ],
            timings: vec![(
                "engine.total".to_string(),
                TimingStat {
                    median_us: 1234.5,
                    mad_us: 21.25,
                    samples: 3,
                },
            )],
        }
    }

    #[test]
    fn round_trips_through_json() {
        let profile = sample();
        let parsed = Profile::parse(&profile.to_json()).unwrap();
        assert_eq!(parsed, profile);
    }

    #[test]
    fn median_and_mad() {
        let even = TimingStat::from_samples_ns(&[1_000, 3_000, 2_000, 4_000]);
        assert_eq!(even.median_us, 2.5);
        assert_eq!(even.mad_us, 1.0);
        assert_eq!(even.samples, 4);
        assert_eq!(TimingStat::from_samples_ns(&[]), TimingStat::default());
        let single = TimingStat::from_samples_ns(&[7_000]);
        assert_eq!(single.median_us, 7.0);
        assert_eq!(single.mad_us, 0.0);
    }

    #[test]
    fn perturbation_hook() {
        let mut p = sample();
        p.apply_perturbation("sched.dppo.cells=+5").unwrap();
        assert_eq!(p.counter("sched.dppo.cells"), Some(215));
        p.apply_perturbation("sched.dppo.cells=-15").unwrap();
        assert_eq!(p.counter("sched.dppo.cells"), Some(200));
        p.apply_perturbation("sched.dppo.cells=77").unwrap();
        assert_eq!(p.counter("sched.dppo.cells"), Some(77));
        p.apply_perturbation("brand.new=9").unwrap();
        assert_eq!(p.counter("brand.new"), Some(9));
        assert!(p.counters.windows(2).all(|w| w[0].0 < w[1].0), "sorted");
        assert!(p.apply_perturbation("no-equals").is_err());
        assert!(p.apply_perturbation("x=+abc").is_err());
    }

    #[test]
    fn parse_rejects_foreign_documents() {
        assert!(Profile::parse("not json").unwrap_err().contains("invalid"));
        assert!(Profile::parse("{}").unwrap_err().contains("schema_version"));
        let wrong_version = sample().to_json().replacen(
            &format!("\"schema_version\":{}", sdf_trace::SCHEMA_VERSION),
            "\"schema_version\":2",
            1,
        );
        assert!(Profile::parse(&wrong_version)
            .unwrap_err()
            .contains("schema_version 2"));
        let wrong_kind = sample().to_json().replacen("baseline_profile", "trace", 1);
        assert!(Profile::parse(&wrong_kind)
            .unwrap_err()
            .contains("not baseline_profile"));
    }
}
