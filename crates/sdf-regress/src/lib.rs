//! The regression sentinel: counter-based performance baselines and
//! structured profile diffs.
//!
//! PR 1 established that wall-clock timings are pure noise on a loaded
//! 1-CPU container; the deterministic *work counters* the pipeline
//! records via `sdf-trace` (DP cells, split probes, WIG edge tests,
//! first-fit probes, …) are the signal worth gating on. This crate turns
//! them into a sentinel:
//!
//! * a [`Profile`] snapshots one graph's behaviour — work counters,
//!   allocation outcomes (`shared_bufmem` / `nonshared_bufmem` /
//!   `fragmentation`), and median-of-repeats timings with MAD noise
//!   bands — as a schema-version-3 JSON document
//!   (`bench/baselines/*.json`);
//! * [`diff`] compares two profiles into a [`RegressionReport`]:
//!   counters and memory outcomes are gated on **exact match** (they are
//!   deterministic, so any drift is a real behaviour change), timings on
//!   a **noise band** derived from the baseline's MAD (advisory by
//!   default — cross-machine wall clocks differ);
//! * an explicit [allow-list](DiffOptions::allow) exempts intentional
//!   changes by counter name (trailing `*` matches a prefix).
//!
//! Everything is hand-rolled on `std` + `sdf_trace::json` — no external
//! dependencies. The capture side (running the engine repeatedly under a
//! recorder) lives in `sdfmem::sentinel`; the CLI surface is `sdfmem
//! compare` / `sdfmem baseline`, and `engine_sweep --baseline/--gate`
//! maintains the committed corpus.
//!
//! # Examples
//!
//! ```
//! use sdf_regress::{diff, DiffOptions, Profile};
//!
//! let mut baseline = Profile::new("fig2");
//! baseline.counters = vec![("sched.dppo.cells".into(), 21)];
//! let mut candidate = baseline.clone();
//! assert!(diff(&baseline, &candidate, &DiffOptions::default()).is_clean());
//!
//! candidate.counters[0].1 = 30;
//! let report = diff(&baseline, &candidate, &DiffOptions::default());
//! assert_eq!(report.gate_failures(), 1);
//! assert!(report.to_text().contains("sched.dppo.cells"));
//! ```

#![warn(missing_docs)]

mod diff;
mod profile;

pub use diff::{diff, DiffEntry, DiffOptions, RegressionReport, ReportFormat, Severity};
pub use profile::{Outcomes, Profile, TimingStat};
