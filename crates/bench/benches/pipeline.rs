//! Criterion benchmarks of every pipeline stage, sized by the paper's own
//! benchmark graphs (the polynomial running times claimed in §8–§9 should
//! show as gentle growth from the 20-node to the 188-node filterbank).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sdf_alloc::{allocate, AllocationOrder, PlacementPolicy};
use sdf_apps::registry::by_name;
use sdf_core::RepetitionsVector;
use sdf_lifetime::clique::{mcw_optimistic, mcw_pessimistic};
use sdf_lifetime::tree::ScheduleTree;
use sdf_lifetime::wig::IntersectionGraph;
use sdf_sched::{apgan, dppo, rpmc, sdppo};

const SIZES: [&str; 3] = ["qmf12_2d", "qmf12_3d", "qmf12_5d"];

fn bench_repetitions(c: &mut Criterion) {
    let mut group = c.benchmark_group("repetitions_vector");
    for name in SIZES {
        let g = by_name(name).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(name), &g, |b, g| {
            b.iter(|| RepetitionsVector::compute(g).unwrap())
        });
    }
    group.finish();
}

fn bench_topsort_heuristics(c: &mut Criterion) {
    let mut group = c.benchmark_group("topological_sort");
    for name in SIZES {
        let g = by_name(name).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        group.bench_with_input(BenchmarkId::new("apgan", name), &g, |b, g| {
            b.iter(|| apgan(g, &q).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("rpmc", name), &g, |b, g| {
            b.iter(|| rpmc(g, &q).unwrap())
        });
    }
    group.finish();
}

fn bench_loop_hierarchy(c: &mut Criterion) {
    let mut group = c.benchmark_group("loop_hierarchy");
    for name in SIZES {
        let g = by_name(name).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        let order = apgan(&g, &q).unwrap();
        group.bench_with_input(BenchmarkId::new("dppo", name), &g, |b, g| {
            b.iter(|| dppo(g, &q, &order).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("sdppo", name), &g, |b, g| {
            b.iter(|| sdppo(g, &q, &order).unwrap())
        });
    }
    group.finish();
}

fn bench_lifetime_and_allocation(c: &mut Criterion) {
    let mut group = c.benchmark_group("lifetime_allocation");
    for name in SIZES {
        let g = by_name(name).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        let order = apgan(&g, &q).unwrap();
        let sas = sdppo(&g, &q, &order).unwrap().tree;
        group.bench_with_input(BenchmarkId::new("wig", name), &g, |b, g| {
            b.iter(|| {
                let tree = ScheduleTree::build(g, &q, &sas).unwrap();
                IntersectionGraph::build(g, &q, &tree)
            })
        });
        let tree = ScheduleTree::build(&g, &q, &sas).unwrap();
        let wig = IntersectionGraph::build(&g, &q, &tree);
        group.bench_with_input(BenchmarkId::new("first_fit", name), &wig, |b, wig| {
            b.iter(|| {
                allocate(
                    wig,
                    AllocationOrder::DurationDescending,
                    PlacementPolicy::FirstFit,
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("mcw_estimates", name), &wig, |b, wig| {
            b.iter(|| (mcw_optimistic(wig), mcw_pessimistic(wig)))
        });
    }
    group.finish();
}

fn bench_chain_precise(c: &mut Criterion) {
    let mut group = c.benchmark_group("chain_precise");
    for name in ["cd2dat", "16qamModem"] {
        let g = match name {
            "cd2dat" => sdf_apps::dsp::cd_to_dat(),
            _ => by_name(name).unwrap(),
        };
        let q = RepetitionsVector::compute(&g).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(name), &g, |b, g| {
            b.iter(|| sdf_sched::chain_precise::chain_precise(g, &q, 8).unwrap())
        });
    }
    group.finish();
}

fn bench_loopify(c: &mut Criterion) {
    // Compress the greedy demand-driven CD-DAT schedule (612 firings).
    let g = sdf_apps::dsp::cd_to_dat();
    let q = RepetitionsVector::compute(&g).unwrap();
    let sched = sdf_sched::demand::demand_driven_schedule(&g, &q).unwrap();
    let seq: Vec<_> = sched.firings().collect();
    c.bench_function("loopify/cd2dat_greedy", |b| {
        b.iter(|| sdf_sched::loopify::compress(&seq[..200], 0))
    });
}

fn bench_fine_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("fine_model");
    for name in ["qmf12_2d", "qmf12_3d"] {
        let g = by_name(name).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        let order = apgan(&g, &q).unwrap();
        let sas = sdppo(&g, &q, &order).unwrap().tree;
        group.bench_with_input(BenchmarkId::from_parameter(name), &g, |b, g| {
            b.iter(|| sdf_lifetime::fine::FineIntersectionGraph::build(g, &q, &sas))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_repetitions,
    bench_topsort_heuristics,
    bench_loop_hierarchy,
    bench_lifetime_and_allocation,
    bench_chain_precise,
    bench_loopify,
    bench_fine_model
);
criterion_main!(benches);
