//! The experiment pipeline shared by every benchmark binary.
//!
//! Reproduces the paper's Fig. 21 flow end-to-end: topological sort
//! (APGAN / RPMC / random) → loop hierarchy (DPPO for the non-shared
//! baseline, SDPPO for the shared model) → lifetime extraction →
//! intersection graph → clique estimates → first-fit allocation.

#![warn(missing_docs)]

use sdf_alloc::{allocate, validate_allocation, AllocationOrder, PlacementPolicy};
use sdf_core::error::SdfError;
use sdf_core::graph::{ActorId, SdfGraph};
use sdf_core::repetitions::RepetitionsVector;
use sdf_lifetime::clique::{mcw_optimistic, mcw_pessimistic};
use sdf_lifetime::tree::ScheduleTree;
use sdf_lifetime::wig::IntersectionGraph;
use sdf_sched::sdppo::FactoringPolicy;
use sdf_sched::{apgan, dppo, rpmc, sdppo_with_policy};

/// Everything the paper's Table 1 reports for one (system, topological
/// sort) pair.
#[derive(Clone, Debug)]
pub struct PipelineResult {
    /// `bufmem` of the DPPO schedule — the non-shared baseline column.
    pub dppo: u64,
    /// The Eq. 5 cost of the SDPPO schedule (the `sdppo` column).
    pub sdppo: u64,
    /// Optimistic maximum-clique-weight estimate (`mco`).
    pub mco: u64,
    /// Pessimistic maximum-clique-weight estimate (`mcp`).
    pub mcp: u64,
    /// First-fit by descending duration (`ffdur`).
    pub ffdur: u64,
    /// First-fit by ascending start time (`ffstart`).
    pub ffstart: u64,
    /// Sum of all buffer sizes of the SDPPO schedule — what a non-shared
    /// implementation of the *same* schedule would need; an upper bound on
    /// any allocation.
    pub total_size: u64,
}

impl PipelineResult {
    /// The better of the two first-fit allocations.
    pub fn best_alloc(&self) -> u64 {
        self.ffdur.min(self.ffstart)
    }
}

/// Runs the full pipeline on one lexical order.
///
/// # Errors
///
/// Propagates scheduling errors (inconsistent order, cyclic graph, …); the
/// allocations are additionally validated for overlap-freedom before being
/// reported.
pub fn run_pipeline(
    graph: &SdfGraph,
    q: &RepetitionsVector,
    order: &[ActorId],
    policy: FactoringPolicy,
) -> Result<PipelineResult, SdfError> {
    let nonshared = dppo(graph, q, order)?;
    let shared = sdppo_with_policy(graph, q, order, policy)?;
    let tree = ScheduleTree::build(graph, q, &shared.tree)?;
    let wig = IntersectionGraph::build(graph, q, &tree);
    let ffdur = allocate(
        &wig,
        AllocationOrder::DurationDescending,
        PlacementPolicy::FirstFit,
    );
    validate_allocation(&wig, &ffdur)?;
    let ffstart = allocate(
        &wig,
        AllocationOrder::StartAscending,
        PlacementPolicy::FirstFit,
    );
    validate_allocation(&wig, &ffstart)?;
    Ok(PipelineResult {
        dppo: nonshared.bufmem,
        sdppo: shared.shared_cost,
        mco: mcw_optimistic(&wig),
        mcp: mcw_pessimistic(&wig),
        ffdur: ffdur.total(),
        ffstart: ffstart.total(),
        total_size: wig.total_size(),
    })
}

/// One row of Table 1: the pipeline on both heuristic orders plus the
/// BMLB and the headline improvement percentage.
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// Benchmark name.
    pub name: String,
    /// Number of actors.
    pub actors: usize,
    /// The RPMC-ordered pipeline results.
    pub rpmc: PipelineResult,
    /// The APGAN-ordered pipeline results.
    pub apgan: PipelineResult,
    /// The non-shared SAS lower bound.
    pub bmlb: u64,
}

impl Table1Row {
    /// The best non-shared implementation: `min(dppo(R), dppo(A))`.
    pub fn best_nonshared(&self) -> u64 {
        self.rpmc.dppo.min(self.apgan.dppo)
    }

    /// The best shared implementation over the four allocation columns.
    pub fn best_shared(&self) -> u64 {
        self.rpmc.best_alloc().min(self.apgan.best_alloc())
    }

    /// The paper's improvement metric (last column of Table 1):
    /// `(best_nonshared − best_shared) / best_nonshared × 100`.
    pub fn improvement_percent(&self) -> f64 {
        let ns = self.best_nonshared();
        if ns == 0 {
            return 0.0;
        }
        (ns as f64 - self.best_shared() as f64) / ns as f64 * 100.0
    }
}

/// Runs the full Table 1 pipeline (RPMC and APGAN) on one system.
///
/// # Errors
///
/// Propagates any scheduling or consistency error.
pub fn run_table1_row(graph: &SdfGraph) -> Result<Table1Row, SdfError> {
    let q = RepetitionsVector::compute(graph)?;
    let rpmc_order = rpmc(graph, &q)?;
    let apgan_order = apgan(graph, &q)?;
    Ok(Table1Row {
        name: graph.name().to_string(),
        actors: graph.actor_count(),
        rpmc: run_pipeline(graph, &q, &rpmc_order, FactoringPolicy::Heuristic)?,
        apgan: run_pipeline(graph, &q, &apgan_order, FactoringPolicy::Heuristic)?,
        bmlb: sdf_core::bounds::bmlb(graph),
    })
}

/// Renders a row of values separated for terminal tables.
pub fn fmt_row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = *w))
        .collect::<Vec<_>>()
        .join("  ")
}

/// Draws a unit-width horizontal ASCII bar of `value` scaled so that
/// `max` maps to `width` characters.
pub fn ascii_bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round().max(0.0) as usize;
    "#".repeat(n.min(width))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdf_apps::registry::by_name;

    #[test]
    fn satrec_row_reproduces_paper_shape() {
        let g = by_name("satrec").unwrap();
        let row = run_table1_row(&g).unwrap();
        // Shared must beat non-shared substantially (paper: 991 vs 1542).
        assert!(row.best_shared() < row.best_nonshared());
        assert!(row.improvement_percent() > 10.0, "{row:?}");
        // Allocation can never beat the optimistic clique bound's schedule-
        // specific floor by construction within one pipeline run.
        assert!(row.rpmc.ffdur >= row.rpmc.mco || row.rpmc.ffstart >= row.rpmc.mco);
    }

    #[test]
    fn estimates_bracket_allocation_per_order() {
        let g = by_name("qmf12_2d").unwrap();
        let row = run_table1_row(&g).unwrap();
        for r in [&row.rpmc, &row.apgan] {
            assert!(r.mco <= r.mcp, "{r:?}");
            // First-fit can exceed the clique estimates (chromatic number
            // above max clique weight), but never the non-shared total of
            // its own schedule.
            assert!(r.best_alloc() <= r.total_size, "{r:?}");
            assert!(
                r.best_alloc() >= r.mco.min(r.mcp) / 2,
                "implausibly small: {r:?}"
            );
        }
    }

    #[test]
    fn ascii_bar_scales() {
        assert_eq!(ascii_bar(50.0, 100.0, 10), "#####");
        assert_eq!(ascii_bar(0.0, 100.0, 10), "");
        assert_eq!(ascii_bar(200.0, 100.0, 10), "##########");
    }
}
