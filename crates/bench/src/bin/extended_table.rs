//! Table 1's pipeline on the **extended** benchmark suite (systems beyond
//! the paper's list, including a cyclic one): a robustness check that the
//! shared-memory advantage is not specific to the paper's benchmark set.

use sdf_alloc::{allocate, validate_allocation, AllocationOrder, PlacementPolicy};
use sdf_apps::extended::{extended_systems, lms_adaptive};
use sdf_bench::run_table1_row;
use sdf_core::RepetitionsVector;
use sdf_lifetime::tree::ScheduleTree;
use sdf_lifetime::wig::IntersectionGraph;
use sdf_sched::cycles::acyclic_skeleton;
use sdf_sched::{apgan, dppo, sdppo};

fn main() {
    println!(
        "{:>14} {:>4} {:>12} {:>10} {:>8}",
        "system", "n", "non-shared", "shared", "saving"
    );
    for graph in extended_systems() {
        match run_table1_row(&graph) {
            Ok(row) => println!(
                "{:>14} {:>4} {:>12} {:>10} {:>7.0}%",
                row.name,
                row.actors,
                row.best_nonshared(),
                row.best_shared(),
                row.improvement_percent()
            ),
            Err(e) => println!("{:>14}  ERROR: {e}", graph.name()),
        }
    }

    // The cyclic LMS goes through the feedback machinery.
    let graph = lms_adaptive();
    let q = RepetitionsVector::compute(&graph).expect("consistent");
    let (skeleton, _) = acyclic_skeleton(&graph, &q).expect("breakable cycle");
    let order = apgan(&skeleton, &q).expect("acyclic skeleton");
    let nonshared = dppo(&skeleton, &q, &order).expect("dppo").bufmem
        + graph
            .edges()
            .filter(|(_, e)| {
                !skeleton
                    .edges()
                    .any(|(_, s)| s.src == e.src && s.snk == e.snk)
            })
            .map(|(_, e)| e.delay + e.prod * q.get(e.src))
            .sum::<u64>();
    let shared = sdppo(&skeleton, &q, &order).expect("sdppo");
    let tree = ScheduleTree::build(&graph, &q, &shared.tree).expect("tree on full graph");
    let wig = IntersectionGraph::build(&graph, &q, &tree);
    let alloc = allocate(
        &wig,
        AllocationOrder::DurationDescending,
        PlacementPolicy::FirstFit,
    );
    validate_allocation(&wig, &alloc).expect("valid");
    println!(
        "{:>14} {:>4} {:>12} {:>10}   (cyclic; feedback buffer resident)",
        graph.name(),
        graph.actor_count(),
        nonshared,
        alloc.total()
    );
}
