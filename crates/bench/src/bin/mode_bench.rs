//! Benchmarks the multi-mode shared pool: every registered mode graph
//! is synthesised with [`sdfmem::modes::synthesize_modes`] and the
//! merged cross-mode pool is compared against what separate per-mode
//! pools would cost.  One `bench_trajectory` point per mode graph is
//! written to `BENCH_10.json` (the committed copy lives at
//! `bench/BENCH_10.json`).
//!
//! ```text
//! cargo run --release --bin mode_bench
//! cargo run --release --bin mode_bench -- --out bench/BENCH_10.json
//! cargo run --release --bin mode_bench -- --min-savings 10
//! ```
//!
//! The run fails if any mode graph's transition oracle reports a
//! violation, if the merged pool exceeds its `max + persistent` gate,
//! or if the headline saving falls below `--min-savings` percent
//! (default 5) on any graph — the merged pool must stay strictly
//! cheaper than per-mode pools, or the multi-mode layer has regressed.

use std::fmt::Write as _;
use std::time::Instant;

use sdf_apps::modes::mode_graphs;
use sdfmem::modes::{synthesize_modes, ModeSynthesis};

struct Sample {
    name: String,
    synth: ModeSynthesis,
    synth_us: f64,
}

fn point(sample: &Sample) -> String {
    let unix_s = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let s = &sample.synth;
    let mut p = String::new();
    let _ = write!(
        p,
        "{{\"unix_s\":{unix_s},\"graph\":\"{}\",\"modes\":{},\"persistent\":{},\
         \"merged_pool_words\":{},\"sum_pool_words\":{},\"max_pool_words\":{},\
         \"persistent_words\":{},\"gate_bound\":{},\"gate_ok\":{},\
         \"savings_percent\":{:.2},\"clean\":{},\"synth_us\":{:.3}}}",
        sample.name,
        s.summaries.len(),
        s.plan.persistent.len(),
        s.merged_pool_words,
        s.sum_pool_words,
        s.max_pool_words,
        s.persistent_words,
        s.gate_bound,
        s.gate_ok,
        s.savings_percent(),
        s.exec.is_ok(),
        sample.synth_us,
    );
    p
}

fn bench_json(samples: &[Sample]) -> String {
    let mut s = sdf_trace::json::document_header("bench_trajectory");
    s.push_str("\"bench\":\"mode_bench\",\"points\":[");
    for (i, sample) in samples.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&point(sample));
    }
    s.push_str("]}\n");
    s
}

fn real_main() -> Result<(), String> {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
    };
    let out_path = flag("--out")
        .cloned()
        .unwrap_or("BENCH_10.json".to_string());
    let min_savings: f64 = match flag("--min-savings") {
        Some(v) => v
            .parse()
            .map_err(|_| format!("bad --min-savings value `{v}`"))?,
        None => 5.0,
    };

    let mut samples = Vec::new();
    for (name, mg) in mode_graphs() {
        let started = Instant::now();
        let synth = synthesize_modes(&mg).map_err(|e| format!("{name}: {e}"))?;
        let synth_us = started.elapsed().as_nanos() as f64 / 1e3;
        samples.push(Sample {
            name: name.to_string(),
            synth,
            synth_us,
        });
    }

    let body = bench_json(&samples);
    sdf_trace::json::parse(&body).map_err(|e| format!("internal: bad bench JSON: {e}"))?;
    std::fs::write(&out_path, &body).map_err(|e| format!("cannot write {out_path}: {e}"))?;
    eprintln!("wrote {out_path}");

    eprintln!();
    eprintln!(
        "{:>18} {:>6} {:>10} {:>10} {:>10} {:>9} {:>6}",
        "graph", "modes", "merged", "sum", "gate", "savings", "clean"
    );
    for sample in &samples {
        let s = &sample.synth;
        eprintln!(
            "{:>18} {:>6} {:>10} {:>10} {:>10} {:>8.1}% {:>6}",
            sample.name,
            s.summaries.len(),
            s.merged_pool_words,
            s.sum_pool_words,
            s.gate_bound,
            s.savings_percent(),
            if s.exec.is_ok() { "yes" } else { "NO" },
        );
    }

    // Gates: every graph must transition cleanly, respect the merged
    // pool bound, and beat the savings floor.
    for sample in &samples {
        let s = &sample.synth;
        if let Err(e) = &s.exec {
            return Err(format!("{}: transition oracle violation: {e}", sample.name));
        }
        if !s.gate_ok {
            return Err(format!(
                "{}: merged pool {} exceeds its gate {} (max {} + persistent {})",
                sample.name,
                s.merged_pool_words,
                s.gate_bound,
                s.max_pool_words,
                s.persistent_words
            ));
        }
        if s.savings_percent() < min_savings {
            return Err(format!(
                "{}: savings {:.1}% below required {min_savings}% \
                 (merged {} vs separate pools {})",
                sample.name,
                s.savings_percent(),
                s.merged_pool_words,
                s.sum_pool_words
            ));
        }
    }
    eprintln!("savings gate: every mode graph >= {min_savings}% ✓");
    Ok(())
}

fn main() {
    if let Err(message) = real_main() {
        eprintln!("error: {message}");
        std::process::exit(1);
    }
}
