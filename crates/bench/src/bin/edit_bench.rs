//! Benchmarks the incremental re-synthesis path on edit-heavy traffic:
//! a deterministic stream of small edits (delay tweaks and
//! ratio-preserving rate scalings) replayed through an
//! [`IncrementalSession`] over the `sdf_apps::scale` chain corpus, timed
//! against what a stateless daemon would pay — one cold
//! `AnalysisBuilder` run per edit.
//!
//! Every warm result is cross-checked against a cold run on the same
//! edited graph (`--verify all`), or only the stream's final state is
//! (`--verify final`, the default), so the speedup never comes at the
//! cost of a different answer.  One `bench_trajectory` point per size
//! tier is written to `BENCH_9.json`.
//!
//! ```text
//! cargo run --release --bin edit_bench
//! cargo run --release --bin edit_bench -- --sizes 512 --verify all
//! cargo run --release --bin edit_bench -- --sizes 512 --stream bench/streams/edit_512.txt
//! cargo run --release --bin edit_bench -- --sizes 512 --emit-stream bench/streams/edit_512.txt
//! ```
//!
//! Stream files hold one edit per non-empty line (`#` starts a
//! comment), each line replayed as its own one-op [`EditScript`]; actor
//! names bind the file to the size it was generated for.  `--min-speedup
//! R` (default 10) asserts the warm-edit vs cold-run ratio at the
//! largest requested tier; `--budget-s` aborts if the whole run exceeds
//! the wall-clock budget.

use std::time::Instant;

use sdf_apps::scale::{scale_chain, SIZES};
use sdf_core::math::gcd;
use sdf_core::SdfGraph;
use sdfmem::engine::{AnalysisBuilder, SynthesisOptions};
use sdfmem::incremental::{apply_edits, EditOp, EditScript, IncrementalSession};
use sdfmem::pipeline::Analysis;

fn us(from: Instant) -> f64 {
    from.elapsed().as_nanos() as f64 / 1e3
}

/// Generates `edits` single-op steps against `base` as do/undo pairs:
/// each even step changes one edge (a delay tweak in whole sink
/// firings, or a ratio-preserving rate scaling) and the following odd
/// step restores that same edge, so every step dirties exactly one
/// edge and the stream never drifts far from the base graph.  Pair
/// positions stride through the edge list coprime-style so consecutive
/// pairs touch distant subchains.
fn generate_stream(base: &SdfGraph, edits: usize) -> Vec<EditScript> {
    let edge_list: Vec<(String, String, u64, u64, u64)> = base
        .edges()
        .map(|(_, e)| {
            (
                base.actor_name(e.src).to_string(),
                base.actor_name(e.snk).to_string(),
                e.prod,
                e.cons,
                e.delay,
            )
        })
        .collect();
    let m = edge_list.len();
    let mut steps = Vec::with_capacity(edits);
    for k in 0..edits {
        let pair = k / 2;
        let (src, snk, prod, cons, delay) = edge_list[(pair * 37 + 11) % m].clone();
        let delay_pair = pair % 2 == 0;
        let op = if k % 2 == 0 {
            if delay_pair {
                EditOp::SetDelay {
                    src,
                    snk,
                    ordinal: 0,
                    delay: delay + cons * (pair as u64 % 3 + 1),
                }
            } else {
                let g = gcd(prod, cons);
                let f = pair as u64 % 2 + 2;
                EditOp::SetRate {
                    src,
                    snk,
                    ordinal: 0,
                    prod: prod / g * f,
                    cons: cons / g * f,
                }
            }
        } else if delay_pair {
            EditOp::SetDelay {
                src,
                snk,
                ordinal: 0,
                delay,
            }
        } else {
            EditOp::SetRate {
                src,
                snk,
                ordinal: 0,
                prod,
                cons,
            }
        };
        steps.push(EditScript { ops: vec![op] });
    }
    steps
}

/// Parses a stream file: one edit per non-empty line, `#` comments.
fn parse_stream(text: &str) -> Result<Vec<EditScript>, String> {
    let mut steps = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let op = EditOp::parse(line).map_err(|e| format!("stream line {}: {e}", i + 1))?;
        steps.push(EditScript { ops: vec![op] });
    }
    Ok(steps)
}

fn render_stream(steps: &[EditScript]) -> String {
    let mut s = String::from(
        "# edit_bench stream: one edit per line, replayed as single-op steps.\n\
         # Regenerate with: cargo run --release --bin edit_bench -- \
         --sizes <n> --emit-stream <path>\n",
    );
    for step in steps {
        for op in &step.ops {
            s.push_str(&op.to_string());
            s.push('\n');
        }
    }
    s
}

/// The warm result must match a cold engine run (default options, no
/// memo) on the same graph, down to the plan JSON bytes.
fn check_matches_cold(graph: &SdfGraph, warm: &Analysis, context: &str) -> Result<(), String> {
    let cold = AnalysisBuilder::default()
        .run(graph)
        .map_err(|e| format!("{context}: cold run failed: {e}"))?;
    let diverged = |what: &str| format!("{context}: warm result diverged from cold run at {what}");
    if warm.repetitions != cold.repetitions {
        return Err(diverged("repetitions"));
    }
    if warm.winner != cold.winner {
        return Err(diverged("winner"));
    }
    if warm.nonshared_bufmem != cold.nonshared_bufmem {
        return Err(diverged("nonshared bufmem"));
    }
    if warm.schedule != cold.schedule {
        return Err(diverged("schedule tree"));
    }
    if warm.allocation != cold.allocation {
        return Err(diverged("allocation"));
    }
    if warm.mco != cold.mco || warm.mcp != cold.mcp {
        return Err(diverged("clique bounds"));
    }
    let warm_json = warm
        .plan(graph)
        .map_err(|e| format!("{context}: warm plan: {e}"))?
        .to_json();
    let cold_json = cold
        .plan(graph)
        .map_err(|e| format!("{context}: cold plan: {e}"))?
        .to_json();
    if warm_json != cold_json {
        return Err(diverged("plan JSON bytes"));
    }
    Ok(())
}

/// Aggregate of one size tier: one session, one edit stream.
struct TierSample {
    n: usize,
    graph: String,
    edits: usize,
    cold_runs: usize,
    cold_total_us: f64,
    seed_us: f64,
    warm_total_us: f64,
    warm_max_us: f64,
    memo_hits: u64,
    memo_misses: u64,
    lifetimes_reused: u64,
    placements_reused: u64,
    cells_spliced: u64,
    cells_recomputed: u64,
    dirty_edges_total: u64,
    verify: Verify,
}

impl TierSample {
    fn cold_mean_us(&self) -> f64 {
        self.cold_total_us / self.cold_runs.max(1) as f64
    }
    fn warm_mean_us(&self) -> f64 {
        self.warm_total_us / self.edits.max(1) as f64
    }
    fn speedup(&self) -> f64 {
        self.cold_mean_us() / self.warm_mean_us()
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Verify {
    None,
    Final,
    All,
}

impl Verify {
    fn as_str(self) -> &'static str {
        match self {
            Verify::None => "none",
            Verify::Final => "final",
            Verify::All => "all",
        }
    }
}

fn measure_tier(n: usize, steps: &[EditScript], verify: Verify) -> Result<TierSample, String> {
    let base = scale_chain(n);
    let mut tier = TierSample {
        n,
        graph: base.name().to_string(),
        edits: steps.len(),
        cold_runs: 0,
        cold_total_us: 0.0,
        seed_us: 0.0,
        warm_total_us: 0.0,
        warm_max_us: 0.0,
        memo_hits: 0,
        memo_misses: 0,
        lifetimes_reused: 0,
        placements_reused: 0,
        cells_spliced: 0,
        cells_recomputed: 0,
        dirty_edges_total: 0,
        verify,
    };

    // The stateless-daemon baseline: one full engine run on the base
    // graph, exactly what every edit would cost without a session.
    let t = Instant::now();
    AnalysisBuilder::default()
        .run(&base)
        .map_err(|e| format!("n={n}: cold run failed: {e}"))?;
    tier.cold_total_us += us(t);
    tier.cold_runs += 1;
    eprintln!(
        "{:>16} n={:<5} cold {:>14.1}µs",
        tier.graph, n, tier.cold_total_us
    );

    let mut session = IncrementalSession::new(SynthesisOptions::default());
    let t = Instant::now();
    session
        .synthesize(&base)
        .map_err(|e| format!("n={n}: seeding failed: {e}"))?;
    tier.seed_us = us(t);

    // Shadow the session's graph so verification runs against exactly
    // the graph each step produced.
    let mut current = base;
    for (k, step) in steps.iter().enumerate() {
        current = apply_edits(&current, step)
            .map_err(|e| format!("n={n} edit {}: bad stream op: {e}", k + 1))?;
        let t = Instant::now();
        let result = session
            .apply_edits(step)
            .map_err(|e| format!("n={n} edit {}: delta run failed: {e}", k + 1))?;
        let warm_us = us(t);
        tier.warm_total_us += warm_us;
        tier.warm_max_us = tier.warm_max_us.max(warm_us);
        let s = &result.stats;
        if s.cold {
            return Err(format!("n={n} edit {}: session fell back to cold", k + 1));
        }
        tier.memo_hits += s.memo_hits;
        tier.memo_misses += s.memo_misses;
        tier.lifetimes_reused += s.lifetimes_reused;
        tier.placements_reused += s.placements_reused;
        tier.cells_spliced += s.cells_spliced;
        tier.cells_recomputed += s.cells_recomputed;
        tier.dirty_edges_total += s.dirty_edges;
        if verify == Verify::All || (verify == Verify::Final && k + 1 == steps.len()) {
            let t = Instant::now();
            check_matches_cold(&current, &result.analysis, &format!("n={n} edit {}", k + 1))?;
            tier.cold_total_us += us(t);
            tier.cold_runs += 1;
        }
        if (k + 1) % 8 == 0 || k + 1 == steps.len() {
            eprintln!(
                "{:>16} n={:<5} edit {:>3}/{}  warm {:>10.1}µs  dirty {}  memo {}h/{}m",
                tier.graph,
                n,
                k + 1,
                steps.len(),
                warm_us,
                s.dirty_edges,
                s.memo_hits,
                s.memo_misses,
            );
        }
    }
    Ok(tier)
}

/// One `bench_trajectory` point per tier, same envelope as the
/// engine-sweep and scale-bench trajectories.
fn trajectory_point(tier: &TierSample) -> String {
    let unix_s = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    format!(
        "{{\"unix_s\":{unix_s},\"n\":{},\"graph\":\"{}\",\"edits\":{},\
         \"cold_runs\":{},\"cold_mean_us\":{:.3},\"seed_us\":{:.3},\
         \"warm_total_us\":{:.3},\"warm_mean_us\":{:.3},\"warm_max_us\":{:.3},\
         \"speedup\":{:.3},\"memo_hits\":{},\"memo_misses\":{},\
         \"lifetimes_reused\":{},\"placements_reused\":{},\
         \"cells_spliced\":{},\"cells_recomputed\":{},\
         \"dirty_edges_total\":{},\"verify\":\"{}\"}}",
        tier.n,
        tier.graph,
        tier.edits,
        tier.cold_runs,
        tier.cold_mean_us(),
        tier.seed_us,
        tier.warm_total_us,
        tier.warm_mean_us(),
        tier.warm_max_us,
        tier.speedup(),
        tier.memo_hits,
        tier.memo_misses,
        tier.lifetimes_reused,
        tier.placements_reused,
        tier.cells_spliced,
        tier.cells_recomputed,
        tier.dirty_edges_total,
        tier.verify.as_str(),
    )
}

fn bench_json(tiers: &[TierSample]) -> String {
    let mut s = sdf_trace::json::document_header("bench_trajectory");
    s.push_str("\"bench\":\"edit_bench\",\"points\":[");
    for (i, tier) in tiers.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&trajectory_point(tier));
    }
    s.push_str("]}\n");
    s
}

fn real_main() -> Result<(), String> {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
    };
    let sizes: Vec<usize> = match flag("--sizes") {
        Some(list) => list
            .split(',')
            .map(|tok| {
                tok.trim()
                    .parse::<usize>()
                    .map_err(|_| format!("bad --sizes entry `{tok}`"))
            })
            .collect::<Result<_, _>>()?,
        None => SIZES.to_vec(),
    };
    let edits: usize = match flag("--edits") {
        Some(v) => v.parse().map_err(|_| format!("bad --edits value `{v}`"))?,
        None => 32,
    };
    let verify = match flag("--verify").map(String::as_str) {
        None | Some("final") => Verify::Final,
        Some("all") => Verify::All,
        Some("none") => Verify::None,
        Some(v) => return Err(format!("bad --verify value `{v}` (none|final|all)")),
    };
    let min_speedup: f64 = match flag("--min-speedup") {
        Some(v) => v
            .parse()
            .map_err(|_| format!("bad --min-speedup value `{v}`"))?,
        None => 10.0,
    };
    let budget_s: Option<u64> = match flag("--budget-s") {
        Some(v) => Some(
            v.parse()
                .map_err(|_| format!("bad --budget-s value `{v}`"))?,
        ),
        None => None,
    };
    let out_path = flag("--out").cloned().unwrap_or("BENCH_9.json".to_string());
    let stream_in = flag("--stream").cloned();
    let stream_out = flag("--emit-stream").cloned();
    if (stream_in.is_some() || stream_out.is_some()) && sizes.len() != 1 {
        return Err("--stream/--emit-stream need exactly one --sizes entry \
                    (actor names bind a stream to its size)"
            .to_string());
    }

    let started = Instant::now();
    let mut tiers = Vec::new();
    for &n in &sizes {
        let steps = match &stream_in {
            Some(path) => {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read {path}: {e}"))?;
                parse_stream(&text)?
            }
            None => generate_stream(&scale_chain(n), edits),
        };
        if let Some(path) = &stream_out {
            std::fs::write(path, render_stream(&steps))
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote {path} ({} edits)", steps.len());
        }
        tiers.push(measure_tier(n, &steps, verify)?);
        if let Some(budget) = budget_s {
            if started.elapsed().as_secs() > budget {
                return Err(format!(
                    "wall-clock budget exceeded: {}s > {budget}s after tier n={n}",
                    started.elapsed().as_secs()
                ));
            }
        }
    }

    let body = bench_json(&tiers);
    sdf_trace::json::parse(&body).map_err(|e| format!("internal: bad bench JSON: {e}"))?;
    std::fs::write(&out_path, &body).map_err(|e| format!("cannot write {out_path}: {e}"))?;
    eprintln!("wrote {out_path}");

    eprintln!();
    eprintln!(
        "{:>6} {:>6} {:>14} {:>14} {:>8} {:>12}",
        "n", "edits", "cold µs", "warm mean µs", "speedup", "memo h/m"
    );
    for tier in &tiers {
        eprintln!(
            "{:>6} {:>6} {:>14.1} {:>14.1} {:>7.1}x {:>8}/{}",
            tier.n,
            tier.edits,
            tier.cold_mean_us(),
            tier.warm_mean_us(),
            tier.speedup(),
            tier.memo_hits,
            tier.memo_misses,
        );
    }

    // The headline gate: warm edits at the largest tier must be at
    // least `min_speedup` times cheaper than the stateless cold run.
    if let Some(largest) = tiers.iter().max_by_key(|t| t.n) {
        let speedup = largest.speedup();
        if speedup < min_speedup {
            return Err(format!(
                "warm-edit speedup {speedup:.2}x at n={} below required {min_speedup}x",
                largest.n
            ));
        }
        eprintln!(
            "speedup gate: {speedup:.2}x >= {min_speedup}x at n={} ✓",
            largest.n
        );
        if largest.memo_hits == 0 {
            return Err(format!(
                "no memo hits across {} edits at n={} — memoization is dead",
                largest.edits, largest.n
            ));
        }
    }
    Ok(())
}

fn main() {
    if let Err(message) = real_main() {
        eprintln!("error: {message}");
        std::process::exit(1);
    }
}
