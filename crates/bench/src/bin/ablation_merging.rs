//! The **§12 buffer-merging extension**: how much further the shared
//! allocation drops when actors may overwrite their inputs in place
//! (consume-before-produce = 0 for every actor — the optimistic bound).

use sdf_alloc::{allocate, validate_allocation, AllocationOrder, PlacementPolicy};
use sdf_apps::registry::table1_systems;
use sdf_core::RepetitionsVector;
use sdf_lifetime::merge::{CbpSpec, MergedGraph};
use sdf_lifetime::tree::ScheduleTree;
use sdf_lifetime::wig::IntersectionGraph;
use sdf_sched::{apgan, rpmc, sdppo};

fn main() {
    println!(
        "{:>12} {:>8} {:>8} {:>9}",
        "system", "shared", "merged", "extra"
    );
    let mut sums = [0u64; 2];
    for graph in table1_systems() {
        let q = RepetitionsVector::compute(&graph).expect("consistent");
        let spec = CbpSpec::all_in_place(&graph);
        let mut shared_best = u64::MAX;
        let mut merged_best = u64::MAX;
        for order in [rpmc(&graph, &q), apgan(&graph, &q)] {
            let order = order.expect("acyclic");
            let sas = sdppo(&graph, &q, &order).expect("sdppo").tree;
            let tree = ScheduleTree::build(&graph, &q, &sas).expect("tree");
            let wig = IntersectionGraph::build(&graph, &q, &tree);
            let merged = MergedGraph::build(&graph, &wig, &spec);
            for ord in [
                AllocationOrder::DurationDescending,
                AllocationOrder::StartAscending,
            ] {
                let a = allocate(&wig, ord, PlacementPolicy::FirstFit);
                validate_allocation(&wig, &a).expect("valid");
                shared_best = shared_best.min(a.total());
                let m = allocate(&merged, ord, PlacementPolicy::FirstFit);
                validate_allocation(&merged, &m).expect("valid");
                merged_best = merged_best.min(m.total());
            }
        }
        sums[0] += shared_best;
        sums[1] += merged_best;
        println!(
            "{:>12} {:>8} {:>8} {:>8.1}%",
            graph.name(),
            shared_best,
            merged_best,
            (shared_best as f64 - merged_best as f64) / shared_best.max(1) as f64 * 100.0
        );
    }
    println!(
        "{:>12} {:>8} {:>8}   (sums; merging is the paper's §12 future work,\n\
         here with the optimistic all-in-place CBP = 0 assumption)",
        "TOTAL", sums[0], sums[1]
    );
}
