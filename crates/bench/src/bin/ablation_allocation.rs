//! Ablation of the **allocation strategy**: first-fit by duration, by
//! start time, in raw insertion order, and best-fit by duration, on every
//! practical system's SDPPO schedule.

use sdf_alloc::{allocate, AllocationOrder, PlacementPolicy};
use sdf_apps::registry::table1_systems;
use sdf_core::RepetitionsVector;
use sdf_lifetime::tree::ScheduleTree;
use sdf_lifetime::wig::IntersectionGraph;
use sdf_sched::{apgan, rpmc, sdppo};

fn main() {
    println!(
        "{:>12} {:>8} {:>9} {:>10} {:>9}",
        "system", "ffdur", "ffstart", "ffinsert", "bfdur"
    );
    let mut sums = [0u64; 4];
    for graph in table1_systems() {
        let q = RepetitionsVector::compute(&graph).expect("consistent");
        let mut best = [u64::MAX; 4];
        for order in [rpmc(&graph, &q), apgan(&graph, &q)] {
            let order = order.expect("acyclic");
            let s = sdppo(&graph, &q, &order).expect("sdppo");
            let tree = ScheduleTree::build(&graph, &q, &s.tree).expect("valid SAS");
            let wig = IntersectionGraph::build(&graph, &q, &tree);
            let variants = [
                (
                    AllocationOrder::DurationDescending,
                    PlacementPolicy::FirstFit,
                ),
                (AllocationOrder::StartAscending, PlacementPolicy::FirstFit),
                (AllocationOrder::Insertion, PlacementPolicy::FirstFit),
                (
                    AllocationOrder::DurationDescending,
                    PlacementPolicy::BestFit,
                ),
            ];
            for (slot, (ord, pol)) in variants.into_iter().enumerate() {
                best[slot] = best[slot].min(allocate(&wig, ord, pol).total());
            }
        }
        for (s, b) in sums.iter_mut().zip(best) {
            *s += b;
        }
        println!(
            "{:>12} {:>8} {:>9} {:>10} {:>9}",
            graph.name(),
            best[0],
            best[1],
            best[2],
            best[3]
        );
    }
    println!(
        "{:>12} {:>8} {:>9} {:>10} {:>9}   (sum; the paper's choice ffdur should lead)",
        "TOTAL", sums[0], sums[1], sums[2], sums[3]
    );
}
