//! Reproduces the **§11.1.2 comparison with Ritz et al.**: shared
//! allocation on a *flat* SAS (the only schedule class Ritz's formulation
//! handles) versus our nested SDPPO schedule, on the satellite receiver.
//!
//! The paper reports Ritz's method needs > 2000 units on satrec while the
//! lifetime-analysis flow needs 991 — flat schedules leave the big
//! decimation buffers at full period size.

use sdf_alloc::{allocate, AllocationOrder, PlacementPolicy};
use sdf_apps::registry::by_name;
use sdf_bench::run_table1_row;
use sdf_core::schedule::{SasNode, SasTree};
use sdf_core::RepetitionsVector;
use sdf_lifetime::tree::ScheduleTree;
use sdf_lifetime::wig::IntersectionGraph;
use sdf_sched::local_search::improve_order;
use sdf_sched::{apgan, rpmc};

/// Builds the right-nested SAS tree of the *flat* schedule
/// `(q1 x1)(q2 x2)…(qn xn)` for a lexical order.
fn flat_sas_tree(order: &[sdf_core::ActorId], q: &RepetitionsVector) -> SasTree {
    let mut iter = order.iter().rev();
    let last = *iter.next().expect("nonempty order");
    let mut node = SasNode::leaf(last, q.get(last));
    for &a in iter {
        node = SasNode::branch(1, SasNode::leaf(a, q.get(a)), node);
    }
    SasTree::new(node)
}

fn main() {
    let graph = by_name("satrec").expect("registered benchmark");
    let q = RepetitionsVector::compute(&graph).expect("consistent");

    // Ritz's formulation chooses the topological sort that minimises the
    // flat-SAS shared allocation; emulate it with hill-climbing over
    // orders using that exact objective.
    let flat_cost = |order: &[sdf_core::ActorId]| -> u64 {
        let sas = flat_sas_tree(order, &q);
        let tree = ScheduleTree::build(&graph, &q, &sas).expect("valid flat SAS");
        let wig = IntersectionGraph::build(&graph, &q, &tree);
        let d = allocate(
            &wig,
            AllocationOrder::DurationDescending,
            PlacementPolicy::FirstFit,
        );
        let s = allocate(
            &wig,
            AllocationOrder::StartAscending,
            PlacementPolicy::FirstFit,
        );
        d.total().min(s.total())
    };
    let mut flat_best = u64::MAX;
    for order in [rpmc(&graph, &q), apgan(&graph, &q)] {
        let order = order.expect("acyclic");
        let improved = improve_order(&graph, order, flat_cost, 2000);
        flat_best = flat_best.min(improved.cost);
    }

    let nested = run_table1_row(&graph).expect("pipeline");
    println!("satellite receiver, shared-buffer allocation:");
    println!("  flat SAS (Ritz-style schedule class): {flat_best}");
    println!(
        "  nested SDPPO schedule:                {}",
        nested.best_shared()
    );
    println!(
        "  ratio: {:.2}x  (paper: Ritz >2000 vs lifetime-analysis 991, >2x)",
        flat_best as f64 / nested.best_shared().max(1) as f64
    );
}
