//! Reproduces **§10.2 / Fig. 26**: homogeneous M×N graphs where shared
//! allocation reaches M+1 words while a non-shared implementation needs
//! M(N+1).

use sdf_apps::homogeneous::{homogeneous_grid, nonshared_requirement, shared_optimum};
use sdf_bench::{fmt_row, run_table1_row};

fn main() {
    println!("Fig. 26 — homogeneous M x N graphs: shared vs non-shared\n");
    let widths = [10, 12, 12, 12, 14];
    println!(
        "{}",
        fmt_row(
            &[
                "graph",
                "shared",
                "expect M+1",
                "non-shared",
                "expect M(N+1)"
            ]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
            &widths
        )
    );
    for m in [2u64, 3, 4, 6, 8] {
        for n in [2u64, 4, 6, 10] {
            let g = homogeneous_grid(m as usize, n as usize);
            match run_table1_row(&g) {
                Ok(row) => {
                    let cells = vec![
                        format!("{m}x{n}"),
                        row.best_shared().to_string(),
                        shared_optimum(m).to_string(),
                        row.best_nonshared().to_string(),
                        nonshared_requirement(m, n).to_string(),
                    ];
                    println!("{}", fmt_row(&cells, &widths));
                }
                Err(e) => println!("{m}x{n}: {e}"),
            }
        }
    }
    println!(
        "\nThe paper reports that running the complete suite on this family \
         yields an allocation of exactly M+1 for any M and N."
    );
}
