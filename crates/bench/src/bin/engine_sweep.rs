//! Benchmarks the synthesis engine's parallel candidate evaluation
//! against the serial baseline on the paper's systems plus large
//! homogeneous grids, printing each run's per-stage timing report as JSON
//! and a serial/parallel speedup summary, and writing the whole sweep —
//! timings plus a traced run's algorithm counters per system — to a
//! `BENCH_3.json` machine-readable artifact.
//!
//! The binary is also the maintenance tool of the regression-sentinel
//! corpus under `bench/baselines/`:
//!
//! * `--baseline DIR` captures a fresh sentinel profile for every graph
//!   in the example corpus (`examples/graphs/*.sdf`), writes them to
//!   `DIR/<graph>.json`, and appends one trajectory point to the bench
//!   artifact so successive captures stay comparable over time;
//! * `--gate DIR` re-captures each profiled graph and diffs it against
//!   the committed baseline, writing a markdown report and exiting 1 on
//!   any gated regression — this is what CI's perf-gate job runs.
//!
//! ```text
//! cargo run --release --bin engine_sweep [-- --min-actors N] [--repeats N] [--out FILE]
//! cargo run --release --bin engine_sweep -- --baseline bench/baselines [--graphs DIR]
//! cargo run --release --bin engine_sweep -- --gate bench/baselines [--report-out FILE]
//! ```

use std::sync::Arc;

use sdf_apps::homogeneous::homogeneous_grid;
use sdf_apps::registry::table1_systems;
use sdf_core::SdfGraph;
use sdf_regress::{diff, DiffOptions, Profile, RegressionReport};
use sdfmem::engine::AnalysisBuilder;
use sdfmem::sched::LoopVariant;
use sdfmem::sentinel::{capture_profile, CaptureOptions, PERTURB_ENV};

/// Wall times of one serial-vs-parallel comparison, plus the traced
/// (untimed) run's full engine report with counters.
struct Sample {
    name: String,
    serial_ns: u64,
    parallel_ns: u64,
    /// `EngineReport::to_json` of a run under an installed recorder, so
    /// its `counters` section is populated.
    traced_report_json: String,
}

fn measure(graph: &SdfGraph, repeats: u32) -> Sample {
    let serial = AnalysisBuilder::new()
        .loop_opts(LoopVariant::ALL)
        .parallel(false);
    let parallel = serial.clone().parallel(true);
    // Warm-up run of each, then keep the fastest of `repeats` to damp
    // scheduler noise.
    let mut serial_ns = u64::MAX;
    let mut parallel_ns = u64::MAX;
    let mut last_json = String::new();
    serial.run_full(graph).expect("serial engine");
    parallel.run_full(graph).expect("parallel engine");
    for _ in 0..repeats {
        let s = serial.run_full(graph).expect("serial engine");
        serial_ns = serial_ns.min(s.report.total_ns);
        let p = parallel.run_full(graph).expect("parallel engine");
        parallel_ns = parallel_ns.min(p.report.total_ns);
        assert_eq!(
            s.analysis.shared_total(),
            p.analysis.shared_total(),
            "{}: serial and parallel winners diverge",
            graph.name()
        );
        last_json = p.report.to_json();
    }
    println!("{last_json}");
    // One extra run under a recorder, outside the timing loop so tracing
    // overhead never contaminates the serial/parallel comparison.
    let recorder = Arc::new(sdf_trace::Recorder::new());
    let traced = sdf_trace::scoped(&recorder, || parallel.run_full(graph)).expect("traced engine");
    Sample {
        name: graph.name().to_string(),
        serial_ns,
        parallel_ns,
        traced_report_json: traced.report.to_json(),
    }
}

/// Renders the sweep as the `BENCH_3.json` artifact: schema version, the
/// serial/parallel minima in microseconds and each system's traced report
/// (embedded verbatim — it is already JSON).
fn bench_json(samples: &[Sample]) -> String {
    let us = |ns: u64| format!("{}.{:03}", ns / 1_000, ns % 1_000);
    let mut s = sdf_trace::json::document_header("engine_sweep");
    s.push_str("\"bench\":\"engine_sweep\",\"systems\":[");
    for (i, sample) in samples.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("{\"name\":\"");
        s.push_str(&sdf_trace::json::escape(&sample.name));
        s.push_str("\",\"serial_us\":");
        s.push_str(&us(sample.serial_ns));
        s.push_str(",\"parallel_us\":");
        s.push_str(&us(sample.parallel_ns));
        s.push_str(",\"report\":");
        s.push_str(&sample.traced_report_json);
        s.push('}');
    }
    s.push_str("]}");
    s
}

/// Parses every `*.sdf` file under `dir`, sorted by file name so the
/// corpus order (and with it every report) is deterministic.
fn load_corpus(dir: &str) -> Result<Vec<SdfGraph>, String> {
    let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read graph corpus {dir}: {e}"))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "sdf"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(format!("graph corpus {dir} has no .sdf files"));
    }
    let mut graphs = Vec::with_capacity(paths.len());
    for path in paths {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let graph =
            sdf_core::io::parse_graph(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        graphs.push(graph);
    }
    Ok(graphs)
}

/// One sentinel capture per corpus graph. The capture honours the
/// `SDF_REGRESS_PERTURB` test hook so the gate can be exercised
/// end-to-end without a real regression.
fn capture_corpus(graphs: &[SdfGraph], repeats: u32) -> Result<Vec<Profile>, String> {
    let options = CaptureOptions {
        repeats,
        full: true,
        perturb: std::env::var(PERTURB_ENV).ok(),
    };
    graphs
        .iter()
        .map(|graph| capture_profile(graph, &options))
        .collect()
}

/// Appends one trajectory point to the bench artifact, keeping the file
/// a single valid JSON document of kind `bench_trajectory`. A missing or
/// foreign file starts a fresh trajectory.
fn trajectory_append(path: &str, point: &str) -> Result<(), String> {
    let mut header = sdf_trace::json::document_header("bench_trajectory");
    header.push_str("\"points\":[");
    let existing = std::fs::read_to_string(path)
        .ok()
        .filter(|text| text.starts_with(&header) && sdf_trace::json::parse(text).is_ok());
    let body = match existing {
        // The file is our own format: splice before the closing "]}".
        Some(text) => {
            let open = text.trim_end().trim_end_matches("]}").to_string();
            let separator = if open.ends_with('[') { "" } else { "," };
            format!("{open}{separator}{point}]}}\n")
        }
        None => format!("{header}{point}]}}\n"),
    };
    sdf_trace::json::parse(&body).map_err(|e| format!("internal: bad trajectory JSON: {e}"))?;
    std::fs::write(path, body).map_err(|e| format!("cannot write {path}: {e}"))
}

/// Summarises one baseline capture as a trajectory point.
fn trajectory_point(profiles: &[Profile]) -> String {
    let unix_s = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let counters: u64 = profiles
        .iter()
        .flat_map(|p| p.counters.iter().map(|(_, v)| *v))
        .sum();
    let shared: u64 = profiles.iter().map(|p| p.outcomes.shared_bufmem).sum();
    let nonshared: u64 = profiles.iter().map(|p| p.outcomes.nonshared_bufmem).sum();
    let median_total_us: f64 = profiles
        .iter()
        .filter_map(|p| {
            p.timings
                .iter()
                .find(|(n, _)| n == "engine.total")
                .map(|(_, stat)| stat.median_us)
        })
        .sum();
    format!(
        "{{\"unix_s\":{unix_s},\"graphs\":{},\"counter_total\":{counters},\
         \"shared_bufmem_total\":{shared},\"nonshared_bufmem_total\":{nonshared},\
         \"engine_total_us\":{median_total_us:.3}}}",
        profiles.len()
    )
}

/// `--baseline DIR`: refresh the committed corpus and extend the
/// trajectory.
fn run_baseline(dir: &str, graphs_dir: &str, repeats: u32, out_path: &str) -> Result<(), String> {
    let graphs = load_corpus(graphs_dir)?;
    let profiles = capture_corpus(&graphs, repeats)?;
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir}: {e}"))?;
    for profile in &profiles {
        let path = format!("{dir}/{}.json", profile.graph);
        std::fs::write(&path, profile.to_json())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!(
            "baseline {}: {} counters, shared {} / non-shared {} words",
            profile.graph,
            profile.counters.len(),
            profile.outcomes.shared_bufmem,
            profile.outcomes.nonshared_bufmem
        );
    }
    trajectory_append(out_path, &trajectory_point(&profiles))?;
    eprintln!(
        "wrote {} baselines to {dir}, trajectory point to {out_path}",
        profiles.len()
    );
    Ok(())
}

/// `--gate DIR`: re-capture and diff against the committed corpus.
/// Returns the per-graph reports; any gate failure fails the run.
fn run_gate(dir: &str, graphs_dir: &str, repeats: u32, report_path: &str) -> Result<bool, String> {
    let graphs = load_corpus(graphs_dir)?;
    let candidates = capture_corpus(&graphs, repeats)?;
    let options = DiffOptions::default();
    let mut reports: Vec<RegressionReport> = Vec::new();
    let mut missing: Vec<String> = Vec::new();
    for candidate in &candidates {
        let path = format!("{dir}/{}.json", candidate.graph);
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(_) => {
                // A new example graph with no committed baseline yet is
                // reported, not gated — the next --baseline run adopts it.
                missing.push(candidate.graph.clone());
                continue;
            }
        };
        let baseline = Profile::parse(&text).map_err(|e| format!("{path}: {e}"))?;
        reports.push(diff(&baseline, candidate, &options));
    }
    let failures: usize = reports.iter().map(RegressionReport::gate_failures).sum();
    let mut md = String::from("# Regression sentinel report\n\n");
    md.push_str(&format!(
        "Corpus: {} graph(s), {} with committed baselines; {} gate failure(s).\n\n",
        candidates.len(),
        reports.len(),
        failures
    ));
    for name in &missing {
        md.push_str(&format!(
            "> `{name}` has no committed baseline yet — run `engine_sweep --baseline` to adopt it.\n\n"
        ));
    }
    for report in &reports {
        md.push_str(&format!("## {}\n\n", report.graph));
        md.push_str(&report.to_markdown());
        md.push('\n');
    }
    std::fs::write(report_path, &md).map_err(|e| format!("cannot write {report_path}: {e}"))?;
    for report in &reports {
        eprint!("{}", report.to_text());
    }
    eprintln!("wrote {report_path}");
    Ok(failures == 0)
}

/// The classic serial-vs-parallel sweep, writing the bench artifact.
fn run_sweep(min_actors: usize, repeats: u32, out_path: &str) -> Result<(), String> {
    let mut graphs: Vec<SdfGraph> = table1_systems();
    // Grids give the parallel path enough per-candidate work to amortise
    // thread spawns.
    graphs.push(homogeneous_grid(12, 12));
    graphs.push(homogeneous_grid(16, 16));
    graphs.retain(|g| g.actor_count() >= min_actors);

    let mut samples = Vec::new();
    for graph in &graphs {
        samples.push(measure(graph, repeats));
    }

    std::fs::write(out_path, bench_json(&samples))
        .map_err(|e| format!("cannot write {out_path}: {e}"))?;
    eprintln!("wrote {out_path}");

    eprintln!();
    eprintln!(
        "{:>14} {:>12} {:>12} {:>8}",
        "system", "serial µs", "parallel µs", "speedup"
    );
    let (mut total_s, mut total_p) = (0u64, 0u64);
    for s in &samples {
        total_s += s.serial_ns;
        total_p += s.parallel_ns;
        eprintln!(
            "{:>14} {:>12.1} {:>12.1} {:>7.2}x",
            s.name,
            s.serial_ns as f64 / 1e3,
            s.parallel_ns as f64 / 1e3,
            s.serial_ns as f64 / s.parallel_ns as f64
        );
    }
    eprintln!(
        "{:>14} {:>12.1} {:>12.1} {:>7.2}x",
        "TOTAL",
        total_s as f64 / 1e3,
        total_p as f64 / 1e3,
        total_s as f64 / total_p as f64
    );
    Ok(())
}

fn real_main() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
    };
    let numeric = |name: &str, default: u64| -> Result<u64, String> {
        match flag(name) {
            Some(v) => v
                .parse::<u64>()
                .map_err(|_| format!("bad {name} value: `{v}` is not a number")),
            None => Ok(default),
        }
    };
    let min_actors = numeric("--min-actors", 0)? as usize;
    let repeats = numeric("--repeats", 5)?.clamp(1, 1_000) as u32;
    let out_path = flag("--out").cloned().unwrap_or("BENCH_3.json".to_string());
    let graphs_dir = flag("--graphs")
        .cloned()
        .unwrap_or("examples/graphs".to_string());
    let report_path = flag("--report-out")
        .cloned()
        .unwrap_or("regress-report.md".to_string());

    if let Some(dir) = flag("--baseline").cloned() {
        // Baseline captures default to 3 repeats unless asked otherwise.
        let repeats = numeric("--repeats", 3)?.clamp(1, 1_000) as u32;
        run_baseline(&dir, &graphs_dir, repeats, &out_path)?;
        return Ok(true);
    }
    if let Some(dir) = flag("--gate").cloned() {
        let repeats = numeric("--repeats", 3)?.clamp(1, 1_000) as u32;
        return run_gate(&dir, &graphs_dir, repeats, &report_path);
    }
    run_sweep(min_actors, repeats, &out_path)?;
    Ok(true)
}

fn main() {
    match real_main() {
        Ok(true) => {}
        Ok(false) => {
            eprintln!("regression gate FAILED");
            std::process::exit(1);
        }
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(2);
        }
    }
}
