//! Benchmarks the synthesis engine's parallel candidate evaluation
//! against the serial baseline on the paper's systems plus large
//! homogeneous grids, printing each run's per-stage timing report as JSON
//! and a serial/parallel speedup summary, and writing the whole sweep —
//! timings plus a traced run's algorithm counters per system — to a
//! `BENCH_2.json` machine-readable artifact.
//!
//! ```text
//! cargo run --release --bin engine_sweep [-- --min-actors N] [--repeats N] [--out FILE]
//! ```

use std::sync::Arc;

use sdf_apps::homogeneous::homogeneous_grid;
use sdf_apps::registry::table1_systems;
use sdf_core::SdfGraph;
use sdfmem::engine::AnalysisBuilder;
use sdfmem::sched::LoopVariant;

/// Wall times of one serial-vs-parallel comparison, plus the traced
/// (untimed) run's full engine report with counters.
struct Sample {
    name: String,
    serial_ns: u64,
    parallel_ns: u64,
    /// `EngineReport::to_json` of a run under an installed recorder, so
    /// its `counters` section is populated.
    traced_report_json: String,
}

fn measure(graph: &SdfGraph, repeats: u32) -> Sample {
    let serial = AnalysisBuilder::new()
        .loop_opts(LoopVariant::ALL)
        .parallel(false);
    let parallel = serial.clone().parallel(true);
    // Warm-up run of each, then keep the fastest of `repeats` to damp
    // scheduler noise.
    let mut serial_ns = u64::MAX;
    let mut parallel_ns = u64::MAX;
    let mut last_json = String::new();
    serial.run_full(graph).expect("serial engine");
    parallel.run_full(graph).expect("parallel engine");
    for _ in 0..repeats {
        let s = serial.run_full(graph).expect("serial engine");
        serial_ns = serial_ns.min(s.report.total_ns);
        let p = parallel.run_full(graph).expect("parallel engine");
        parallel_ns = parallel_ns.min(p.report.total_ns);
        assert_eq!(
            s.analysis.shared_total(),
            p.analysis.shared_total(),
            "{}: serial and parallel winners diverge",
            graph.name()
        );
        last_json = p.report.to_json();
    }
    println!("{last_json}");
    // One extra run under a recorder, outside the timing loop so tracing
    // overhead never contaminates the serial/parallel comparison.
    let recorder = Arc::new(sdf_trace::Recorder::new());
    let traced = sdf_trace::scoped(&recorder, || parallel.run_full(graph)).expect("traced engine");
    Sample {
        name: graph.name().to_string(),
        serial_ns,
        parallel_ns,
        traced_report_json: traced.report.to_json(),
    }
}

/// Renders the sweep as the `BENCH_2.json` artifact: schema version, the
/// serial/parallel minima in microseconds and each system's traced report
/// (embedded verbatim — it is already JSON).
fn bench_json(samples: &[Sample]) -> String {
    let us = |ns: u64| format!("{}.{:03}", ns / 1_000, ns % 1_000);
    let mut s = String::from("{\"schema_version\":");
    s.push_str(&sdf_trace::SCHEMA_VERSION.to_string());
    s.push_str(",\"bench\":\"engine_sweep\",\"systems\":[");
    for (i, sample) in samples.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("{\"name\":\"");
        s.push_str(&sdf_trace::json::escape(&sample.name));
        s.push_str("\",\"serial_us\":");
        s.push_str(&us(sample.serial_ns));
        s.push_str(",\"parallel_us\":");
        s.push_str(&us(sample.parallel_ns));
        s.push_str(",\"report\":");
        s.push_str(&sample.traced_report_json);
        s.push('}');
    }
    s.push_str("]}");
    s
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
    };
    let min_actors: usize = flag("--min-actors")
        .map(|v| v.parse().expect("--min-actors takes a number"))
        .unwrap_or(0);
    let repeats: u32 = flag("--repeats")
        .map(|v| v.parse().expect("--repeats takes a number"))
        .unwrap_or(5);
    let out_path = flag("--out").cloned().unwrap_or("BENCH_2.json".to_string());

    let mut graphs: Vec<SdfGraph> = table1_systems();
    // Grids give the parallel path enough per-candidate work to amortise
    // thread spawns.
    graphs.push(homogeneous_grid(12, 12));
    graphs.push(homogeneous_grid(16, 16));
    graphs.retain(|g| g.actor_count() >= min_actors);

    let mut samples = Vec::new();
    for graph in &graphs {
        samples.push(measure(graph, repeats));
    }

    std::fs::write(&out_path, bench_json(&samples)).expect("write bench artifact");
    eprintln!("wrote {out_path}");

    eprintln!();
    eprintln!(
        "{:>14} {:>12} {:>12} {:>8}",
        "system", "serial µs", "parallel µs", "speedup"
    );
    let (mut total_s, mut total_p) = (0u64, 0u64);
    for s in &samples {
        total_s += s.serial_ns;
        total_p += s.parallel_ns;
        eprintln!(
            "{:>14} {:>12.1} {:>12.1} {:>7.2}x",
            s.name,
            s.serial_ns as f64 / 1e3,
            s.parallel_ns as f64 / 1e3,
            s.serial_ns as f64 / s.parallel_ns as f64
        );
    }
    eprintln!(
        "{:>14} {:>12.1} {:>12.1} {:>7.2}x",
        "TOTAL",
        total_s as f64 / 1e3,
        total_p as f64 / 1e3,
        total_s as f64 / total_p as f64
    );
}
