//! Benchmarks the synthesis engine's parallel candidate evaluation
//! against the serial baseline on the paper's systems plus large
//! homogeneous grids, printing each run's per-stage timing report as JSON
//! and a serial/parallel speedup summary.
//!
//! ```text
//! cargo run --release --bin engine_sweep [-- --min-actors N]
//! ```

use sdf_apps::homogeneous::homogeneous_grid;
use sdf_apps::registry::table1_systems;
use sdf_core::SdfGraph;
use sdfmem::engine::AnalysisBuilder;
use sdfmem::sched::LoopVariant;

/// Wall times of one serial-vs-parallel comparison.
struct Sample {
    name: String,
    serial_ns: u64,
    parallel_ns: u64,
}

fn measure(graph: &SdfGraph, repeats: u32) -> Sample {
    let serial = AnalysisBuilder::new()
        .loop_opts(LoopVariant::ALL)
        .parallel(false);
    let parallel = serial.clone().parallel(true);
    // Warm-up run of each, then keep the fastest of `repeats` to damp
    // scheduler noise.
    let mut serial_ns = u64::MAX;
    let mut parallel_ns = u64::MAX;
    let mut last_json = String::new();
    serial.run_full(graph).expect("serial engine");
    parallel.run_full(graph).expect("parallel engine");
    for _ in 0..repeats {
        let s = serial.run_full(graph).expect("serial engine");
        serial_ns = serial_ns.min(s.report.total_ns);
        let p = parallel.run_full(graph).expect("parallel engine");
        parallel_ns = parallel_ns.min(p.report.total_ns);
        assert_eq!(
            s.analysis.shared_total(),
            p.analysis.shared_total(),
            "{}: serial and parallel winners diverge",
            graph.name()
        );
        last_json = p.report.to_json();
    }
    println!("{last_json}");
    Sample {
        name: graph.name().to_string(),
        serial_ns,
        parallel_ns,
    }
}

fn main() {
    let min_actors: usize = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--min-actors")
            .and_then(|i| args.get(i + 1))
            .map(|v| v.parse().expect("--min-actors takes a number"))
            .unwrap_or(0)
    };

    let mut graphs: Vec<SdfGraph> = table1_systems();
    // Grids give the parallel path enough per-candidate work to amortise
    // thread spawns.
    graphs.push(homogeneous_grid(12, 12));
    graphs.push(homogeneous_grid(16, 16));
    graphs.retain(|g| g.actor_count() >= min_actors);

    let mut samples = Vec::new();
    for graph in &graphs {
        samples.push(measure(graph, 5));
    }

    eprintln!();
    eprintln!(
        "{:>14} {:>12} {:>12} {:>8}",
        "system", "serial µs", "parallel µs", "speedup"
    );
    let (mut total_s, mut total_p) = (0u64, 0u64);
    for s in &samples {
        total_s += s.serial_ns;
        total_p += s.parallel_ns;
        eprintln!(
            "{:>14} {:>12.1} {:>12.1} {:>7.2}x",
            s.name,
            s.serial_ns as f64 / 1e3,
            s.parallel_ns as f64 / 1e3,
            s.serial_ns as f64 / s.parallel_ns as f64
        );
    }
    eprintln!(
        "{:>14} {:>12.1} {:>12.1} {:>7.2}x",
        "TOTAL",
        total_s as f64 / 1e3,
        total_p as f64 / 1e3,
        total_s as f64 / total_p as f64
    );
}
