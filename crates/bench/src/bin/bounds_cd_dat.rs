//! Reproduces the **§11.1.3 buffer-bound discussion** on the CD-to-DAT
//! rate converter: the per-edge minimum over all valid schedules (achieved
//! by the greedy demand-driven scheduler), the BMLB over all SASs, and the
//! DPPO/SDPPO results, showing the SAS-vs-arbitrary-schedule gap.

use sdf_apps::dsp::cd_to_dat;
use sdf_bench::run_table1_row;
use sdf_core::bounds::{bmlb, min_buffer_bound};
use sdf_core::simulate::validate_schedule;
use sdf_core::RepetitionsVector;
use sdf_sched::demand::demand_driven_schedule;

fn main() {
    let graph = cd_to_dat();
    let q = RepetitionsVector::compute(&graph).expect("consistent");
    println!("CD-to-DAT sample rate converter (q = {:?})\n", q.as_slice());

    let all_sched_bound = min_buffer_bound(&graph);
    let sas_bound = bmlb(&graph);
    println!("lower bound over all valid schedules: {all_sched_bound}");
    println!("lower bound over all SASs (BMLB):     {sas_bound}");

    let greedy = demand_driven_schedule(&graph, &q).expect("acyclic");
    let greedy_mem = validate_schedule(&graph, &greedy, &q)
        .expect("valid schedule")
        .bufmem();
    println!("greedy demand-driven schedule:        {greedy_mem} (optimal on chains)");

    let row = run_table1_row(&graph).expect("pipeline");
    println!(
        "best non-shared SAS (DPPO):           {}",
        row.best_nonshared()
    );
    println!(
        "best shared SAS allocation:           {}",
        row.best_shared()
    );
    println!(
        "\nShape check: all-schedules bound ({all_sched_bound}) << BMLB ({sas_bound}) \
         <= SAS results; sharing closes part of the gap without giving up \
         single appearance code size."
    );
}
