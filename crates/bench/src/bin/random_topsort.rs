//! Reproduces the **§10.1 random-topological-sort experiment**: how many
//! random lexical orderings does it take to match APGAN/RPMC, and how good
//! is the best random result after a large budget?
//!
//! The paper runs 1000 trials on `satrec` and `blockVox` (~25 nodes) and
//! 100 trials on the ~200-node filterbanks. Pass two numbers to override:
//! `random_topsort 200 20`.

use rand::SeedableRng;
use sdf_apps::registry::by_name;
use sdf_bench::{run_pipeline, run_table1_row};
use sdf_core::RepetitionsVector;
use sdf_sched::sdppo::FactoringPolicy;
use sdf_sched::topsort::random_topological_sort;

fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|s| s.parse().ok())
        .collect();
    let small_trials = args.first().copied().unwrap_or(1000);
    let big_trials = args.get(1).copied().unwrap_or(100);

    let cases = [
        ("satrec", small_trials),
        ("blockVox", small_trials),
        ("qmf12_5d", big_trials),
        ("qmf235_5d", big_trials),
    ];
    for (name, trials) in cases {
        let graph = by_name(name).expect("registered benchmark");
        let q = RepetitionsVector::compute(&graph).expect("consistent");
        let heuristic = run_table1_row(&graph).expect("pipeline");
        let target = heuristic.best_shared();

        let mut rng = rand::rngs::StdRng::seed_from_u64(101);
        let mut best = u64::MAX;
        let mut first_beat: Option<usize> = None;
        let started = std::time::Instant::now();
        for t in 1..=trials {
            let order = random_topological_sort(&graph, &mut rng).expect("acyclic");
            let Ok(r) = run_pipeline(&graph, &q, &order, FactoringPolicy::Heuristic) else {
                continue;
            };
            let alloc = r.best_alloc();
            if alloc < best {
                best = alloc;
            }
            if first_beat.is_none() && alloc < target {
                first_beat = Some(t);
            }
        }
        println!(
            "{name:>12}: heuristic best = {target}, best of {trials} random = {best}, \
             first random win at trial {} ({}s)",
            first_beat.map_or("never".to_string(), |t| t.to_string()),
            started.elapsed().as_secs()
        );
    }
    println!(
        "\nPaper shape: ~50 trials to beat the heuristics on the small systems, \
         with only marginal final gains; on the 188-node filterbanks the random \
         search never catches up within 100 trials."
    );
}
