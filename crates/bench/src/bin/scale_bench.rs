//! Benchmarks the full synthesis pipeline on the large synthetic systems
//! of `sdf_apps::scale` (CD-DAT-style chains, deep filterbank trees,
//! sparse DAGs), timing every stage — chain tables, loop DP, lifetime
//! extraction, WIG build, first-fit allocation — under both the exact
//! configuration (dense O(n³) DP, brute-force all-pairs WIG) and the
//! optimised one (bound-guided windowed DP, active-set sweep WIG).
//!
//! On every graph the two configurations are cross-checked: the windowed
//! DP must reproduce the exact `bufmem` bit for bit and the sweep WIG the
//! exact adjacency, so the speedup numbers never come at the cost of a
//! different answer.  One `bench_trajectory` point per size tier is
//! written to `BENCH_4.json`.
//!
//! ```text
//! cargo run --release --bin scale_bench
//! cargo run --release --bin scale_bench -- --sizes 128 --budget-s 300
//! cargo run --release --bin scale_bench -- --sizes 128,512,2048 --min-speedup 5
//! ```
//!
//! `--min-speedup R` (default 5) asserts the end-to-end exact/optimised
//! ratio at the largest requested tier; `--budget-s` aborts with an error
//! if the whole run exceeds the wall-clock budget (CI's scale-smoke uses
//! both).

use std::time::Instant;

use sdf_alloc::first_fit::{allocate, AllocationOrder, PlacementPolicy};
use sdf_apps::scale::{scale_systems, SIZES};
use sdf_core::{RepetitionsVector, SdfGraph};
use sdf_lifetime::interval::buffer_lifetime;
use sdf_lifetime::tree::ScheduleTree;
use sdf_lifetime::wig::{Buffer, IntersectionGraph};
use sdf_sched::{apgan, dppo_from_tables, ChainTables, DpMode};

/// Wall time of each pipeline stage plus the outcomes the cross-checks
/// compare.
struct StageTimes {
    tables_us: f64,
    dp_us: f64,
    lifetime_us: f64,
    wig_us: f64,
    alloc_us: f64,
    bufmem: u64,
    shared: u64,
    conflicts: usize,
    adjacency: Vec<Vec<usize>>,
}

impl StageTimes {
    fn total_us(&self) -> f64 {
        self.tables_us + self.dp_us + self.lifetime_us + self.wig_us + self.alloc_us
    }
}

fn us(from: Instant) -> f64 {
    from.elapsed().as_nanos() as f64 / 1e3
}

/// Runs graph → tables → DP → lifetimes → WIG → first-fit once.
fn run_pipeline(graph: &SdfGraph, mode: DpMode, all_pairs_wig: bool) -> StageTimes {
    let q = RepetitionsVector::compute(graph).expect("consistent scale graph");
    let order = apgan(graph, &q).expect("acyclic scale graph");

    let t = Instant::now();
    let ct = ChainTables::build(graph, &q, &order).expect("topological order");
    let tables_us = us(t);

    let t = Instant::now();
    let dp = dppo_from_tables(&ct, &q, mode);
    let dp_us = us(t);

    let t = Instant::now();
    let tree = ScheduleTree::build(graph, &q, &dp.tree).expect("valid SAS");
    let buffers: Vec<Buffer> = graph
        .edges()
        .map(|(id, _)| Buffer {
            edge: id,
            lifetime: buffer_lifetime(graph, &q, &tree, id),
        })
        .collect();
    let lifetime_us = us(t);

    let t = Instant::now();
    let wig = if all_pairs_wig {
        IntersectionGraph::from_buffers_all_pairs(buffers)
    } else {
        IntersectionGraph::from_buffers(buffers)
    };
    let wig_us = us(t);

    let t = Instant::now();
    let alloc = allocate(
        &wig,
        AllocationOrder::DurationDescending,
        PlacementPolicy::FirstFit,
    );
    let alloc_us = us(t);

    StageTimes {
        tables_us,
        dp_us,
        lifetime_us,
        wig_us,
        alloc_us,
        bufmem: dp.bufmem,
        shared: alloc.total(),
        conflicts: wig.conflict_count(),
        adjacency: (0..wig.len()).map(|i| wig.neighbours(i).to_vec()).collect(),
    }
}

/// Aggregate of one size tier across all families and both configurations.
#[derive(Default)]
struct TierSample {
    n: usize,
    graphs: usize,
    exact_us: f64,
    optimised_us: f64,
    dp_exact_us: f64,
    dp_windowed_us: f64,
    wig_all_pairs_us: f64,
    wig_sweep_us: f64,
    shared_total: u64,
    nonshared_total: u64,
}

fn measure_tier(n: usize) -> TierSample {
    let mut tier = TierSample {
        n,
        ..TierSample::default()
    };
    for graph in scale_systems(n) {
        let exact = run_pipeline(&graph, DpMode::Exact, true);
        let opt = run_pipeline(&graph, DpMode::Windowed, false);
        assert_eq!(
            exact.bufmem,
            opt.bufmem,
            "{}: windowed DP diverged from exact bufmem",
            graph.name()
        );
        assert_eq!(
            exact.adjacency,
            opt.adjacency,
            "{}: sweep WIG diverged from all-pairs adjacency",
            graph.name()
        );
        assert_eq!(
            exact.shared,
            opt.shared,
            "{}: allocations diverged",
            graph.name()
        );
        eprintln!(
            "{:>16} n={:<5} exact {:>12.1}µs (dp {:>12.1})  optimised {:>10.1}µs (dp {:>8.1})  \
             speedup {:>6.2}x  conflicts {}",
            graph.name(),
            graph.actor_count(),
            exact.total_us(),
            exact.dp_us,
            opt.total_us(),
            opt.dp_us,
            exact.total_us() / opt.total_us(),
            opt.conflicts,
        );
        tier.graphs += 1;
        tier.exact_us += exact.total_us();
        tier.optimised_us += opt.total_us();
        tier.dp_exact_us += exact.dp_us;
        tier.dp_windowed_us += opt.dp_us;
        tier.wig_all_pairs_us += exact.wig_us;
        tier.wig_sweep_us += opt.wig_us;
        tier.shared_total += opt.shared;
        tier.nonshared_total += opt.bufmem;
    }
    tier
}

/// One `bench_trajectory` point per tier, same envelope as the
/// engine-sweep trajectory so downstream tooling parses both.
fn trajectory_point(tier: &TierSample) -> String {
    let unix_s = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    format!(
        "{{\"unix_s\":{unix_s},\"n\":{},\"graphs\":{},\
         \"exact_total_us\":{:.3},\"optimised_total_us\":{:.3},\"speedup\":{:.3},\
         \"dp_exact_us\":{:.3},\"dp_windowed_us\":{:.3},\
         \"wig_all_pairs_us\":{:.3},\"wig_sweep_us\":{:.3},\
         \"shared_bufmem_total\":{},\"nonshared_bufmem_total\":{}}}",
        tier.n,
        tier.graphs,
        tier.exact_us,
        tier.optimised_us,
        tier.exact_us / tier.optimised_us,
        tier.dp_exact_us,
        tier.dp_windowed_us,
        tier.wig_all_pairs_us,
        tier.wig_sweep_us,
        tier.shared_total,
        tier.nonshared_total,
    )
}

fn bench_json(tiers: &[TierSample]) -> String {
    let mut s = sdf_trace::json::document_header("bench_trajectory");
    s.push_str("\"bench\":\"scale_bench\",\"points\":[");
    for (i, tier) in tiers.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&trajectory_point(tier));
    }
    s.push_str("]}\n");
    s
}

fn real_main() -> Result<(), String> {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
    };
    let sizes: Vec<usize> = match flag("--sizes") {
        Some(list) => list
            .split(',')
            .map(|tok| {
                tok.trim()
                    .parse::<usize>()
                    .map_err(|_| format!("bad --sizes entry `{tok}`"))
            })
            .collect::<Result<_, _>>()?,
        None => SIZES.to_vec(),
    };
    let min_speedup: f64 = match flag("--min-speedup") {
        Some(v) => v
            .parse()
            .map_err(|_| format!("bad --min-speedup value `{v}`"))?,
        None => 5.0,
    };
    let budget_s: Option<u64> = match flag("--budget-s") {
        Some(v) => Some(
            v.parse()
                .map_err(|_| format!("bad --budget-s value `{v}`"))?,
        ),
        None => None,
    };
    let out_path = flag("--out").cloned().unwrap_or("BENCH_4.json".to_string());

    let started = Instant::now();
    let mut tiers = Vec::new();
    for &n in &sizes {
        tiers.push(measure_tier(n));
        if let Some(budget) = budget_s {
            if started.elapsed().as_secs() > budget {
                return Err(format!(
                    "wall-clock budget exceeded: {}s > {budget}s after tier n={n}",
                    started.elapsed().as_secs()
                ));
            }
        }
    }

    let body = bench_json(&tiers);
    sdf_trace::json::parse(&body).map_err(|e| format!("internal: bad bench JSON: {e}"))?;
    std::fs::write(&out_path, &body).map_err(|e| format!("cannot write {out_path}: {e}"))?;
    eprintln!("wrote {out_path}");

    eprintln!();
    eprintln!(
        "{:>6} {:>14} {:>14} {:>8}",
        "n", "exact µs", "optimised µs", "speedup"
    );
    for tier in &tiers {
        eprintln!(
            "{:>6} {:>14.1} {:>14.1} {:>7.2}x",
            tier.n,
            tier.exact_us,
            tier.optimised_us,
            tier.exact_us / tier.optimised_us
        );
    }

    // The headline gate: the largest tier must clear the requested
    // end-to-end speedup.
    if let Some(largest) = tiers.iter().max_by_key(|t| t.n) {
        let speedup = largest.exact_us / largest.optimised_us;
        if speedup < min_speedup {
            return Err(format!(
                "end-to-end speedup {speedup:.2}x at n={} below required {min_speedup}x",
                largest.n
            ));
        }
        eprintln!(
            "speedup gate: {speedup:.2}x >= {min_speedup}x at n={} ✓",
            largest.n
        );
    }
    Ok(())
}

fn main() {
    if let Err(message) = real_main() {
        eprintln!("error: {message}");
        std::process::exit(1);
    }
}
