//! Reproduces the **§10.1 sdppo-vs-dppo experiment**: is it better to run
//! the first-fit allocators on the SDPPO schedule than on the DPPO
//! schedule?  The paper observes up to ~8% benefit from the shared-aware
//! loop hierarchy.

use sdf_alloc::{allocate, AllocationOrder, PlacementPolicy};
use sdf_apps::registry::table1_systems;
use sdf_core::RepetitionsVector;
use sdf_lifetime::tree::ScheduleTree;
use sdf_lifetime::wig::IntersectionGraph;
use sdf_sched::{apgan, dppo, rpmc, sdppo};

fn best_alloc_of(
    graph: &sdf_core::SdfGraph,
    q: &RepetitionsVector,
    sas: &sdf_core::SasTree,
) -> u64 {
    let tree = ScheduleTree::build(graph, q, sas).expect("valid SAS");
    let wig = IntersectionGraph::build(graph, q, &tree);
    let d = allocate(
        &wig,
        AllocationOrder::DurationDescending,
        PlacementPolicy::FirstFit,
    );
    let s = allocate(
        &wig,
        AllocationOrder::StartAscending,
        PlacementPolicy::FirstFit,
    );
    d.total().min(s.total())
}

fn main() {
    println!(
        "{:>12} {:>16} {:>16} {:>8}",
        "system", "alloc on dppo", "alloc on sdppo", "gain%"
    );
    let mut gains = Vec::new();
    for graph in table1_systems() {
        let q = RepetitionsVector::compute(&graph).expect("consistent");
        let mut on_dppo = u64::MAX;
        let mut on_sdppo = u64::MAX;
        for order in [rpmc(&graph, &q), apgan(&graph, &q)] {
            let order = order.expect("acyclic benchmark");
            let d = dppo(&graph, &q, &order).expect("dppo");
            let s = sdppo(&graph, &q, &order).expect("sdppo");
            on_dppo = on_dppo.min(best_alloc_of(&graph, &q, &d.tree));
            on_sdppo = on_sdppo.min(best_alloc_of(&graph, &q, &s.tree));
        }
        let gain = (on_dppo as f64 - on_sdppo as f64) / on_dppo.max(1) as f64 * 100.0;
        gains.push(gain);
        println!(
            "{:>12} {on_dppo:>16} {on_sdppo:>16} {gain:>7.1}%",
            graph.name()
        );
    }
    let avg = gains.iter().sum::<f64>() / gains.len().max(1) as f64;
    println!(
        "\naverage gain from allocating on the sdppo schedule: {avg:.1}% \
         (paper: up to ~8%, modest but consistently worthwhile)"
    );
}
