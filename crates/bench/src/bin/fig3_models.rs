//! Reproduces the **Fig. 3 model comparison**: coarse-grained versus
//! fine-grained buffer lifetime models on every practical system.
//!
//! The paper adopts the coarse model for implementability and notes the
//! fine model "although requiring less memory theoretically, may be
//! practically infeasible"; this experiment quantifies exactly how much
//! memory that implementability costs.

use sdf_alloc::{allocate, validate_allocation, AllocationOrder, PlacementPolicy};
use sdf_apps::registry::table1_systems;
use sdf_core::RepetitionsVector;
use sdf_lifetime::fine::FineIntersectionGraph;
use sdf_lifetime::tree::ScheduleTree;
use sdf_lifetime::wig::IntersectionGraph;
use sdf_sched::{apgan, rpmc, sdppo};

fn main() {
    println!(
        "{:>12} {:>10} {:>8} {:>8} {:>10}",
        "system", "nonshared", "coarse", "fine", "fine gain"
    );
    let mut sums = [0u64; 3];
    for graph in table1_systems() {
        let q = RepetitionsVector::compute(&graph).expect("consistent");
        let mut nonshared = u64::MAX;
        let mut coarse_best = u64::MAX;
        let mut fine_best = u64::MAX;
        for order in [rpmc(&graph, &q), apgan(&graph, &q)] {
            let order = order.expect("acyclic");
            let shared = sdppo(&graph, &q, &order).expect("sdppo");
            let tree = ScheduleTree::build(&graph, &q, &shared.tree).expect("tree");
            let coarse = IntersectionGraph::build(&graph, &q, &tree);
            let fine = FineIntersectionGraph::build(&graph, &q, &shared.tree);
            nonshared = nonshared.min(coarse.total_size());
            for ord in [
                AllocationOrder::DurationDescending,
                AllocationOrder::StartAscending,
            ] {
                let ac = allocate(&coarse, ord, PlacementPolicy::FirstFit);
                validate_allocation(&coarse, &ac).expect("coarse allocation valid");
                coarse_best = coarse_best.min(ac.total());
                let af = allocate(&fine, ord, PlacementPolicy::FirstFit);
                validate_allocation(&fine, &af).expect("fine allocation valid");
                fine_best = fine_best.min(af.total());
            }
        }
        for (s, v) in sums.iter_mut().zip([nonshared, coarse_best, fine_best]) {
            *s += v;
        }
        println!(
            "{:>12} {:>10} {:>8} {:>8} {:>9.1}%",
            graph.name(),
            nonshared,
            coarse_best,
            fine_best,
            (coarse_best as f64 - fine_best as f64) / coarse_best.max(1) as f64 * 100.0
        );
    }
    println!(
        "{:>12} {:>10} {:>8} {:>8}   (sums; fine <= coarse <= non-shared everywhere)",
        "TOTAL", sums[0], sums[1], sums[2]
    );
}
