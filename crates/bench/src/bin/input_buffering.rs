//! Reproduces the **§11.1.3 input-buffering argument**: under real-time
//! periodic input, nested SASs need far smaller interface buffers than
//! flat SASs, because the source actor's firings are spread across the
//! period instead of bursting.
//!
//! The paper's CD-DAT figures (11 tokens nested vs 65 flat, period of 147
//! sample times) used 1994-era DSP execution-time estimates; uniform unit
//! times reproduce the same shape.

use sdf_core::timing::{schedule_makespan, source_buffer_requirement, ExecutionTimes};
use sdf_core::{LoopedSchedule, RepetitionsVector};
use sdf_sched::{apgan, dppo};

fn main() {
    for name in ["cd2dat", "satrec"] {
        let graph = match name {
            "cd2dat" => sdf_apps::dsp::cd_to_dat(),
            _ => sdf_apps::satrec::satellite_receiver(),
        };
        let q = RepetitionsVector::compute(&graph).expect("consistent");
        let source = graph
            .actors()
            .find(|&a| graph.in_edges(a).is_empty())
            .expect("graph has a source");
        let exec = ExecutionTimes::uniform(&graph, 2);

        let order = apgan(&graph, &q).expect("acyclic");
        let flat = LoopedSchedule::flat_sas(&order, &q);
        let nested = dppo(&graph, &q, &order)
            .expect("dppo")
            .tree
            .to_looped_schedule();

        let flat_req =
            source_buffer_requirement(&graph, &q, &flat, &exec, source).expect("valid flat SAS");
        let nested_req = source_buffer_requirement(&graph, &q, &nested, &exec, source)
            .expect("valid nested SAS");
        let period = schedule_makespan(&graph, &flat, &exec).expect("makespan");

        println!(
            "{name}: source {} fires {} times per period ({} time units)",
            graph.actor_name(source),
            q.get(source),
            period
        );
        println!("  flat SAS input buffer:   {flat_req}");
        println!("  nested SAS input buffer: {nested_req}");
        println!(
            "  reduction: {:.0}%  (paper's CD-DAT example: 65 -> ~11, <10% of the period)\n",
            (flat_req as f64 - nested_req as f64) / flat_req as f64 * 100.0
        );
    }
}
