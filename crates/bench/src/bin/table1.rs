//! Reproduces **Table 1**: overall performance on practical examples.
//!
//! Columns, per the paper: dppo(R), sdppo(R), mco(R), mcp(R), ffdur(R),
//! ffstart(R), bmlb, dppo(A), sdppo(A), mco(A), mcp(A), ffdur(A),
//! ffstart(A), and the improvement of the best shared implementation over
//! the best non-shared one.

use sdf_apps::registry::table1_systems;
use sdf_bench::{fmt_row, run_table1_row};

fn main() {
    let headers = [
        "system",
        "n",
        "dppo(R)",
        "sdppo(R)",
        "mco(R)",
        "mcp(R)",
        "ffdur(R)",
        "ffstart(R)",
        "bmlb",
        "dppo(A)",
        "sdppo(A)",
        "mco(A)",
        "mcp(A)",
        "ffdur(A)",
        "ffstart(A)",
        "%impr",
    ];
    let widths = [12, 4, 8, 8, 8, 8, 8, 10, 8, 8, 8, 8, 8, 8, 10, 7];
    println!(
        "{}",
        fmt_row(
            &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
            &widths
        )
    );

    let mut improvements = Vec::new();
    for graph in table1_systems() {
        match run_table1_row(&graph) {
            Ok(row) => {
                let cells = vec![
                    row.name.clone(),
                    row.actors.to_string(),
                    row.rpmc.dppo.to_string(),
                    row.rpmc.sdppo.to_string(),
                    row.rpmc.mco.to_string(),
                    row.rpmc.mcp.to_string(),
                    row.rpmc.ffdur.to_string(),
                    row.rpmc.ffstart.to_string(),
                    row.bmlb.to_string(),
                    row.apgan.dppo.to_string(),
                    row.apgan.sdppo.to_string(),
                    row.apgan.mco.to_string(),
                    row.apgan.mcp.to_string(),
                    row.apgan.ffdur.to_string(),
                    row.apgan.ffstart.to_string(),
                    format!("{:.1}", row.improvement_percent()),
                ];
                println!("{}", fmt_row(&cells, &widths));
                improvements.push(row.improvement_percent());
            }
            Err(e) => println!("{:>12}  ERROR: {e}", graph.name()),
        }
    }
    let avg = improvements.iter().sum::<f64>() / improvements.len().max(1) as f64;
    println!(
        "\naverage improvement of best shared over best non-shared: {avg:.1}% \
         (paper reports >50% average, up to 83%)"
    );
}
