//! Measures the first-fit optimality gap against exact branch-and-bound
//! allocation on small random instances — putting numbers on §9.1's claim
//! (after its reference \[20\]) that "in practice, first-fit is a good
//! heuristic" and the chromatic number is "certainly not as much as 1.25
//! times" the maximum clique weight.

use rand::SeedableRng;
use sdf_alloc::optimal::optimal_allocation;
use sdf_alloc::{allocate, AllocationOrder, PlacementPolicy};
use sdf_apps::random::{random_sdf_graph, RandomGraphConfig};
use sdf_core::RepetitionsVector;
use sdf_lifetime::clique::mcw_exact;
use sdf_lifetime::tree::ScheduleTree;
use sdf_lifetime::wig::IntersectionGraph;
use sdf_sched::{apgan, sdppo};

fn main() {
    let trials: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100);
    println!("first-fit vs exact optimal allocation ({trials} random 10-actor graphs)\n");
    let mut rng = rand::rngs::StdRng::seed_from_u64(1414);
    let mut counted = 0usize;
    let mut ff_optimal = 0usize;
    let mut gaps = Vec::new();
    let mut cn_over_mcw: Vec<f64> = Vec::new();
    for _ in 0..trials {
        let g = random_sdf_graph(&RandomGraphConfig::paper_style(10), &mut rng);
        let q = RepetitionsVector::compute(&g).expect("consistent");
        let order = apgan(&g, &q).expect("acyclic");
        let sas = sdppo(&g, &q, &order).expect("sdppo").tree;
        let tree = ScheduleTree::build(&g, &q, &sas).expect("tree");
        let wig = IntersectionGraph::build(&g, &q, &tree);
        let ffdur = allocate(
            &wig,
            AllocationOrder::DurationDescending,
            PlacementPolicy::FirstFit,
        );
        let ffstart = allocate(
            &wig,
            AllocationOrder::StartAscending,
            PlacementPolicy::FirstFit,
        );
        let ff = ffdur.total().min(ffstart.total());
        let Some(exact) = optimal_allocation(&wig, 5_000_000) else {
            continue;
        };
        counted += 1;
        let opt = exact.allocation.total();
        if ff == opt {
            ff_optimal += 1;
        }
        gaps.push((ff as f64 - opt as f64) / opt.max(1) as f64 * 100.0);
        if let Some(mcw) = mcw_exact(&wig, 1 << 20) {
            if mcw > 0 {
                cn_over_mcw.push(opt as f64 / mcw as f64);
            }
        }
    }
    let avg_gap = gaps.iter().sum::<f64>() / gaps.len().max(1) as f64;
    let max_gap = gaps.iter().cloned().fold(0.0f64, f64::max);
    let max_ratio = cn_over_mcw.iter().cloned().fold(0.0f64, f64::max);
    println!("instances solved exactly:          {counted}/{trials}");
    println!(
        "first-fit optimal outright:        {:.0}%",
        ff_optimal as f64 / counted.max(1) as f64 * 100.0
    );
    println!("average first-fit gap:             {avg_gap:.1}%");
    println!("worst first-fit gap:               {max_gap:.1}%");
    println!("worst optimal/MCW ratio observed:  {max_ratio:.3} (theory allows up to 1.25)");
    println!(
        "\nPaper context (§9.1): first-fit \"comes within 7% on average of the\n\
         MCW\" on random instances, and the chromatic number in practice is\n\
         \"certainly not as much as 1.25 times\" the MCW."
    );
}
