//! Reproduces the **§11.1.3 dynamic-vs-static comparison** (Goddard &
//! Jeffay): a data-driven (dynamic, non-single-appearance) schedule
//! versus the static SAS, under both memory models, on the satellite
//! receiver and CD-to-DAT.
//!
//! The paper's numbers for satrec: dynamic EDF 1599 non-shared / ~1101
//! shared, static SAS 1542 non-shared / 991 shared — i.e. the static SAS
//! *beats* dynamic scheduling on pure buffer memory once sharing is
//! applied, at a fraction of the scheduling overhead.  (Dynamic wins only
//! on graph input/output buffering, covered by `input_buffering`.)

use sdf_alloc::{allocate, validate_allocation, AllocationOrder, PlacementPolicy};
use sdf_core::simulate::validate_schedule;
use sdf_core::RepetitionsVector;
use sdf_lifetime::fine::FineIntersectionGraph;
use sdf_lifetime::tree::ScheduleTree;
use sdf_lifetime::wig::IntersectionGraph;
use sdf_sched::demand::demand_driven_schedule;
use sdf_sched::{apgan, rpmc, sdppo};

fn main() {
    println!(
        "{:>10} {:>16} {:>14} {:>16} {:>14}",
        "system", "greedy nonshared", "greedy shared", "SAS nonshared", "SAS shared"
    );
    for name in ["cd2dat", "satrec"] {
        let graph = match name {
            "cd2dat" => sdf_apps::dsp::cd_to_dat(),
            _ => sdf_apps::satrec::satellite_receiver(),
        };
        let q = RepetitionsVector::compute(&graph).expect("consistent");

        // Dynamic (greedy demand-driven) schedule: non-shared = sum of
        // per-edge maxima; shared = fine-grained lifetimes + first-fit
        // (a dynamic scheduler tracks liveness exactly).
        let greedy = demand_driven_schedule(&graph, &q).expect("acyclic");
        let greedy_nonshared = validate_schedule(&graph, &greedy, &q)
            .expect("valid")
            .bufmem();
        let fine = FineIntersectionGraph::from_firings(&graph, greedy.firings());
        let ga = allocate(
            &fine,
            AllocationOrder::DurationDescending,
            PlacementPolicy::FirstFit,
        );
        validate_allocation(&fine, &ga).expect("valid allocation");

        // Static SAS: best of RPMC/APGAN, coarse shared model.
        let mut sas_nonshared = u64::MAX;
        let mut sas_shared = u64::MAX;
        for order in [rpmc(&graph, &q), apgan(&graph, &q)] {
            let order = order.expect("acyclic");
            let nonshared = sdf_sched::dppo(&graph, &q, &order).expect("dppo");
            sas_nonshared = sas_nonshared.min(nonshared.bufmem);
            let shared = sdppo(&graph, &q, &order).expect("sdppo");
            let tree = ScheduleTree::build(&graph, &q, &shared.tree).expect("tree");
            let wig = IntersectionGraph::build(&graph, &q, &tree);
            for ord in [
                AllocationOrder::DurationDescending,
                AllocationOrder::StartAscending,
            ] {
                sas_shared = sas_shared.min(allocate(&wig, ord, PlacementPolicy::FirstFit).total());
            }
        }
        println!(
            "{name:>10} {greedy_nonshared:>16} {:>14} {sas_nonshared:>16} {sas_shared:>14}",
            ga.total()
        );
    }
    println!(
        "\nShape: the greedy schedule's buffers are smaller (it drains edges\n\
         eagerly), but its program is the full firing sequence — thousands of\n\
         appearances vs one per actor.  The paper's point stands: static SASs\n\
         with lifetime sharing are competitive on memory while keeping\n\
         minimal code size and zero runtime scheduling overhead."
    );
}
