//! Reproduces **Fig. 27 (a)–(f)**: the random-graph study.
//!
//! For each graph size (20, 50, 100, 150 actors; 100 graphs each by
//! default) it reports:
//!
//! * (a) the % by which the best shared implementation beats the best
//!   non-shared implementation, averaged per size;
//! * (b) average % deviation of the best allocation from the optimistic
//!   clique estimate (mco);
//! * (c) average % deviation from the pessimistic estimate (mcp);
//! * (d) average % difference between the best allocation and the best
//!   sdppo estimate;
//! * (e) average % by which the RPMC-based allocation beats the
//!   APGAN-based allocation;
//! * (f) fraction of graphs where RPMC beats APGAN.
//!
//! Pass a number to override the per-size graph count
//! (`fig27 25` runs 25 graphs per size).

use rand::SeedableRng;
use sdf_apps::random::{random_sdf_graph, RandomGraphConfig};
use sdf_bench::run_table1_row;

fn main() {
    let trials: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100);
    println!("Fig. 27 — random graph study ({trials} graphs per size)\n");
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "size",
        "(a) impr%",
        "(b) vs mco%",
        "(c) vs mcp%",
        "(d) vs sdppo%",
        "(e) R vs A%",
        "(f) R wins"
    );

    let mut rng = rand::rngs::StdRng::seed_from_u64(20000);
    for size in [20usize, 50, 100, 150] {
        let mut impr = Vec::new();
        let mut dev_mco = Vec::new();
        let mut dev_mcp = Vec::new();
        let mut dev_sdppo = Vec::new();
        let mut r_vs_a = Vec::new();
        let mut r_wins = 0usize;
        let mut counted = 0usize;
        for _ in 0..trials {
            let g = random_sdf_graph(&RandomGraphConfig::paper_style(size), &mut rng);
            let Ok(row) = run_table1_row(&g) else {
                continue;
            };
            counted += 1;
            impr.push(row.improvement_percent());
            let best = row.best_shared() as f64;
            let (mco, mcp) = (
                row.rpmc.mco.min(row.apgan.mco) as f64,
                row.rpmc.mcp.min(row.apgan.mcp) as f64,
            );
            if mco > 0.0 {
                dev_mco.push((best - mco) / mco * 100.0);
            }
            if mcp > 0.0 {
                dev_mcp.push((best - mcp) / mcp * 100.0);
            }
            let sd = row.rpmc.sdppo.min(row.apgan.sdppo) as f64;
            if sd > 0.0 {
                dev_sdppo.push((best - sd) / sd * 100.0);
            }
            let (r, a) = (row.rpmc.best_alloc() as f64, row.apgan.best_alloc() as f64);
            if a > 0.0 {
                r_vs_a.push((a - r) / a * 100.0);
            }
            if r < a {
                r_wins += 1;
            }
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        println!(
            "{size:>6} {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>9.0}%",
            avg(&impr),
            avg(&dev_mco),
            avg(&dev_mcp),
            avg(&dev_sdppo),
            avg(&r_vs_a),
            r_wins as f64 / counted.max(1) as f64 * 100.0
        );
    }
    println!(
        "\nPaper shape: (a) drops with size (large for small graphs, ~5% at \
         100-150 nodes); (b) small positive, (c) small negative (allocation \
         between the two estimates); (d) < 0.5%; (e) grows with size; (f) 52-60%."
    );
}
