//! Ablation of the **§5.1 factoring heuristic**: SDPPO run with the
//! paper's internal-edge rule versus always-factoring versus
//! never-factoring, measured by the final best first-fit allocation.

use sdf_apps::registry::table1_systems;
use sdf_bench::run_pipeline;
use sdf_core::RepetitionsVector;
use sdf_sched::sdppo::FactoringPolicy;
use sdf_sched::{apgan, rpmc};

fn main() {
    println!(
        "{:>12} {:>10} {:>10} {:>10}",
        "system", "heuristic", "always", "never"
    );
    let mut sums = [0u64; 3];
    for graph in table1_systems() {
        let q = RepetitionsVector::compute(&graph).expect("consistent");
        let orders = [
            rpmc(&graph, &q).expect("acyclic"),
            apgan(&graph, &q).expect("acyclic"),
        ];
        let mut best = [u64::MAX; 3];
        for order in &orders {
            for (slot, policy) in [
                FactoringPolicy::Heuristic,
                FactoringPolicy::Always,
                FactoringPolicy::Never,
            ]
            .into_iter()
            .enumerate()
            {
                let r = run_pipeline(&graph, &q, order, policy).expect("pipeline");
                best[slot] = best[slot].min(r.best_alloc());
            }
        }
        for (s, b) in sums.iter_mut().zip(best) {
            *s += b;
        }
        println!(
            "{:>12} {:>10} {:>10} {:>10}",
            graph.name(),
            best[0],
            best[1],
            best[2]
        );
    }
    println!(
        "{:>12} {:>10} {:>10} {:>10}   (sum over systems; lower is better)",
        "TOTAL", sums[0], sums[1], sums[2]
    );
}
