//! Ablation of the **§6 incomparable-tuple bound**: the chain-precise DP
//! run with Pareto frontier caps of 1, 4, 8 and 16 on the chain-structured
//! benchmarks, reporting the achieved centre cost and the largest frontier
//! actually observed.

use sdf_apps::dsp::cd_to_dat;
use sdf_apps::registry::by_name;
use sdf_core::{RepetitionsVector, SdfGraph};
use sdf_sched::chain_precise::chain_precise;

fn main() {
    let systems: Vec<SdfGraph> = vec![
        cd_to_dat(),
        by_name("16qamModem").expect("registered"),
        by_name("4pamxmitrec").expect("registered"),
    ];
    println!(
        "{:>12} {:>8} {:>8} {:>8} {:>8} {:>14}",
        "system", "cap=1", "cap=4", "cap=8", "cap=16", "max frontier"
    );
    for graph in systems {
        if !graph.is_chain() {
            println!("{:>12} (not chain-structured, skipped)", graph.name());
            continue;
        }
        let q = RepetitionsVector::compute(&graph).expect("consistent");
        let mut cells = Vec::new();
        let mut max_frontier = 0usize;
        for cap in [1usize, 4, 8, 16] {
            let r = chain_precise(&graph, &q, cap).expect("chain DP");
            cells.push(r.cost.center.to_string());
            max_frontier = max_frontier.max(r.max_frontier_seen);
        }
        println!(
            "{:>12} {:>8} {:>8} {:>8} {:>8} {:>14}",
            graph.name(),
            cells[0],
            cells[1],
            cells[2],
            cells[3],
            max_frontier
        );
    }
    println!(
        "\nThe paper notes multiplicative frontier growth is possible in \
         theory but not observed in practice; the cap columns should agree \
         from a small cap onward.\n"
    );

    // Does the precise DP's schedule also allocate better than SDPPO's?
    println!(
        "{:>12} {:>14} {:>16}",
        "system", "alloc (sdppo)", "alloc (precise)"
    );
    for graph in [
        cd_to_dat(),
        by_name("16qamModem").unwrap(),
        by_name("4pamxmitrec").unwrap(),
    ] {
        let q = RepetitionsVector::compute(&graph).expect("consistent");
        let order = graph.chain_order().expect("chain");
        let heuristic = sdf_sched::sdppo(&graph, &q, &order).expect("sdppo");
        let precise = chain_precise(&graph, &q, 8).expect("chain DP");
        let alloc_of = |sas: &sdf_core::SasTree| -> u64 {
            use sdf_alloc::{allocate, AllocationOrder, PlacementPolicy};
            use sdf_lifetime::{tree::ScheduleTree, wig::IntersectionGraph};
            let tree = ScheduleTree::build(&graph, &q, sas).expect("valid");
            let wig = IntersectionGraph::build(&graph, &q, &tree);
            let d = allocate(
                &wig,
                AllocationOrder::DurationDescending,
                PlacementPolicy::FirstFit,
            );
            let s = allocate(
                &wig,
                AllocationOrder::StartAscending,
                PlacementPolicy::FirstFit,
            );
            d.total().min(s.total())
        };
        println!(
            "{:>12} {:>14} {:>16}",
            graph.name(),
            alloc_of(&heuristic.tree),
            alloc_of(&precise.tree)
        );
    }
}
