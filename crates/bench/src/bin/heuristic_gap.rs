//! Measures the optimality gap of APGAN and RPMC against the exhaustive
//! globally-optimal SAS on small random graphs — the strong version of
//! §10.1's "are the heuristics generating good topological sorts?"
//! question (the paper could only compare against random sampling; the
//! NP-completeness result of \[3\] means exhaustive ground truth is
//! feasible only at small sizes).

use rand::SeedableRng;
use sdf_apps::random::{random_sdf_graph, RandomGraphConfig};
use sdf_core::RepetitionsVector;
use sdf_sched::exhaustive::{optimal_sas_nonshared, ExhaustiveLimits};
use sdf_sched::{apgan, dppo, rpmc};

fn main() {
    let trials: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(50);
    println!("heuristic vs exhaustive optimum (non-shared bufmem), {trials} graphs per size\n");
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>12}",
        "size", "apgan gap%", "rpmc gap%", "apgan opt", "rpmc opt"
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(777);
    for size in [5usize, 7, 9] {
        let mut gaps = [Vec::new(), Vec::new()];
        let mut optimal = [0usize; 2];
        let mut counted = 0usize;
        for _ in 0..trials {
            let g = random_sdf_graph(&RandomGraphConfig::paper_style(size), &mut rng);
            let q = RepetitionsVector::compute(&g).expect("consistent");
            let Ok(exact) = optimal_sas_nonshared(
                &g,
                &q,
                ExhaustiveLimits {
                    max_orders: 200_000,
                },
            ) else {
                continue; // too many orders; skip
            };
            counted += 1;
            for (slot, order) in [apgan(&g, &q), rpmc(&g, &q)].into_iter().enumerate() {
                let h = dppo(&g, &q, &order.expect("acyclic")).expect("dppo");
                let gap = (h.bufmem as f64 - exact.cost as f64) / exact.cost.max(1) as f64 * 100.0;
                gaps[slot].push(gap);
                if h.bufmem == exact.cost {
                    optimal[slot] += 1;
                }
            }
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        println!(
            "{size:>6} {:>12.1} {:>12.1} {:>10.0}% {:>10.0}%",
            avg(&gaps[0]),
            avg(&gaps[1]),
            optimal[0] as f64 / counted.max(1) as f64 * 100.0,
            optimal[1] as f64 / counted.max(1) as f64 * 100.0,
        );
    }
    println!(
        "\nBoth heuristics should sit within a few percent of the exhaustive\n\
         optimum and hit it outright on a large fraction of graphs — the\n\
         strong form of the paper's random-sampling comparison."
    );
}
