//! Writes application graphs from the `sdf-apps` registry to
//! `examples/graphs/*.sdf` text files — the corpus the regression
//! sentinel (`engine_sweep --baseline/--gate`) runs over — and the
//! registered multi-mode scenario graphs to `*.sdfm` files (the
//! `sdfmem modes` examples; the distinct extension keeps them out of
//! the single-graph sentinel corpus).
//!
//! ```text
//! cargo run --release --bin export_graphs -- [--dir DIR] [NAME...]
//! ```
//!
//! With no names, exports the default corpus selection.

/// The default corpus: a spread of Table 1 shapes — the satellite
/// receiver, shallow and deep QMF filterbanks, the 16-QAM modem — plus
/// one large synthetic system so the regression sentinel exercises the
/// windowed DP and sweep WIG at scale.
const DEFAULT_CORPUS: &[&str] = &[
    "satrec",
    "qmf23_2d",
    "qmf12_2d",
    "16qamModem",
    "scale_chain_128",
    "modem_acq_track",
    "codec_ip",
];

/// Table 1 names resolve through the registry; `scale_*` names fall back
/// to the deterministic scale generators.
fn by_name(name: &str) -> Option<sdf_core::SdfGraph> {
    sdf_apps::registry::by_name(name).or_else(|| sdf_apps::scale::by_name(name))
}

fn real_main() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut dir = "examples/graphs".to_string();
    let mut names: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--dir" => {
                dir = it
                    .next()
                    .cloned()
                    .ok_or("missing --dir value".to_string())?;
            }
            name => names.push(name.to_string()),
        }
    }
    if names.is_empty() {
        names = DEFAULT_CORPUS.iter().map(|n| n.to_string()).collect();
    }
    std::fs::create_dir_all(&dir).map_err(|e| format!("cannot create {dir}: {e}"))?;
    for name in &names {
        if let Some(mg) = sdf_apps::modes::mode_graph_by_name(name) {
            let path = format!("{dir}/{}.sdfm", mg.name());
            std::fs::write(&path, sdf_core::mode::to_mode_text(&mg))
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!(
                "wrote {path} ({} modes, {} persistent)",
                mg.modes().len(),
                mg.persistent().len()
            );
            continue;
        }
        let graph = by_name(name).ok_or_else(|| format!("unknown registry graph `{name}`"))?;
        let path = format!("{dir}/{}.sdf", graph.name());
        std::fs::write(&path, sdf_core::io::to_text(&graph))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!(
            "wrote {path} ({} actors, {} edges)",
            graph.actor_count(),
            graph.edge_count()
        );
    }
    Ok(())
}

fn main() {
    if let Err(message) = real_main() {
        eprintln!("error: {message}");
        std::process::exit(2);
    }
}
