//! Reproduces **Fig. 25**: the bar graph of the percentage improvement of
//! the best shared implementation over the best non-shared implementation,
//! one bar per practical system.

use sdf_apps::registry::table1_systems;
use sdf_bench::{ascii_bar, run_table1_row};

fn main() {
    println!("Fig. 25 — % improvement of shared over non-shared implementation\n");
    let mut rows = Vec::new();
    for graph in table1_systems() {
        match run_table1_row(&graph) {
            Ok(row) => rows.push((row.name.clone(), row.improvement_percent())),
            Err(e) => eprintln!("{}: {e}", graph.name()),
        }
    }
    for (name, pct) in &rows {
        println!("{name:>12} {:>6.1}% |{}", pct, ascii_bar(*pct, 100.0, 50));
    }
    let avg = rows.iter().map(|(_, p)| p).sum::<f64>() / rows.len().max(1) as f64;
    println!(
        "{:>12} {avg:>6.1}% |{}",
        "AVERAGE",
        ascii_bar(avg, 100.0, 50)
    );
}
