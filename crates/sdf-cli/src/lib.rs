//! Command-line front end for the `sdfmem` workspace.
//!
//! Parses SDF graphs from the [`sdf_core::io`] text format and drives the
//! full pipeline: consistency analysis, scheduling, lifetime analysis,
//! allocation and C code generation.  See `sdfmem help` for usage.
//!
//! The argument parsing and command execution live in this library so
//! they can be unit-tested; `main.rs` is a thin wrapper.

#![warn(missing_docs)]

use std::fmt::Write as _;

use sdf_alloc::{allocate, validate_allocation, AllocationOrder, PlacementPolicy};
use sdf_codegen::{emit_c, emit_standalone_c};
use sdf_core::bounds::{bmlb, min_buffer_bound};
use sdf_core::graph::SdfGraph;
use sdf_core::repetitions::RepetitionsVector;
use sdf_core::SdfError;
use sdf_lifetime::clique::{mcw_optimistic, mcw_pessimistic};
use sdf_lifetime::tree::ScheduleTree;
use sdf_lifetime::wig::{ConflictGraph, IntersectionGraph};
use sdf_regress::ReportFormat as DiffFormat;
use sdf_sched::{apgan, dppo, rpmc, sdppo, LoopVariant};
use sdf_service::{
    execute_request, Client, ExplainReport, MemoryModel, OrderMethod, ResponsePayload, Server,
    ServerConfig, ServiceRequest, ServiceResponse,
};
use sdfmem::engine::AnalysisBuilder;
use sdfmem::sentinel::PERTURB_ENV;

/// Which topological-sort heuristic to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Method {
    /// APGAN (bottom-up clustering).
    #[default]
    Apgan,
    /// RPMC (top-down min-cut partitioning).
    Rpmc,
}

impl Method {
    fn service(self) -> OrderMethod {
        match self {
            Method::Apgan => OrderMethod::Apgan,
            Method::Rpmc => OrderMethod::Rpmc,
        }
    }
}

/// Which buffer model to target.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Model {
    /// One shared pool, lifetime-packed (the paper's contribution).
    #[default]
    Shared,
    /// One array per edge (the DPPO baseline).
    NonShared,
}

impl Model {
    fn service(self) -> MemoryModel {
        match self {
            Model::Shared => MemoryModel::Shared,
            Model::NonShared => MemoryModel::NonShared,
        }
    }
}

/// Which operation `sdfmem submit` sends to the daemon.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SubmitKind {
    /// Candidate-lattice sweep (the default).
    #[default]
    Analyze,
    /// Lower to an executable plan.
    Plan,
    /// Lower and run the interpreter oracle.
    Simulate,
    /// Build the allocation-provenance report.
    Explain,
    /// Synthesise a multi-mode scenario graph into one shared pool.
    Modes,
    /// Capture a regression-sentinel baseline profile.
    Baseline,
    /// Fetch the daemon's `service.*` counters, gauges and histogram
    /// summaries.
    Stats,
    /// Fetch a Prometheus-style text exposition of the daemon's
    /// instruments.
    Metrics,
    /// Drain the daemon's flight recorder of per-request summaries.
    Events,
    /// Stop the daemon (responds with final stats).
    Shutdown,
}

/// Output format of `sdfmem analyze`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ReportFormat {
    /// Human-readable scoreboard.
    #[default]
    Text,
    /// Machine-readable [`sdfmem::engine::EngineReport::to_json`] object.
    Json,
}

/// A parsed CLI invocation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Command {
    /// `sdfmem info <file>`.
    Info {
        /// Graph file path.
        file: String,
    },
    /// `sdfmem analyze <file> [--report FMT] [--serial] [--full]
    /// [--trace OUT]` — sweep the engine's candidate lattice and report
    /// the scoreboard.
    Analyze {
        /// Graph file path.
        file: String,
        /// Output format.
        report: ReportFormat,
        /// Evaluate candidates serially instead of in parallel.
        serial: bool,
        /// Sweep every loop-optimizer variant, not just SDPPO.
        full: bool,
        /// Write a trace of the run to this path (chrome://tracing JSON,
        /// or JSONL when the path ends in `.jsonl`).
        trace: Option<String>,
    },
    /// `sdfmem profile <file> [--full]` — run the engine serially under a
    /// recorder and print the span tree and counter table.
    Profile {
        /// Graph file path.
        file: String,
        /// Sweep every loop-optimizer variant, not just SDPPO.
        full: bool,
    },
    /// `sdfmem baseline <file> [--out PATH] [--repeats N] [--full]` —
    /// capture a regression-sentinel baseline profile.
    Baseline {
        /// Graph file path.
        file: String,
        /// Where to write the profile JSON (stdout when omitted).
        out: Option<String>,
        /// Timing repeats (work counters must agree across all of them).
        repeats: u32,
        /// Sweep every loop-optimizer variant, not just SDPPO.
        full: bool,
    },
    /// `sdfmem compare <baseline> <candidate> [--gate] [--format F]
    /// [--allow NAMES]` — diff two baseline profiles; exits nonzero on a
    /// gated regression.
    Compare {
        /// Baseline profile path.
        baseline: String,
        /// Candidate profile path.
        candidate: String,
        /// Also gate on timing-band violations (off by default: wall
        /// clocks are not comparable across machines).
        gate: bool,
        /// Report format.
        format: DiffFormat,
        /// Comma-separated names exempt from the exact-match gate
        /// (trailing `*` matches a prefix).
        allow: Vec<String>,
    },
    /// `sdfmem bounds <file>`.
    Bounds {
        /// Graph file path.
        file: String,
    },
    /// `sdfmem schedule <file> [--method M] [--model M]`.
    Schedule {
        /// Graph file path.
        file: String,
        /// Topological-sort heuristic.
        method: Method,
        /// Buffer model.
        model: Model,
    },
    /// `sdfmem allocate <file> [--method M]`.
    Allocate {
        /// Graph file path.
        file: String,
        /// Topological-sort heuristic.
        method: Method,
    },
    /// `sdfmem codegen <file> [--method M] [--model M] [--standalone]`.
    Codegen {
        /// Graph file path.
        file: String,
        /// Topological-sort heuristic.
        method: Method,
        /// Buffer model.
        model: Model,
        /// Emit stub actor definitions plus a `main`, producing a
        /// self-contained program (the CI smoke-test form).
        standalone: bool,
    },
    /// `sdfmem simulate <file> [--method M] [--model M] [--report FMT]`
    /// — lower the plan the matching `codegen` invocation would emit and
    /// execute it under the interpreter oracle; exit 1 on a violation.
    Simulate {
        /// Graph file path.
        file: String,
        /// Topological-sort heuristic.
        method: Method,
        /// Buffer model.
        model: Model,
        /// Output format (the JSON form embeds the executable plan).
        report: ReportFormat,
    },
    /// `sdfmem explain <file> [--buffer NAME] [--report FMT]
    /// [--trace OUT]` — allocation provenance: per-buffer placement
    /// stories (probes, rejected gaps, fragmentation attribution) and
    /// the pool occupancy timeline.
    Explain {
        /// Graph file path.
        file: String,
        /// Restrict the text story to one buffer (`SRC->SNK` actor
        /// names).
        buffer: Option<String>,
        /// Output format (`json` prints the `allocation_explain`
        /// document).
        report: ReportFormat,
        /// Write a chrome://tracing JSON trace with pool-occupancy
        /// counter tracks to this path.
        trace: Option<String>,
    },
    /// `sdfmem modes <file> [--report FMT]` — synthesise a multi-mode
    /// scenario graph (`.sdfm`) into one shared pool across all modes:
    /// per-mode plans on the candidate lattice, a merged cross-mode
    /// allocation whose persistent buffers keep their offsets across
    /// transitions, and the transition oracle's verdict; exit 1 when
    /// the oracle finds a violation.
    Modes {
        /// Mode-graph file path.
        file: String,
        /// Output format (`json` prints the `mode_report` document).
        report: ReportFormat,
    },
    /// `sdfmem gantt <file> [--method M]` — lifetime chart.
    Gantt {
        /// Graph file path.
        file: String,
        /// Topological-sort heuristic.
        method: Method,
    },
    /// `sdfmem dot <file>` — Graphviz export.
    Dot {
        /// Graph file path.
        file: String,
    },
    /// `sdfmem serve <addr> [--workers N] [--cache-cap N]
    /// [--queue-cap N] [--port-file PATH] [--trace-dir DIR]` — run the
    /// `sdfmemd` daemon until a `shutdown` request arrives.
    Serve {
        /// Address to bind, e.g. `127.0.0.1:7654` (`:0` picks an
        /// ephemeral port, written to `--port-file`).
        addr: String,
        /// Worker threads draining the job queue.
        workers: usize,
        /// Result-cache capacity, in entries.
        cache_cap: usize,
        /// Pending-job limit; submissions beyond it are rejected.
        queue_cap: usize,
        /// Write the bound address here once listening (how scripts
        /// discover an ephemeral port).
        port_file: Option<String>,
        /// Write one chrome://tracing JSON file per completed job here.
        trace_dir: Option<String>,
    },
    /// `sdfmem submit <addr> [--kind K] [--file G] ...` — submit one
    /// request to a running daemon and print the response envelope.
    Submit {
        /// Daemon address (`host:port`).
        addr: String,
        /// Which operation to submit.
        kind: SubmitKind,
        /// Graph file (required for graph-backed kinds).
        file: Option<String>,
        /// Topological-sort heuristic (plan/simulate).
        method: Method,
        /// Buffer model (plan/simulate).
        model: Model,
        /// Analyze: evaluate candidates serially.
        serial: bool,
        /// Analyze/baseline: sweep every loop-optimizer variant.
        full: bool,
        /// Baseline: timing repeats.
        repeats: u32,
        /// Connect-retry budget in milliseconds (0 = single attempt).
        timeout_ms: u64,
    },
    /// `sdfmem edit <addr> --file <graph> --edits <script>
    /// [--timeout-ms N]` — submit an incremental re-synthesis request:
    /// a base graph plus an edit script. A daemon holding a live
    /// session for the base rides the delta path (warm chain-DP memo,
    /// lifetime/WIG/allocation splicing); otherwise it runs cold and
    /// seeds a session for the next edit.
    Edit {
        /// Daemon address (`host:port`).
        addr: String,
        /// Base graph file.
        file: Option<String>,
        /// Edit-script file (`set-rate`/`set-delay`/`add-edge`/
        /// `remove-edge` lines).
        edits: Option<String>,
        /// Connect-retry budget in milliseconds (0 = single attempt).
        timeout_ms: u64,
    },
    /// `sdfmem top <addr> [--interval-ms N] [--count N]` — poll a
    /// running daemon's `stats` op and render a live table: ops/sec,
    /// cache hit rate, queue depth, incremental-edit activity, and
    /// p50/p95/p99 latency per op.
    Top {
        /// Daemon address (`host:port`).
        addr: String,
        /// Milliseconds between polls.
        interval_ms: u64,
        /// Frames to render before exiting (`0` = until the daemon
        /// goes away).
        count: u64,
        /// Connect-retry budget in milliseconds (0 = single attempt).
        timeout_ms: u64,
    },
    /// `sdfmem help`.
    Help,
}

/// Usage text shown by `help` and on argument errors.
pub const USAGE: &str = "\
sdfmem — shared-memory SDF scheduling (Murthy & Bhattacharyya, DATE 2000)

USAGE:
    sdfmem <COMMAND> <graph-file> [OPTIONS]

COMMANDS:
    info      graph statistics and the repetitions vector
    bounds    buffer-memory lower bounds (BMLB, all-schedules)
    analyze   sweep the candidate lattice, report the winner + scoreboard
    profile   run the engine under a recorder, print span tree + counters
    baseline  capture a regression-sentinel baseline profile (JSON)
    compare   diff two baseline profiles; exit 1 on a gated regression
    schedule  construct a single appearance schedule
    allocate  pack all buffers into one shared pool
    codegen   emit the C implementation
    simulate  execute the plan under the interpreter oracle; exit 1 on a
              violation (token leak, poisoned read, live-buffer overlap)
    explain   allocation provenance: per-buffer placement stories (probes,
              rejected gaps, fragmentation attribution) and the pool
              occupancy timeline
    modes     synthesise a multi-mode scenario graph (.sdfm) into one
              shared pool across all modes: persistent buffers keep one
              offset everywhere, mode-local buffers of different modes
              overlap; exit 1 on an unclean transition oracle
    gantt     ASCII lifetime chart of all buffers
    dot       Graphviz export of the graph
    serve     run the sdfmemd daemon: line-delimited JSON service requests
              over TCP, behind a content-addressed result cache
              (takes <addr> instead of a graph file)
    submit    submit one request to a running daemon, print the response
              envelope (takes <addr>; graph-backed kinds need --file)
    edit      submit an incremental re-synthesis request: a base graph
              (--file) plus an edit script (--edits); a daemon session
              holding the base rides the delta path
    top       poll a running daemon and render a live ops/latency table
              (takes <addr>)
    help      show this text

OPTIONS:
    --method apgan|rpmc      topological-sort heuristic (default apgan)
    --model  shared|nonshared  buffer model (default shared)
    --report text|json       analyze/simulate/explain/modes output format
                             (default text)
    --standalone             codegen: emit stub actors + main (runnable program)
    --serial                 analyze: evaluate candidates serially
    --full                   analyze/profile/baseline: sweep every loop-optimizer variant
    --trace <out>            analyze: write a chrome://tracing JSON trace
                             (JSONL when <out> ends in .jsonl);
                             explain: same, plus pool-occupancy counter
                             tracks
    --buffer <name>          explain: restrict the story to one buffer
                             (SRC->SNK actor names)
    --out <path>             baseline: write the profile here (default stdout)
    --repeats <n>            baseline: timing repeats (default 3)
    --format text|json|md    compare: report format (default text)
    --gate                   compare: gate on timing-band violations too
    --allow <names>          compare: comma-separated gate exemptions
                             (trailing * matches a prefix)
    --workers <n>            serve: worker threads (default 2)
    --cache-cap <n>          serve: result-cache entries (default 256)
    --queue-cap <n>          serve: pending-job limit (default 64)
    --port-file <path>       serve: write the bound address here once
                             listening
    --trace-dir <dir>        serve: write one chrome://tracing JSON file
                             per completed job into this directory
    --kind <op>              submit: analyze|plan|simulate|explain|modes|
                             baseline|stats|metrics|events|shutdown
                             (default analyze)
    --file <graph>           submit/edit: graph file
    --edits <script>         edit: edit-script file; lines are
                             set-rate SRC SNK PROD CONS, set-delay SRC SNK D,
                             add-edge SRC SNK PROD CONS [delay D],
                             remove-edge SRC SNK, # comments
    --timeout-ms <n>         submit/edit/top: keep retrying the connection
                             with capped backoff for this long before
                             giving up (default 0 = single attempt)
    --interval-ms <n>        top: milliseconds between polls (default 1000)
    --count <n>              top: frames to render before exiting
                             (default 0 = until the daemon goes away)

EXIT CODES:
    0  success
    1  domain failure: gated regression (compare), oracle violation
       (simulate), error/rejected/unclean response (submit)
    2  usage or I/O error: bad commands or flags, unreadable files,
       bind/connect failures

GRAPH FILE FORMAT:
    graph NAME
    actor NAME
    edge SRC SNK PROD CONS [delay D]

MODE GRAPH FILE FORMAT (modes):
    modegraph NAME
    persistent SRC SNK
    mode NAME
    actor NAME
    edge SRC SNK PROD CONS [delay D]
    mode NAME
    ...
";

/// Parses command-line arguments (without the program name).
///
/// # Errors
///
/// Returns a human-readable message for unknown commands, missing files or
/// bad option values.
pub fn parse_args(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter();
    let cmd = it.next().map(String::as_str).unwrap_or("help");
    if cmd == "help" || cmd == "--help" || cmd == "-h" {
        return Ok(Command::Help);
    }
    // Each command accepts exactly the options its contract documents;
    // an option another command owns is an error here, not a silent
    // no-op.
    let allowed: &[&str] = match cmd {
        "info" | "bounds" | "dot" => &[],
        "analyze" => &["--report", "--serial", "--full", "--trace"],
        "profile" => &["--full"],
        "baseline" => &["--out", "--repeats", "--full"],
        "compare" => &["--gate", "--format", "--allow"],
        "schedule" => &["--method", "--model"],
        "allocate" | "gantt" => &["--method"],
        "codegen" => &["--method", "--model", "--standalone"],
        "simulate" => &["--method", "--model", "--report"],
        "explain" => &["--buffer", "--report", "--trace"],
        "modes" => &["--report"],
        "serve" => &[
            "--workers",
            "--cache-cap",
            "--queue-cap",
            "--port-file",
            "--trace-dir",
        ],
        "submit" => &[
            "--kind",
            "--file",
            "--method",
            "--model",
            "--serial",
            "--full",
            "--repeats",
            "--timeout-ms",
        ],
        "edit" => &["--file", "--edits", "--timeout-ms"],
        "top" => &["--interval-ms", "--count", "--timeout-ms"],
        other => return Err(format!("unknown command `{other}`")),
    };
    let file = it.next().cloned().ok_or_else(|| match cmd {
        "serve" | "submit" | "edit" | "top" => format!("missing <addr> for `{cmd}`"),
        _ => format!("missing graph file for `{cmd}`"),
    })?;
    // `compare` is the one two-positional command: baseline, candidate.
    let second = if cmd == "compare" {
        Some(
            it.next()
                .cloned()
                .ok_or("`compare` needs two profiles: sdfmem compare <baseline> <candidate>")?,
        )
    } else {
        None
    };
    let mut method = Method::default();
    let mut model = Model::default();
    let mut report = ReportFormat::default();
    let mut serial = false;
    let mut full = false;
    let mut trace = None;
    let mut buffer = None;
    let mut out = None;
    let mut repeats = 3u32;
    let mut gate = false;
    let mut standalone = false;
    let mut format = DiffFormat::default();
    let mut allow: Vec<String> = Vec::new();
    let mut workers = 2usize;
    let mut cache_cap = 256usize;
    let mut queue_cap = 64usize;
    let mut port_file = None;
    let mut trace_dir = None;
    let mut kind = SubmitKind::default();
    let mut submit_file = None;
    let mut edits_file = None;
    let mut interval_ms = 1000u64;
    let mut count = 0u64;
    let mut timeout_ms = 0u64;
    let parse_count = |flag: &str, value: Option<&String>| -> Result<usize, String> {
        match value {
            Some(n) => n
                .parse::<usize>()
                .map_err(|_| format!("bad {flag} value: `{n}` is not a number")),
            None => Err(format!("missing {flag} count")),
        }
    };
    while let Some(opt) = it.next() {
        if !allowed.contains(&opt.as_str()) {
            return Err(if KNOWN_OPTIONS.contains(&opt.as_str()) {
                format!("option `{opt}` does not apply to `{cmd}`")
            } else {
                format!("unknown option `{opt}`")
            });
        }
        match opt.as_str() {
            "--method" => {
                method = match it.next().map(String::as_str) {
                    Some("apgan") => Method::Apgan,
                    Some("rpmc") => Method::Rpmc,
                    other => return Err(format!("bad --method value: {other:?}")),
                }
            }
            "--model" => {
                model = match it.next().map(String::as_str) {
                    Some("shared") => Model::Shared,
                    Some("nonshared") => Model::NonShared,
                    other => return Err(format!("bad --model value: {other:?}")),
                }
            }
            "--report" => {
                report = match it.next().map(String::as_str) {
                    Some("text") => ReportFormat::Text,
                    Some("json") => ReportFormat::Json,
                    other => return Err(format!("bad --report value: {other:?}")),
                }
            }
            "--serial" => serial = true,
            "--full" => full = true,
            "--trace" => {
                trace = match it.next() {
                    Some(path) => Some(path.clone()),
                    None => return Err("missing --trace output path".to_string()),
                }
            }
            "--buffer" => {
                buffer = match it.next() {
                    Some(name) => Some(name.clone()),
                    None => return Err("missing --buffer name".to_string()),
                }
            }
            "--out" => {
                out = match it.next() {
                    Some(path) => Some(path.clone()),
                    None => return Err("missing --out output path".to_string()),
                }
            }
            "--repeats" => {
                repeats = match it.next() {
                    Some(n) => n
                        .parse::<u32>()
                        .map_err(|_| format!("bad --repeats value: `{n}` is not a number"))?,
                    None => return Err("missing --repeats count".to_string()),
                };
                if repeats == 0 {
                    return Err("bad --repeats value: must be at least 1".to_string());
                }
            }
            "--gate" => gate = true,
            "--standalone" => standalone = true,
            "--format" => {
                format = match it.next().map(String::as_str) {
                    Some("text") => DiffFormat::Text,
                    Some("json") => DiffFormat::Json,
                    Some("md") => DiffFormat::Markdown,
                    other => return Err(format!("bad --format value: {other:?}")),
                }
            }
            "--allow" => match it.next() {
                Some(names) => allow.extend(
                    names
                        .split(',')
                        .filter(|n| !n.is_empty())
                        .map(str::to_string),
                ),
                None => return Err("missing --allow names".to_string()),
            },
            "--workers" => workers = parse_count("--workers", it.next())?,
            "--cache-cap" => cache_cap = parse_count("--cache-cap", it.next())?,
            "--queue-cap" => queue_cap = parse_count("--queue-cap", it.next())?,
            "--port-file" => {
                port_file = match it.next() {
                    Some(path) => Some(path.clone()),
                    None => return Err("missing --port-file path".to_string()),
                }
            }
            "--trace-dir" => {
                trace_dir = match it.next() {
                    Some(path) => Some(path.clone()),
                    None => return Err("missing --trace-dir directory".to_string()),
                }
            }
            "--kind" => {
                kind = match it.next().map(String::as_str) {
                    Some("analyze") => SubmitKind::Analyze,
                    Some("plan") => SubmitKind::Plan,
                    Some("simulate") => SubmitKind::Simulate,
                    Some("explain") => SubmitKind::Explain,
                    Some("modes") => SubmitKind::Modes,
                    Some("baseline") => SubmitKind::Baseline,
                    Some("stats") => SubmitKind::Stats,
                    Some("metrics") => SubmitKind::Metrics,
                    Some("events") => SubmitKind::Events,
                    Some("shutdown") => SubmitKind::Shutdown,
                    other => return Err(format!("bad --kind value: {other:?}")),
                }
            }
            "--interval-ms" => {
                interval_ms = match it.next() {
                    Some(n) => n
                        .parse::<u64>()
                        .map_err(|_| format!("bad --interval-ms value: `{n}` is not a number"))?,
                    None => return Err("missing --interval-ms count".to_string()),
                }
            }
            "--count" => {
                count = match it.next() {
                    Some(n) => n
                        .parse::<u64>()
                        .map_err(|_| format!("bad --count value: `{n}` is not a number"))?,
                    None => return Err("missing --count count".to_string()),
                }
            }
            "--file" => {
                submit_file = match it.next() {
                    Some(path) => Some(path.clone()),
                    None => return Err("missing --file graph path".to_string()),
                }
            }
            "--edits" => {
                edits_file = match it.next() {
                    Some(path) => Some(path.clone()),
                    None => return Err("missing --edits script path".to_string()),
                }
            }
            "--timeout-ms" => {
                timeout_ms = match it.next() {
                    Some(n) => n
                        .parse::<u64>()
                        .map_err(|_| format!("bad --timeout-ms value: `{n}` is not a number"))?,
                    None => return Err("missing --timeout-ms count".to_string()),
                }
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    match cmd {
        "info" => Ok(Command::Info { file }),
        "bounds" => Ok(Command::Bounds { file }),
        "analyze" => Ok(Command::Analyze {
            file,
            report,
            serial,
            full,
            trace,
        }),
        "profile" => Ok(Command::Profile { file, full }),
        "baseline" => Ok(Command::Baseline {
            file,
            out,
            repeats,
            full,
        }),
        "compare" => Ok(Command::Compare {
            baseline: file,
            candidate: second.expect("parsed above"),
            gate,
            format,
            allow,
        }),
        "schedule" => Ok(Command::Schedule {
            file,
            method,
            model,
        }),
        "allocate" => Ok(Command::Allocate { file, method }),
        "codegen" => Ok(Command::Codegen {
            file,
            method,
            model,
            standalone,
        }),
        "simulate" => Ok(Command::Simulate {
            file,
            method,
            model,
            report,
        }),
        "explain" => Ok(Command::Explain {
            file,
            buffer,
            report,
            trace,
        }),
        "modes" => Ok(Command::Modes { file, report }),
        "gantt" => Ok(Command::Gantt { file, method }),
        "dot" => Ok(Command::Dot { file }),
        "serve" => Ok(Command::Serve {
            addr: file,
            workers,
            cache_cap,
            queue_cap,
            port_file,
            trace_dir,
        }),
        "submit" => Ok(Command::Submit {
            addr: file,
            kind,
            file: submit_file,
            method,
            model,
            serial,
            full,
            repeats,
            timeout_ms,
        }),
        "edit" => Ok(Command::Edit {
            addr: file,
            file: submit_file,
            edits: edits_file,
            timeout_ms,
        }),
        "top" => Ok(Command::Top {
            addr: file,
            interval_ms,
            count,
            timeout_ms,
        }),
        other => Err(format!("unknown command `{other}`")),
    }
}

/// Every option any command accepts, for the does-not-apply/unknown
/// distinction in error messages.
const KNOWN_OPTIONS: &[&str] = &[
    "--method",
    "--model",
    "--report",
    "--serial",
    "--full",
    "--trace",
    "--buffer",
    "--out",
    "--repeats",
    "--gate",
    "--standalone",
    "--format",
    "--allow",
    "--workers",
    "--cache-cap",
    "--queue-cap",
    "--port-file",
    "--trace-dir",
    "--kind",
    "--file",
    "--edits",
    "--interval-ms",
    "--count",
    "--timeout-ms",
];

fn load(file: &str) -> Result<SdfGraph, String> {
    let text = std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?;
    sdf_core::io::parse_graph(&text).map_err(|e| format!("{file}: {e}"))
}

fn read_input(file: &str) -> Result<String, String> {
    std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))
}

/// Unwraps a service response into its payload, or maps the typed
/// error back to the CLI's `{file}: {message}` convention using
/// `inputs` (pairs of request-member name and the file it came from).
fn into_payload(
    response: ServiceResponse,
    inputs: &[(&str, &str)],
) -> Result<ResponsePayload, String> {
    match response {
        ServiceResponse::Ok(payload) => Ok(payload),
        ServiceResponse::Rejected { message } => Err(message),
        ServiceResponse::Err(error) => {
            let file = error
                .input
                .and_then(|name| inputs.iter().find(|(n, _)| *n == name))
                .map(|(_, file)| *file);
            Err(match file {
                Some(file) => format!("{file}: {}", error.message),
                None => error.message,
            })
        }
    }
}

fn order_for(
    graph: &SdfGraph,
    q: &RepetitionsVector,
    method: Method,
) -> Result<Vec<sdf_core::ActorId>, SdfError> {
    match method {
        Method::Apgan => apgan(graph, q),
        Method::Rpmc => rpmc(graph, q),
    }
}

/// Executes a command, returning its stdout text.
///
/// # Errors
///
/// Returns a human-readable message on any I/O, parse or analysis error.
pub fn run(command: &Command) -> Result<String, String> {
    execute(command).map(|(out, _)| out)
}

/// Executes a command, returning its stdout text and the process exit
/// code: 0 on success, 1 when `compare` found a gated regression.
///
/// # Errors
///
/// Returns a human-readable message on any I/O, parse or analysis error
/// (`main` exits 2 for these).
pub fn execute(command: &Command) -> Result<(String, i32), String> {
    let mut out = String::new();
    let mut code = 0;
    match command {
        Command::Help => out.push_str(USAGE),
        Command::Info { file } => {
            let g = load(file)?;
            let _ = write!(out, "{g}");
            match RepetitionsVector::compute(&g) {
                Ok(q) => {
                    let _ = writeln!(out, "consistent; period of {} firings", q.total_firings());
                    for a in g.actors() {
                        let _ = writeln!(out, "  q({}) = {}", g.actor_name(a), q.get(a));
                    }
                }
                Err(e) => {
                    let _ = writeln!(out, "INCONSISTENT: {e}");
                }
            }
        }
        Command::Analyze {
            file,
            report,
            serial,
            full,
            trace,
        } => {
            let request = ServiceRequest::Analyze {
                graph: read_input(file)?,
                serial: *serial,
                full: *full,
            };
            let response = match trace {
                None => execute_request(&request),
                Some(path) => {
                    let recorder = std::sync::Arc::new(sdf_trace::Recorder::new());
                    let response = sdf_trace::scoped(&recorder, || execute_request(&request));
                    if matches!(response, ServiceResponse::Ok(_)) {
                        let snapshot = recorder.snapshot();
                        let text = if path.ends_with(".jsonl") {
                            snapshot.to_jsonl()
                        } else {
                            snapshot.to_chrome_trace_json()
                        };
                        std::fs::write(path, text)
                            .map_err(|e| format!("cannot write {path}: {e}"))?;
                    }
                    response
                }
            };
            let ResponsePayload::Analyze {
                graph: g,
                synthesis,
            } = into_payload(response, &[("graph", file)])?
            else {
                unreachable!("analyze request produced a foreign payload");
            };
            match report {
                ReportFormat::Json => {
                    let _ = writeln!(out, "{}", synthesis.report.to_json());
                }
                ReportFormat::Text => {
                    let an = &synthesis.analysis;
                    let _ = writeln!(
                        out,
                        "schedule: {}",
                        an.schedule.to_looped_schedule().display(&g)
                    );
                    let _ = writeln!(
                        out,
                        "shared pool: {} words ({}% saved over non-shared {})",
                        an.shared_total(),
                        an.saving_percent().round(),
                        an.nonshared_bufmem
                    );
                    let _ = writeln!(out, "{}", synthesis.report);
                }
            }
        }
        Command::Profile { file, full } => {
            let g = load(file)?;
            // Serial evaluation keeps every candidate span nested under the
            // run span; rayon workers would start fresh span stacks.
            let mut builder = AnalysisBuilder::new().parallel(false);
            if *full {
                builder = builder.loop_opts(LoopVariant::ALL);
            }
            let recorder = std::sync::Arc::new(sdf_trace::Recorder::new());
            let synthesis =
                sdf_trace::scoped(&recorder, || builder.run_full(&g)).map_err(|e| e.to_string())?;
            let snapshot = recorder.snapshot();
            let an = &synthesis.analysis;
            let _ = writeln!(
                out,
                "graph {}: shared pool {} words (non-shared {})\n",
                g.name(),
                an.shared_total(),
                an.nonshared_bufmem
            );
            out.push_str(&snapshot.profile_tree());
            out.push('\n');
            out.push_str(&snapshot.counter_table());
        }
        Command::Baseline {
            file,
            out: out_path,
            repeats,
            full,
        } => {
            let request = ServiceRequest::Baseline {
                graph: read_input(file)?,
                repeats: *repeats,
                full: *full,
                perturb: std::env::var(PERTURB_ENV).ok(),
            };
            let ResponsePayload::Baseline { profile } =
                into_payload(execute_request(&request), &[("graph", file)])?
            else {
                unreachable!("baseline request produced a foreign payload");
            };
            let json = profile.to_json();
            match out_path {
                Some(path) => {
                    std::fs::write(path, &json).map_err(|e| format!("cannot write {path}: {e}"))?;
                    let _ = writeln!(
                        out,
                        "wrote baseline profile for {} to {path} ({} counters, {} repeats)",
                        profile.graph,
                        profile.counters.len(),
                        profile.repeats
                    );
                }
                None => out.push_str(&json),
            }
        }
        Command::Compare {
            baseline,
            candidate,
            gate,
            format,
            allow,
        } => {
            let request = ServiceRequest::Compare {
                baseline: read_input(baseline)?,
                candidate: read_input(candidate)?,
                gate: *gate,
                allow: allow.clone(),
            };
            let ResponsePayload::Compare { report } = into_payload(
                execute_request(&request),
                &[("baseline", baseline), ("candidate", candidate)],
            )?
            else {
                unreachable!("compare request produced a foreign payload");
            };
            out.push_str(&report.render(*format));
            if !report.is_clean() {
                code = 1;
            }
        }
        Command::Bounds { file } => {
            let g = load(file)?;
            RepetitionsVector::compute(&g).map_err(|e| e.to_string())?;
            let _ = writeln!(out, "BMLB (over all SASs):           {}", bmlb(&g));
            let _ = writeln!(
                out,
                "bound over all valid schedules: {}",
                min_buffer_bound(&g)
            );
        }
        Command::Schedule {
            file,
            method,
            model,
        } => {
            let g = load(file)?;
            let q = RepetitionsVector::compute(&g).map_err(|e| e.to_string())?;
            let order = order_for(&g, &q, *method).map_err(|e| e.to_string())?;
            match model {
                Model::NonShared => {
                    let r = dppo(&g, &q, &order).map_err(|e| e.to_string())?;
                    let _ = writeln!(out, "schedule: {}", r.tree.to_looped_schedule().display(&g));
                    let _ = writeln!(out, "bufmem (non-shared): {}", r.bufmem);
                }
                Model::Shared => {
                    let r = sdppo(&g, &q, &order).map_err(|e| e.to_string())?;
                    let _ = writeln!(out, "schedule: {}", r.tree.to_looped_schedule().display(&g));
                    let _ = writeln!(out, "shared cost estimate: {}", r.shared_cost);
                }
            }
        }
        Command::Allocate { file, method } => {
            let g = load(file)?;
            let q = RepetitionsVector::compute(&g).map_err(|e| e.to_string())?;
            let order = order_for(&g, &q, *method).map_err(|e| e.to_string())?;
            let shared = sdppo(&g, &q, &order).map_err(|e| e.to_string())?;
            let tree = ScheduleTree::build(&g, &q, &shared.tree).map_err(|e| e.to_string())?;
            let wig = IntersectionGraph::build(&g, &q, &tree);
            let alloc = allocate(
                &wig,
                AllocationOrder::DurationDescending,
                PlacementPolicy::FirstFit,
            );
            validate_allocation(&wig, &alloc).map_err(|e| e.to_string())?;
            let _ = writeln!(
                out,
                "schedule: {}",
                shared.tree.to_looped_schedule().display(&g)
            );
            let stats = sdf_alloc::allocation_stats(&wig, &alloc);
            let _ = writeln!(
                out,
                "pool: {} words (non-shared would need {}; mco {}, mcp {})",
                alloc.total(),
                wig.total_size(),
                mcw_optimistic(&wig),
                mcw_pessimistic(&wig)
            );
            let _ = writeln!(
                out,
                "packing factor {:.2}x; {} of {} buffers overlaid",
                stats.packing_factor, stats.overlaid_buffers, stats.buffer_count
            );
            for (i, buf) in wig.buffers().iter().enumerate() {
                let e = g.edge(buf.edge);
                let _ = writeln!(
                    out,
                    "  {:>4}..{:<4}  {} -> {} ({} words)",
                    alloc.offset(i),
                    alloc.offset(i) + wig.size(i),
                    g.actor_name(e.src),
                    g.actor_name(e.snk),
                    wig.size(i)
                );
            }
        }
        Command::Dot { file } => {
            let g = load(file)?;
            out.push_str(&sdf_core::io::to_dot(&g));
        }
        Command::Gantt { file, method } => {
            let g = load(file)?;
            let q = RepetitionsVector::compute(&g).map_err(|e| e.to_string())?;
            let order = order_for(&g, &q, *method).map_err(|e| e.to_string())?;
            let shared = sdppo(&g, &q, &order).map_err(|e| e.to_string())?;
            let tree = ScheduleTree::build(&g, &q, &shared.tree).map_err(|e| e.to_string())?;
            let wig = IntersectionGraph::build(&g, &q, &tree);
            let _ = writeln!(
                out,
                "schedule: {}\n",
                shared.tree.to_looped_schedule().display(&g)
            );
            out.push_str(&sdf_lifetime::gantt::render_gantt(&g, &tree, &wig, 96));
        }
        Command::Codegen {
            file,
            method,
            model,
            standalone,
        } => {
            let request = ServiceRequest::Plan {
                graph: read_input(file)?,
                method: method.service(),
                model: model.service(),
            };
            let ResponsePayload::Plan { plan } =
                into_payload(execute_request(&request), &[("graph", file)])?
            else {
                unreachable!("plan request produced a foreign payload");
            };
            out.push_str(&if *standalone {
                emit_standalone_c(&plan)
            } else {
                emit_c(&plan)
            });
        }
        Command::Simulate {
            file,
            method,
            model,
            report,
        } => {
            let request = ServiceRequest::Simulate {
                graph: read_input(file)?,
                method: method.service(),
                model: model.service(),
            };
            let payload = into_payload(execute_request(&request), &[("graph", file)])?;
            let ResponsePayload::Simulate { plan, exec } = &payload else {
                unreachable!("simulate request produced a foreign payload");
            };
            if exec.is_err() {
                code = 1;
            }
            match report {
                ReportFormat::Text => match exec {
                    Ok(r) => {
                        let _ = writeln!(
                            out,
                            "graph {}: {} model simulated clean",
                            plan.graph,
                            plan.model.as_str()
                        );
                        let _ = writeln!(out, "  firings:   {}", r.firings);
                        let _ = writeln!(out, "  pool:      {} words", r.pool_words);
                        let _ = writeln!(
                            out,
                            "  peak live: {} words ({} bytes)",
                            r.peak_live_words, r.peak_live_bytes
                        );
                    }
                    Err(e) => {
                        let _ = writeln!(
                            out,
                            "graph {}: {} model ORACLE VIOLATION",
                            plan.graph,
                            plan.model.as_str()
                        );
                        let _ = writeln!(out, "  {e}");
                    }
                },
                ReportFormat::Json => {
                    let _ = writeln!(out, "{}", payload.to_json());
                }
            }
        }
        Command::Serve {
            addr,
            workers,
            cache_cap,
            queue_cap,
            port_file,
            trace_dir,
        } => {
            let config = ServerConfig {
                workers: *workers,
                cache_capacity: *cache_cap,
                queue_capacity: *queue_cap,
                trace_dir: trace_dir.as_ref().map(std::path::PathBuf::from),
                ..ServerConfig::default()
            };
            let server = Server::bind(addr, config.clone())?;
            let local = server.local_addr();
            if let Some(path) = port_file {
                std::fs::write(path, format!("{local}\n"))
                    .map_err(|e| format!("cannot write {path}: {e}"))?;
            }
            eprintln!(
                "sdfmemd listening on {local} ({} workers, cache {}, queue {}{})",
                config.workers,
                config.cache_capacity,
                config.queue_capacity,
                match &config.trace_dir {
                    Some(dir) => format!(", traces to {}", dir.display()),
                    None => String::new(),
                }
            );
            server.wait();
            let _ = writeln!(out, "sdfmemd on {local} shut down cleanly");
        }
        Command::Submit {
            addr,
            kind,
            file,
            method,
            model,
            serial,
            full,
            repeats,
            timeout_ms,
        } => {
            let graph = |file: &Option<String>| -> Result<String, String> {
                let path = file
                    .as_deref()
                    .ok_or("this --kind needs a graph: sdfmem submit <addr> --file <graph>")?;
                read_input(path)
            };
            let request = match kind {
                SubmitKind::Analyze => ServiceRequest::Analyze {
                    graph: graph(file)?,
                    serial: *serial,
                    full: *full,
                },
                SubmitKind::Plan => ServiceRequest::Plan {
                    graph: graph(file)?,
                    method: method.service(),
                    model: model.service(),
                },
                SubmitKind::Simulate => ServiceRequest::Simulate {
                    graph: graph(file)?,
                    method: method.service(),
                    model: model.service(),
                },
                SubmitKind::Explain => ServiceRequest::Explain {
                    graph: graph(file)?,
                },
                SubmitKind::Modes => ServiceRequest::Modes {
                    graph: graph(file)?,
                },
                SubmitKind::Baseline => ServiceRequest::Baseline {
                    graph: graph(file)?,
                    repeats: *repeats,
                    full: *full,
                    perturb: std::env::var(PERTURB_ENV).ok(),
                },
                SubmitKind::Stats => ServiceRequest::Stats,
                SubmitKind::Metrics => ServiceRequest::Metrics,
                SubmitKind::Events => ServiceRequest::Events,
                SubmitKind::Shutdown => ServiceRequest::Shutdown,
            };
            let mut client = connect_with_retry(addr, *timeout_ms)?;
            let request_id = format!("cli-{}", std::process::id());
            let (line, response) = client.call_line(&request_id, &request)?;
            out.push_str(&line);
            if !response.is_ok() {
                code = 1;
            } else if let Some(payload) = &response.payload {
                // A clean envelope can still carry a dirty simulation:
                // surface the oracle verdict in the exit code, like
                // the local `simulate` command does.
                let dirty = sdf_trace::json::parse(payload)
                    .ok()
                    .and_then(|doc| doc.get("clean").and_then(|c| c.as_bool()))
                    == Some(false);
                if dirty {
                    code = 1;
                }
            }
        }
        Command::Explain {
            file,
            buffer,
            report,
            trace,
        } => {
            let request = ServiceRequest::Explain {
                graph: read_input(file)?,
            };
            let recorder = trace
                .as_ref()
                .map(|_| std::sync::Arc::new(sdf_trace::Recorder::new()));
            let response = match &recorder {
                None => execute_request(&request),
                Some(r) => sdf_trace::scoped(r, || execute_request(&request)),
            };
            let ResponsePayload::Explain { report: explain } =
                into_payload(response, &[("graph", file)])?
            else {
                unreachable!("explain request produced a foreign payload");
            };
            if let (Some(path), Some(recorder)) = (trace, &recorder) {
                let text = recorder
                    .snapshot()
                    .to_chrome_trace_json_with_tracks(&occupancy_tracks(&explain));
                std::fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}"))?;
            }
            match report {
                ReportFormat::Json => {
                    let _ = writeln!(out, "{}", explain.to_json());
                }
                ReportFormat::Text => match explain.render_text(buffer.as_deref()) {
                    Some(text) => out.push_str(&text),
                    None => {
                        let known: Vec<&str> =
                            explain.ledger.iter().map(|e| e.buffer.as_str()).collect();
                        let _ = writeln!(
                            out,
                            "no buffer named `{}` in {file} (buffers: {})",
                            buffer.as_deref().unwrap_or(""),
                            known.join(", ")
                        );
                        code = 1;
                    }
                },
            }
        }
        Command::Modes { file, report } => {
            let request = ServiceRequest::Modes {
                graph: read_input(file)?,
            };
            let payload = into_payload(execute_request(&request), &[("graph", file)])?;
            let ResponsePayload::Modes { synthesis } = &payload else {
                unreachable!("modes request produced a foreign payload");
            };
            if synthesis.exec.is_err() {
                code = 1;
            }
            match report {
                ReportFormat::Json => {
                    let _ = writeln!(out, "{}", payload.to_json());
                }
                ReportFormat::Text => {
                    let _ = writeln!(
                        out,
                        "modegraph {}: {} modes, {} persistent buffer{}",
                        synthesis.plan.graph,
                        synthesis.summaries.len(),
                        synthesis.plan.persistent.len(),
                        if synthesis.plan.persistent.len() == 1 {
                            ""
                        } else {
                            "s"
                        }
                    );
                    for s in &synthesis.summaries {
                        let _ = writeln!(
                            out,
                            "  mode {}: {} actors, {} edges, standalone pool {} words \
                             (period {} firings)",
                            s.name, s.actors, s.edges, s.standalone_pool_words, s.firings
                        );
                    }
                    if !synthesis.plan.persistent.is_empty() {
                        let _ = writeln!(out, "persistent buffers (one offset, every mode):");
                        for p in &synthesis.plan.persistent {
                            let _ = writeln!(
                                out,
                                "  {}->{}: offset {}, {} words, {} delay token{}",
                                p.src,
                                p.snk,
                                p.offset,
                                p.size,
                                p.delay,
                                if p.delay == 1 { "" } else { "s" }
                            );
                        }
                    }
                    let _ = writeln!(
                        out,
                        "merged pool: {} words ({:.1}% saved over separate pools {})",
                        synthesis.merged_pool_words,
                        synthesis.savings_percent(),
                        synthesis.sum_pool_words
                    );
                    let _ = writeln!(
                        out,
                        "  gate: merged {} <= max standalone {} + persistent {} = {}  [{}]",
                        synthesis.merged_pool_words,
                        synthesis.max_pool_words,
                        synthesis.persistent_words,
                        synthesis.gate_bound,
                        if synthesis.gate_ok { "ok" } else { "EXCEEDED" }
                    );
                    match &synthesis.exec {
                        Ok(r) => {
                            let _ = writeln!(
                                out,
                                "transitions: oracle clean ({} activations, {} switches, \
                                 {} firings, peak live {}/{} words)",
                                r.activations.len(),
                                r.transitions,
                                r.firings,
                                r.peak_live_words,
                                r.pool_words
                            );
                        }
                        Err(e) => {
                            let _ = writeln!(out, "transitions: ORACLE VIOLATION");
                            let _ = writeln!(out, "  {e}");
                        }
                    }
                }
            }
        }
        Command::Edit {
            addr,
            file,
            edits,
            timeout_ms,
        } => {
            let graph = read_input(file.as_deref().ok_or(
                "`edit` needs a base graph: sdfmem edit <addr> --file <graph> --edits <script>",
            )?)?;
            let script = read_input(edits.as_deref().ok_or(
                "`edit` needs an edit script: sdfmem edit <addr> --file <graph> --edits <script>",
            )?)?;
            let request = ServiceRequest::Edit {
                graph,
                edits: script,
            };
            let mut client = connect_with_retry(addr, *timeout_ms)?;
            let request_id = format!("cli-{}", std::process::id());
            let (line, response) = client.call_line(&request_id, &request)?;
            out.push_str(&line);
            if !response.is_ok() {
                code = 1;
            }
        }
        Command::Top {
            addr,
            interval_ms,
            count,
            timeout_ms,
        } => {
            // Frames stream to stdout as they render (the whole point
            // of a live table); `out` only carries the sign-off line.
            let frames = top_frames(
                addr,
                *interval_ms,
                *count,
                *timeout_ms,
                &mut |frame: &str| {
                    print!("{frame}");
                    let _ = std::io::Write::flush(&mut std::io::stdout());
                },
            )?;
            let _ = writeln!(out, "sdfmem top: {frames} frame(s) rendered");
        }
    }
    Ok((out, code))
}

/// Connects to `addr`, retrying transport failures with capped
/// exponential backoff (10ms doubling to 200ms) until `timeout_ms` has
/// elapsed. `0` preserves the single-attempt behaviour. The final
/// error names the address and the budget, and reaches the shell as
/// exit code 2 like every other connect failure.
///
/// # Errors
///
/// The last connect error once the budget is spent.
pub fn connect_with_retry(addr: &str, timeout_ms: u64) -> Result<Client, String> {
    let start = std::time::Instant::now();
    let mut backoff_ms = 10u64;
    loop {
        match Client::connect(addr) {
            Ok(client) => return Ok(client),
            Err(e) => {
                let elapsed = u64::try_from(start.elapsed().as_millis()).unwrap_or(u64::MAX);
                if elapsed >= timeout_ms {
                    return Err(if timeout_ms == 0 {
                        e
                    } else {
                        format!("cannot connect to {addr} within {timeout_ms}ms: {e}")
                    });
                }
                let remaining = timeout_ms - elapsed;
                std::thread::sleep(std::time::Duration::from_millis(backoff_ms.min(remaining)));
                backoff_ms = (backoff_ms * 2).min(200);
            }
        }
    }
}

/// Pool-occupancy counter tracks for the explain trace export: one
/// point per timeline sample, with the logical schedule clock mapped
/// onto the export's microsecond axis (1 step = 1µs).
fn occupancy_tracks(report: &ExplainReport) -> Vec<sdf_trace::CounterTrack> {
    let series = |name: &str, value: fn(&sdf_service::ExplainTimelinePoint) -> u64| {
        sdf_trace::CounterTrack {
            name: name.to_string(),
            points: report.timeline.iter().map(|p| (p.time, value(p))).collect(),
        }
    };
    vec![
        series("pool.live_words", |p| p.live_words),
        series("pool.occupied_words", |p| p.occupied_words),
    ]
}

/// Per-op latency row: `(op, count, (lo, hi, count) bucket triples)`.
type OpLatencyRow = (String, u64, Vec<(u64, u64, u64)>);

/// One parsed `service_stats` sample, reduced to what the `top` table
/// shows.
#[derive(Debug)]
struct TopSample {
    requests: u64,
    hits: u64,
    misses: u64,
    queue_depth: u64,
    complete: u64,
    failed: u64,
    // Incremental-edit activity; all default to 0 against a daemon
    // from before the `edit` op existed.
    delta_runs: u64,
    cold_runs: u64,
    memo_occupancy: u64,
    memo_capacity: u64,
    sessions: u64,
    ops: Vec<OpLatencyRow>,
}

#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
fn parse_top_sample(payload: &str) -> Result<TopSample, String> {
    use sdf_trace::json::Json;
    let doc = sdf_trace::json::parse(payload).map_err(|e| format!("bad stats payload: {e}"))?;
    if doc.get("kind").and_then(Json::as_str) != Some("service_stats") {
        return Err("stats response is not a service_stats document".to_string());
    }
    let table = |name: &str, key: &str| -> u64 {
        doc.get(name)
            .and_then(|t| t.get(key))
            .and_then(Json::as_num)
            .unwrap_or(0.0) as u64
    };
    let mut ops = Vec::new();
    {
        let histograms = doc
            .get("histograms")
            .and_then(Json::members)
            .ok_or_else(|| {
                "stats payload has no \"histograms\" table \
                 (daemon speaking an older schema?)"
                    .to_string()
            })?;
        for (name, h) in histograms {
            let Some(op) = name
                .strip_prefix("service.op.")
                .and_then(|rest| rest.strip_suffix(".latency"))
            else {
                continue;
            };
            let count = h.get("count").and_then(Json::as_num).unwrap_or(0.0) as u64;
            let buckets: Vec<(u64, u64, u64)> = h
                .get("buckets")
                .and_then(Json::as_array)
                .map(|rows| {
                    rows.iter()
                        .filter_map(|row| {
                            let row = row.as_array()?;
                            let num = |i: usize| Some(row.get(i)?.as_num()? as u64);
                            Some((num(0)?, num(1)?, num(2)?))
                        })
                        .collect()
                })
                .unwrap_or_default();
            ops.push((op.to_string(), count, buckets));
        }
    }
    Ok(TopSample {
        requests: table("counters", "service.requests"),
        hits: table("counters", "service.cache.hits"),
        misses: table("counters", "service.cache.misses"),
        queue_depth: table("gauges", "service.queue.depth"),
        complete: table("counters", "service.jobs.complete"),
        failed: table("counters", "service.jobs.failed"),
        delta_runs: table("counters", "engine.incremental.delta_runs"),
        cold_runs: table("counters", "engine.incremental.cold_runs"),
        memo_occupancy: table("gauges", "engine.incremental.memo.occupancy"),
        memo_capacity: table("gauges", "engine.incremental.memo.capacity"),
        sessions: table("gauges", "engine.incremental.sessions"),
        ops,
    })
}

/// Renders one `top` frame: a summary line plus a per-op latency table.
fn render_top_frame(addr: &str, frame: u64, sample: &TopSample, rate: Option<f64>) -> String {
    let mut s = String::new();
    let rate = match rate {
        Some(r) => format!("{r:.1}/s"),
        None => "-".to_string(),
    };
    let lookups = sample.hits + sample.misses;
    let hit_rate = if lookups == 0 {
        "-".to_string()
    } else {
        #[allow(clippy::cast_precision_loss)]
        let pct = 100.0 * sample.hits as f64 / lookups as f64;
        format!("{pct:.1}%")
    };
    let _ = writeln!(s, "sdfmemd {addr} — frame {frame}");
    let _ = writeln!(
        s,
        "requests {} ({rate})   cache hit {hit_rate}   queue {}   jobs {} ok / {} failed",
        sample.requests, sample.queue_depth, sample.complete, sample.failed
    );
    let _ = writeln!(
        s,
        "edits {} delta / {} cold   memo {}/{}   sessions {}",
        sample.delta_runs,
        sample.cold_runs,
        sample.memo_occupancy,
        sample.memo_capacity,
        sample.sessions
    );
    let _ = writeln!(
        s,
        "{:<12} {:>8} {:>10} {:>10} {:>10}",
        "op", "count", "p50", "p95", "p99"
    );
    for (op, count, buckets) in &sample.ops {
        let q = |q: f64| match sdf_trace::quantile_from_buckets(buckets, q) {
            Some(ns) => sdf_trace::export::human_time(ns),
            None => "-".to_string(),
        };
        let _ = writeln!(
            s,
            "{op:<12} {count:>8} {:>10} {:>10} {:>10}",
            q(0.5),
            q(0.95),
            q(0.99)
        );
    }
    s.push('\n');
    s
}

/// Polls `addr`'s `stats` op every `interval_ms` and feeds rendered
/// frames to `sink`; `count == 0` keeps polling until the requested
/// frame count is reached. Returns the number of frames rendered.
///
/// # Errors
///
/// A human-readable message when the daemon cannot be reached, drops
/// the connection mid-session (before the requested frames were
/// rendered), answers with a non-`ok` envelope, or returns a stats
/// payload without its `histograms` table. Every path reports which
/// daemon failed and how — the caller maps these to exit code 2.
pub fn top_frames(
    addr: &str,
    interval_ms: u64,
    count: u64,
    timeout_ms: u64,
    sink: &mut dyn FnMut(&str),
) -> Result<u64, String> {
    let mut client = connect_with_retry(addr, timeout_ms)?;
    let request_id = format!("top-{}", std::process::id());
    let mut frames = 0u64;
    let mut prev: Option<(u64, std::time::Instant)> = None;
    loop {
        let sample = match client.call(&request_id, &ServiceRequest::Stats) {
            Ok(response) if response.is_ok() => {
                let payload = response.payload.as_deref().unwrap_or("");
                parse_top_sample(payload)?
            }
            Ok(response) => {
                let detail = response
                    .error
                    .map(|e| e.message)
                    .unwrap_or_else(|| response.status.clone());
                return Err(format!("stats request failed: {detail}"));
            }
            Err(e) if frames > 0 => {
                return Err(format!(
                    "daemon at {addr} dropped the connection after {frames} frame(s): {e}"
                ));
            }
            Err(e) => return Err(format!("cannot poll daemon at {addr}: {e}")),
        };
        let now = std::time::Instant::now();
        #[allow(clippy::cast_precision_loss)]
        let rate = prev.map(|(requests, at)| {
            let elapsed = now.duration_since(at).as_secs_f64().max(1e-9);
            sample.requests.saturating_sub(requests) as f64 / elapsed
        });
        prev = Some((sample.requests, now));
        frames += 1;
        sink(&render_top_frame(addr, frames, &sample, rate));
        if count > 0 && frames >= count {
            return Ok(frames);
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_help_variants() {
        for h in [&["help"][..], &["--help"], &["-h"], &[]] {
            assert_eq!(parse_args(&args(h)).unwrap(), Command::Help);
        }
    }

    #[test]
    fn parse_commands_with_options() {
        assert_eq!(
            parse_args(&args(&["info", "g.sdf"])).unwrap(),
            Command::Info {
                file: "g.sdf".into()
            }
        );
        assert_eq!(
            parse_args(&args(&[
                "schedule",
                "g.sdf",
                "--method",
                "rpmc",
                "--model",
                "nonshared"
            ]))
            .unwrap(),
            Command::Schedule {
                file: "g.sdf".into(),
                method: Method::Rpmc,
                model: Model::NonShared
            }
        );
        assert_eq!(
            parse_args(&args(&["codegen", "g.sdf", "--model", "shared"])).unwrap(),
            Command::Codegen {
                file: "g.sdf".into(),
                method: Method::Apgan,
                model: Model::Shared,
                standalone: false
            }
        );
        assert_eq!(
            parse_args(&args(&["codegen", "g.sdf", "--standalone"])).unwrap(),
            Command::Codegen {
                file: "g.sdf".into(),
                method: Method::Apgan,
                model: Model::Shared,
                standalone: true
            }
        );
    }

    #[test]
    fn parse_simulate_command() {
        assert_eq!(
            parse_args(&args(&["simulate", "g.sdf"])).unwrap(),
            Command::Simulate {
                file: "g.sdf".into(),
                method: Method::Apgan,
                model: Model::Shared,
                report: ReportFormat::Text
            }
        );
        assert_eq!(
            parse_args(&args(&[
                "simulate",
                "g.sdf",
                "--method",
                "rpmc",
                "--model",
                "nonshared",
                "--report",
                "json"
            ]))
            .unwrap(),
            Command::Simulate {
                file: "g.sdf".into(),
                method: Method::Rpmc,
                model: Model::NonShared,
                report: ReportFormat::Json
            }
        );
        assert!(parse_args(&args(&["simulate"])).is_err());
    }

    #[test]
    fn parse_errors() {
        assert!(parse_args(&args(&["frobnicate", "x"])).is_err());
        assert!(parse_args(&args(&["info"])).is_err());
        assert!(parse_args(&args(&["schedule", "g", "--method", "magic"])).is_err());
        assert!(parse_args(&args(&["schedule", "g", "--bogus"])).is_err());
    }

    fn write_fig2() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("sdfmem-cli-tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join(format!("fig2-{}.sdf", std::process::id()));
        std::fs::write(&path, "graph fig2\nedge A B 20 10\nedge B C 20 10\n")
            .expect("write temp graph");
        path
    }

    #[test]
    fn end_to_end_info() {
        let path = write_fig2();
        let out = run(&Command::Info {
            file: path.to_string_lossy().into_owned(),
        })
        .unwrap();
        assert!(out.contains("consistent"), "{out}");
        assert!(out.contains("q(C) = 4"), "{out}");
    }

    #[test]
    fn end_to_end_schedule_and_allocate() {
        let path = write_fig2();
        let file = path.to_string_lossy().into_owned();
        let s = run(&Command::Schedule {
            file: file.clone(),
            method: Method::Apgan,
            model: Model::Shared,
        })
        .unwrap();
        assert!(s.contains("schedule:"), "{s}");
        let a = run(&Command::Allocate {
            file,
            method: Method::Apgan,
        })
        .unwrap();
        assert!(a.contains("pool:"), "{a}");
        assert!(a.contains("A -> B"), "{a}");
    }

    #[test]
    fn end_to_end_codegen() {
        let path = write_fig2();
        let file = path.to_string_lossy().into_owned();
        let c = run(&Command::Codegen {
            file: file.clone(),
            method: Method::Rpmc,
            model: Model::Shared,
            standalone: false,
        })
        .unwrap();
        assert!(c.contains("float mem["), "{c}");
        assert!(c.contains("run_schedule"), "{c}");
        assert!(!c.contains("int main"), "{c}");
        let s = run(&Command::Codegen {
            file,
            method: Method::Rpmc,
            model: Model::Shared,
            standalone: true,
        })
        .unwrap();
        assert!(s.contains("int main(void)"), "{s}");
        assert!(s.contains("run_schedule();"), "{s}");
    }

    #[test]
    fn end_to_end_simulate_text_is_clean() {
        let path = write_fig2();
        for model in [Model::Shared, Model::NonShared] {
            let (out, code) = execute(&Command::Simulate {
                file: path.to_string_lossy().into_owned(),
                method: Method::Apgan,
                model,
                report: ReportFormat::Text,
            })
            .unwrap();
            assert_eq!(code, 0, "{out}");
            assert!(out.contains("simulated clean"), "{out}");
            assert!(out.contains("firings:   7"), "{out}");
        }
    }

    #[test]
    fn simulate_json_report_round_trips_with_embedded_plan() {
        let path = write_fig2();
        let (out, code) = execute(&Command::Simulate {
            file: path.to_string_lossy().into_owned(),
            method: Method::Apgan,
            model: Model::Shared,
            report: ReportFormat::Json,
        })
        .unwrap();
        assert_eq!(code, 0, "{out}");
        let doc = sdf_trace::json::parse(&out).expect("simulation report parses");
        assert_eq!(
            doc.get("kind").and_then(|k| k.as_str()),
            Some("simulation_report")
        );
        assert_eq!(
            doc.get("schema_version").and_then(|v| v.as_num()),
            Some(sdf_trace::SCHEMA_VERSION as f64)
        );
        assert_eq!(doc.get("clean").and_then(|c| c.as_bool()), Some(true));
        let exec = doc.get("exec").expect("exec block");
        assert_eq!(exec.get("firings").and_then(|f| f.as_num()), Some(7.0));
        // The embedded plan is itself a complete `executable_plan` document.
        let plan = doc.get("plan").expect("embedded plan");
        assert_eq!(
            plan.get("kind").and_then(|k| k.as_str()),
            Some("executable_plan")
        );
        assert_eq!(plan.get("graph").and_then(|g| g.as_str()), Some("fig2"));
        let ops = plan.get("ops").and_then(|o| o.as_array()).expect("ops");
        assert!(!ops.is_empty());
    }

    #[test]
    fn end_to_end_gantt_and_dot() {
        let path = write_fig2();
        let file = path.to_string_lossy().into_owned();
        let g = run(&Command::Gantt {
            file: file.clone(),
            method: Method::Apgan,
        })
        .unwrap();
        assert!(g.contains("schedule:"), "{g}");
        assert!(g.contains('#'), "{g}");
        assert!(g.contains("(A,B)"), "{g}");
        let d = run(&Command::Dot { file }).unwrap();
        assert!(d.contains("digraph \"fig2\""), "{d}");
        assert!(d.contains("label=\"20,10\""), "{d}");
    }

    #[test]
    fn parse_gantt_and_dot_commands() {
        assert_eq!(
            parse_args(&args(&["gantt", "g.sdf", "--method", "rpmc"])).unwrap(),
            Command::Gantt {
                file: "g.sdf".into(),
                method: Method::Rpmc
            }
        );
        assert_eq!(
            parse_args(&args(&["dot", "g.sdf"])).unwrap(),
            Command::Dot {
                file: "g.sdf".into()
            }
        );
    }

    #[test]
    fn parse_analyze_command() {
        assert_eq!(
            parse_args(&args(&["analyze", "g.sdf"])).unwrap(),
            Command::Analyze {
                file: "g.sdf".into(),
                report: ReportFormat::Text,
                serial: false,
                full: false,
                trace: None
            }
        );
        assert_eq!(
            parse_args(&args(&[
                "analyze", "g.sdf", "--report", "json", "--serial", "--full", "--trace", "t.json"
            ]))
            .unwrap(),
            Command::Analyze {
                file: "g.sdf".into(),
                report: ReportFormat::Json,
                serial: true,
                full: true,
                trace: Some("t.json".into())
            }
        );
        assert!(parse_args(&args(&["analyze", "g.sdf", "--report", "xml"])).is_err());
    }

    #[test]
    fn parse_profile_command() {
        assert_eq!(
            parse_args(&args(&["profile", "g.sdf"])).unwrap(),
            Command::Profile {
                file: "g.sdf".into(),
                full: false
            }
        );
        assert_eq!(
            parse_args(&args(&["profile", "g.sdf", "--full"])).unwrap(),
            Command::Profile {
                file: "g.sdf".into(),
                full: true
            }
        );
    }

    #[test]
    fn bad_option_values_each_name_the_flag() {
        // Every bad flag value must fail with a message naming the flag, so
        // main.rs can print it plus the usage hint to stderr and exit 2.
        let cases: &[(&[&str], &str)] = &[
            (&["schedule", "g", "--method", "magic"], "--method"),
            (&["schedule", "g", "--method"], "--method"),
            (&["schedule", "g", "--model", "psychic"], "--model"),
            (&["schedule", "g", "--model"], "--model"),
            (&["analyze", "g", "--report", "xml"], "--report"),
            (&["analyze", "g", "--report"], "--report"),
            (&["analyze", "g", "--trace"], "--trace"),
            (&["analyze", "g", "--frobnicate"], "--frobnicate"),
            (&["baseline", "g", "--out"], "--out"),
            (&["baseline", "g", "--repeats"], "--repeats"),
            (&["baseline", "g", "--repeats", "many"], "--repeats"),
            (&["baseline", "g", "--repeats", "0"], "--repeats"),
            (&["compare", "a", "b", "--format", "xml"], "--format"),
            (&["compare", "a", "b", "--format"], "--format"),
            (&["compare", "a", "b", "--allow"], "--allow"),
            (&["simulate", "g", "--model", "psychic"], "--model"),
            (&["simulate", "g", "--method"], "--method"),
            (&["simulate", "g", "--report", "xml"], "--report"),
            (&["simulate", "g", "--bogus"], "--bogus"),
        ];
        for (argv, flag) in cases {
            let err = parse_args(&args(argv)).unwrap_err();
            assert!(err.contains(flag), "{argv:?} -> {err}");
        }
    }

    #[test]
    fn parse_baseline_and_compare_commands() {
        assert_eq!(
            parse_args(&args(&["baseline", "g.sdf"])).unwrap(),
            Command::Baseline {
                file: "g.sdf".into(),
                out: None,
                repeats: 3,
                full: false
            }
        );
        assert_eq!(
            parse_args(&args(&[
                "baseline",
                "g.sdf",
                "--out",
                "b.json",
                "--repeats",
                "5",
                "--full"
            ]))
            .unwrap(),
            Command::Baseline {
                file: "g.sdf".into(),
                out: Some("b.json".into()),
                repeats: 5,
                full: true
            }
        );
        assert_eq!(
            parse_args(&args(&["compare", "a.json", "b.json"])).unwrap(),
            Command::Compare {
                baseline: "a.json".into(),
                candidate: "b.json".into(),
                gate: false,
                format: DiffFormat::Text,
                allow: vec![]
            }
        );
        assert_eq!(
            parse_args(&args(&[
                "compare",
                "a.json",
                "b.json",
                "--gate",
                "--format",
                "md",
                "--allow",
                "sched.*,winner"
            ]))
            .unwrap(),
            Command::Compare {
                baseline: "a.json".into(),
                candidate: "b.json".into(),
                gate: true,
                format: DiffFormat::Markdown,
                allow: vec!["sched.*".into(), "winner".into()]
            }
        );
        // A lone positional is not enough for compare.
        assert!(parse_args(&args(&["compare", "a.json"]))
            .unwrap_err()
            .contains("compare"));
    }

    #[test]
    fn end_to_end_baseline_and_compare() {
        let path = write_fig2();
        let file = path.to_string_lossy().into_owned();
        let dir = std::env::temp_dir().join("sdfmem-cli-tests");
        let base = dir.join(format!("base-{}.json", std::process::id()));
        let cand = dir.join(format!("cand-{}.json", std::process::id()));
        for target in [&base, &cand] {
            let (msg, code) = execute(&Command::Baseline {
                file: file.clone(),
                out: Some(target.to_string_lossy().into_owned()),
                repeats: 2,
                full: false,
            })
            .unwrap();
            assert_eq!(code, 0);
            assert!(msg.contains("wrote baseline profile"), "{msg}");
        }
        // Two captures of the same graph: clean, exit 0.
        let compare = |candidate: &std::path::Path| {
            execute(&Command::Compare {
                baseline: base.to_string_lossy().into_owned(),
                candidate: candidate.to_string_lossy().into_owned(),
                gate: false,
                format: DiffFormat::Text,
                allow: vec![],
            })
        };
        let (text, code) = compare(&cand).unwrap();
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("0 gate failure(s)"), "{text}");
        // A perturbed candidate trips the gate with the counter named.
        let perturbed = dir.join(format!("pert-{}.json", std::process::id()));
        let mut profile =
            sdf_regress::Profile::parse(&std::fs::read_to_string(&cand).unwrap()).unwrap();
        profile.apply_perturbation("sched.dppo.cells=+7").unwrap();
        std::fs::write(&perturbed, profile.to_json()).unwrap();
        let (text, code) = compare(&perturbed).unwrap();
        assert_eq!(code, 1, "{text}");
        assert!(text.contains("sched.dppo.cells"), "{text}");
        assert!(text.contains("REGRESSION"), "{text}");
        // ... unless the counter is allow-listed.
        let (text, code) = execute(&Command::Compare {
            baseline: base.to_string_lossy().into_owned(),
            candidate: perturbed.to_string_lossy().into_owned(),
            gate: false,
            format: DiffFormat::Json,
            allow: vec!["sched.*".into()],
        })
        .unwrap();
        assert_eq!(code, 0, "{text}");
        sdf_trace::json::parse(&text).expect("JSON report parses");
        // Unreadable and malformed inputs are errors (exit 2 in main),
        // not panics.
        let missing = compare(std::path::Path::new("/nonexistent.json")).unwrap_err();
        assert!(missing.contains("cannot read"), "{missing}");
        let garbage = dir.join(format!("garbage-{}.json", std::process::id()));
        std::fs::write(&garbage, "{\"schema_version\":1}").unwrap();
        let foreign = compare(&garbage).unwrap_err();
        assert!(foreign.contains("schema_version"), "{foreign}");
        for f in [base, cand, perturbed, garbage] {
            let _ = std::fs::remove_file(f);
        }
    }

    #[test]
    fn end_to_end_analyze() {
        let path = write_fig2();
        let file = path.to_string_lossy().into_owned();
        let text = run(&Command::Analyze {
            file: file.clone(),
            report: ReportFormat::Text,
            serial: false,
            full: true,
            trace: None,
        })
        .unwrap();
        assert!(text.contains("shared pool:"), "{text}");
        assert!(text.contains("rationale:"), "{text}");
        assert!(text.contains("chain_precise"), "{text}");
        let json = run(&Command::Analyze {
            file,
            report: ReportFormat::Json,
            serial: true,
            full: false,
            trace: None,
        })
        .unwrap();
        assert!(json.trim_end().starts_with('{'), "{json}");
        assert!(json.contains("\"candidates\":["), "{json}");
        assert!(json.contains("\"parallel\":false"), "{json}");
    }

    #[test]
    fn end_to_end_analyze_trace_writes_chrome_json_and_jsonl() {
        let path = write_fig2();
        let file = path.to_string_lossy().into_owned();
        let dir = std::env::temp_dir().join("sdfmem-cli-tests");
        let trace_json = dir.join(format!("trace-{}.json", std::process::id()));
        let trace_jsonl = dir.join(format!("trace-{}.jsonl", std::process::id()));
        run(&Command::Analyze {
            file: file.clone(),
            report: ReportFormat::Json,
            serial: true,
            full: false,
            trace: Some(trace_json.to_string_lossy().into_owned()),
        })
        .unwrap();
        let chrome = std::fs::read_to_string(&trace_json).unwrap();
        let parsed = sdf_trace::json::parse(&chrome).expect("valid chrome trace JSON");
        let events = parsed.get("traceEvents").unwrap().as_array().unwrap();
        assert!(!events.is_empty());
        let names: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("name").and_then(|n| n.as_str()))
            .collect();
        assert!(names.contains(&"engine.run"), "{names:?}");
        assert!(names.contains(&"engine.candidate"), "{names:?}");
        run(&Command::Analyze {
            file,
            report: ReportFormat::Json,
            serial: true,
            full: false,
            trace: Some(trace_jsonl.to_string_lossy().into_owned()),
        })
        .unwrap();
        let jsonl = std::fs::read_to_string(&trace_jsonl).unwrap();
        for line in jsonl.lines() {
            sdf_trace::json::parse(line).expect("every JSONL line parses");
        }
        let _ = std::fs::remove_file(trace_json);
        let _ = std::fs::remove_file(trace_jsonl);
    }

    #[test]
    fn end_to_end_profile() {
        let path = write_fig2();
        let file = path.to_string_lossy().into_owned();
        let out = run(&Command::Profile { file, full: false }).unwrap();
        assert!(out.contains("engine.run"), "{out}");
        assert!(out.contains("candidate.alloc"), "{out}");
        assert!(out.contains("counters:"), "{out}");
        assert!(out.contains("sched.dppo.cells"), "{out}");
        assert!(out.contains("alloc.first_fit.probes"), "{out}");
    }

    #[test]
    fn missing_file_is_reported() {
        let err = run(&Command::Info {
            file: "/nonexistent/x.sdf".into(),
        })
        .unwrap_err();
        assert!(err.contains("cannot read"), "{err}");
    }

    #[test]
    fn parse_serve_and_submit_commands() {
        assert_eq!(
            parse_args(&args(&["serve", "127.0.0.1:0"])).unwrap(),
            Command::Serve {
                addr: "127.0.0.1:0".into(),
                workers: 2,
                cache_cap: 256,
                queue_cap: 64,
                port_file: None,
                trace_dir: None
            }
        );
        assert_eq!(
            parse_args(&args(&[
                "serve",
                "127.0.0.1:7654",
                "--workers",
                "4",
                "--cache-cap",
                "16",
                "--queue-cap",
                "8",
                "--port-file",
                "port.txt",
                "--trace-dir",
                "traces"
            ]))
            .unwrap(),
            Command::Serve {
                addr: "127.0.0.1:7654".into(),
                workers: 4,
                cache_cap: 16,
                queue_cap: 8,
                port_file: Some("port.txt".into()),
                trace_dir: Some("traces".into())
            }
        );
        assert_eq!(
            parse_args(&args(&["submit", "127.0.0.1:7654", "--file", "g.sdf"])).unwrap(),
            Command::Submit {
                addr: "127.0.0.1:7654".into(),
                kind: SubmitKind::Analyze,
                file: Some("g.sdf".into()),
                method: Method::Apgan,
                model: Model::Shared,
                serial: false,
                full: false,
                repeats: 3,
                timeout_ms: 0
            }
        );
        assert_eq!(
            parse_args(&args(&[
                "submit",
                "127.0.0.1:7654",
                "--kind",
                "simulate",
                "--file",
                "g.sdf",
                "--method",
                "rpmc",
                "--model",
                "nonshared"
            ]))
            .unwrap(),
            Command::Submit {
                addr: "127.0.0.1:7654".into(),
                kind: SubmitKind::Simulate,
                file: Some("g.sdf".into()),
                method: Method::Rpmc,
                model: Model::NonShared,
                serial: false,
                full: false,
                repeats: 3,
                timeout_ms: 0
            }
        );
        assert_eq!(
            parse_args(&args(&["submit", "127.0.0.1:7654", "--kind", "shutdown"])).unwrap(),
            Command::Submit {
                addr: "127.0.0.1:7654".into(),
                kind: SubmitKind::Shutdown,
                file: None,
                method: Method::Apgan,
                model: Model::Shared,
                serial: false,
                full: false,
                repeats: 3,
                timeout_ms: 0
            }
        );
        assert!(parse_args(&args(&["serve"])).unwrap_err().contains("addr"));
        let bad_kind = parse_args(&args(&["submit", "a:1", "--kind", "magic"])).unwrap_err();
        assert!(bad_kind.contains("--kind"), "{bad_kind}");
        let bad_workers = parse_args(&args(&["serve", "a:1", "--workers", "many"])).unwrap_err();
        assert!(bad_workers.contains("--workers"), "{bad_workers}");
    }

    #[test]
    fn parse_top_command_and_telemetry_submit_kinds() {
        assert_eq!(
            parse_args(&args(&["top", "127.0.0.1:7654"])).unwrap(),
            Command::Top {
                addr: "127.0.0.1:7654".into(),
                interval_ms: 1000,
                count: 0,
                timeout_ms: 0
            }
        );
        assert_eq!(
            parse_args(&args(&[
                "top",
                "127.0.0.1:7654",
                "--interval-ms",
                "50",
                "--count",
                "3"
            ]))
            .unwrap(),
            Command::Top {
                addr: "127.0.0.1:7654".into(),
                interval_ms: 50,
                count: 3,
                timeout_ms: 0
            }
        );
        for kind in ["metrics", "events"] {
            let parsed = parse_args(&args(&["submit", "a:1", "--kind", kind])).unwrap();
            let Command::Submit { kind: parsed, .. } = parsed else {
                panic!("expected a submit command");
            };
            let expected = if kind == "metrics" {
                SubmitKind::Metrics
            } else {
                SubmitKind::Events
            };
            assert_eq!(parsed, expected);
        }
        assert!(parse_args(&args(&["top"])).unwrap_err().contains("addr"));
        let bad = parse_args(&args(&["top", "a:1", "--interval-ms", "soon"])).unwrap_err();
        assert!(bad.contains("--interval-ms"), "{bad}");
        let bad = parse_args(&args(&["top", "a:1", "--count", "all"])).unwrap_err();
        assert!(bad.contains("--count"), "{bad}");
    }

    #[test]
    fn parse_explain_command() {
        assert_eq!(
            parse_args(&args(&["explain", "g.sdf"])).unwrap(),
            Command::Explain {
                file: "g.sdf".into(),
                buffer: None,
                report: ReportFormat::Text,
                trace: None
            }
        );
        assert_eq!(
            parse_args(&args(&[
                "explain", "g.sdf", "--buffer", "A->B", "--report", "json", "--trace", "t.json"
            ]))
            .unwrap(),
            Command::Explain {
                file: "g.sdf".into(),
                buffer: Some("A->B".into()),
                report: ReportFormat::Json,
                trace: Some("t.json".into())
            }
        );
        let missing = parse_args(&args(&["explain", "g.sdf", "--buffer"])).unwrap_err();
        assert!(missing.contains("--buffer"), "{missing}");
        let parsed = parse_args(&args(&["submit", "a:1", "--kind", "explain"])).unwrap();
        let Command::Submit { kind, .. } = parsed else {
            panic!("expected a submit command");
        };
        assert_eq!(kind, SubmitKind::Explain);
    }

    #[test]
    fn end_to_end_explain() {
        let path = write_fig2();
        let file = path.to_string_lossy().into_owned();
        let trace_path = path.with_extension("explain-trace.json");
        let (text, code) = execute(&Command::Explain {
            file: file.clone(),
            buffer: None,
            report: ReportFormat::Text,
            trace: Some(trace_path.to_string_lossy().into_owned()),
        })
        .unwrap();
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("allocation provenance for `fig2`"), "{text}");
        assert!(text.contains("`A->B`"), "{text}");
        assert!(text.contains("pool occupancy"), "{text}");
        // The trace carries Perfetto counter tracks for both occupancy
        // series.
        let trace_text = std::fs::read_to_string(&trace_path).unwrap();
        assert!(trace_text.contains("\"ph\":\"C\""), "{trace_text}");
        assert!(trace_text.contains("pool.live_words"), "{trace_text}");
        assert!(trace_text.contains("pool.occupied_words"), "{trace_text}");
        sdf_trace::json::parse(&trace_text).expect("trace is valid JSON");
        let _ = std::fs::remove_file(&trace_path);
        // The JSON form is the allocation_explain document and its
        // ledger/timeline invariants hold end to end.
        let (json_out, code) = execute(&Command::Explain {
            file: file.clone(),
            buffer: None,
            report: ReportFormat::Json,
            trace: None,
        })
        .unwrap();
        assert_eq!(code, 0, "{json_out}");
        let doc = sdf_trace::json::parse(json_out.trim()).expect("valid JSON");
        use sdf_trace::json::Json;
        assert_eq!(
            doc.get("kind").and_then(Json::as_str),
            Some("allocation_explain")
        );
        let total = doc
            .get("fragmentation_words")
            .and_then(Json::as_num)
            .unwrap();
        let ledger_sum: f64 = doc
            .get("ledger")
            .and_then(Json::as_array)
            .unwrap()
            .iter()
            .map(|e| e.get("fragmentation").and_then(Json::as_num).unwrap())
            .sum();
        assert_eq!(ledger_sum, total);
        assert_eq!(
            doc.get("timeline")
                .and_then(|t| t.get("peak_occupied"))
                .and_then(Json::as_num),
            doc.get("pool_total").and_then(Json::as_num)
        );
        // A buffer filter narrows the story; an unknown name is a
        // domain failure (exit 1), not a usage error.
        let (only, code) = execute(&Command::Explain {
            file: file.clone(),
            buffer: Some("B->C".into()),
            report: ReportFormat::Text,
            trace: None,
        })
        .unwrap();
        assert_eq!(code, 0, "{only}");
        assert!(only.contains("`B->C`"), "{only}");
        assert!(!only.contains("`A->B`"), "{only}");
        let (missing, code) = execute(&Command::Explain {
            file,
            buffer: Some("X->Y".into()),
            report: ReportFormat::Text,
            trace: None,
        })
        .unwrap();
        assert_eq!(code, 1, "{missing}");
        assert!(missing.contains("no buffer named `X->Y`"), "{missing}");
        assert!(missing.contains("A->B"), "{missing}");
    }

    /// A single-connection stand-in daemon: answers each scripted line
    /// in order, then drops the connection.
    fn fake_daemon(responses: Vec<String>) -> (String, std::thread::JoinHandle<()>) {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            let mut reader = std::io::BufReader::new(stream.try_clone().expect("clone"));
            let mut stream = stream;
            for response in responses {
                let mut line = String::new();
                if std::io::BufRead::read_line(&mut reader, &mut line).unwrap_or(0) == 0 {
                    return;
                }
                let _ = std::io::Write::write_all(&mut stream, response.as_bytes());
                let _ = std::io::Write::write_all(&mut stream, b"\n");
                let _ = std::io::Write::flush(&mut stream);
            }
            // Dropping the socket here is the mid-session hangup.
        });
        (addr, handle)
    }

    fn stats_envelope(payload: &str) -> String {
        format!(
            "{{\"kind\":\"service_response\",\"schema_version\":{},\"request_id\":\"t\",\
             \"status\":\"ok\",\"cached\":false,\"payload\":{payload}}}",
            sdf_trace::SCHEMA_VERSION
        )
    }

    #[test]
    fn top_reports_a_mid_session_hangup_as_a_transport_error() {
        let payload = format!(
            "{{\"kind\":\"service_stats\",\"schema_version\":{},\"counters\":{{}},\
             \"gauges\":{{}},\"histograms\":{{}}}}",
            sdf_trace::SCHEMA_VERSION
        );
        let (addr, handle) = fake_daemon(vec![stats_envelope(&payload)]);
        // One frame renders, then the daemon hangs up before the second
        // of three requested frames: a transport error (exit 2 in
        // main), not a clean finish and not a panic.
        let mut sink_frames = 0u64;
        let err = top_frames(&addr, 1, 3, 0, &mut |_| sink_frames += 1).unwrap_err();
        assert!(err.contains("dropped the connection"), "{err}");
        assert!(err.contains(&addr), "{err}");
        assert_eq!(sink_frames, 1);
        handle.join().unwrap();
    }

    #[test]
    fn top_rejects_a_stats_payload_without_histograms() {
        let truncated = format!(
            "{{\"kind\":\"service_stats\",\"schema_version\":{},\"counters\":{{}},\
             \"gauges\":{{}}}}",
            sdf_trace::SCHEMA_VERSION
        );
        let err = parse_top_sample(&truncated).unwrap_err();
        assert!(err.contains("histograms"), "{err}");
        // And through the polling loop: the malformed payload is an
        // error on the very first frame.
        let (addr, handle) = fake_daemon(vec![stats_envelope(&truncated)]);
        let err = top_frames(&addr, 1, 1, 0, &mut |_| {}).unwrap_err();
        assert!(err.contains("histograms"), "{err}");
        handle.join().unwrap();
    }

    #[test]
    fn options_that_belong_to_other_commands_are_rejected() {
        // The exit-code/flag contract: every command accepts exactly
        // its documented options, and the error names the stray flag.
        let cases: &[(&[&str], &str)] = &[
            (&["info", "g", "--method", "apgan"], "--method"),
            (&["bounds", "g", "--report", "json"], "--report"),
            (&["dot", "g", "--full"], "--full"),
            (&["schedule", "g", "--standalone"], "--standalone"),
            (&["schedule", "g", "--report", "json"], "--report"),
            (&["allocate", "g", "--model", "shared"], "--model"),
            (&["analyze", "g", "--method", "apgan"], "--method"),
            (&["analyze", "g", "--out", "x"], "--out"),
            (&["profile", "g", "--serial"], "--serial"),
            (&["baseline", "g", "--gate"], "--gate"),
            (&["compare", "a", "b", "--repeats", "3"], "--repeats"),
            (&["codegen", "g", "--trace", "t"], "--trace"),
            (&["simulate", "g", "--standalone"], "--standalone"),
            (&["gantt", "g", "--model", "shared"], "--model"),
            (&["serve", "a:1", "--method", "apgan"], "--method"),
            (&["serve", "a:1", "--interval-ms", "9"], "--interval-ms"),
            (&["submit", "a:1", "--standalone"], "--standalone"),
            (&["submit", "a:1", "--trace-dir", "d"], "--trace-dir"),
            (&["top", "a:1", "--workers", "2"], "--workers"),
            (&["top", "a:1", "--kind", "stats"], "--kind"),
            (&["explain", "g", "--method", "apgan"], "--method"),
            (&["explain", "g", "--full"], "--full"),
            (&["analyze", "g", "--buffer", "b"], "--buffer"),
            (&["simulate", "g", "--buffer", "b"], "--buffer"),
            (&["edit", "a:1", "--kind", "stats"], "--kind"),
            (&["edit", "a:1", "--method", "apgan"], "--method"),
            (&["submit", "a:1", "--edits", "e"], "--edits"),
            (&["analyze", "g", "--timeout-ms", "5"], "--timeout-ms"),
            (&["serve", "a:1", "--timeout-ms", "5"], "--timeout-ms"),
        ];
        for (argv, flag) in cases {
            let err = parse_args(&args(argv)).unwrap_err();
            assert!(err.contains(flag), "{argv:?} -> {err}");
            assert!(err.contains("does not apply"), "{argv:?} -> {err}");
        }
    }

    #[test]
    fn end_to_end_serve_and_submit() {
        let path = write_fig2();
        let file = path.to_string_lossy().into_owned();
        // A private daemon on an ephemeral port.
        let server = Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind");
        let addr = server.local_addr().to_string();
        let submit = |kind: SubmitKind, file: Option<String>| {
            execute(&Command::Submit {
                addr: addr.clone(),
                kind,
                file,
                method: Method::Apgan,
                model: Model::Shared,
                serial: false,
                full: false,
                repeats: 2,
                timeout_ms: 0,
            })
        };
        // First analyze computes, the repeat is served from cache —
        // with byte-identical payload bytes inside the envelope.
        let (first, code) = submit(SubmitKind::Analyze, Some(file.clone())).unwrap();
        assert_eq!(code, 0, "{first}");
        assert!(first.contains("\"status\":\"ok\""), "{first}");
        assert!(first.contains("\"cached\":false"), "{first}");
        let (second, code) = submit(SubmitKind::Analyze, Some(file.clone())).unwrap();
        assert_eq!(code, 0, "{second}");
        assert!(second.contains("\"cached\":true"), "{second}");
        let payload_of = |line: &str| {
            let start = line.find(",\"payload\":").expect("payload member") + 11;
            line[start..line.trim_end().len() - 1].to_string()
        };
        assert_eq!(payload_of(&first), payload_of(&second));
        // A simulate submission exits 0 only when the oracle is clean.
        let (sim, code) = submit(SubmitKind::Simulate, Some(file.clone())).unwrap();
        assert_eq!(code, 0, "{sim}");
        assert!(sim.contains("\"clean\":true"), "{sim}");
        // A broken graph is a domain failure: error envelope, exit 1.
        let broken = path.with_extension("broken.sdf");
        std::fs::write(&broken, "graph broken\nedge A\n").unwrap();
        let (err, code) = submit(
            SubmitKind::Analyze,
            Some(broken.to_string_lossy().into_owned()),
        )
        .unwrap();
        assert_eq!(code, 1, "{err}");
        assert!(err.contains("\"status\":\"error\""), "{err}");
        assert!(err.contains("parse_error"), "{err}");
        // Stats reports the daemon's counters plus latency histogram
        // summaries; metrics exposes the same instruments as
        // Prometheus-style text; events drains the flight recorder.
        let (stats, code) = submit(SubmitKind::Stats, None).unwrap();
        assert_eq!(code, 0, "{stats}");
        assert!(stats.contains("service.cache.hits"), "{stats}");
        assert!(stats.contains("\"histograms\""), "{stats}");
        assert!(stats.contains("service.op.analyze.latency"), "{stats}");
        let (metrics, code) = submit(SubmitKind::Metrics, None).unwrap();
        assert_eq!(code, 0, "{metrics}");
        assert!(
            metrics.contains("\"kind\":\"service_metrics\""),
            "{metrics}"
        );
        assert!(
            metrics.contains("service_op_analyze_latency_bucket"),
            "{metrics}"
        );
        let (events, code) = submit(SubmitKind::Events, None).unwrap();
        assert_eq!(code, 0, "{events}");
        assert!(events.contains("\"kind\":\"service_events\""), "{events}");
        assert!(events.contains("\"op\":\"analyze\""), "{events}");
        // `top` against the live daemon renders the requested number of
        // frames through the sink and reports per-op quantiles.
        let mut captured = String::new();
        let frames = top_frames(&addr, 1, 2, 0, &mut |frame: &str| captured.push_str(frame))
            .expect("top frames");
        assert_eq!(frames, 2);
        assert!(captured.contains("sdfmemd"), "{captured}");
        assert!(captured.contains("analyze"), "{captured}");
        assert!(captured.contains("p95"), "{captured}");
        let (bye, code) = submit(SubmitKind::Shutdown, None).unwrap();
        assert_eq!(code, 0, "{bye}");
        server.wait();
        // The daemon is gone: connecting now is a transport error
        // (exit 2 in main).
        let refused = submit(SubmitKind::Stats, None);
        assert!(refused.is_err(), "{refused:?}");
        let _ = std::fs::remove_file(broken);
    }

    #[test]
    fn parse_edit_command_and_timeouts() {
        assert_eq!(
            parse_args(&args(&[
                "edit",
                "127.0.0.1:7654",
                "--file",
                "g.sdf",
                "--edits",
                "g.edits",
                "--timeout-ms",
                "2000"
            ]))
            .unwrap(),
            Command::Edit {
                addr: "127.0.0.1:7654".into(),
                file: Some("g.sdf".into()),
                edits: Some("g.edits".into()),
                timeout_ms: 2000
            }
        );
        // --timeout-ms defaults to 0 (single attempt) everywhere.
        assert_eq!(
            parse_args(&args(&["edit", "a:1"])).unwrap(),
            Command::Edit {
                addr: "a:1".into(),
                file: None,
                edits: None,
                timeout_ms: 0
            }
        );
        let Command::Submit { timeout_ms, .. } =
            parse_args(&args(&["submit", "a:1", "--timeout-ms", "150"])).unwrap()
        else {
            panic!("expected a submit command");
        };
        assert_eq!(timeout_ms, 150);
        let Command::Top { timeout_ms, .. } =
            parse_args(&args(&["top", "a:1", "--timeout-ms", "75"])).unwrap()
        else {
            panic!("expected a top command");
        };
        assert_eq!(timeout_ms, 75);
        assert!(parse_args(&args(&["edit"])).unwrap_err().contains("addr"));
        let bad = parse_args(&args(&["edit", "a:1", "--timeout-ms", "soon"])).unwrap_err();
        assert!(bad.contains("--timeout-ms"), "{bad}");
        let bad = parse_args(&args(&["edit", "a:1", "--edits"])).unwrap_err();
        assert!(bad.contains("--edits"), "{bad}");
    }

    #[test]
    fn connect_retry_gives_up_after_the_budget() {
        // Grab a port the OS hands out, then close it: connections are
        // refused from then on.
        let dead = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
            listener.local_addr().unwrap().to_string()
        };
        let fail = |timeout_ms: u64| match connect_with_retry(&dead, timeout_ms) {
            Err(e) => e,
            Ok(_) => panic!("connecting to a closed port must fail"),
        };
        // Zero budget: the single-attempt error, verbatim.
        let plain = fail(0);
        assert!(!plain.contains("within"), "{plain}");
        // A real budget: retries happen (elapsed >= budget) and the
        // error names the address and the budget.
        let start = std::time::Instant::now();
        let err = fail(80);
        assert!(start.elapsed().as_millis() >= 80, "{err}");
        assert!(err.contains(&dead), "{err}");
        assert!(err.contains("within 80ms"), "{err}");
    }

    #[test]
    fn connect_retry_reaches_a_daemon_that_starts_late() {
        // Reserve a port, release it, and bring the scripted daemon up
        // on it only after a delay — the retry loop must bridge the
        // gap where a single attempt would fail.
        let addr = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
            listener.local_addr().unwrap().to_string()
        };
        let late_addr = addr.clone();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(60));
            let listener = std::net::TcpListener::bind(&late_addr).expect("rebind");
            let _ = listener.accept();
        });
        assert!(Client::connect(&addr).is_err(), "port must start closed");
        let client = connect_with_retry(&addr, 5_000);
        assert!(client.is_ok(), "{:?}", client.as_ref().err());
        drop(client);
        handle.join().unwrap();
    }

    #[test]
    fn end_to_end_edit_against_a_live_daemon() {
        let path = write_fig2();
        let file = path.to_string_lossy().into_owned();
        let edits_path = path.with_extension("edits");
        std::fs::write(&edits_path, "# slow A down\nset-rate A B 40 10\n").unwrap();
        let edits = edits_path.to_string_lossy().into_owned();
        let server = Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind");
        let addr = server.local_addr().to_string();
        let edit = |file: Option<String>, edits: Option<String>| {
            execute(&Command::Edit {
                addr: addr.clone(),
                file,
                edits,
                timeout_ms: 0,
            })
        };
        let (out, code) = edit(Some(file.clone()), Some(edits.clone())).unwrap();
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("\"status\":\"ok\""), "{out}");
        assert!(out.contains("\"kind\":\"edit_report\""), "{out}");
        assert!(out.contains("\"edits_applied\":1"), "{out}");
        // The identical request is served from the result cache with
        // byte-identical payload bytes.
        let (again, code) = edit(Some(file.clone()), Some(edits.clone())).unwrap();
        assert_eq!(code, 0, "{again}");
        assert!(again.contains("\"cached\":true"), "{again}");
        // A bad script is a domain failure: error envelope, exit 1,
        // attributed to the edits input.
        let bad_path = path.with_extension("bad.edits");
        std::fs::write(&bad_path, "frobnicate A B\n").unwrap();
        let (err, code) = edit(
            Some(file.clone()),
            Some(bad_path.to_string_lossy().into_owned()),
        )
        .unwrap();
        assert_eq!(code, 1, "{err}");
        assert!(err.contains("\"input\":\"edits\""), "{err}");
        // Missing inputs are usage errors (exit 2 in main).
        assert!(edit(None, Some(edits.clone())).is_err());
        assert!(edit(Some(file), None).is_err());
        // `top` surfaces the incremental columns fed by the edit.
        let mut captured = String::new();
        let frames = top_frames(&addr, 1, 1, 0, &mut |frame: &str| captured.push_str(frame))
            .expect("top frame");
        assert_eq!(frames, 1);
        assert!(captured.contains("edits 0 delta / 1 cold"), "{captured}");
        assert!(captured.contains("sessions 1"), "{captured}");
        server.shutdown();
        server.wait();
        let _ = std::fs::remove_file(edits_path);
        let _ = std::fs::remove_file(bad_path);
    }

    #[test]
    fn parse_modes_command() {
        assert_eq!(
            parse_args(&args(&["modes", "g.sdfm"])).unwrap(),
            Command::Modes {
                file: "g.sdfm".into(),
                report: ReportFormat::Text
            }
        );
        assert_eq!(
            parse_args(&args(&["modes", "g.sdfm", "--report", "json"])).unwrap(),
            Command::Modes {
                file: "g.sdfm".into(),
                report: ReportFormat::Json
            }
        );
        assert!(parse_args(&args(&["modes"])).is_err());
        assert!(parse_args(&args(&["modes", "g.sdfm", "--count", "3"])).is_err());
        let parsed = parse_args(&args(&["submit", "a:1", "--kind", "modes"])).unwrap();
        let Command::Submit { kind, .. } = parsed else {
            panic!("expected a submit command");
        };
        assert_eq!(kind, SubmitKind::Modes);
    }

    fn write_mode_graph() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("sdfmem-cli-tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join(format!("toy-{}.sdfm", std::process::id()));
        // The registered modem acquisition/tracking scenario graph
        // (examples/graphs/modem_acq_track.sdfm).
        let text = "modegraph modem_acq_track\n\
                    persistent sync demod\n\
                    mode acquisition\n\
                    edge src agc 2 1\n\
                    edge agc sync 2 1\n\
                    edge sync demod 1 2 delay 2\n\
                    edge demod sink 2 1\n\
                    mode tracking\n\
                    edge src agc 2 1\n\
                    edge agc eq 1 1\n\
                    edge eq demod 1 1\n\
                    edge agc sync 2 1\n\
                    edge sync demod 1 2 delay 2\n\
                    edge demod sink 1 2\n";
        std::fs::write(&path, text).expect("write temp mode graph");
        path
    }

    #[test]
    fn end_to_end_modes() {
        let path = write_mode_graph();
        let file = path.to_string_lossy().into_owned();
        let (text, code) = execute(&Command::Modes {
            file: file.clone(),
            report: ReportFormat::Text,
        })
        .unwrap();
        assert_eq!(code, 0, "{text}");
        assert!(
            text.contains("modegraph modem_acq_track: 2 modes"),
            "{text}"
        );
        assert!(text.contains("mode acquisition:"), "{text}");
        assert!(text.contains("mode tracking:"), "{text}");
        assert!(text.contains("persistent buffers"), "{text}");
        assert!(text.contains("merged pool:"), "{text}");
        assert!(text.contains("[ok]"), "{text}");
        assert!(text.contains("transitions: oracle clean"), "{text}");
        // The JSON form is the mode_report document and carries the
        // per-mode plans plus the transition-oracle verdict.
        let (json_out, code) = execute(&Command::Modes {
            file,
            report: ReportFormat::Json,
        })
        .unwrap();
        assert_eq!(code, 0, "{json_out}");
        let doc = sdf_trace::json::parse(json_out.trim()).expect("valid JSON");
        use sdf_trace::json::Json;
        assert_eq!(doc.get("kind").and_then(Json::as_str), Some("mode_report"));
        assert_eq!(doc.get("gate_ok").and_then(Json::as_bool), Some(true));
        assert_eq!(doc.get("clean").and_then(Json::as_bool), Some(true));
        let merged = doc.get("merged_pool_words").and_then(Json::as_num).unwrap();
        let sum = doc.get("sum_pool_words").and_then(Json::as_num).unwrap();
        assert!(merged < sum, "merged {merged} must beat separate {sum}");
    }
}
