//! The `sdfmem` command-line tool; all logic lives in the library.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match sdf_cli::parse_args(&args).and_then(|cmd| sdf_cli::execute(&cmd)) {
        Ok((output, code)) => {
            print!("{output}");
            std::process::exit(code);
        }
        Err(message) => {
            eprintln!("error: {message}\n");
            eprint!("{}", sdf_cli::USAGE);
            std::process::exit(2);
        }
    }
}
