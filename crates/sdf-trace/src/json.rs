//! A minimal hand-rolled JSON reader/writer helper.
//!
//! The workspace emits JSON by hand (no serde); this module closes the
//! loop with a small recursive-descent parser so round-trip tests and
//! trace-file validation need no external dependency either. It parses
//! the full JSON grammar (RFC 8259) into a [`Json`] tree; numbers are
//! `f64`, which is exact for every integer this workspace emits.
//!
//! # Examples
//!
//! ```
//! use sdf_trace::json::{parse, Json};
//!
//! let value = parse(r#"{"graph":"fig2","candidates":[{"shared":30}]}"#).unwrap();
//! assert_eq!(value.get("graph").and_then(Json::as_str), Some("fig2"));
//! let first = &value.get("candidates").and_then(Json::as_array).unwrap()[0];
//! assert_eq!(first.get("shared").and_then(Json::as_num), Some(30.0));
//! ```

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers are exact up to 2^53).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys are kept).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// The value of `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members in source order, if this is an object.
    pub fn members(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// Escapes `s` for embedding inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
///
/// # Errors
///
/// Returns a human-readable message with a byte offset on malformed
/// input.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", char::from(b), self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!(
                "unexpected `{}` at byte {}",
                char::from(b),
                self.pos
            )),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number `{text}` at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            // Surrogate pairs are not emitted by this
                            // workspace; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).expect("utf8");
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(parse("-3.5e2").unwrap(), Json::Num(-350.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".to_string()));
    }

    #[test]
    fn escapes_round_trip() {
        let original = "a\"b\\c\nd\te\u{1}f µs";
        let parsed = parse(&format!("\"{}\"", escape(original))).unwrap();
        assert_eq!(parsed.as_str(), Some(original));
    }

    #[test]
    fn nested_structures() {
        let v = parse(r#" { "a": [1, 2, {"b": null}], "c": {"d": true} } "#).unwrap();
        let arr = v.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b"), Some(&Json::Null));
        assert_eq!(
            v.get("c").and_then(|c| c.get("d")).and_then(Json::as_bool),
            Some(true)
        );
        assert_eq!(v.members().unwrap().len(), 2);
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(parse("{}").unwrap(), Json::Obj(vec![]));
        assert_eq!(parse(" [ ] ").unwrap(), Json::Arr(vec![]));
    }

    #[test]
    fn malformed_inputs_rejected() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "1 2",
            "\"unterminated",
            "{\"a\":1,}",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }
}
