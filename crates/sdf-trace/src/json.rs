//! A minimal hand-rolled JSON reader/writer helper.
//!
//! The workspace emits JSON by hand (no serde); this module closes the
//! loop with a small recursive-descent parser so round-trip tests and
//! trace-file validation need no external dependency either. It parses
//! the full JSON grammar (RFC 8259) into a [`Json`] tree; numbers are
//! `f64`, which is exact for every integer this workspace emits.
//!
//! # Examples
//!
//! ```
//! use sdf_trace::json::{parse, Json};
//!
//! let value = parse(r#"{"graph":"fig2","candidates":[{"shared":30}]}"#).unwrap();
//! assert_eq!(value.get("graph").and_then(Json::as_str), Some("fig2"));
//! let first = &value.get("candidates").and_then(Json::as_array).unwrap()[0];
//! assert_eq!(first.get("shared").and_then(Json::as_num), Some(30.0));
//! ```

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers are exact up to 2^53).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys are kept).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// The value of `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members in source order, if this is an object.
    pub fn members(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// Escapes `s` for embedding inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Opens a top-level JSON document with the workspace's unified
/// envelope: `{"kind":"<kind>","schema_version":N,` — every document
/// the workspace emits (`engine_report`, `baseline_profile`,
/// `executable_plan`, `simulation_report`, `regression_report`,
/// `bench_trajectory`, `service_request`, `service_response`, …) starts
/// with this exact header so consumers can dispatch on `kind` and
/// version-check before reading anything else. The caller appends the
/// document body (starting with its first key) and the closing `}`.
///
/// # Examples
///
/// ```
/// use sdf_trace::json::{document_header, parse, Json};
///
/// let mut s = document_header("engine_report");
/// s.push_str("\"graph\":\"fig2\"}");
/// let doc = parse(&s).unwrap();
/// assert_eq!(doc.get("kind").and_then(Json::as_str), Some("engine_report"));
/// assert_eq!(
///     doc.get("schema_version").and_then(Json::as_num),
///     Some(f64::from(sdf_trace::SCHEMA_VERSION)),
/// );
/// ```
pub fn document_header(kind: &str) -> String {
    format!(
        "{{\"kind\":\"{}\",\"schema_version\":{},",
        escape(kind),
        crate::SCHEMA_VERSION
    )
}

/// Maximum container nesting depth [`parse`] accepts. The parser is
/// recursive-descent, so unbounded nesting in untrusted input (a corrupt
/// baseline file, a hand-edited trace) would overflow the stack; beyond
/// this depth it returns an error instead. Every document this workspace
/// emits nests a handful of levels.
pub const MAX_DEPTH: usize = 128;

/// Parses one JSON document (trailing whitespace allowed, nothing else).
///
/// # Errors
///
/// Returns a human-readable message with a byte offset on malformed
/// input, including invalid escapes, lone UTF-16 surrogates, nesting
/// beyond [`MAX_DEPTH`], and trailing garbage.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", char::from(b), self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!(
                "unexpected `{}` at byte {}",
                char::from(b),
                self.pos
            )),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number `{text}` at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek();
                    self.pos += 1;
                    match esc {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => out.push(self.unicode_escape()?),
                        _ => return Err(format!("bad escape at byte {}", self.pos - 1)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).expect("utf8");
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Decodes the four hex digits of a `\u` escape (cursor just past
    /// the `u`), plus the low half of a surrogate pair when the first
    /// unit is a high surrogate. Lone or out-of-order surrogates are
    /// errors — silently substituting U+FFFD would let a corrupt
    /// document diff clean against an intact baseline.
    fn unicode_escape(&mut self) -> Result<char, String> {
        let first = self.hex4()?;
        match first {
            0xD800..=0xDBFF => {
                let at = self.pos;
                if self.peek() != Some(b'\\') || self.bytes.get(self.pos + 1) != Some(&b'u') {
                    return Err(format!("lone high surrogate \\u{first:04x} at byte {at}"));
                }
                self.pos += 2;
                let second = self.hex4()?;
                if !(0xDC00..=0xDFFF).contains(&second) {
                    return Err(format!(
                        "high surrogate \\u{first:04x} followed by \\u{second:04x} at byte {at}"
                    ));
                }
                let code = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                char::from_u32(code).ok_or_else(|| format!("bad surrogate pair at byte {at}"))
            }
            0xDC00..=0xDFFF => Err(format!(
                "lone low surrogate \\u{first:04x} at byte {}",
                self.pos
            )),
            code => Ok(char::from_u32(code).expect("non-surrogate BMP scalar")),
        }
    }

    /// Reads exactly four hex digits at the cursor.
    fn hex4(&mut self) -> Result<u32, String> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|h| std::str::from_utf8(h).ok())
            .filter(|h| h.bytes().all(|b| b.is_ascii_hexdigit()))
            .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
        self.pos += 4;
        Ok(u32::from_str_radix(hex, 16).expect("validated hex"))
    }

    fn enter(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} at byte {}",
                self.pos
            ));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        self.enter()?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(parse("-3.5e2").unwrap(), Json::Num(-350.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".to_string()));
    }

    #[test]
    fn escapes_round_trip() {
        let original = "a\"b\\c\nd\te\u{1}f µs";
        let parsed = parse(&format!("\"{}\"", escape(original))).unwrap();
        assert_eq!(parsed.as_str(), Some(original));
    }

    #[test]
    fn nested_structures() {
        let v = parse(r#" { "a": [1, 2, {"b": null}], "c": {"d": true} } "#).unwrap();
        let arr = v.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b"), Some(&Json::Null));
        assert_eq!(
            v.get("c").and_then(|c| c.get("d")).and_then(Json::as_bool),
            Some(true)
        );
        assert_eq!(v.members().unwrap().len(), 2);
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(parse("{}").unwrap(), Json::Obj(vec![]));
        assert_eq!(parse(" [ ] ").unwrap(), Json::Arr(vec![]));
    }

    #[test]
    fn malformed_inputs_rejected() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "1 2",
            "\"unterminated",
            "{\"a\":1,}",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn bad_escape_sequences_error() {
        for bad in [
            r#""\x""#,     // unknown escape
            r#""\u12""#,   // short hex
            r#""\u12g4""#, // non-hex digit
            r#""\u""#,     // no hex at all
        ] {
            let err = parse(bad).unwrap_err();
            assert!(err.contains("escape"), "{bad:?} -> {err}");
        }
        // A backslash escaping the closing quote leaves the string open.
        assert!(parse(r#""\""#).unwrap_err().contains("unterminated"));
    }

    #[test]
    fn surrogate_pairs_decode_and_lone_surrogates_error() {
        // A valid pair decodes to the supplementary-plane scalar.
        assert_eq!(parse(r#""😀""#).unwrap().as_str(), Some("\u{1f600}"));
        // Lone and malformed surrogates are errors, not U+FFFD.
        for (bad, needle) in [
            (r#""\ud800""#, "lone high surrogate"),
            (r#""\ud800x""#, "lone high surrogate"),
            (r#""\ud800\n""#, "lone high surrogate"),
            (r#""\ud800\u0041""#, "followed by"),
            (r#""\ud800\ud801""#, "followed by"),
            (r#""\udc00""#, "lone low surrogate"),
        ] {
            let err = parse(bad).unwrap_err();
            assert!(err.contains(needle), "{bad:?} -> {err}");
        }
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        // Just inside the limit parses...
        let ok = format!("{}0{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(parse(&ok).is_ok());
        // ...one deeper errors, and absurd depth must not blow the stack.
        for depth in [MAX_DEPTH + 1, 100_000] {
            let bad = format!("{}0{}", "[".repeat(depth), "]".repeat(depth));
            let err = parse(&bad).unwrap_err();
            assert!(err.contains("nesting deeper"), "{err}");
        }
        // Mixed object/array nesting hits the same guard.
        let mixed = format!(
            "{}1{}",
            "{\"k\":[".repeat(MAX_DEPTH),
            "]}".repeat(MAX_DEPTH)
        );
        assert!(parse(&mixed).unwrap_err().contains("nesting deeper"));
    }

    #[test]
    fn trailing_garbage_errors() {
        for bad in ["{} {}", "[1] x", "null,", "42 7", "\"a\"\"b\"", "{}\u{0}"] {
            let err = parse(bad).unwrap_err();
            assert!(err.contains("trailing data"), "{bad:?} -> {err}");
        }
        // Trailing whitespace alone stays legal.
        assert!(parse(" [1, 2] \n\t").is_ok());
    }
}
