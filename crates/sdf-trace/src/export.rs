//! Exporters for recorded traces.
//!
//! A [`TraceSnapshot`] (obtained from [`Recorder::snapshot`]) can be
//! rendered three ways:
//!
//! * [`to_chrome_trace_json`](TraceSnapshot::to_chrome_trace_json) — the
//!   chrome://tracing `trace_events` format, loadable in Perfetto
//!   (<https://ui.perfetto.dev>) or `chrome://tracing`;
//! * [`to_jsonl`](TraceSnapshot::to_jsonl) — one JSON object per line,
//!   convenient for `grep`/`jq`-style post-processing;
//! * [`profile_tree`](TraceSnapshot::profile_tree) and
//!   [`counter_table`](TraceSnapshot::counter_table) — human-readable
//!   text used by `sdfmem profile`.
//!
//! [`Recorder::snapshot`]: crate::Recorder::snapshot

use crate::json::escape;
use crate::metrics::Histogram;
use crate::Event;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt::Write as _;

/// A consistent copy of everything one [`Recorder`](crate::Recorder)
/// collected: completed spans (sorted by start time) plus final
/// instrument values.
#[derive(Clone, Debug)]
pub struct TraceSnapshot {
    /// Format version stamped into every export
    /// ([`SCHEMA_VERSION`](crate::SCHEMA_VERSION)).
    pub schema_version: u32,
    /// Completed spans, sorted by `(start_ns, id)`.
    pub events: Vec<Event>,
    /// Final counter values, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Final gauge values, sorted by name.
    pub gauges: Vec<(String, u64)>,
    /// Final histograms, sorted by name.
    pub histograms: Vec<(String, Histogram)>,
}

/// Nanoseconds rendered as a JSON microsecond number with three decimal
/// places (the unit chrome://tracing expects for `ts`/`dur`).
fn json_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Nanoseconds rendered human-readably with an adaptive unit.
///
/// # Examples
///
/// ```
/// assert_eq!(sdf_trace::export::human_time(2_500_000), "2.500ms");
/// ```
pub fn human_time(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{}.{:03}s", ns / 1_000_000_000, (ns / 1_000_000) % 1_000)
    } else if ns >= 1_000_000 {
        format!("{}.{:03}ms", ns / 1_000_000, (ns / 1_000) % 1_000)
    } else if ns >= 1_000 {
        format!("{}.{:03}µs", ns / 1_000, ns % 1_000)
    } else {
        format!("{ns}ns")
    }
}

fn args_object(args: &[(&'static str, String)]) -> String {
    let mut out = String::from("{");
    for (i, (key, value)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":\"{}\"", escape(key), escape(value));
    }
    out.push('}');
    out
}

fn name_value_object(pairs: &[(String, u64)]) -> String {
    let mut out = String::from("{");
    for (i, (name, value)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", escape(name), value);
    }
    out.push('}');
    out
}

fn histogram_buckets_json(h: &Histogram) -> String {
    let mut out = String::from("[");
    for (i, (lo, hi, count)) in h.nonzero_buckets().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "[{lo},{hi},{count}]");
    }
    out.push(']');
    out
}

/// A counter track for the chrome trace export: a named step series of
/// `(timestamp, value)` points rendered by Perfetto as a filled counter
/// lane (`"ph":"C"` events) alongside the span tracks.
///
/// Timestamps are in the export's native microseconds; callers plotting
/// logical (schedule-clock) series rather than wall time simply use one
/// microsecond per logical step.
#[derive(Clone, Debug)]
pub struct CounterTrack {
    /// Track (and counter series) name.
    pub name: String,
    /// `(timestamp_us, value)` step points, ascending in time.
    pub points: Vec<(u64, u64)>,
}

impl TraceSnapshot {
    /// Renders the snapshot as a chrome://tracing `trace_events` JSON
    /// document (object form). Each completed span becomes a `"ph":"X"`
    /// (complete) event with microsecond `ts`/`dur`; viewers infer
    /// nesting from time containment per `tid`. Counters, gauges and
    /// histograms ride along as top-level sections that Perfetto
    /// ignores but downstream tools can parse.
    pub fn to_chrome_trace_json(&self) -> String {
        self.to_chrome_trace_json_with_tracks(&[])
    }

    /// Like [`to_chrome_trace_json`](Self::to_chrome_trace_json), but
    /// additionally renders each [`CounterTrack`] as a series of
    /// `"ph":"C"` counter events, which Perfetto draws as a dedicated
    /// counter lane (used for the pool occupancy timeline).
    pub fn to_chrome_trace_json_with_tracks(&self, tracks: &[CounterTrack]) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"schema_version\":{},\"displayTimeUnit\":\"ms\",\"traceEvents\":[",
            self.schema_version
        );
        let mut first = true;
        for e in &self.events {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"sdf\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{}}}",
                escape(e.name),
                e.thread,
                json_us(e.start_ns),
                json_us(e.dur_ns),
                args_object(&e.args),
            );
        }
        for track in tracks {
            for &(ts, value) in &track.points {
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"cat\":\"sdf\",\"ph\":\"C\",\"pid\":1,\"ts\":{},\"args\":{{\"{}\":{}}}}}",
                    escape(&track.name),
                    ts,
                    escape(&track.name),
                    value,
                );
            }
        }
        let _ = write!(
            out,
            "],\"counters\":{},\"gauges\":{},\"histograms\":{{",
            name_value_object(&self.counters),
            name_value_object(&self.gauges),
        );
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{},\"sum\":{},\"buckets\":{}}}",
                escape(name),
                h.count(),
                h.sum(),
                histogram_buckets_json(h),
            );
        }
        out.push_str("}}");
        out
    }

    /// Renders the snapshot as a JSONL stream: a `header` line, one
    /// `span` line per event (in start order), then one line per
    /// counter, gauge and histogram.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"type\":\"header\",\"schema_version\":{},\"events\":{}}}",
            self.schema_version,
            self.events.len()
        );
        for e in &self.events {
            let parent = match e.parent {
                Some(p) => p.to_string(),
                None => "null".to_string(),
            };
            let _ = writeln!(
                out,
                "{{\"type\":\"span\",\"id\":{},\"parent\":{},\"name\":\"{}\",\"thread\":{},\"start_ns\":{},\"dur_ns\":{},\"args\":{}}}",
                e.id,
                parent,
                escape(e.name),
                e.thread,
                e.start_ns,
                e.dur_ns,
                args_object(&e.args),
            );
        }
        for (name, value) in &self.counters {
            let _ = writeln!(
                out,
                "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{}}}",
                escape(name),
                value
            );
        }
        for (name, value) in &self.gauges {
            let _ = writeln!(
                out,
                "{{\"type\":\"gauge\",\"name\":\"{}\",\"value\":{}}}",
                escape(name),
                value
            );
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "{{\"type\":\"histogram\",\"name\":\"{}\",\"count\":{},\"sum\":{},\"buckets\":{}}}",
                escape(name),
                h.count(),
                h.sum(),
                histogram_buckets_json(h),
            );
        }
        out
    }

    /// Renders the span hierarchy as an indented text tree with
    /// inclusive and exclusive (self) times. Spans with the same name
    /// under the same parent are merged into one line with a call
    /// count; siblings are sorted by inclusive time, descending.
    pub fn profile_tree(&self) -> String {
        let known: HashSet<u64> = self.events.iter().map(|e| e.id).collect();
        // Group event indices by effective parent. A parent id we never
        // saw (its guard was still open at snapshot time) makes the
        // child a root rather than an orphan.
        let mut children: HashMap<Option<u64>, Vec<usize>> = HashMap::new();
        for (i, e) in self.events.iter().enumerate() {
            let parent = e.parent.filter(|p| known.contains(p));
            children.entry(parent).or_default().push(i);
        }

        struct Agg {
            name: &'static str,
            calls: u64,
            inclusive: u64,
            exclusive: u64,
            children: Vec<Agg>,
        }

        fn aggregate(
            events: &[Event],
            children: &HashMap<Option<u64>, Vec<usize>>,
            siblings: &[usize],
        ) -> Vec<Agg> {
            // Merge same-name siblings; BTreeMap gives deterministic
            // order before the by-time sort below.
            let mut groups: BTreeMap<&'static str, Vec<usize>> = BTreeMap::new();
            for &i in siblings {
                groups.entry(events[i].name).or_default().push(i);
            }
            let mut aggs: Vec<Agg> = groups
                .into_iter()
                .map(|(name, indices)| {
                    let inclusive = indices
                        .iter()
                        .fold(0u64, |acc, &i| acc.saturating_add(events[i].dur_ns));
                    let mut child_indices = Vec::new();
                    for &i in &indices {
                        if let Some(c) = children.get(&Some(events[i].id)) {
                            child_indices.extend_from_slice(c);
                        }
                    }
                    let child_aggs = aggregate(events, children, &child_indices);
                    let child_total = child_aggs
                        .iter()
                        .fold(0u64, |acc, c| acc.saturating_add(c.inclusive));
                    Agg {
                        name,
                        calls: indices.len() as u64,
                        inclusive,
                        exclusive: inclusive.saturating_sub(child_total),
                        children: child_aggs,
                    }
                })
                .collect();
            aggs.sort_by(|a, b| b.inclusive.cmp(&a.inclusive).then(a.name.cmp(b.name)));
            aggs
        }

        fn render(out: &mut Vec<(String, u64, u64, u64)>, aggs: &[Agg], depth: usize) {
            for a in aggs {
                out.push((
                    format!("{}{}", "  ".repeat(depth), a.name),
                    a.inclusive,
                    a.exclusive,
                    a.calls,
                ));
                render(out, &a.children, depth + 1);
            }
        }

        let roots = children.get(&None).cloned().unwrap_or_default();
        let aggs = aggregate(&self.events, &children, &roots);
        let mut rows = Vec::new();
        render(&mut rows, &aggs, 0);

        let mut out = String::new();
        if rows.is_empty() {
            out.push_str("no spans recorded\n");
            return out;
        }
        let name_width = rows.iter().map(|r| r.0.len()).max().unwrap_or(0).max(4);
        let _ = writeln!(
            out,
            "{:<name_width$}  {:>12}  {:>12}  {:>7}",
            "span", "inclusive", "exclusive", "calls"
        );
        for (label, inclusive, exclusive, calls) in &rows {
            let _ = writeln!(
                out,
                "{:<name_width$}  {:>12}  {:>12}  {:>7}",
                label,
                human_time(*inclusive),
                human_time(*exclusive),
                calls
            );
        }
        out
    }

    /// Renders all instruments as an aligned text table: counters,
    /// gauges, then histograms with their occupied buckets.
    pub fn counter_table(&self) -> String {
        let mut out = String::new();
        if self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty() {
            out.push_str("no instruments recorded\n");
            return out;
        }
        let width = self
            .counters
            .iter()
            .map(|(n, _)| n.len())
            .chain(self.gauges.iter().map(|(n, _)| n.len()))
            .max()
            .unwrap_or(0)
            .max(7);
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, value) in &self.counters {
                let _ = writeln!(out, "  {name:<width$}  {value:>12}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, value) in &self.gauges {
                let _ = writeln!(out, "  {name:<width$}  {value:>12}");
            }
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(out, "histogram {name}: count={} sum={}", h.count(), h.sum());
            for (lo, hi, count) in h.nonzero_buckets() {
                let _ = writeln!(out, "  [{lo}, {hi})  {count}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Json};

    fn sample() -> TraceSnapshot {
        let mut h = Histogram::default();
        h.record(3);
        h.record(100);
        TraceSnapshot {
            schema_version: crate::SCHEMA_VERSION,
            events: vec![
                Event {
                    id: 1,
                    parent: None,
                    name: "engine.run",
                    args: vec![("graph", "fig\"2".to_string())],
                    thread: 1,
                    start_ns: 0,
                    dur_ns: 5_000_000,
                },
                Event {
                    id: 2,
                    parent: Some(1),
                    name: "candidate.schedule",
                    args: vec![],
                    thread: 1,
                    start_ns: 1_000,
                    dur_ns: 1_500_000,
                },
                Event {
                    id: 3,
                    parent: Some(2),
                    name: "sched.dppo",
                    args: vec![],
                    thread: 1,
                    start_ns: 2_000,
                    dur_ns: 900_000,
                },
                Event {
                    id: 4,
                    parent: Some(1),
                    name: "candidate.schedule",
                    args: vec![],
                    thread: 1,
                    start_ns: 2_600_000,
                    dur_ns: 800_000,
                },
            ],
            counters: vec![("sched.dppo.cells".to_string(), 21)],
            gauges: vec![("alloc.fragmentation_words".to_string(), 4)],
            histograms: vec![("alloc.buffer_words".to_string(), h)],
        }
    }

    #[test]
    fn chrome_trace_is_valid_json_with_expected_fields() {
        let snap = sample();
        let doc = parse(&snap.to_chrome_trace_json()).expect("valid JSON");
        assert_eq!(
            doc.get("schema_version").and_then(Json::as_num),
            Some(f64::from(crate::SCHEMA_VERSION))
        );
        let events = doc.get("traceEvents").and_then(Json::as_array).unwrap();
        assert_eq!(events.len(), 4);
        let first = &events[0];
        assert_eq!(first.get("name").and_then(Json::as_str), Some("engine.run"));
        assert_eq!(first.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(first.get("ts").and_then(Json::as_num), Some(0.0));
        assert_eq!(first.get("dur").and_then(Json::as_num), Some(5000.0));
        assert_eq!(
            first
                .get("args")
                .and_then(|a| a.get("graph"))
                .and_then(Json::as_str),
            Some("fig\"2")
        );
        assert_eq!(
            doc.get("counters")
                .and_then(|c| c.get("sched.dppo.cells"))
                .and_then(Json::as_num),
            Some(21.0)
        );
        let hist = doc
            .get("histograms")
            .and_then(|h| h.get("alloc.buffer_words"))
            .unwrap();
        assert_eq!(hist.get("count").and_then(Json::as_num), Some(2.0));
        assert_eq!(hist.get("sum").and_then(Json::as_num), Some(103.0));
    }

    #[test]
    fn counter_tracks_render_as_c_events() {
        let snap = sample();
        let tracks = vec![CounterTrack {
            name: "pool.occupied_words".to_string(),
            points: vec![(0, 40), (4, 60), (8, 0)],
        }];
        let doc = parse(&snap.to_chrome_trace_json_with_tracks(&tracks)).expect("valid JSON");
        let events = doc.get("traceEvents").and_then(Json::as_array).unwrap();
        // 4 spans + 3 counter points.
        assert_eq!(events.len(), 7);
        let c = &events[4];
        assert_eq!(c.get("ph").and_then(Json::as_str), Some("C"));
        assert_eq!(
            c.get("name").and_then(Json::as_str),
            Some("pool.occupied_words")
        );
        assert_eq!(
            c.get("args")
                .and_then(|a| a.get("pool.occupied_words"))
                .and_then(Json::as_num),
            Some(40.0)
        );
        let last = &events[6];
        assert_eq!(last.get("ts").and_then(Json::as_num), Some(8.0));
        // Tracks on an empty snapshot still produce a valid document.
        let empty = TraceSnapshot {
            schema_version: crate::SCHEMA_VERSION,
            events: vec![],
            counters: vec![],
            gauges: vec![],
            histograms: vec![],
        };
        parse(&empty.to_chrome_trace_json_with_tracks(&tracks)).expect("valid JSON");
    }

    #[test]
    fn jsonl_lines_all_parse() {
        let snap = sample();
        let jsonl = snap.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        // header + 4 spans + 1 counter + 1 gauge + 1 histogram
        assert_eq!(lines.len(), 8);
        for line in &lines {
            parse(line).expect("each JSONL line is valid JSON");
        }
        let header = parse(lines[0]).unwrap();
        assert_eq!(header.get("type").and_then(Json::as_str), Some("header"));
        assert_eq!(
            header.get("schema_version").and_then(Json::as_num),
            Some(f64::from(crate::SCHEMA_VERSION))
        );
        let child = parse(lines[2]).unwrap();
        assert_eq!(child.get("parent").and_then(Json::as_num), Some(1.0));
    }

    #[test]
    fn profile_tree_merges_and_nests() {
        let snap = sample();
        let tree = snap.profile_tree();
        let lines: Vec<&str> = tree.lines().collect();
        // header + engine.run + candidate.schedule (merged) + sched.dppo
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with("engine.run"));
        assert!(lines[2].starts_with("  candidate.schedule"));
        assert!(lines[2].contains("2")); // two merged calls
        assert!(lines[3].starts_with("    sched.dppo"));
        // engine.run exclusive = 5ms - (1.5ms + 0.8ms) = 2.7ms
        assert!(lines[1].contains("5.000ms"));
        assert!(lines[1].contains("2.700ms"));
        // merged candidate.schedule inclusive = 2.3ms, exclusive 1.4ms
        assert!(lines[2].contains("2.300ms"));
        assert!(lines[2].contains("1.400ms"));
    }

    #[test]
    fn orphan_parents_become_roots() {
        let snap = TraceSnapshot {
            schema_version: crate::SCHEMA_VERSION,
            events: vec![Event {
                id: 9,
                parent: Some(1_000_000),
                name: "stranded",
                args: vec![],
                thread: 3,
                start_ns: 10,
                dur_ns: 20,
            }],
            counters: vec![],
            gauges: vec![],
            histograms: vec![],
        };
        let tree = snap.profile_tree();
        assert!(tree.lines().nth(1).unwrap().starts_with("stranded"));
    }

    #[test]
    fn counter_table_lists_all_instruments() {
        let table = sample().counter_table();
        assert!(table.contains("counters:"));
        assert!(table.contains("sched.dppo.cells"));
        assert!(table.contains("21"));
        assert!(table.contains("gauges:"));
        assert!(table.contains("alloc.fragmentation_words"));
        assert!(table.contains("histogram alloc.buffer_words: count=2 sum=103"));
        assert!(table.contains("[2, 4)  1"));
        assert!(table.contains("[64, 128)  1"));
    }

    #[test]
    fn empty_snapshot_renders_placeholders() {
        let snap = TraceSnapshot {
            schema_version: crate::SCHEMA_VERSION,
            events: vec![],
            counters: vec![],
            gauges: vec![],
            histograms: vec![],
        };
        assert_eq!(snap.profile_tree(), "no spans recorded\n");
        assert_eq!(snap.counter_table(), "no instruments recorded\n");
        parse(&snap.to_chrome_trace_json()).expect("empty trace still valid JSON");
    }

    #[test]
    fn human_time_units() {
        assert_eq!(human_time(0), "0ns");
        assert_eq!(human_time(999), "999ns");
        assert_eq!(human_time(1_000), "1.000µs");
        assert_eq!(human_time(2_500_000), "2.500ms");
        assert_eq!(human_time(3_040_000_000), "3.040s");
    }
}
