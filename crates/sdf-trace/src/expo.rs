//! Prometheus-style text exposition for recorder instruments.
//!
//! [`write_exposition`] renders counters, gauges and power-of-two
//! histograms in the Prometheus text format (`# TYPE` declarations,
//! cumulative `_bucket{le="…"}` lines, `_sum`/`_count`), so any
//! standard scraper — or a human with `curl` — can read a daemon's
//! instruments without this crate. Dotted instrument names are
//! sanitized to the Prometheus charset (`service.cache.hits` →
//! `service_cache_hits`).
//!
//! One deliberate divergence from stock Prometheus: our histogram
//! buckets are half-open `[lo, hi)` while Prometheus `le` is
//! inclusive. We emit each bucket's exclusive upper bound as its `le`
//! value, which over-reports the bound by at most one unit — harmless
//! at nanosecond resolution and the price of keeping the power-of-two
//! bucket layout exact.
//!
//! [`validate_exposition`] is the matching parser-independent checker:
//! it verifies line shapes, name charset, `# TYPE` declarations, and
//! histogram completeness/monotonicity without round-tripping through
//! the writer, so tests of the wire `metrics` op do not simply compare
//! the writer against itself.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::metrics::Histogram;

/// A dotted instrument name mapped into the Prometheus metric charset:
/// `[a-zA-Z0-9_:]`, with every other byte replaced by `_`.
pub fn sanitize_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Renders counters, gauges and histograms as Prometheus text
/// exposition.
///
/// # Examples
///
/// ```
/// use sdf_trace::Histogram;
/// use sdf_trace::expo::{validate_exposition, write_exposition};
///
/// let mut h = Histogram::default();
/// h.record(3);
/// let text = write_exposition(
///     &[("service.cache.hits".into(), 2)],
///     &[],
///     &[("service.op.analyze.latency".into(), h)],
/// );
/// assert!(text.contains("service_cache_hits 2"));
/// assert!(text.contains("service_op_analyze_latency_bucket{le=\"4\"} 1"));
/// validate_exposition(&text).unwrap();
/// ```
pub fn write_exposition(
    counters: &[(String, u64)],
    gauges: &[(String, u64)],
    histograms: &[(String, Histogram)],
) -> String {
    let mut out = String::new();
    for (name, value) in counters {
        let name = sanitize_name(name);
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, value) in gauges {
        let name = sanitize_name(name);
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, h) in histograms {
        let name = sanitize_name(name);
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for (_, hi, count) in h.nonzero_buckets() {
            cumulative += count;
            let _ = writeln!(out, "{name}_bucket{{le=\"{hi}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count());
        let _ = writeln!(out, "{name}_sum {}", h.sum());
        let _ = writeln!(out, "{name}_count {}", h.count());
    }
    out
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// The state accumulated for one declared histogram while scanning.
#[derive(Default)]
struct HistogramCheck {
    last_bucket: Option<u64>,
    saw_inf: Option<u64>,
    sum: Option<u64>,
    count: Option<u64>,
}

/// Checks that `text` is well-formed Prometheus exposition, without
/// consulting the writer: every line is a `# TYPE` declaration or a
/// `name[{le="…"}] <integer>` sample, names use the Prometheus charset,
/// every sample's metric was declared, and each histogram has monotone
/// cumulative buckets ending in `le="+Inf"` whose value equals its
/// `_count` line. Returns the first problem as `Err` with its line
/// number.
///
/// # Errors
///
/// Returns `Err(message)` naming the offending 1-based line.
pub fn validate_exposition(text: &str) -> Result<(), String> {
    let mut types: HashMap<String, String> = HashMap::new();
    let mut histograms: HashMap<String, HistogramCheck> = HashMap::new();
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        if line.is_empty() {
            return Err(format!("line {lineno}: blank line"));
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let (name, kind) = match (parts.next(), parts.next(), parts.next()) {
                (Some(n), Some(k), None) => (n, k),
                _ => return Err(format!("line {lineno}: malformed # TYPE line")),
            };
            if !valid_metric_name(name) {
                return Err(format!("line {lineno}: bad metric name {name:?}"));
            }
            if !matches!(kind, "counter" | "gauge" | "histogram") {
                return Err(format!("line {lineno}: unknown metric type {kind:?}"));
            }
            if types.insert(name.to_string(), kind.to_string()).is_some() {
                return Err(format!("line {lineno}: duplicate # TYPE for {name}"));
            }
            if kind == "histogram" {
                histograms.insert(name.to_string(), HistogramCheck::default());
            }
            continue;
        }
        if line.starts_with('#') {
            return Err(format!("line {lineno}: unsupported comment line"));
        }
        // Sample line: `name[{le="…"}] <integer>`.
        let (name_part, value_part) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {lineno}: sample line has no value"))?;
        let value: u64 = value_part
            .parse()
            .map_err(|_| format!("line {lineno}: non-integer sample value {value_part:?}"))?;
        let (name, le) = match name_part.split_once('{') {
            Some((name, labels)) => {
                let le = labels
                    .strip_prefix("le=\"")
                    .and_then(|l| l.strip_suffix("\"}"))
                    .ok_or_else(|| format!("line {lineno}: unsupported labels {labels:?}"))?;
                (name, Some(le))
            }
            None => (name_part, None),
        };
        if !valid_metric_name(name) {
            return Err(format!("line {lineno}: bad metric name {name:?}"));
        }
        // Resolve the declared base metric this sample belongs to.
        let base = if let Some(b) = name.strip_suffix("_bucket").filter(|_| le.is_some()) {
            b
        } else if let Some(b) = name
            .strip_suffix("_sum")
            .or_else(|| name.strip_suffix("_count"))
            .filter(|b| histograms.contains_key(*b))
        {
            b
        } else {
            name
        };
        let declared = types
            .get(base)
            .ok_or_else(|| format!("line {lineno}: sample for undeclared metric {base}"))?;
        match (declared.as_str(), le) {
            ("histogram", _) => {}
            (_, None) => {}
            (kind, Some(_)) => {
                return Err(format!("line {lineno}: le label on a {kind} metric"));
            }
        }
        if declared == "histogram" {
            let check = histograms.get_mut(base).expect("tracked with declaration");
            if let Some(le) = le {
                if check.saw_inf.is_some() {
                    return Err(format!(
                        "line {lineno}: bucket after le=\"+Inf\" for {base}"
                    ));
                }
                if let Some(last) = check.last_bucket {
                    if value < last {
                        return Err(format!(
                            "line {lineno}: non-monotone cumulative bucket for {base}"
                        ));
                    }
                }
                check.last_bucket = Some(value);
                if le == "+Inf" {
                    check.saw_inf = Some(value);
                } else if le.parse::<u64>().is_err() {
                    return Err(format!("line {lineno}: non-numeric le bound {le:?}"));
                }
            } else if name.ends_with("_sum") {
                check.sum = Some(value);
            } else if name.ends_with("_count") {
                check.count = Some(value);
            } else {
                return Err(format!(
                    "line {lineno}: bare sample for histogram metric {base}"
                ));
            }
        }
    }
    for (name, check) in &histograms {
        let inf = check
            .saw_inf
            .ok_or_else(|| format!("histogram {name} has no le=\"+Inf\" bucket"))?;
        if check.sum.is_none() {
            return Err(format!("histogram {name} has no _sum line"));
        }
        let count = check
            .count
            .ok_or_else(|| format!("histogram {name} has no _count line"))?;
        if inf != count {
            return Err(format!(
                "histogram {name}: +Inf bucket {inf} != _count {count}"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_maps_dots_to_underscores() {
        assert_eq!(sanitize_name("service.cache.hits"), "service_cache_hits");
        assert_eq!(sanitize_name("ok_name:x9"), "ok_name:x9");
        assert_eq!(sanitize_name("weird name!"), "weird_name_");
    }

    #[test]
    fn golden_exposition_for_known_instruments() {
        let mut latency = Histogram::default();
        for v in [0u64, 3, 3, 900] {
            latency.record(v);
        }
        let text = write_exposition(
            &[
                ("service.cache.hits".into(), 7),
                ("service.requests".into(), 12),
            ],
            &[("service.queue.depth".into(), 1)],
            &[("service.op.analyze.latency".into(), latency)],
        );
        let expected = "\
# TYPE service_cache_hits counter
service_cache_hits 7
# TYPE service_requests counter
service_requests 12
# TYPE service_queue_depth gauge
service_queue_depth 1
# TYPE service_op_analyze_latency histogram
service_op_analyze_latency_bucket{le=\"1\"} 1
service_op_analyze_latency_bucket{le=\"4\"} 3
service_op_analyze_latency_bucket{le=\"1024\"} 4
service_op_analyze_latency_bucket{le=\"+Inf\"} 4
service_op_analyze_latency_sum 906
service_op_analyze_latency_count 4
";
        assert_eq!(text, expected);
        validate_exposition(&text).expect("golden output validates");
    }

    #[test]
    fn empty_histogram_still_exposes_inf_sum_count() {
        let text = write_exposition(&[], &[], &[("x".into(), Histogram::default())]);
        assert!(text.contains("x_bucket{le=\"+Inf\"} 0"));
        assert!(text.contains("x_sum 0"));
        assert!(text.contains("x_count 0"));
        validate_exposition(&text).expect("empty histogram validates");
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        for (text, fragment) in [
            ("service_cache_hits 1\n", "undeclared"),
            ("# TYPE m counter\nm one\n", "non-integer"),
            ("# TYPE m widget\n", "unknown metric type"),
            ("# TYPE m counter\n# TYPE m counter\n", "duplicate"),
            ("# TYPE m counter\nm{le=\"4\"} 1\n", "le label on a counter"),
            (
                "# TYPE m histogram\nm_bucket{le=\"4\"} 2\nm_bucket{le=\"8\"} 1\n",
                "non-monotone",
            ),
            (
                "# TYPE m histogram\nm_bucket{le=\"4\"} 1\nm_sum 4\nm_count 1\n",
                "+Inf",
            ),
            (
                "# TYPE m histogram\nm_bucket{le=\"+Inf\"} 2\nm_sum 4\nm_count 1\n",
                "!= _count",
            ),
            (
                "# TYPE m histogram\nm_bucket{le=\"+Inf\"} 1\nm_count 1\n",
                "no _sum",
            ),
            ("# TYPE 9bad counter\n9bad 1\n", "bad metric name"),
        ] {
            let err = validate_exposition(text).expect_err(text);
            assert!(err.contains(fragment), "{text:?} -> {err}");
        }
    }

    #[test]
    fn histogram_suffix_names_do_not_shadow_other_metrics() {
        // A counter legitimately named with a _count suffix validates
        // even though it is not part of any histogram family.
        let text = "# TYPE jobs_count counter\njobs_count 3\n";
        validate_exposition(text).expect("standalone _count counter");
    }
}
