//! Zero-dependency observability for the synthesis pipeline.
//!
//! The paper's flow (balance equations → APGAN/RPMC → loop DP → lifetime
//! triples → WIG → first-fit) is a staged compiler pipeline; this crate
//! turns its opaque wall times into actionable data with three pieces:
//!
//! * **spans** — RAII guards created with the [`span!`] macro, capturing
//!   name, key-value arguments, thread, start time and duration, with
//!   nesting tracked per thread so engine → candidate → stage →
//!   inner-algorithm hierarchies survive into the export;
//! * **instruments** — monotonic [counters](counter_add), last-value
//!   [gauges](gauge_set) and power-of-two-bucketed
//!   [histograms](histogram_record) keyed by dotted static names
//!   (`sched.dppo.cells`, `alloc.first_fit.probes`, …);
//! * **exporters** — a chrome://tracing / Perfetto `trace_events` JSON
//!   file, a JSONL event stream, and a self-profile text tree with
//!   inclusive/exclusive times (see [`TraceSnapshot`]).
//!
//! Everything is hand-rolled on `std` only — no external dependencies —
//! and compiles to a no-op when no global [`Recorder`] is installed: the
//! disabled fast path is a single relaxed atomic load, so instrumented
//! algorithms behave bit-for-bit identically with tracing off.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use sdf_trace::{Recorder, span};
//!
//! let recorder = Arc::new(Recorder::new());
//! sdf_trace::scoped(&recorder, || {
//!     let _outer = span!("engine.run", graph = "fig2");
//!     {
//!         let _inner = span!("sched.dppo");
//!         sdf_trace::counter_add("sched.dppo.cells", 3);
//!     }
//! });
//! let snapshot = recorder.snapshot();
//! assert_eq!(snapshot.events.len(), 2);
//! assert_eq!(snapshot.counters, vec![("sched.dppo.cells".to_string(), 3)]);
//! ```

#![warn(missing_docs)]

pub mod expo;
pub mod export;
pub mod flight;
pub mod json;
mod metrics;

pub use export::{CounterTrack, TraceSnapshot};
pub use flight::{CacheStatus, FlightRecord, FlightRecorder, StageSpan};
pub use metrics::{quantile_from_buckets, Histogram};

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

/// Version stamp written into every machine-readable artefact this
/// workspace emits (engine reports, chrome traces, JSONL streams,
/// baseline profiles, `BENCH_*.json`) so downstream parsers can detect
/// format changes.
///
/// History: `1` was the PR 1 `EngineReport` JSON (implicit, no field);
/// `2` added the `schema_version` and `counters` fields plus the trace
/// exports; `3` added per-candidate counter deltas to the engine report
/// and the regression-sentinel baseline/diff documents
/// (`bench/baselines/*.json`, `sdfmem compare --format json`); `4` added
/// the engine report's `dp_mode` field and retimed the DP probe counters
/// to count actual crossing-cost evaluations; `5` added the
/// `executable_plan` and `simulation_report` documents (`sdfmem
/// simulate --report json`) plus the `codegen.*` / `exec.*` counters in
/// baseline profiles (a deliberate baseline refresh, see
/// `docs/file-format.md`); `6` unified the document envelope — every
/// top-level document now opens with the same `kind` +
/// `schema_version` header written by [`json::document_header`]
/// (`engine_report` gained its `kind` field) — and added the
/// `service_request` / `service_response` / `service_stats` documents
/// of the `sdfmemd` daemon plus its `service.*` counter namespace
/// (another deliberate baseline refresh); `7` added the operational
/// telemetry layer: response envelopes gained a per-request `telemetry`
/// member (composed outside the cached payload bytes), `service_stats`
/// gained histogram summaries, and the daemon grew the
/// `service_metrics` (Prometheus-style exposition) and `service_events`
/// (flight-recorder drain) documents plus the `metrics` / `events` ops
/// (another deliberate baseline refresh); `8` added the allocation
/// provenance layer: the `allocation_explain` document (`sdfmem
/// explain`, the daemon's `explain` op), the per-run
/// `alloc.first_fit.fragmentation` counter next to the last-writer-wins
/// gauge, and Perfetto counter-track (`"ph":"C"`) events in the chrome
/// trace export (another deliberate baseline refresh); `9` added the
/// incremental re-synthesis layer: the `edit` op and its `edit_report`
/// document, the `engine.incremental.*` counter/gauge namespace
/// (session and memo-store accounting in stats, metrics and per-request
/// telemetry), and the `edit_bench` trajectory in `BENCH_9.json`
/// (another deliberate baseline refresh); `10` added the multi-mode
/// layer: the `modes` op and its `mode_report` document (per-mode
/// plans, merged cross-mode pool, persistent-buffer table, transition
/// oracle verdict), the `switch` op in `executable_plan` ops arrays,
/// the `modes.*` counter namespace, and the `mode_bench` trajectory in
/// `BENCH_10.json` (another deliberate baseline refresh).
pub const SCHEMA_VERSION: u32 = 10;

/// Number of event shards; a small power of two keeps cross-thread
/// contention low without wasting memory on mostly-serial runs.
const SHARDS: usize = 8;

/// One completed span, as stored by the collector.
#[derive(Clone, Debug)]
pub struct Event {
    /// Process-wide unique id (monotonic in creation order).
    pub id: u64,
    /// Id of the enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Static span name (dotted, see `docs/observability.md`).
    pub name: &'static str,
    /// Key-value annotations captured by the [`span!`] macro.
    pub args: Vec<(&'static str, String)>,
    /// Dense id of the thread that recorded the span.
    pub thread: u64,
    /// Start time in nanoseconds since the recorder's epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds (saturating).
    pub dur_ns: u64,
}

/// The thread-safe collector behind the global tracing facade.
///
/// Spans land in one of [`SHARDS`] mutex-protected vectors selected by
/// thread id; instruments live in one mutex-protected map (increments
/// are batched by the instrumented algorithms, so the lock is cold).
pub struct Recorder {
    epoch: Instant,
    shards: Vec<Mutex<Vec<Event>>>,
    metrics: Mutex<metrics::MetricsMap>,
}

impl Recorder {
    /// A fresh, empty recorder; its epoch (time zero of every event) is
    /// the moment of construction.
    pub fn new() -> Self {
        Recorder {
            epoch: Instant::now(),
            shards: (0..SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
            metrics: Mutex::new(metrics::MetricsMap::default()),
        }
    }

    fn record(&self, event: Event) {
        let shard = event.thread as usize % self.shards.len();
        lock(&self.shards[shard]).push(event);
    }

    /// Adds `delta` to the named monotonic counter.
    pub fn counter_add(&self, name: &'static str, delta: u64) {
        let mut m = lock(&self.metrics);
        let slot = m.counters.entry(name).or_insert(0);
        *slot = slot.saturating_add(delta);
    }

    /// Sets the named gauge to `value` (last write wins).
    pub fn gauge_set(&self, name: &'static str, value: u64) {
        lock(&self.metrics).gauges.insert(name, value);
    }

    /// Records `value` into the named power-of-two histogram.
    pub fn histogram_record(&self, name: &'static str, value: u64) {
        lock(&self.metrics)
            .histograms
            .entry(name)
            .or_default()
            .record(value);
    }

    /// Nanoseconds elapsed since this recorder's epoch — the time base
    /// of every event it stores. Pairs with [`Recorder::record_span`]
    /// for callers that measure their own intervals.
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Records a completed span directly on this recorder, bypassing
    /// the process-global facade.
    ///
    /// This is for subsystems that *own* a recorder — the `sdfmemd`
    /// daemon records per-job lifecycle spans on its private recorder
    /// without installing it globally, so job execution stays
    /// bit-for-bit identical to an untraced run. `start_ns` is relative
    /// to this recorder's epoch (see [`Recorder::now_ns`]); the span is
    /// recorded parentless on the calling thread.
    pub fn record_span(
        &self,
        name: &'static str,
        args: Vec<(&'static str, String)>,
        start_ns: u64,
        dur_ns: u64,
    ) {
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let thread = THREAD_ID.with(|t| *t);
        self.record(Event {
            id,
            parent: None,
            name,
            args,
            thread,
            start_ns,
            dur_ns,
        });
    }

    /// Current counter values, sorted by name.
    pub fn counters(&self) -> Vec<(String, u64)> {
        lock(&self.metrics)
            .counters
            .iter()
            .map(|(k, v)| (k.to_string(), *v))
            .collect()
    }

    /// Current gauge values, sorted by name.
    pub fn gauges(&self) -> Vec<(String, u64)> {
        lock(&self.metrics)
            .gauges
            .iter()
            .map(|(k, v)| (k.to_string(), *v))
            .collect()
    }

    /// Copies of the current histograms, sorted by name.
    pub fn histograms(&self) -> Vec<(String, Histogram)> {
        lock(&self.metrics)
            .histograms
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    /// A consistent copy of everything recorded so far: events sorted by
    /// start time (ties by id), plus all instruments.
    pub fn snapshot(&self) -> TraceSnapshot {
        let mut events: Vec<Event> = self.shards.iter().flat_map(|s| lock(s).clone()).collect();
        events.sort_by_key(|e| (e.start_ns, e.id));
        let m = lock(&self.metrics);
        TraceSnapshot {
            schema_version: SCHEMA_VERSION,
            events,
            counters: m
                .counters
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
            gauges: m.gauges.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            histograms: m
                .histograms
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        }
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

// ---------------------------------------------------------------------
// Global facade.

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

fn slot() -> &'static Mutex<Option<Arc<Recorder>>> {
    static SLOT: OnceLock<Mutex<Option<Arc<Recorder>>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

fn scope_lock() -> &'static Mutex<()> {
    static SCOPE: OnceLock<Mutex<()>> = OnceLock::new();
    SCOPE.get_or_init(|| Mutex::new(()))
}

thread_local! {
    static THREAD_ID: u64 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Installs `recorder` as the process-global collector, enabling all
/// spans and instruments. Prefer [`scoped`] where possible — it pairs
/// the install with the uninstall and serialises concurrent scopes.
pub fn install(recorder: Arc<Recorder>) {
    *lock(slot()) = Some(recorder);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Removes the global recorder (tracing becomes a no-op again) and
/// returns it, if one was installed.
pub fn uninstall() -> Option<Arc<Recorder>> {
    ENABLED.store(false, Ordering::SeqCst);
    lock(slot()).take()
}

/// Whether a global recorder is installed. This is the disabled fast
/// path: one relaxed atomic load.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The installed recorder, if any.
pub fn current() -> Option<Arc<Recorder>> {
    if !enabled() {
        return None;
    }
    lock(slot()).clone()
}

/// Runs `f` with `recorder` installed, uninstalling on the way out
/// (including on panic). Concurrent `scoped` calls — e.g. parallel
/// tests in one binary — are serialised on a global lock so their
/// events never interleave.
pub fn scoped<T>(recorder: &Arc<Recorder>, f: impl FnOnce() -> T) -> T {
    let _serial = lock(scope_lock());
    struct Uninstall;
    impl Drop for Uninstall {
        fn drop(&mut self) {
            uninstall();
        }
    }
    install(Arc::clone(recorder));
    let _uninstall = Uninstall;
    f()
}

/// Adds `delta` to a counter on the installed recorder (no-op when
/// tracing is disabled).
pub fn counter_add(name: &'static str, delta: u64) {
    if let Some(recorder) = current() {
        recorder.counter_add(name, delta);
    }
}

/// Increments a counter by one (no-op when tracing is disabled).
pub fn counter_inc(name: &'static str) {
    counter_add(name, 1);
}

/// Sets a gauge (no-op when tracing is disabled).
pub fn gauge_set(name: &'static str, value: u64) {
    if let Some(recorder) = current() {
        recorder.gauge_set(name, value);
    }
}

/// Records a histogram sample (no-op when tracing is disabled).
pub fn histogram_record(name: &'static str, value: u64) {
    if let Some(recorder) = current() {
        recorder.histogram_record(name, value);
    }
}

/// Current counter values of the installed recorder (empty when tracing
/// is disabled). Used by `EngineReport` to embed its counters section.
pub fn counter_values() -> Vec<(String, u64)> {
    current().map(|r| r.counters()).unwrap_or_default()
}

/// A point-in-time copy of the installed recorder's counters, used to
/// attribute work to a region by differencing two captures.
///
/// This is the profile-snapshot primitive behind per-candidate counter
/// deltas in the engine report and the regression sentinel's baseline
/// profiles: capture once, run the region, then ask for the
/// [delta](CounterSnapshot::delta_since) — every counter that moved, by
/// how much, sorted by name.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use sdf_trace::{CounterSnapshot, Recorder};
///
/// let recorder = Arc::new(Recorder::new());
/// sdf_trace::scoped(&recorder, || {
///     sdf_trace::counter_add("work.before", 2);
///     let snap = CounterSnapshot::capture();
///     sdf_trace::counter_add("work.inner", 5);
///     sdf_trace::counter_add("work.before", 1);
///     assert_eq!(
///         snap.delta_since(),
///         vec![("work.before".to_string(), 1), ("work.inner".to_string(), 5)]
///     );
/// });
/// ```
#[derive(Clone, Debug, Default)]
pub struct CounterSnapshot {
    values: Vec<(String, u64)>,
}

impl CounterSnapshot {
    /// Captures the current counter values (empty when tracing is
    /// disabled, making the later delta the full counter set).
    pub fn capture() -> Self {
        CounterSnapshot {
            values: counter_values(),
        }
    }

    /// Captures the counter values of a *specific* recorder, bypassing
    /// the global facade. This is how the `sdfmemd` daemon attributes
    /// `service.*` counter movement to an individual request on its
    /// private recorder without installing it globally.
    pub fn capture_from(recorder: &Recorder) -> Self {
        CounterSnapshot {
            values: recorder.counters(),
        }
    }

    /// Counters that increased since this capture, as sorted
    /// `(name, delta)` pairs; unchanged counters are omitted.
    ///
    /// Counters are monotonic, so the current value is never below the
    /// captured one while the same recorder stays installed; a recorder
    /// swap in between saturates at zero instead of underflowing.
    pub fn delta_since(&self) -> Vec<(String, u64)> {
        self.delta_against(counter_values())
    }

    /// Like [`delta_since`](CounterSnapshot::delta_since) but against a
    /// specific recorder's current counters — the pair of
    /// [`capture_from`](CounterSnapshot::capture_from).
    pub fn delta_since_from(&self, recorder: &Recorder) -> Vec<(String, u64)> {
        self.delta_against(recorder.counters())
    }

    fn delta_against(&self, now: Vec<(String, u64)>) -> Vec<(String, u64)> {
        let mut base = self.values.iter().peekable();
        let mut delta = Vec::new();
        for (name, value) in now {
            let mut previous = 0;
            while let Some((base_name, base_value)) = base.peek() {
                match base_name.as_str().cmp(name.as_str()) {
                    std::cmp::Ordering::Less => {
                        base.next();
                    }
                    std::cmp::Ordering::Equal => {
                        previous = *base_value;
                        base.next();
                        break;
                    }
                    std::cmp::Ordering::Greater => break,
                }
            }
            let moved = value.saturating_sub(previous);
            if moved > 0 {
                delta.push((name, moved));
            }
        }
        delta
    }
}

// ---------------------------------------------------------------------
// Spans.

/// An RAII span guard: created by [`span!`] (or [`Span::enter`]), it
/// records one [`Event`] when dropped. When no recorder is installed the
/// guard is an inert `None` and costs one atomic load.
pub struct Span {
    inner: Option<SpanInner>,
}

struct SpanInner {
    recorder: Arc<Recorder>,
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    args: Vec<(&'static str, String)>,
    thread: u64,
    start_ns: u64,
    started: Instant,
}

impl Span {
    /// Opens a span; prefer the [`span!`] macro, which skips evaluating
    /// `args` entirely when tracing is disabled.
    pub fn enter(name: &'static str, args: Vec<(&'static str, String)>) -> Span {
        let Some(recorder) = current() else {
            return Span { inner: None };
        };
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let thread = THREAD_ID.with(|t| *t);
        let parent = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let parent = stack.last().copied();
            stack.push(id);
            parent
        });
        let started = Instant::now();
        let start_ns = u64::try_from(started.saturating_duration_since(recorder.epoch).as_nanos())
            .unwrap_or(u64::MAX);
        Span {
            inner: Some(SpanInner {
                recorder,
                id,
                parent,
                name,
                args,
                thread,
                start_ns,
                started,
            }),
        }
    }

    /// Whether this guard is actually recording.
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let dur_ns = u64::try_from(inner.started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            if stack.last() == Some(&inner.id) {
                stack.pop();
            } else {
                // Out-of-order drop (guards dropped non-LIFO): remove
                // just this id so siblings keep correct parents.
                stack.retain(|&id| id != inner.id);
            }
        });
        inner.recorder.record(Event {
            id: inner.id,
            parent: inner.parent,
            name: inner.name,
            args: inner.args,
            thread: inner.thread,
            start_ns: inner.start_ns,
            dur_ns,
        });
    }
}

/// Opens a named, optionally annotated span:
///
/// ```
/// # use sdf_trace::span;
/// let _guard = span!("sched.dppo");
/// let _guard = span!("engine.order", heuristic = "apgan", actors = 7);
/// ```
///
/// Argument values only need `Display`; they are **not evaluated** when
/// tracing is disabled, so annotating hot paths is free.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::Span::enter($name, ::std::vec::Vec::new())
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        $crate::Span::enter(
            $name,
            if $crate::enabled() {
                vec![$((stringify!($key), ($value).to_string())),+]
            } else {
                ::std::vec::Vec::new()
            },
        )
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracing_is_inert() {
        // Not scoped: no recorder installed (scoped tests serialise on
        // the scope lock; this one only asserts the disabled path).
        let _serial = lock(scope_lock());
        assert!(!enabled());
        let guard = span!("nothing", graph = "g");
        assert!(!guard.is_recording());
        counter_add("nothing.count", 5);
        histogram_record("nothing.hist", 5);
        gauge_set("nothing.gauge", 5);
        assert!(counter_values().is_empty());
    }

    #[test]
    fn span_nesting_is_captured() {
        let recorder = Arc::new(Recorder::new());
        scoped(&recorder, || {
            let _root = span!("root", graph = "fig2");
            {
                let _child = span!("child");
                let _grandchild = span!("grandchild");
            }
            let _sibling = span!("child");
        });
        let snap = recorder.snapshot();
        assert_eq!(snap.events.len(), 4);
        let by_name = |name: &str| {
            snap.events
                .iter()
                .filter(|e| e.name == name)
                .collect::<Vec<_>>()
        };
        let root = &by_name("root")[0];
        assert_eq!(root.parent, None);
        assert_eq!(root.args, vec![("graph", "fig2".to_string())]);
        for child in by_name("child") {
            assert_eq!(child.parent, Some(root.id));
            assert!(child.start_ns >= root.start_ns);
            assert!(child.dur_ns <= root.dur_ns);
        }
        let grandchild = &by_name("grandchild")[0];
        assert_eq!(grandchild.parent, Some(by_name("child")[0].id));
    }

    #[test]
    fn events_visible_from_spawned_threads() {
        let recorder = Arc::new(Recorder::new());
        scoped(&recorder, || {
            std::thread::scope(|s| {
                for _ in 0..4 {
                    s.spawn(|| {
                        let _worker = span!("worker");
                        counter_inc("worker.count");
                    });
                }
            });
        });
        let snap = recorder.snapshot();
        assert_eq!(snap.events.len(), 4);
        // Fresh threads have empty span stacks: workers are roots.
        assert!(snap.events.iter().all(|e| e.parent.is_none()));
        assert_eq!(snap.counters, vec![("worker.count".to_string(), 4)]);
    }

    #[test]
    fn scoped_uninstalls_and_instruments_accumulate() {
        let recorder = Arc::new(Recorder::new());
        scoped(&recorder, || {
            counter_add("c", 2);
            counter_add("c", 3);
            gauge_set("g", 7);
            gauge_set("g", 9);
            histogram_record("h", 4);
        });
        assert!(!enabled());
        let before = recorder.snapshot();
        // After the scope ends, further traffic is not recorded.
        counter_add("c", 100);
        let _ignored = span!("ignored");
        drop(_ignored);
        let after = recorder.snapshot();
        assert_eq!(before.counters, vec![("c".to_string(), 5)]);
        assert_eq!(after.counters, before.counters);
        assert_eq!(after.events.len(), before.events.len());
        assert_eq!(after.gauges, vec![("g".to_string(), 9)]);
        assert_eq!(after.histograms.len(), 1);
        assert_eq!(after.histograms[0].1.count(), 1);
    }

    #[test]
    fn counter_snapshot_deltas() {
        let recorder = Arc::new(Recorder::new());
        scoped(&recorder, || {
            counter_add("a", 3);
            counter_add("c", 1);
            let snap = CounterSnapshot::capture();
            assert!(snap.delta_since().is_empty());
            counter_add("a", 2);
            counter_add("b", 7);
            assert_eq!(
                snap.delta_since(),
                vec![("a".to_string(), 2), ("b".to_string(), 7)]
            );
        });
        // Disabled tracing: capture is empty and the delta stays empty.
        let snap = CounterSnapshot::capture();
        counter_add("a", 9);
        assert!(snap.delta_since().is_empty());
    }

    #[test]
    fn snapshot_is_sorted_by_start() {
        let recorder = Arc::new(Recorder::new());
        scoped(&recorder, || {
            for _ in 0..10 {
                let _s = span!("tick");
            }
        });
        let snap = recorder.snapshot();
        let starts: Vec<(u64, u64)> = snap.events.iter().map(|e| (e.start_ns, e.id)).collect();
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        assert_eq!(starts, sorted);
    }
}
