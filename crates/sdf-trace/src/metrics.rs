//! Counter/gauge/histogram storage behind the recorder's metrics lock.

use std::collections::BTreeMap;

/// All instruments of one recorder, keyed by static dotted names.
#[derive(Default)]
pub(crate) struct MetricsMap {
    pub(crate) counters: BTreeMap<&'static str, u64>,
    pub(crate) gauges: BTreeMap<&'static str, u64>,
    pub(crate) histograms: BTreeMap<&'static str, Histogram>,
}

/// A histogram over fixed power-of-two buckets.
///
/// Bucket `0` holds the value `0`; bucket `i >= 1` holds values in
/// `[2^(i-1), 2^i)`, so any `u64` lands in one of 65 buckets with two
/// instructions (`leading_zeros` + subtract) and no allocation.
///
/// # Examples
///
/// ```
/// use sdf_trace::Histogram;
///
/// let mut h = Histogram::default();
/// for v in [0, 1, 3, 3, 900] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.sum(), 907);
/// assert_eq!(Histogram::bucket_bounds(Histogram::bucket_index(3)), (2, 4));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    buckets: [u64; 65],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            buckets: [0; 65],
        }
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.buckets[Self::bucket_index(value)] += 1;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The bucket a value falls into.
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Half-open range `[lo, hi)` of bucket `index` (bucket 64's upper
    /// bound saturates at `u64::MAX`).
    ///
    /// # Panics
    ///
    /// Panics if `index > 64`.
    pub fn bucket_bounds(index: usize) -> (u64, u64) {
        assert!(index <= 64, "histogram has 65 buckets");
        if index == 0 {
            (0, 1)
        } else {
            let lo = 1u64 << (index - 1);
            let hi = if index == 64 { u64::MAX } else { 1u64 << index };
            (lo, hi)
        }
    }

    /// Occupied buckets as `(lo, hi, count)` triples, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = Self::bucket_bounds(i);
                (lo, hi, c)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(1023), 10);
        assert_eq!(Histogram::bucket_index(1024), 11);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        for i in 1..=63 {
            let (lo, hi) = Histogram::bucket_bounds(i);
            assert_eq!(hi, lo * 2, "bucket {i}");
            assert_eq!(Histogram::bucket_index(lo), i);
            assert_eq!(Histogram::bucket_index(hi - 1), i);
        }
        assert_eq!(Histogram::bucket_bounds(64).1, u64::MAX);
    }

    #[test]
    fn record_fills_expected_buckets() {
        let mut h = Histogram::default();
        for v in [0u64, 0, 1, 2, 3, 4, 7, 8, 1 << 40] {
            h.record(v);
        }
        assert_eq!(h.count(), 9);
        assert_eq!(h.sum(), (1u64 << 40) + 25);
        assert_eq!(
            h.nonzero_buckets(),
            vec![
                (0, 1, 2),             // 0, 0
                (1, 2, 1),             // 1
                (2, 4, 2),             // 2, 3
                (4, 8, 2),             // 4, 7
                (8, 16, 1),            // 8
                (1 << 40, 1 << 41, 1), // 2^40
            ]
        );
    }

    #[test]
    fn sum_saturates() {
        let mut h = Histogram::default();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.count(), 2);
    }
}
