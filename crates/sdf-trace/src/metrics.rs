//! Counter/gauge/histogram storage behind the recorder's metrics lock.

use std::collections::BTreeMap;

/// All instruments of one recorder, keyed by static dotted names.
#[derive(Default)]
pub(crate) struct MetricsMap {
    pub(crate) counters: BTreeMap<&'static str, u64>,
    pub(crate) gauges: BTreeMap<&'static str, u64>,
    pub(crate) histograms: BTreeMap<&'static str, Histogram>,
}

/// A histogram over fixed power-of-two buckets.
///
/// Bucket `0` holds the value `0`; bucket `i >= 1` holds values in
/// `[2^(i-1), 2^i)`, so any `u64` lands in one of 65 buckets with two
/// instructions (`leading_zeros` + subtract) and no allocation.
///
/// # Examples
///
/// ```
/// use sdf_trace::Histogram;
///
/// let mut h = Histogram::default();
/// for v in [0, 1, 3, 3, 900] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.sum(), 907);
/// assert_eq!(Histogram::bucket_bounds(Histogram::bucket_index(3)), (2, 4));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    buckets: [u64; 65],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            buckets: [0; 65],
        }
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.buckets[Self::bucket_index(value)] += 1;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The bucket a value falls into.
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Half-open range `[lo, hi)` of bucket `index` (bucket 64's upper
    /// bound saturates at `u64::MAX`).
    ///
    /// # Panics
    ///
    /// Panics if `index > 64`.
    pub fn bucket_bounds(index: usize) -> (u64, u64) {
        assert!(index <= 64, "histogram has 65 buckets");
        if index == 0 {
            (0, 1)
        } else {
            let lo = 1u64 << (index - 1);
            let hi = if index == 64 { u64::MAX } else { 1u64 << index };
            (lo, hi)
        }
    }

    /// Occupied buckets as `(lo, hi, count)` triples, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = Self::bucket_bounds(i);
                (lo, hi, c)
            })
            .collect()
    }

    /// Estimated `q`-quantile (`q` clamped into `0.0..=1.0`), or `None`
    /// when the histogram is empty.
    ///
    /// The estimate always lies inside the bounds of the bucket that
    /// holds the rank-`⌈q·count⌉` sample, so it is never off by more
    /// than the bucket's width — the precision the power-of-two layout
    /// pays for its fixed footprint.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        quantile_from_buckets(&self.nonzero_buckets(), q)
    }
}

/// Quantile estimate from `(lo, hi, count)` bucket triples, ascending —
/// the shape [`Histogram::nonzero_buckets`] produces and `service_stats`
/// documents carry, so remote clients (`sdfmem top`) estimate with the
/// same arithmetic as the in-process path.
///
/// Locates the bucket containing the rank-`⌈q·total⌉` sample and
/// interpolates linearly within its half-open bounds; the result is
/// always in `[lo, hi)` of that bucket. Returns `None` when the buckets
/// hold no samples.
pub fn quantile_from_buckets(buckets: &[(u64, u64, u64)], q: f64) -> Option<u64> {
    let total: u64 = buckets.iter().map(|&(_, _, c)| c).sum();
    if total == 0 {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for &(lo, hi, count) in buckets {
        if rank <= seen + count {
            // The rank-th sample is the `pos`-th of `count` samples in
            // this bucket; interpolate so the estimate stays below the
            // exclusive upper bound (u128 avoids overflow for the top
            // buckets, whose width approaches 2^63).
            let pos = rank - seen;
            let width = u128::from(hi - lo);
            let est = u128::from(lo) + width * u128::from(pos) / (u128::from(count) + 1);
            return Some(u64::try_from(est).unwrap_or(u64::MAX));
        }
        seen += count;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(1023), 10);
        assert_eq!(Histogram::bucket_index(1024), 11);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        for i in 1..=63 {
            let (lo, hi) = Histogram::bucket_bounds(i);
            assert_eq!(hi, lo * 2, "bucket {i}");
            assert_eq!(Histogram::bucket_index(lo), i);
            assert_eq!(Histogram::bucket_index(hi - 1), i);
        }
        assert_eq!(Histogram::bucket_bounds(64).1, u64::MAX);
    }

    #[test]
    fn record_fills_expected_buckets() {
        let mut h = Histogram::default();
        for v in [0u64, 0, 1, 2, 3, 4, 7, 8, 1 << 40] {
            h.record(v);
        }
        assert_eq!(h.count(), 9);
        assert_eq!(h.sum(), (1u64 << 40) + 25);
        assert_eq!(
            h.nonzero_buckets(),
            vec![
                (0, 1, 2),             // 0, 0
                (1, 2, 1),             // 1
                (2, 4, 2),             // 2, 3
                (4, 8, 2),             // 4, 7
                (8, 16, 1),            // 8
                (1 << 40, 1 << 41, 1), // 2^40
            ]
        );
    }

    #[test]
    fn sum_saturates() {
        let mut h = Histogram::default();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn quantile_of_empty_histogram_is_none() {
        assert_eq!(Histogram::default().quantile(0.5), None);
        assert_eq!(quantile_from_buckets(&[], 0.5), None);
        assert_eq!(quantile_from_buckets(&[(0, 1, 0)], 0.5), None);
    }

    #[test]
    fn quantile_lands_in_the_right_bucket() {
        let mut h = Histogram::default();
        // 90 fast samples around 3, 10 slow ones around 1000.
        for _ in 0..90 {
            h.record(3);
        }
        for _ in 0..10 {
            h.record(1000);
        }
        let p50 = h.quantile(0.5).unwrap();
        assert!((2..4).contains(&p50), "p50 {p50}");
        let p95 = h.quantile(0.95).unwrap();
        assert!((512..1024).contains(&p95), "p95 {p95}");
        // Out-of-range q clamps to the extremes.
        assert!((2..4).contains(&h.quantile(-1.0).unwrap()));
        assert!((512..1024).contains(&h.quantile(2.0).unwrap()));
    }

    #[test]
    fn quantile_interpolates_within_one_bucket() {
        // All samples in [64, 128): low quantiles sit near the bottom
        // of the bucket, high ones near the top, and all stay inside.
        let mut h = Histogram::default();
        for _ in 0..100 {
            h.record(100);
        }
        let p01 = h.quantile(0.01).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!(p01 < p99, "{p01} vs {p99}");
        assert!((64..128).contains(&p01));
        assert!((64..128).contains(&p99));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            /// For any sample set and quantile, the estimate lies inside
            /// the true bucket of the rank-`⌈q·n⌉` order statistic.
            #[test]
            fn quantile_estimate_stays_in_the_true_bucket(
                samples in prop::collection::vec(
                    // Right-shifting a uniform draw gives log-uniform
                    // magnitudes, exercising every bucket scale.
                    (0u32..64u32, 0u64..u64::MAX).prop_map(|(s, v)| v >> s),
                    1..128,
                )
            ) {
                let mut h = Histogram::default();
                let mut sorted = samples.clone();
                sorted.sort_unstable();
                for &v in &samples {
                    h.record(v);
                }
                let n = sorted.len() as u64;
                for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
                    #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
                    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
                    let order_stat = sorted[(rank - 1) as usize];
                    let (lo, hi) = Histogram::bucket_bounds(Histogram::bucket_index(order_stat));
                    let est = h.quantile(q).expect("non-empty histogram");
                    prop_assert!(
                        lo <= est && est < hi,
                        "q={} est={} outside [{}, {}) of sample {}",
                        q, est, lo, hi, order_stat
                    );
                }
            }
        }
    }
}
