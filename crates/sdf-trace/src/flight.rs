//! The flight recorder: a bounded ring of per-request summaries.
//!
//! Long-running daemons need history, not just totals — when a request
//! misbehaves the counters say *how many*, never *which one*. The
//! [`FlightRecorder`] keeps the last `capacity` [`FlightRecord`]s (op
//! kind, outcome, cache status, queue wait, service time, and the
//! per-stage span tree) in a fixed-size ring: recording is O(1), memory
//! is bounded no matter how long the daemon runs, and a `drain` hands
//! back everything oldest-first plus a count of records the ring had to
//! drop since the previous drain. It is `sdfmemd`'s black box — cheap
//! enough to leave on always, detailed enough to reconstruct what the
//! last N requests actually did.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::Mutex;

use crate::json::escape;

/// One timed stage of a request, with optional nested sub-stages.
///
/// Start offsets are nanoseconds since the request began service (not
/// absolute recorder time), so records compare across requests.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageSpan {
    /// Stage name from the service's fixed vocabulary (`parse`,
    /// `engine`, `render`, …).
    pub name: &'static str,
    /// Offset from the start of service, in nanoseconds.
    pub start_ns: u64,
    /// Stage duration in nanoseconds.
    pub dur_ns: u64,
    /// Nested sub-stages (e.g. the engine's schedule/lifetime/wig/alloc
    /// breakdown under the `engine` stage).
    pub children: Vec<StageSpan>,
}

impl StageSpan {
    /// A leaf stage with no children.
    pub fn leaf(name: &'static str, start_ns: u64, dur_ns: u64) -> StageSpan {
        StageSpan {
            name,
            start_ns,
            dur_ns,
            children: Vec::new(),
        }
    }

    /// The stage as a JSON object (children render recursively).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"start_ns\":{},\"dur_ns\":{},\"children\":{}}}",
            escape(self.name),
            self.start_ns,
            self.dur_ns,
            stages_json(&self.children),
        );
        out
    }
}

/// A stage list as a JSON array.
pub fn stages_json(stages: &[StageSpan]) -> String {
    let mut out = String::from("[");
    for (i, stage) in stages.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&stage.to_json());
    }
    out.push(']');
    out
}

/// How a request interacted with the daemon's result cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheStatus {
    /// Served from the cache without running the engine.
    Hit,
    /// Cacheable but absent; the engine ran and populated the slot.
    Miss,
    /// Not a cacheable operation.
    Uncached,
}

impl CacheStatus {
    /// The wire name of the status.
    pub fn as_str(self) -> &'static str {
        match self {
            CacheStatus::Hit => "hit",
            CacheStatus::Miss => "miss",
            CacheStatus::Uncached => "uncached",
        }
    }
}

/// Summary of one completed request, as kept by the ring.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlightRecord {
    /// Monotonic sequence number, assigned by the recorder at record
    /// time (the first record is `1`); gaps after a drain reveal drops.
    pub seq: u64,
    /// The request's op kind (`analyze`, `plan`, …).
    pub op: &'static str,
    /// Terminal state name (`complete` or `failed`).
    pub outcome: &'static str,
    /// Cache interaction of the request.
    pub cache: CacheStatus,
    /// Nanoseconds spent queued before a worker picked the job up
    /// (zero for cache hits and inline ops, which never queue).
    pub queue_wait_ns: u64,
    /// Nanoseconds from service start to response composition.
    pub service_ns: u64,
    /// Per-stage breakdown of the service time.
    pub stages: Vec<StageSpan>,
}

impl FlightRecord {
    /// The record as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"seq\":{},\"op\":\"{}\",\"outcome\":\"{}\",\"cache\":\"{}\",\"queue_wait_ns\":{},\"service_ns\":{},\"stages\":{}}}",
            self.seq,
            escape(self.op),
            escape(self.outcome),
            self.cache.as_str(),
            self.queue_wait_ns,
            self.service_ns,
            stages_json(&self.stages),
        );
        out
    }
}

struct FlightInner {
    records: VecDeque<FlightRecord>,
    dropped: u64,
    next_seq: u64,
}

/// Fixed-capacity ring buffer of [`FlightRecord`]s.
///
/// # Examples
///
/// ```
/// use sdf_trace::{CacheStatus, FlightRecord, FlightRecorder};
///
/// let flight = FlightRecorder::new(2);
/// for op in ["analyze", "plan", "simulate"] {
///     flight.record(FlightRecord {
///         seq: 0, // assigned by the recorder
///         op,
///         outcome: "complete",
///         cache: CacheStatus::Miss,
///         queue_wait_ns: 0,
///         service_ns: 10,
///         stages: vec![],
///     });
/// }
/// let (records, dropped) = flight.drain();
/// // The oldest record fell off the ring; the rest drain oldest-first.
/// assert_eq!(dropped, 1);
/// let ops: Vec<&str> = records.iter().map(|r| r.op).collect();
/// assert_eq!(ops, ["plan", "simulate"]);
/// assert!(flight.drain().0.is_empty());
/// ```
pub struct FlightRecorder {
    capacity: usize,
    inner: Mutex<FlightInner>,
}

impl FlightRecorder {
    /// A recorder keeping at most `capacity` records (capacity `0`
    /// keeps nothing and counts every record as dropped).
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            capacity,
            inner: Mutex::new(FlightInner {
                records: VecDeque::with_capacity(capacity.min(1024)),
                dropped: 0,
                next_seq: 1,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FlightInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The configured ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.lock().records.len()
    }

    /// Whether the ring is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends `record`, assigning and returning its sequence number.
    /// When the ring is full the oldest record is dropped (and counted
    /// for the next [`drain`](FlightRecorder::drain)).
    pub fn record(&self, mut record: FlightRecord) -> u64 {
        let mut inner = self.lock();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        record.seq = seq;
        inner.records.push_back(record);
        while inner.records.len() > self.capacity {
            inner.records.pop_front();
            inner.dropped += 1;
        }
        seq
    }

    /// Removes and returns all held records oldest-first, plus the
    /// number of records dropped by the ring since the last drain.
    pub fn drain(&self) -> (Vec<FlightRecord>, u64) {
        let mut inner = self.lock();
        let records = inner.records.drain(..).collect();
        let dropped = std::mem::take(&mut inner.dropped);
        (records, dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Json};

    fn record(op: &'static str) -> FlightRecord {
        FlightRecord {
            seq: 0,
            op,
            outcome: "complete",
            cache: CacheStatus::Miss,
            queue_wait_ns: 5,
            service_ns: 40,
            stages: vec![StageSpan {
                name: "engine",
                start_ns: 2,
                dur_ns: 30,
                children: vec![StageSpan::leaf("engine.schedule", 2, 10)],
            }],
        }
    }

    #[test]
    fn sequence_numbers_are_monotonic_from_one() {
        let flight = FlightRecorder::new(8);
        assert_eq!(flight.record(record("analyze")), 1);
        assert_eq!(flight.record(record("plan")), 2);
        let (records, dropped) = flight.drain();
        assert_eq!(dropped, 0);
        assert_eq!(records[0].seq, 1);
        assert_eq!(records[1].seq, 2);
        // Sequence numbering continues across drains.
        assert_eq!(flight.record(record("simulate")), 3);
    }

    #[test]
    fn ring_caps_at_capacity_and_counts_drops() {
        let flight = FlightRecorder::new(3);
        for _ in 0..7 {
            flight.record(record("analyze"));
        }
        assert_eq!(flight.len(), 3);
        let (records, dropped) = flight.drain();
        assert_eq!(dropped, 4);
        let seqs: Vec<u64> = records.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, [5, 6, 7], "newest survive, drained oldest-first");
        // The drop counter resets with the drain.
        flight.record(record("plan"));
        assert_eq!(flight.drain().1, 0);
    }

    #[test]
    fn zero_capacity_keeps_nothing() {
        let flight = FlightRecorder::new(0);
        flight.record(record("analyze"));
        flight.record(record("plan"));
        assert!(flight.is_empty());
        let (records, dropped) = flight.drain();
        assert!(records.is_empty());
        assert_eq!(dropped, 2);
    }

    #[test]
    fn record_json_round_trips_through_the_parser() {
        let flight = FlightRecorder::new(4);
        flight.record(record("analyze"));
        let (records, _) = flight.drain();
        let doc = parse(&records[0].to_json()).expect("valid JSON");
        assert_eq!(doc.get("op").and_then(Json::as_str), Some("analyze"));
        assert_eq!(doc.get("seq").and_then(Json::as_num), Some(1.0));
        assert_eq!(doc.get("cache").and_then(Json::as_str), Some("miss"));
        let stages = doc.get("stages").and_then(Json::as_array).expect("stages");
        assert_eq!(stages[0].get("name").and_then(Json::as_str), Some("engine"));
        let children = stages[0]
            .get("children")
            .and_then(Json::as_array)
            .expect("children");
        assert_eq!(
            children[0].get("name").and_then(Json::as_str),
            Some("engine.schedule")
        );
        assert_eq!(children[0].get("dur_ns").and_then(Json::as_num), Some(10.0));
    }
}
