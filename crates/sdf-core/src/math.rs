//! Small integer-arithmetic helpers used throughout the workspace.
//!
//! SDF scheduling leans heavily on greatest common divisors: repetition
//! vectors are normalised by them, loop factors are extracted with them and
//! the dynamic programs of the scheduling crate divide split costs by the
//! gcd of actor repetition counts (Eq. 3 of the paper).

/// Returns the greatest common divisor of `a` and `b`.
///
/// By convention `gcd(0, b) == b` and `gcd(a, 0) == a`, so `gcd(0, 0) == 0`.
///
/// # Examples
///
/// ```
/// use sdf_core::math::gcd;
/// assert_eq!(gcd(12, 18), 6);
/// assert_eq!(gcd(7, 13), 1);
/// assert_eq!(gcd(0, 5), 5);
/// ```
pub fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Returns the least common multiple of `a` and `b`.
///
/// Returns 0 when either argument is 0.
///
/// # Panics
///
/// Panics if the result overflows `u64`.
///
/// # Examples
///
/// ```
/// use sdf_core::math::lcm;
/// assert_eq!(lcm(4, 6), 12);
/// assert_eq!(lcm(0, 3), 0);
/// ```
pub fn lcm(a: u64, b: u64) -> u64 {
    if a == 0 || b == 0 {
        return 0;
    }
    a / gcd(a, b) * b
}

/// Returns the gcd of every element of `values`.
///
/// Returns 0 for an empty slice.
///
/// # Examples
///
/// ```
/// use sdf_core::math::gcd_all;
/// assert_eq!(gcd_all(&[12, 18, 30]), 6);
/// assert_eq!(gcd_all(&[]), 0);
/// ```
pub fn gcd_all(values: &[u64]) -> u64 {
    values.iter().fold(0, |acc, &v| gcd(acc, v))
}

/// Returns the gcd of every element yielded by `values`.
///
/// Returns 0 for an empty iterator. This is the iterator-friendly sibling of
/// [`gcd_all`].
pub fn gcd_iter<I: IntoIterator<Item = u64>>(values: I) -> u64 {
    values.into_iter().fold(0, gcd)
}

/// Returns the lcm of every element of `values`.
///
/// Returns 1 for an empty slice (the identity of lcm), and 0 as soon as any
/// element is 0.
///
/// # Panics
///
/// Panics if the running lcm overflows `u64`.
pub fn lcm_all(values: &[u64]) -> u64 {
    values.iter().copied().fold(1, lcm)
}

/// Divides `a` by `b`, rounding towards positive infinity.
///
/// # Panics
///
/// Panics if `b == 0`.
///
/// # Examples
///
/// ```
/// use sdf_core::math::div_ceil;
/// assert_eq!(div_ceil(7, 3), 3);
/// assert_eq!(div_ceil(6, 3), 2);
/// ```
pub fn div_ceil(a: u64, b: u64) -> u64 {
    a.div_ceil(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basic() {
        assert_eq!(gcd(48, 36), 12);
        assert_eq!(gcd(36, 48), 12);
        assert_eq!(gcd(1, 1), 1);
        assert_eq!(gcd(17, 17), 17);
    }

    #[test]
    fn gcd_zero_identities() {
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(0, 9), 9);
        assert_eq!(gcd(9, 0), 9);
    }

    #[test]
    fn gcd_coprime() {
        assert_eq!(gcd(35, 64), 1);
    }

    #[test]
    fn lcm_basic() {
        assert_eq!(lcm(21, 6), 42);
        assert_eq!(lcm(1, 99), 99);
    }

    #[test]
    fn lcm_zero() {
        assert_eq!(lcm(0, 0), 0);
        assert_eq!(lcm(0, 7), 0);
    }

    #[test]
    fn lcm_avoids_intermediate_overflow() {
        // a * b would overflow, a / gcd * b must not.
        let a = u64::MAX / 2;
        assert_eq!(lcm(a, a), a);
    }

    #[test]
    fn gcd_all_slice() {
        assert_eq!(gcd_all(&[1056, 264, 24]), 24);
        assert_eq!(gcd_all(&[5]), 5);
    }

    #[test]
    fn gcd_iter_matches_slice() {
        let v = [12u64, 8, 20];
        assert_eq!(gcd_iter(v.iter().copied()), gcd_all(&v));
    }

    #[test]
    fn lcm_all_slice() {
        assert_eq!(lcm_all(&[2, 3, 4]), 12);
        assert_eq!(lcm_all(&[]), 1);
        assert_eq!(lcm_all(&[3, 0, 5]), 0);
    }

    #[test]
    fn div_ceil_exact_and_inexact() {
        assert_eq!(div_ceil(0, 4), 0);
        assert_eq!(div_ceil(1, 4), 1);
        assert_eq!(div_ceil(8, 4), 2);
        assert_eq!(div_ceil(9, 4), 3);
    }
}
