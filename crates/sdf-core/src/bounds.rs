//! Buffer-memory lower bounds (§11.1.3 of the paper).
//!
//! Two per-edge bounds bracket what any scheduler can achieve:
//!
//! * the **BMLB** — the minimum buffer size on an edge over all *single
//!   appearance* schedules: `ab/c + d` if `d < ab/c`, else `d`
//!   (with `a = prod`, `b = cns`, `c = gcd(a, b)`, `d = delay`);
//! * the **all-schedules bound** — the minimum over *all* valid schedules:
//!   `a + b − c + (d mod c)` if `d < a + b − c`, else `d`.
//!
//! Summed over edges these give graph-level lower bounds used as the
//! comparison baseline in Table 1.

use crate::graph::SdfGraph;
use crate::math::gcd;

/// The BMLB of a single edge: the minimum `max_tokens` over all valid SASs.
///
/// # Examples
///
/// ```
/// use sdf_core::bounds::bmlb_edge;
/// assert_eq!(bmlb_edge(2, 3, 0), 6);  // ab/c = 6
/// assert_eq!(bmlb_edge(2, 3, 4), 10); // d < ab/c, so ab/c + d
/// assert_eq!(bmlb_edge(2, 3, 9), 9);  // d >= ab/c, so d
/// ```
pub fn bmlb_edge(prod: u64, cons: u64, delay: u64) -> u64 {
    let c = gcd(prod, cons);
    let lower = prod / c * cons;
    if delay < lower {
        lower + delay
    } else {
        delay
    }
}

/// The minimum buffer size on an edge over **all** valid schedules (not just
/// SASs); see §11.1.3.
///
/// # Examples
///
/// ```
/// use sdf_core::bounds::min_buffer_edge;
/// assert_eq!(min_buffer_edge(2, 3, 0), 4); // a + b - c = 4
/// assert_eq!(min_buffer_edge(2, 3, 100), 100);
/// ```
pub fn min_buffer_edge(prod: u64, cons: u64, delay: u64) -> u64 {
    let c = gcd(prod, cons);
    let bound = prod + cons - c;
    if delay < bound {
        bound + delay % c
    } else {
        delay
    }
}

/// Graph-level BMLB: the sum of [`bmlb_edge`] over all edges. A lower bound
/// on `bufmem(S)` over all valid SASs under the non-shared model.
///
/// # Examples
///
/// ```
/// use sdf_core::{SdfGraph, bounds::bmlb};
///
/// # fn main() -> Result<(), sdf_core::SdfError> {
/// let mut g = SdfGraph::new("fig1");
/// let a = g.add_actor("A");
/// let b = g.add_actor("B");
/// let c = g.add_actor("C");
/// g.add_edge(a, b, 2, 1)?;
/// g.add_edge(b, c, 1, 3)?;
/// assert_eq!(bmlb(&g), 2 + 3);
/// # Ok(())
/// # }
/// ```
pub fn bmlb(graph: &SdfGraph) -> u64 {
    graph
        .edges()
        .map(|(_, e)| bmlb_edge(e.prod, e.cons, e.delay))
        .sum()
}

/// Graph-level all-schedules bound: the sum of [`min_buffer_edge`] over all
/// edges.  A lower bound on `bufmem(S)` over every valid schedule.
pub fn min_buffer_bound(graph: &SdfGraph) -> u64 {
    graph
        .edges()
        .map(|(_, e)| min_buffer_edge(e.prod, e.cons, e.delay))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repetitions::RepetitionsVector;
    use crate::schedule::LoopedSchedule;
    use crate::simulate::validate_schedule;

    #[test]
    fn bmlb_edge_coprime_rates() {
        // gcd 1: bound is a*b.
        assert_eq!(bmlb_edge(3, 5, 0), 15);
    }

    #[test]
    fn bmlb_edge_divisible_rates() {
        // a=4, b=2, c=2: ab/c = 4.
        assert_eq!(bmlb_edge(4, 2, 0), 4);
        assert_eq!(bmlb_edge(1, 1, 0), 1);
    }

    #[test]
    fn bmlb_edge_delay_dominates() {
        assert_eq!(bmlb_edge(1, 1, 5), 5);
    }

    #[test]
    fn min_buffer_edge_homogeneous() {
        // a=b=c=1: bound 1.
        assert_eq!(min_buffer_edge(1, 1, 0), 1);
    }

    #[test]
    fn min_buffer_below_bmlb() {
        // The all-schedules bound never exceeds the SAS bound.
        for (a, b) in [(2u64, 3u64), (7, 5), (8, 6), (10, 4), (1, 9)] {
            assert!(min_buffer_edge(a, b, 0) <= bmlb_edge(a, b, 0));
        }
    }

    #[test]
    fn min_buffer_delay_mod() {
        // a=4, b=6, c=2, bound=8; d=3 < 8 so result 8 + 3 % 2 = 9.
        assert_eq!(min_buffer_edge(4, 6, 3), 9);
    }

    #[test]
    fn bmlb_achieved_by_fully_nested_schedule() {
        // A --2,3--> B, q = (3, 2): schedule (3A(2B))? not valid; the
        // BMLB-achieving SAS interleaves maximally: here (3A)(2B) has max 6,
        // the nested (A(...)) forms cannot go below ab/c = 6.
        let mut g = SdfGraph::new("t");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        let e = g.add_edge(a, b, 2, 3).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        let _ = (a, b);
        let s = LoopedSchedule::parse("(3A)(2B)", &g).unwrap();
        let r = validate_schedule(&g, &s, &q).unwrap();
        assert_eq!(r.max_tokens(e), bmlb_edge(2, 3, 0));
    }

    #[test]
    fn min_buffer_achieved_by_demand_driven_firing() {
        // A --2,3--> B: firing A A B A B uses at most 4 = a+b-c tokens.
        let mut g = SdfGraph::new("t");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        let e = g.add_edge(a, b, 2, 3).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        let _ = (a, b);
        let s = LoopedSchedule::parse("A A B A B", &g).unwrap();
        let r = validate_schedule(&g, &s, &q).unwrap();
        assert_eq!(r.max_tokens(e), min_buffer_edge(2, 3, 0));
    }

    #[test]
    fn graph_bounds_sum_edges() {
        let mut g = SdfGraph::new("t");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        let c = g.add_actor("C");
        g.add_edge(a, b, 2, 3).unwrap();
        g.add_edge_with_delay(b, c, 1, 1, 7).unwrap();
        assert_eq!(bmlb(&g), 6 + 7);
        assert_eq!(min_buffer_bound(&g), 4 + 7);
    }
}
