//! Whole-graph transformations: subset clustering and transposition.
//!
//! Clustering is the primitive beneath APGAN (§7): a connected subset of
//! actors is contracted into one supernode that fires
//! `g = gcd{q(a) : a ∈ subset}` times per period, executing each member
//! `q(a)/g` times per firing.  Edges crossing into or out of the subset
//! have their rates scaled accordingly; internal edges disappear into the
//! supernode.  The transformation preserves consistency and the
//! repetition counts of all other actors.

use crate::error::SdfError;
use crate::graph::{ActorId, SdfGraph};
use crate::math::gcd_iter;
use crate::repetitions::RepetitionsVector;

/// The result of clustering a subset.
#[derive(Clone, Debug)]
pub struct Clustering {
    /// The transformed graph; actor indices are remapped.
    pub graph: SdfGraph,
    /// The supernode in the new graph.
    pub cluster: ActorId,
    /// For each original actor: its id in the new graph, or `None` if it
    /// was absorbed into the cluster.
    pub mapping: Vec<Option<ActorId>>,
    /// Firings of each absorbed member per cluster firing, indexed by
    /// original actor index (zero for non-members).
    pub internal_repetitions: Vec<u64>,
}

/// Contracts `members` of `graph` into a single supernode named `name`.
///
/// # Errors
///
/// * [`SdfError::EmptyGraph`] if `members` is empty.
/// * [`SdfError::UnknownActor`] if a member id is out of range.
/// * [`SdfError::Cyclic`] if contraction would create a delayless cycle
///   through the cluster (the clustered graph would deadlock).
///
/// # Examples
///
/// ```
/// use sdf_core::{SdfGraph, RepetitionsVector};
/// use sdf_core::transform::cluster;
///
/// # fn main() -> Result<(), sdf_core::SdfError> {
/// let mut g = SdfGraph::new("fig2");
/// let a = g.add_actor("A");
/// let b = g.add_actor("B");
/// let c = g.add_actor("C");
/// g.add_edge(a, b, 20, 10)?;
/// g.add_edge(b, c, 20, 10)?;
/// // Cluster {B, C}: q was (1, 2, 4); gcd(2, 4) = 2 so the supernode
/// // fires twice, consuming 10 tokens from A per firing.
/// let r = cluster(&g, &[b, c], "W")?;
/// let q = RepetitionsVector::compute(&r.graph)?;
/// assert_eq!(q.get(r.cluster), 2);
/// # Ok(())
/// # }
/// ```
pub fn cluster(graph: &SdfGraph, members: &[ActorId], name: &str) -> Result<Clustering, SdfError> {
    if members.is_empty() {
        return Err(SdfError::EmptyGraph);
    }
    let n = graph.actor_count();
    let mut is_member = vec![false; n];
    for &a in members {
        if a.index() >= n {
            return Err(SdfError::UnknownActor(a));
        }
        is_member[a.index()] = true;
    }
    let q = RepetitionsVector::compute(graph)?;
    let g = gcd_iter(members.iter().map(|&a| q.get(a)));
    debug_assert!(g >= 1);

    let mut out = SdfGraph::new(graph.name());
    let mut mapping: Vec<Option<ActorId>> = vec![None; n];
    for a in graph.actors() {
        if !is_member[a.index()] {
            mapping[a.index()] = Some(out.add_actor(graph.actor_name(a)));
        }
    }
    let cluster_id = out.add_actor(name);

    for (_, e) in graph.edges() {
        let src_in = is_member[e.src.index()];
        let snk_in = is_member[e.snk.index()];
        match (src_in, snk_in) {
            (true, true) => {} // internal: absorbed
            (false, false) => {
                out.add_edge_with_delay(
                    mapping[e.src.index()].expect("non-member mapped"),
                    mapping[e.snk.index()].expect("non-member mapped"),
                    e.prod,
                    e.cons,
                    e.delay,
                )?;
            }
            (true, false) => {
                // One cluster firing produces what q(src)/g source firings
                // produced.
                let prod = e.prod * (q.get(e.src) / g);
                out.add_edge_with_delay(
                    cluster_id,
                    mapping[e.snk.index()].expect("non-member mapped"),
                    prod,
                    e.cons,
                    e.delay,
                )?;
            }
            (false, true) => {
                let cons = e.cons * (q.get(e.snk) / g);
                out.add_edge_with_delay(
                    mapping[e.src.index()].expect("non-member mapped"),
                    cluster_id,
                    e.prod,
                    cons,
                    e.delay,
                )?;
            }
        }
    }

    // Contraction must not create a cycle the original acyclic graph did
    // not have (the "introduces deadlock" condition APGAN checks).
    if graph.is_acyclic() && !out.is_acyclic() {
        return Err(SdfError::Cyclic);
    }

    let internal_repetitions = graph
        .actors()
        .map(|a| {
            if is_member[a.index()] {
                q.get(a) / g
            } else {
                0
            }
        })
        .collect();

    Ok(Clustering {
        graph: out,
        cluster: cluster_id,
        mapping,
        internal_repetitions,
    })
}

/// Returns the transpose of `graph`: every edge reversed with production
/// and consumption swapped (delays kept).  The transpose of a consistent
/// graph is consistent with the same repetitions vector.
pub fn transpose(graph: &SdfGraph) -> SdfGraph {
    let mut out = SdfGraph::new(format!("{}_transposed", graph.name()));
    for a in graph.actors() {
        out.add_actor(graph.actor_name(a));
    }
    for (_, e) in graph.edges() {
        out.add_edge_with_delay(e.snk, e.src, e.cons, e.prod, e.delay)
            .expect("valid rates stay valid");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig2() -> (SdfGraph, [ActorId; 3]) {
        let mut g = SdfGraph::new("fig2");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        let c = g.add_actor("C");
        g.add_edge(a, b, 20, 10).unwrap();
        g.add_edge(b, c, 20, 10).unwrap();
        (g, [a, b, c])
    }

    #[test]
    fn cluster_preserves_external_rates() {
        let (g, [a, b, c]) = fig2();
        let r = cluster(&g, &[b, c], "W").unwrap();
        let q = RepetitionsVector::compute(&r.graph).unwrap();
        let new_a = r.mapping[a.index()].unwrap();
        assert_eq!(q.get(new_a), 1); // unchanged
        assert_eq!(q.get(r.cluster), 2); // gcd(2, 4)
                                         // Internal repetitions: B once, C twice per cluster firing.
        assert_eq!(r.internal_repetitions[b.index()], 1);
        assert_eq!(r.internal_repetitions[c.index()], 2);
        // The edge A -> W consumes 10 per W firing (B consumed 10).
        let (_, e) = r.graph.edges().next().unwrap();
        assert_eq!((e.prod, e.cons), (20, 10));
    }

    #[test]
    fn cluster_scales_outgoing_rates() {
        // Cluster {A, B} of fig2: gcd(1, 2) = 1, cluster fires once,
        // producing B's whole-period output of 40 tokens.
        let (g, [a, b, c]) = fig2();
        let r = cluster(&g, &[a, b], "W").unwrap();
        let q = RepetitionsVector::compute(&r.graph).unwrap();
        assert_eq!(q.get(r.cluster), 1);
        let new_c = r.mapping[c.index()].unwrap();
        assert_eq!(q.get(new_c), 4);
        let (_, e) = r.graph.edges().next().unwrap();
        assert_eq!((e.prod, e.cons), (40, 10));
    }

    #[test]
    fn illegal_cluster_detected() {
        // A -> B, A -> C, B -> C: clustering {A, C} creates a cycle with B.
        let mut g = SdfGraph::new("tri");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        let c = g.add_actor("C");
        g.add_edge(a, b, 1, 1).unwrap();
        g.add_edge(a, c, 1, 1).unwrap();
        g.add_edge(b, c, 1, 1).unwrap();
        assert_eq!(cluster(&g, &[a, c], "W").err(), Some(SdfError::Cyclic));
    }

    #[test]
    fn cluster_of_everything() {
        let (g, ids) = fig2();
        let r = cluster(&g, &ids, "ALL").unwrap();
        assert_eq!(r.graph.actor_count(), 1);
        assert_eq!(r.graph.edge_count(), 0);
        let q = RepetitionsVector::compute(&r.graph).unwrap();
        assert_eq!(q.get(r.cluster), 1);
    }

    #[test]
    fn empty_and_bad_members_rejected() {
        let (g, _) = fig2();
        assert!(cluster(&g, &[], "W").is_err());
        assert!(cluster(&g, &[ActorId::from_index(99)], "W").is_err());
    }

    #[test]
    fn transpose_preserves_repetitions() {
        let (g, _) = fig2();
        let t = transpose(&g);
        let q1 = RepetitionsVector::compute(&g).unwrap();
        let q2 = RepetitionsVector::compute(&t).unwrap();
        assert_eq!(q1.as_slice(), q2.as_slice());
        // Double transpose restores edge directions.
        let tt = transpose(&t);
        let orig: Vec<_> = g
            .edges()
            .map(|(_, e)| (e.src, e.snk, e.prod, e.cons))
            .collect();
        let back: Vec<_> = tt
            .edges()
            .map(|(_, e)| (e.src, e.snk, e.prod, e.cons))
            .collect();
        assert_eq!(orig, back);
    }

    #[test]
    fn cluster_with_delays_kept() {
        let mut g = SdfGraph::new("d");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        let c = g.add_actor("C");
        g.add_edge_with_delay(a, b, 1, 1, 5).unwrap();
        g.add_edge(b, c, 1, 1).unwrap();
        let r = cluster(&g, &[b, c], "W").unwrap();
        let (_, e) = r.graph.edges().next().unwrap();
        assert_eq!(e.delay, 5);
    }
}
