//! Exact non-negative rational arithmetic.
//!
//! Solving the balance equations of an SDF graph requires propagating exact
//! firing-rate ratios along edges before scaling to the minimal integer
//! repetitions vector; floating point would mis-normalise large graphs, so a
//! small always-reduced rational type is used instead.

use std::cmp::Ordering;
use std::fmt;

use crate::math::gcd;

/// A non-negative rational number kept in lowest terms.
///
/// The denominator is always nonzero and `gcd(numer, denom) == 1`
/// (with the convention that 0 is represented as `0/1`).
///
/// # Examples
///
/// ```
/// use sdf_core::rational::Rational;
/// let r = Rational::new(6, 4);
/// assert_eq!(r, Rational::new(3, 2));
/// assert_eq!(r.numer(), 3);
/// assert_eq!(r.denom(), 2);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    numer: u64,
    denom: u64,
}

impl Rational {
    /// Creates a rational `numer / denom`, reduced to lowest terms.
    ///
    /// # Panics
    ///
    /// Panics if `denom == 0`.
    pub fn new(numer: u64, denom: u64) -> Self {
        assert!(denom != 0, "rational denominator must be nonzero");
        if numer == 0 {
            return Rational { numer: 0, denom: 1 };
        }
        let g = gcd(numer, denom);
        Rational {
            numer: numer / g,
            denom: denom / g,
        }
    }

    /// The rational number one.
    pub const ONE: Rational = Rational { numer: 1, denom: 1 };

    /// The rational number zero.
    pub const ZERO: Rational = Rational { numer: 0, denom: 1 };

    /// Returns the reduced numerator.
    pub fn numer(self) -> u64 {
        self.numer
    }

    /// Returns the reduced denominator (never zero).
    pub fn denom(self) -> u64 {
        self.denom
    }

    /// Returns `self * (p / q)` without overflowing on typical SDF rates:
    /// cross-reduction happens before the multiplications.
    ///
    /// # Panics
    ///
    /// Panics if `q == 0` or if the (cross-reduced) product overflows `u64`.
    pub fn mul_ratio(self, p: u64, q: u64) -> Self {
        assert!(q != 0, "rational denominator must be nonzero");
        if self.numer == 0 || p == 0 {
            return Rational::ZERO;
        }
        // Reduce the incoming ratio, then diagonally, so the result is in
        // lowest terms with small intermediates.
        let g0 = gcd(p, q);
        let (p, q) = (p / g0, q / g0);
        let g1 = gcd(self.numer, q);
        let g2 = gcd(p, self.denom);
        let numer = (self.numer / g1)
            .checked_mul(p / g2)
            .expect("rational numerator overflow");
        let denom = (self.denom / g2)
            .checked_mul(q / g1)
            .expect("rational denominator overflow");
        Rational { numer, denom }
    }

    /// Returns the integer value if this rational is a whole number.
    pub fn to_integer(self) -> Option<u64> {
        (self.denom == 1).then_some(self.numer)
    }

    /// Returns true if the rational equals zero.
    pub fn is_zero(self) -> bool {
        self.numer == 0
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::ZERO
    }
}

impl From<u64> for Rational {
    fn from(value: u64) -> Self {
        Rational {
            numer: value,
            denom: 1,
        }
    }
}

impl std::ops::Mul for Rational {
    type Output = Rational;

    /// # Panics
    ///
    /// Panics on `u64` overflow of the cross-reduced product.
    fn mul(self, other: Rational) -> Rational {
        self.mul_ratio(other.numer, other.denom)
    }
}

impl std::ops::Div for Rational {
    type Output = Rational;

    /// # Panics
    ///
    /// Panics if `other` is zero, or on overflow.
    fn div(self, other: Rational) -> Rational {
        assert!(other.numer != 0, "division of rational by zero");
        self.mul_ratio(other.denom, other.numer)
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // Compare a/b vs c/d via a*d vs c*b in u128 to avoid overflow.
        let lhs = u128::from(self.numer) * u128::from(other.denom);
        let rhs = u128::from(other.numer) * u128::from(self.denom);
        lhs.cmp(&rhs)
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rational({}/{})", self.numer, self.denom)
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.denom == 1 {
            write!(f, "{}", self.numer)
        } else {
            write!(f, "{}/{}", self.numer, self.denom)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduces_on_construction() {
        let r = Rational::new(100, 60);
        assert_eq!((r.numer(), r.denom()), (5, 3));
    }

    #[test]
    fn zero_normalises_denominator() {
        let r = Rational::new(0, 17);
        assert_eq!(r, Rational::ZERO);
        assert_eq!(r.denom(), 1);
        assert!(r.is_zero());
    }

    #[test]
    #[should_panic(expected = "denominator must be nonzero")]
    fn zero_denominator_panics() {
        let _ = Rational::new(1, 0);
    }

    #[test]
    fn multiplication_cross_reduces() {
        // (2/3) * (9/4) = 3/2 with small intermediates.
        let r = Rational::new(2, 3) * Rational::new(9, 4);
        assert_eq!(r, Rational::new(3, 2));
    }

    #[test]
    fn mul_ratio_matches_mul() {
        let a = Rational::new(7, 5);
        assert_eq!(a.mul_ratio(10, 21), a * Rational::new(10, 21));
    }

    #[test]
    fn large_values_no_overflow() {
        // Would overflow naive n1*n2: 2^40/3 * 3/2^40 = 1.
        let big = 1u64 << 40;
        let r = Rational::new(big, 3) * Rational::new(3, big);
        assert_eq!(r, Rational::ONE);
    }

    #[test]
    fn division() {
        let r = Rational::new(3, 4) / Rational::new(9, 8);
        assert_eq!(r, Rational::new(2, 3));
    }

    #[test]
    #[should_panic(expected = "division of rational by zero")]
    fn division_by_zero_panics() {
        let _ = Rational::ONE / Rational::ZERO;
    }

    #[test]
    fn ordering_cross_multiplies() {
        assert!(Rational::new(1, 3) < Rational::new(1, 2));
        assert!(Rational::new(7, 2) > Rational::new(10, 3));
        assert_eq!(
            Rational::new(4, 6).cmp(&Rational::new(2, 3)),
            Ordering::Equal
        );
    }

    #[test]
    fn to_integer() {
        assert_eq!(Rational::new(8, 4).to_integer(), Some(2));
        assert_eq!(Rational::new(8, 3).to_integer(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Rational::new(6, 4).to_string(), "3/2");
        assert_eq!(Rational::new(4, 2).to_string(), "2");
    }

    #[test]
    fn from_u64() {
        assert_eq!(Rational::from(5), Rational::new(5, 1));
    }
}
