//! The synchronous dataflow graph model.
//!
//! An SDF graph is a directed multigraph whose actors produce and consume a
//! fixed, compile-time-known number of tokens per firing, and whose edges may
//! carry initial tokens ("delays").  This module provides the graph
//! structure itself plus the structural queries the scheduling and lifetime
//! crates need: topological sorting, chain/homogeneity tests, reachability
//! and split-crossing edge enumeration.

use std::fmt;

use crate::error::SdfError;

/// Identifies an actor within one [`SdfGraph`].
///
/// Ids are dense indices assigned in insertion order; they are only
/// meaningful relative to the graph that created them.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ActorId(u32);

impl ActorId {
    /// Creates an id from a raw index. Intended for tests and for iteration
    /// code that has already validated the index against a graph.
    pub fn from_index(index: usize) -> Self {
        ActorId(u32::try_from(index).expect("actor index exceeds u32"))
    }

    /// Returns the dense index of this actor.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// Identifies an edge within one [`SdfGraph`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EdgeId(u32);

impl EdgeId {
    /// Creates an id from a raw index. See [`ActorId::from_index`].
    pub fn from_index(index: usize) -> Self {
        EdgeId(u32::try_from(index).expect("edge index exceeds u32"))
    }

    /// Returns the dense index of this edge.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// One FIFO edge of an SDF graph.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Edge {
    /// Source actor (producer).
    pub src: ActorId,
    /// Sink actor (consumer).
    pub snk: ActorId,
    /// Tokens produced onto the edge per firing of `src`.
    pub prod: u64,
    /// Tokens consumed from the edge per firing of `snk`.
    pub cons: u64,
    /// Initial tokens queued on the edge before execution begins.
    pub delay: u64,
}

/// A synchronous dataflow graph.
///
/// Actors are referred to by [`ActorId`], edges by [`EdgeId`]; both are dense
/// indices assigned in insertion order.  Multi-edges and self-loops are
/// permitted (self-loops require delays to be executable).
///
/// # Examples
///
/// Building the three-actor graph of the paper's Fig. 1
/// (`A --2,1,1D--> B --1,3--> C`):
///
/// ```
/// use sdf_core::SdfGraph;
///
/// # fn main() -> Result<(), sdf_core::SdfError> {
/// let mut g = SdfGraph::new("fig1");
/// let a = g.add_actor("A");
/// let b = g.add_actor("B");
/// let c = g.add_actor("C");
/// g.add_edge_with_delay(a, b, 2, 1, 1)?;
/// g.add_edge(b, c, 1, 3)?;
/// assert_eq!(g.actor_count(), 3);
/// assert_eq!(g.edge_count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default)]
pub struct SdfGraph {
    name: String,
    actor_names: Vec<String>,
    edges: Vec<Edge>,
    out_edges: Vec<Vec<EdgeId>>,
    in_edges: Vec<Vec<EdgeId>>,
}

impl SdfGraph {
    /// Creates an empty graph with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        SdfGraph {
            name: name.into(),
            ..SdfGraph::default()
        }
    }

    /// Returns the graph's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds an actor and returns its id.
    pub fn add_actor(&mut self, name: impl Into<String>) -> ActorId {
        let id = ActorId::from_index(self.actor_names.len());
        self.actor_names.push(name.into());
        self.out_edges.push(Vec::new());
        self.in_edges.push(Vec::new());
        id
    }

    /// Adds a delayless edge from `src` to `snk` producing `prod` tokens per
    /// source firing and consuming `cons` per sink firing.
    ///
    /// # Errors
    ///
    /// Returns [`SdfError::UnknownActor`] for out-of-range actor ids and
    /// [`SdfError::ZeroRate`] if `prod` or `cons` is zero.
    pub fn add_edge(
        &mut self,
        src: ActorId,
        snk: ActorId,
        prod: u64,
        cons: u64,
    ) -> Result<EdgeId, SdfError> {
        self.add_edge_with_delay(src, snk, prod, cons, 0)
    }

    /// Adds an edge carrying `delay` initial tokens.
    ///
    /// # Errors
    ///
    /// Same as [`SdfGraph::add_edge`].
    pub fn add_edge_with_delay(
        &mut self,
        src: ActorId,
        snk: ActorId,
        prod: u64,
        cons: u64,
        delay: u64,
    ) -> Result<EdgeId, SdfError> {
        self.check_actor(src)?;
        self.check_actor(snk)?;
        if prod == 0 || cons == 0 {
            return Err(SdfError::ZeroRate { src, snk });
        }
        let id = EdgeId::from_index(self.edges.len());
        self.edges.push(Edge {
            src,
            snk,
            prod,
            cons,
            delay,
        });
        self.out_edges[src.index()].push(id);
        self.in_edges[snk.index()].push(id);
        Ok(id)
    }

    fn check_actor(&self, a: ActorId) -> Result<(), SdfError> {
        if a.index() < self.actor_names.len() {
            Ok(())
        } else {
            Err(SdfError::UnknownActor(a))
        }
    }

    /// Number of actors.
    pub fn actor_count(&self) -> usize {
        self.actor_names.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Returns the name of an actor.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range for this graph.
    pub fn actor_name(&self, a: ActorId) -> &str {
        &self.actor_names[a.index()]
    }

    /// Looks up an actor by name, returning the first match.
    pub fn actor_by_name(&self, name: &str) -> Option<ActorId> {
        self.actor_names
            .iter()
            .position(|n| n == name)
            .map(ActorId::from_index)
    }

    /// Returns the edge record for `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range for this graph.
    pub fn edge(&self, e: EdgeId) -> &Edge {
        &self.edges[e.index()]
    }

    /// Iterates over all actor ids in index order.
    pub fn actors(&self) -> impl Iterator<Item = ActorId> + '_ {
        (0..self.actor_names.len()).map(ActorId::from_index)
    }

    /// Iterates over `(id, edge)` pairs in index order.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, &Edge)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, e)| (EdgeId::from_index(i), e))
    }

    /// Edges leaving actor `a`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    pub fn out_edges(&self, a: ActorId) -> &[EdgeId] {
        &self.out_edges[a.index()]
    }

    /// Edges entering actor `a`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    pub fn in_edges(&self, a: ActorId) -> &[EdgeId] {
        &self.in_edges[a.index()]
    }

    /// Distinct successors of `a` (an actor appears once even across
    /// multi-edges).
    pub fn successors(&self, a: ActorId) -> Vec<ActorId> {
        let mut out: Vec<ActorId> = self
            .out_edges(a)
            .iter()
            .map(|&e| self.edge(e).snk)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Distinct predecessors of `a`.
    pub fn predecessors(&self, a: ActorId) -> Vec<ActorId> {
        let mut inn: Vec<ActorId> = self.in_edges(a).iter().map(|&e| self.edge(e).src).collect();
        inn.sort_unstable();
        inn.dedup();
        inn
    }

    /// Returns a topological ordering of the actors, or
    /// [`SdfError::Cyclic`] if the graph has a directed cycle.
    ///
    /// Ties are broken by actor index, so the result is deterministic.
    ///
    /// # Errors
    ///
    /// Returns [`SdfError::Cyclic`] for cyclic graphs.
    pub fn topological_sort(&self) -> Result<Vec<ActorId>, SdfError> {
        let n = self.actor_count();
        let mut indegree = vec![0usize; n];
        for e in &self.edges {
            indegree[e.snk.index()] += 1;
        }
        // Min-index-first Kahn's algorithm via a sorted ready list.
        let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        ready.sort_unstable_by(|a, b| b.cmp(a)); // pop smallest from the back
        let mut order = Vec::with_capacity(n);
        while let Some(i) = ready.pop() {
            let a = ActorId::from_index(i);
            order.push(a);
            for &e in self.out_edges(a) {
                let t = self.edge(e).snk.index();
                indegree[t] -= 1;
                if indegree[t] == 0 {
                    // Insert keeping `ready` sorted descending.
                    let pos = ready.partition_point(|&x| x > t);
                    ready.insert(pos, t);
                }
            }
        }
        if order.len() == n {
            Ok(order)
        } else {
            Err(SdfError::Cyclic)
        }
    }

    /// Returns true if the graph has no directed cycle.
    pub fn is_acyclic(&self) -> bool {
        self.topological_sort().is_ok()
    }

    /// Returns true if the graph is connected when edge directions are
    /// ignored. The empty graph is considered connected.
    pub fn is_connected(&self) -> bool {
        let n = self.actor_count();
        if n == 0 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut visited = 1usize;
        while let Some(i) = stack.pop() {
            let a = ActorId::from_index(i);
            let neighbours = self
                .out_edges(a)
                .iter()
                .map(|&e| self.edge(e).snk)
                .chain(self.in_edges(a).iter().map(|&e| self.edge(e).src));
            for nb in neighbours {
                if !seen[nb.index()] {
                    seen[nb.index()] = true;
                    visited += 1;
                    stack.push(nb.index());
                }
            }
        }
        visited == n
    }

    /// Returns true if every edge has `prod == cons` (the paper's definition
    /// of a homogeneous graph, §2).
    pub fn is_homogeneous(&self) -> bool {
        self.edges.iter().all(|e| e.prod == e.cons)
    }

    /// Returns the actors in chain order if the graph is a simple directed
    /// chain `x1 -> x2 -> … -> xn` (single edges, no branching).
    pub fn chain_order(&self) -> Option<Vec<ActorId>> {
        let n = self.actor_count();
        if n == 0 {
            return None;
        }
        for a in self.actors() {
            if self.out_edges(a).len() > 1 || self.in_edges(a).len() > 1 {
                return None;
            }
        }
        let head = self.actors().find(|&a| self.in_edges(a).is_empty())?;
        let mut order = Vec::with_capacity(n);
        let mut cur = head;
        loop {
            order.push(cur);
            match self.out_edges(cur).first() {
                Some(&e) => cur = self.edge(e).snk,
                None => break,
            }
            if order.len() > n {
                return None; // cycle guard
            }
        }
        (order.len() == n).then_some(order)
    }

    /// Returns true if [`SdfGraph::chain_order`] succeeds.
    pub fn is_chain(&self) -> bool {
        self.chain_order().is_some()
    }

    /// Returns the edges whose source lies in `left` and sink lies in
    /// `right` — the "split-crossing" edge set E_s of Eq. 4.
    ///
    /// Membership is tested with boolean masks built from the slices, so the
    /// cost is O(V + E) regardless of slice sizes.
    pub fn edges_crossing(&self, left: &[ActorId], right: &[ActorId]) -> Vec<EdgeId> {
        let n = self.actor_count();
        let mut in_left = vec![false; n];
        let mut in_right = vec![false; n];
        for &a in left {
            in_left[a.index()] = true;
        }
        for &a in right {
            in_right[a.index()] = true;
        }
        self.edges()
            .filter(|(_, e)| in_left[e.src.index()] && in_right[e.snk.index()])
            .map(|(id, _)| id)
            .collect()
    }

    /// Returns true if any directed path exists from `from` to `to`.
    pub fn reaches(&self, from: ActorId, to: ActorId) -> bool {
        if from == to {
            return true;
        }
        let mut seen = vec![false; self.actor_count()];
        let mut stack = vec![from];
        seen[from.index()] = true;
        while let Some(a) = stack.pop() {
            for &e in self.out_edges(a) {
                let s = self.edge(e).snk;
                if s == to {
                    return true;
                }
                if !seen[s.index()] {
                    seen[s.index()] = true;
                    stack.push(s);
                }
            }
        }
        false
    }

    /// Total delay (initial tokens) summed over all edges.
    pub fn total_delay(&self) -> u64 {
        self.edges.iter().map(|e| e.delay).sum()
    }
}

impl fmt::Display for SdfGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "SdfGraph \"{}\" ({} actors, {} edges)",
            self.name,
            self.actor_count(),
            self.edge_count()
        )?;
        for (id, e) in self.edges() {
            write!(
                f,
                "  {id}: {} --{},{}",
                self.actor_name(e.src),
                e.prod,
                e.cons
            )?;
            if e.delay > 0 {
                write!(f, ",{}D", e.delay)?;
            }
            writeln!(f, "--> {}", self.actor_name(e.snk))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1() -> (SdfGraph, ActorId, ActorId, ActorId) {
        let mut g = SdfGraph::new("fig1");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        let c = g.add_actor("C");
        g.add_edge_with_delay(a, b, 2, 1, 1).unwrap();
        g.add_edge(b, c, 1, 3).unwrap();
        (g, a, b, c)
    }

    #[test]
    fn construction_and_counts() {
        let (g, a, b, c) = fig1();
        assert_eq!(g.actor_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.actor_name(a), "A");
        assert_eq!(g.actor_by_name("C"), Some(c));
        assert_eq!(g.actor_by_name("Z"), None);
        assert_eq!(g.out_edges(a).len(), 1);
        assert_eq!(g.in_edges(b).len(), 1);
    }

    #[test]
    fn zero_rate_rejected() {
        let mut g = SdfGraph::new("t");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        assert_eq!(
            g.add_edge(a, b, 0, 1),
            Err(SdfError::ZeroRate { src: a, snk: b })
        );
        assert_eq!(
            g.add_edge(a, b, 1, 0),
            Err(SdfError::ZeroRate { src: a, snk: b })
        );
    }

    #[test]
    fn unknown_actor_rejected() {
        let mut g = SdfGraph::new("t");
        let a = g.add_actor("A");
        let ghost = ActorId::from_index(5);
        assert_eq!(
            g.add_edge(a, ghost, 1, 1),
            Err(SdfError::UnknownActor(ghost))
        );
    }

    #[test]
    fn topological_sort_simple() {
        let (g, a, b, c) = fig1();
        assert_eq!(g.topological_sort().unwrap(), vec![a, b, c]);
        assert!(g.is_acyclic());
    }

    #[test]
    fn topological_sort_detects_cycle() {
        let mut g = SdfGraph::new("cyc");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        g.add_edge(a, b, 1, 1).unwrap();
        g.add_edge(b, a, 1, 1).unwrap();
        assert_eq!(g.topological_sort(), Err(SdfError::Cyclic));
        assert!(!g.is_acyclic());
    }

    #[test]
    fn topological_sort_breaks_ties_by_index() {
        let mut g = SdfGraph::new("diamond");
        let s = g.add_actor("S");
        let x = g.add_actor("X");
        let y = g.add_actor("Y");
        let t = g.add_actor("T");
        g.add_edge(s, x, 1, 1).unwrap();
        g.add_edge(s, y, 1, 1).unwrap();
        g.add_edge(x, t, 1, 1).unwrap();
        g.add_edge(y, t, 1, 1).unwrap();
        assert_eq!(g.topological_sort().unwrap(), vec![s, x, y, t]);
    }

    #[test]
    fn connectivity() {
        let (g, ..) = fig1();
        assert!(g.is_connected());
        let mut g2 = SdfGraph::new("two-islands");
        g2.add_actor("A");
        g2.add_actor("B");
        assert!(!g2.is_connected());
        assert!(SdfGraph::new("empty").is_connected());
    }

    #[test]
    fn homogeneity() {
        let (g, ..) = fig1();
        assert!(!g.is_homogeneous());
        let mut h = SdfGraph::new("homog");
        let a = h.add_actor("A");
        let b = h.add_actor("B");
        h.add_edge(a, b, 3, 3).unwrap();
        assert!(h.is_homogeneous());
    }

    #[test]
    fn chain_detection() {
        let (g, a, b, c) = fig1();
        assert_eq!(g.chain_order(), Some(vec![a, b, c]));
        let mut fork = SdfGraph::new("fork");
        let s = fork.add_actor("S");
        let x = fork.add_actor("X");
        let y = fork.add_actor("Y");
        fork.add_edge(s, x, 1, 1).unwrap();
        fork.add_edge(s, y, 1, 1).unwrap();
        assert!(!fork.is_chain());
    }

    #[test]
    fn chain_rejects_two_actor_cycle() {
        let mut g = SdfGraph::new("cyc");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        g.add_edge(a, b, 1, 1).unwrap();
        g.add_edge(b, a, 1, 1).unwrap();
        assert!(!g.is_chain());
    }

    #[test]
    fn crossing_edges() {
        let (g, a, b, c) = fig1();
        let cross = g.edges_crossing(&[a], &[b, c]);
        assert_eq!(cross.len(), 1);
        assert_eq!(g.edge(cross[0]).src, a);
        let cross2 = g.edges_crossing(&[a, b], &[c]);
        assert_eq!(cross2.len(), 1);
        assert_eq!(g.edge(cross2[0]).snk, c);
        assert!(g.edges_crossing(&[c], &[a]).is_empty());
    }

    #[test]
    fn reachability() {
        let (g, a, b, c) = fig1();
        assert!(g.reaches(a, c));
        assert!(g.reaches(a, a));
        assert!(!g.reaches(c, a));
        assert!(g.reaches(b, c));
    }

    #[test]
    fn multi_edges_allowed() {
        let mut g = SdfGraph::new("multi");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        g.add_edge(a, b, 1, 2).unwrap();
        g.add_edge(a, b, 3, 6).unwrap();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.successors(a), vec![b]);
        assert_eq!(g.predecessors(b), vec![a]);
    }

    #[test]
    fn display_includes_rates_and_delays() {
        let (g, ..) = fig1();
        let s = g.to_string();
        assert!(s.contains("A --2,1,1D--> B"));
        assert!(s.contains("B --1,3--> C"));
    }

    #[test]
    fn total_delay_sums() {
        let (g, ..) = fig1();
        assert_eq!(g.total_delay(), 1);
    }
}
