//! Error types shared by the SDF model and everything built on top of it.

use std::error::Error;
use std::fmt;

use crate::graph::{ActorId, EdgeId};

/// Errors produced while constructing, analysing or executing SDF graphs and
/// schedules.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SdfError {
    /// An actor id did not belong to the graph it was used with.
    UnknownActor(ActorId),
    /// An edge id did not belong to the graph it was used with.
    UnknownEdge(EdgeId),
    /// An edge was declared with a zero production or consumption rate.
    ZeroRate {
        /// Source actor of the offending edge.
        src: ActorId,
        /// Sink actor of the offending edge.
        snk: ActorId,
    },
    /// The balance equations have no positive solution: the graph is
    /// sample-rate inconsistent and admits no valid schedule.
    Inconsistent {
        /// The first edge whose balance equation failed.
        edge: EdgeId,
    },
    /// The graph contains a delayless cycle (or the schedule ran out of
    /// tokens), so execution cannot make progress.
    Deadlock {
        /// The actor that could not fire.
        actor: ActorId,
    },
    /// An operation requiring an acyclic graph was applied to a cyclic one.
    Cyclic,
    /// An operation requiring a connected graph was applied to a
    /// disconnected one.
    Disconnected,
    /// An operation requiring a chain-structured graph was applied to a
    /// graph that is not a chain.
    NotChainStructured,
    /// The graph has no actors.
    EmptyGraph,
    /// A schedule did not fire every actor the number of times required by
    /// the repetitions vector, or left tokens displaced from their initial
    /// state.
    InvalidSchedule(String),
    /// A schedule that must be single-appearance mentioned some actor more
    /// than once (or not at all).
    NotSingleAppearance(ActorId),
}

impl fmt::Display for SdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SdfError::UnknownActor(a) => write!(f, "actor {a} does not belong to this graph"),
            SdfError::UnknownEdge(e) => write!(f, "edge {e} does not belong to this graph"),
            SdfError::ZeroRate { src, snk } => {
                write!(
                    f,
                    "edge {src} -> {snk} has a zero production or consumption rate"
                )
            }
            SdfError::Inconsistent { edge } => {
                write!(
                    f,
                    "balance equation violated on edge {edge}: graph is inconsistent"
                )
            }
            SdfError::Deadlock { actor } => {
                write!(
                    f,
                    "actor {actor} cannot fire: insufficient input tokens (deadlock)"
                )
            }
            SdfError::Cyclic => write!(f, "operation requires an acyclic graph"),
            SdfError::Disconnected => write!(f, "operation requires a connected graph"),
            SdfError::NotChainStructured => {
                write!(f, "operation requires a chain-structured graph")
            }
            SdfError::EmptyGraph => write!(f, "graph has no actors"),
            SdfError::InvalidSchedule(msg) => write!(f, "invalid schedule: {msg}"),
            SdfError::NotSingleAppearance(a) => {
                write!(f, "schedule is not single-appearance for actor {a}")
            }
        }
    }
}

impl Error for SdfError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = SdfError::ZeroRate {
            src: ActorId::from_index(0),
            snk: ActorId::from_index(1),
        };
        let msg = e.to_string();
        assert!(msg.contains("zero production or consumption"));
        assert!(!msg.ends_with('.'));
    }

    #[test]
    fn error_trait_object() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<SdfError>();
    }
}
