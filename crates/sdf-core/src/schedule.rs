//! Looped schedules, single appearance schedules and R-schedule trees.
//!
//! A *looped schedule* is the paper's compact firing-sequence notation:
//! `(3A)(2B(2C))` fires `A` three times, then twice fires `B` followed by
//! two `C`s.  A *single appearance schedule* (SAS) mentions each actor
//! exactly once; every SAS over an acyclic graph can be put in the binary
//! *R-schedule* form `(i_L S_L)(i_R S_R)` (§8.1), which this module models as
//! [`SasTree`] — the input to lifetime analysis.

use std::fmt;

use crate::error::SdfError;
use crate::graph::{ActorId, SdfGraph};
use crate::repetitions::RepetitionsVector;

/// One element of a looped schedule body.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum ScheduleNode {
    /// Fire `actor` `count` consecutive times (`(count actor)` in paper
    /// notation; `count` is 1 for a bare actor mention).
    Fire {
        /// The actor to fire.
        actor: ActorId,
        /// Consecutive firings.
        count: u64,
    },
    /// A schedule loop `(count body…)`.
    Loop {
        /// Loop iteration count.
        count: u64,
        /// Loop body, executed in order each iteration.
        body: Vec<ScheduleNode>,
    },
}

impl ScheduleNode {
    /// Convenience constructor for a single firing.
    pub fn fire(actor: ActorId) -> Self {
        ScheduleNode::Fire { actor, count: 1 }
    }

    /// Convenience constructor for `count` consecutive firings.
    pub fn fire_n(actor: ActorId, count: u64) -> Self {
        ScheduleNode::Fire { actor, count }
    }

    /// Convenience constructor for a loop.
    pub fn loop_of(count: u64, body: Vec<ScheduleNode>) -> Self {
        ScheduleNode::Loop { count, body }
    }
}

/// A looped schedule: an ordered body of firings and nested loops.
///
/// # Examples
///
/// Parsing and printing paper notation:
///
/// ```
/// use sdf_core::{SdfGraph, LoopedSchedule};
///
/// # fn main() -> Result<(), sdf_core::SdfError> {
/// let mut g = SdfGraph::new("fig2");
/// let a = g.add_actor("A");
/// let b = g.add_actor("B");
/// let c = g.add_actor("C");
/// g.add_edge(a, b, 20, 10)?;
/// g.add_edge(b, c, 20, 10)?;
/// let s = LoopedSchedule::parse("A (2 B (2 C))", &g)?;
/// assert!(s.is_single_appearance());
/// assert_eq!(s.display(&g).to_string(), "A(2B(2C))");
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct LoopedSchedule {
    body: Vec<ScheduleNode>,
}

impl LoopedSchedule {
    /// Creates a schedule from a body.
    pub fn new(body: Vec<ScheduleNode>) -> Self {
        LoopedSchedule { body }
    }

    /// Returns the top-level body.
    pub fn body(&self) -> &[ScheduleNode] {
        &self.body
    }

    /// Parses paper notation: actor names, optional integer repetition
    /// prefixes and parenthesised loops, e.g. `"(3A)(6B)(2C)"` or
    /// `"2(B(2C))"`.  Whitespace between tokens is ignored; actor names are
    /// maximal runs of alphanumerics/underscores that do not start with a
    /// digit.
    ///
    /// # Errors
    ///
    /// Returns [`SdfError::InvalidSchedule`] on malformed input or unknown
    /// actor names.
    pub fn parse(text: &str, graph: &SdfGraph) -> Result<Self, SdfError> {
        let mut parser = Parser {
            chars: text.chars().collect(),
            pos: 0,
            graph,
        };
        let body = parser.parse_sequence()?;
        parser.skip_ws();
        if parser.pos != parser.chars.len() {
            return Err(SdfError::InvalidSchedule(format!(
                "unexpected trailing input at offset {}",
                parser.pos
            )));
        }
        Ok(LoopedSchedule { body })
    }

    /// Iterates over the fully expanded firing sequence.
    ///
    /// The iterator is lazy; the expansion can be exponentially longer than
    /// the schedule text, so avoid collecting it for untrusted inputs.
    pub fn firings(&self) -> Firings<'_> {
        Firings {
            stack: vec![Frame {
                body: &self.body,
                index: 0,
                fire_done: 0,
                remaining_iters: 1,
            }],
        }
    }

    /// Returns the number of firings of each actor in one pass of the
    /// schedule, computed without expansion.
    pub fn firing_counts(&self, actor_count: usize) -> Vec<u64> {
        let mut counts = vec![0u64; actor_count];
        fn walk(nodes: &[ScheduleNode], mult: u64, counts: &mut [u64]) {
            for node in nodes {
                match node {
                    ScheduleNode::Fire { actor, count } => {
                        counts[actor.index()] += mult * count;
                    }
                    ScheduleNode::Loop { count, body } => {
                        walk(body, mult * count, counts);
                    }
                }
            }
        }
        walk(&self.body, 1, &mut counts);
        counts
    }

    /// Returns the number of lexical appearances of each actor (loop
    /// notation counts a `Fire` node once regardless of its count).
    pub fn appearance_counts(&self, actor_count: usize) -> Vec<u64> {
        let mut counts = vec![0u64; actor_count];
        fn walk(nodes: &[ScheduleNode], counts: &mut [u64]) {
            for node in nodes {
                match node {
                    ScheduleNode::Fire { actor, .. } => counts[actor.index()] += 1,
                    ScheduleNode::Loop { body, .. } => walk(body, counts),
                }
            }
        }
        walk(&self.body, &mut counts);
        counts
    }

    /// Returns true if every actor that appears, appears exactly once.
    pub fn is_single_appearance(&self) -> bool {
        let mut seen = std::collections::HashSet::new();
        fn walk(nodes: &[ScheduleNode], seen: &mut std::collections::HashSet<ActorId>) -> bool {
            for node in nodes {
                match node {
                    ScheduleNode::Fire { actor, .. } => {
                        if !seen.insert(*actor) {
                            return false;
                        }
                    }
                    ScheduleNode::Loop { body, .. } => {
                        if !walk(body, seen) {
                            return false;
                        }
                    }
                }
            }
            true
        }
        walk(&self.body, &mut seen)
    }

    /// Returns the lexical ordering of the schedule: actors in order of
    /// first appearance (for a SAS this is `lexorder(S)` of §4).
    pub fn lexical_order(&self) -> Vec<ActorId> {
        let mut order = Vec::new();
        let mut seen = std::collections::HashSet::new();
        fn walk(
            nodes: &[ScheduleNode],
            order: &mut Vec<ActorId>,
            seen: &mut std::collections::HashSet<ActorId>,
        ) {
            for node in nodes {
                match node {
                    ScheduleNode::Fire { actor, .. } => {
                        if seen.insert(*actor) {
                            order.push(*actor);
                        }
                    }
                    ScheduleNode::Loop { body, .. } => walk(body, order, seen),
                }
            }
        }
        walk(&self.body, &mut order, &mut seen);
        order
    }

    /// Maximum loop nesting depth (a flat schedule has depth ≤ 1).
    pub fn depth(&self) -> usize {
        fn walk(nodes: &[ScheduleNode]) -> usize {
            nodes
                .iter()
                .map(|n| match n {
                    ScheduleNode::Fire { .. } => 0,
                    ScheduleNode::Loop { body, .. } => 1 + walk(body),
                })
                .max()
                .unwrap_or(0)
        }
        walk(&self.body)
    }

    /// Builds the flat SAS `(q1 x1)(q2 x2)…(qn xn)` for a lexical order.
    ///
    /// # Panics
    ///
    /// Panics if an actor in `order` is out of range for `q`.
    pub fn flat_sas(order: &[ActorId], q: &RepetitionsVector) -> Self {
        LoopedSchedule {
            body: order
                .iter()
                .map(|&a| ScheduleNode::fire_n(a, q.get(a)))
                .collect(),
        }
    }

    /// Returns a displayable form using actor names from `graph`.
    pub fn display<'a>(&'a self, graph: &'a SdfGraph) -> DisplaySchedule<'a> {
        DisplaySchedule {
            schedule: self,
            graph,
        }
    }

    /// Applies the paper's **Fact 1** factoring transformation everywhere
    /// it is possible: any loop `(m (n1 S1)(n2 S2)…(nk Sk))` whose body
    /// iteration counts share a common divisor γ > 1 becomes
    /// `(γm (n1/γ S1)…(nk/γ Sk))`, recursively, until no loop can be
    /// factored further.
    ///
    /// Under the **non-shared** buffer model this never increases
    /// `bufmem` (Fact 1(b)); under the shared model it can (§5.1, Fig. 7)
    /// — which is exactly why SDPPO applies its factoring heuristic
    /// instead of factoring blindly.
    ///
    /// The transformation preserves validity whenever the loop bodies
    /// fire disjoint actor sets (always true for the SASs this workspace
    /// produces; for general schedules the caller should re-validate).
    pub fn fully_factored(&self) -> LoopedSchedule {
        fn count_of(node: &ScheduleNode) -> u64 {
            match node {
                ScheduleNode::Fire { count, .. } => *count,
                ScheduleNode::Loop { count, .. } => *count,
            }
        }
        fn divide(node: &mut ScheduleNode, g: u64) {
            match node {
                ScheduleNode::Fire { count, .. } => *count /= g,
                ScheduleNode::Loop { count, .. } => *count /= g,
            }
        }
        fn factor_body(body: &[ScheduleNode]) -> (Vec<ScheduleNode>, u64) {
            // Recurse first so inner loops are already factored.
            let mut new_body: Vec<ScheduleNode> = body
                .iter()
                .map(|n| match n {
                    ScheduleNode::Fire { .. } => n.clone(),
                    ScheduleNode::Loop { count, body } => {
                        let (inner, gamma) = factor_body(body);
                        ScheduleNode::loop_of(count * gamma, inner)
                    }
                })
                .collect();
            let g = new_body.iter().map(count_of).fold(0, crate::math::gcd);
            if g > 1 {
                for n in &mut new_body {
                    divide(n, g);
                }
                (new_body, g)
            } else {
                (new_body, 1)
            }
        }
        // The top level is not inside a loop, so a common factor of the
        // top-level body cannot be extracted (there is nothing to attach
        // it to without changing the period); only nested loops factor.
        let body = self
            .body
            .iter()
            .map(|n| match n {
                ScheduleNode::Fire { .. } => n.clone(),
                ScheduleNode::Loop { count, body } => {
                    let (inner, gamma) = factor_body(body);
                    ScheduleNode::loop_of(count * gamma, inner)
                }
            })
            .collect();
        LoopedSchedule { body }
    }
}

struct Parser<'a> {
    chars: Vec<char>,
    pos: usize,
    graph: &'a SdfGraph,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.chars.len() && self.chars[self.pos].is_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.chars.get(self.pos).copied()
    }

    fn parse_sequence(&mut self) -> Result<Vec<ScheduleNode>, SdfError> {
        let mut nodes = Vec::new();
        while let Some(c) = self.peek() {
            if c == ')' {
                break;
            }
            nodes.push(self.parse_term()?);
        }
        Ok(nodes)
    }

    fn parse_term(&mut self) -> Result<ScheduleNode, SdfError> {
        // A count may prefix a loop (`2(B(2C))`) or an actor (`3A`); inside
        // parentheses a leading count is the loop count of that group
        // (`(3A)`, `(24(11(4A)B)…)`).
        let prefix = self.parse_count()?;
        match self.peek() {
            Some('(') => {
                self.pos += 1;
                let inner = self.parse_count()?;
                let body = self.parse_sequence()?;
                if self.peek() != Some(')') {
                    return Err(SdfError::InvalidSchedule(
                        "missing closing parenthesis".into(),
                    ));
                }
                self.pos += 1;
                if body.is_empty() {
                    return Err(SdfError::InvalidSchedule("empty loop body".into()));
                }
                let count = prefix * inner;
                // Collapse `(n X)` into a counted firing.
                if body.len() == 1 {
                    if let ScheduleNode::Fire { actor, count: c } = body[0] {
                        return Ok(ScheduleNode::fire_n(actor, count * c));
                    }
                }
                Ok(ScheduleNode::loop_of(count, body))
            }
            Some(c) if c.is_alphabetic() || c == '_' => {
                let name = self.parse_name();
                let actor = self.graph.actor_by_name(&name).ok_or_else(|| {
                    SdfError::InvalidSchedule(format!("unknown actor \"{name}\""))
                })?;
                Ok(ScheduleNode::fire_n(actor, prefix))
            }
            other => Err(SdfError::InvalidSchedule(format!(
                "expected actor or loop, found {other:?}"
            ))),
        }
    }

    fn parse_count(&mut self) -> Result<u64, SdfError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.chars.len() && self.chars[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        if start == self.pos {
            return Ok(1);
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        let value: u64 = text
            .parse()
            .map_err(|_| SdfError::InvalidSchedule(format!("bad loop count \"{text}\"")))?;
        if value == 0 {
            return Err(SdfError::InvalidSchedule("loop count of zero".into()));
        }
        Ok(value)
    }

    fn parse_name(&mut self) -> String {
        let start = self.pos;
        while self.pos < self.chars.len()
            && (self.chars[self.pos].is_alphanumeric() || self.chars[self.pos] == '_')
        {
            self.pos += 1;
        }
        self.chars[start..self.pos].iter().collect()
    }
}

struct Frame<'a> {
    body: &'a [ScheduleNode],
    index: usize,
    fire_done: u64,
    remaining_iters: u64,
}

/// Lazy iterator over the expanded firing sequence of a
/// [`LoopedSchedule`]; created by [`LoopedSchedule::firings`].
pub struct Firings<'a> {
    stack: Vec<Frame<'a>>,
}

impl Iterator for Firings<'_> {
    type Item = ActorId;

    fn next(&mut self) -> Option<ActorId> {
        loop {
            let frame = self.stack.last_mut()?;
            if frame.index == frame.body.len() {
                frame.remaining_iters -= 1;
                if frame.remaining_iters == 0 {
                    self.stack.pop();
                } else {
                    frame.index = 0;
                }
                continue;
            }
            match &frame.body[frame.index] {
                ScheduleNode::Fire { actor, count } => {
                    if frame.fire_done + 1 >= *count {
                        frame.fire_done = 0;
                        frame.index += 1;
                    } else {
                        frame.fire_done += 1;
                    }
                    return Some(*actor);
                }
                ScheduleNode::Loop { count, body } => {
                    frame.index += 1;
                    if *count > 0 && !body.is_empty() {
                        self.stack.push(Frame {
                            body,
                            index: 0,
                            fire_done: 0,
                            remaining_iters: *count,
                        });
                    }
                }
            }
        }
    }
}

/// Displays a schedule in paper notation; created by
/// [`LoopedSchedule::display`].
pub struct DisplaySchedule<'a> {
    schedule: &'a LoopedSchedule,
    graph: &'a SdfGraph,
}

impl fmt::Display for DisplaySchedule<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Two adjacent bare actor names need a separating space so that
        // multi-character names stay parseable ("cdSrc stage1", not
        // "cdSrcstage1"); counts and parentheses delimit themselves.
        fn node(n: &ScheduleNode, g: &SdfGraph, out: &mut String, after_name: &mut bool) {
            match n {
                ScheduleNode::Fire { actor, count } => {
                    if *count == 1 {
                        if *after_name {
                            out.push(' ');
                        }
                        out.push_str(g.actor_name(*actor));
                        *after_name = true;
                    } else {
                        out.push('(');
                        out.push_str(&count.to_string());
                        out.push_str(g.actor_name(*actor));
                        out.push(')');
                        *after_name = false;
                    }
                }
                ScheduleNode::Loop { count, body } => {
                    out.push('(');
                    out.push_str(&count.to_string());
                    let mut inner_after_name = false;
                    for b in body {
                        node(b, g, out, &mut inner_after_name);
                    }
                    out.push(')');
                    *after_name = false;
                }
            }
        }
        let mut out = String::new();
        let mut after_name = false;
        for n in &self.schedule.body {
            node(n, self.graph, &mut out, &mut after_name);
        }
        f.write_str(&out)
    }
}

/// A single appearance schedule in binary R-schedule form (§8.1).
///
/// Internal nodes carry a loop factor; leaves carry an actor with its
/// residual repetition count.  The looped schedule it denotes is
/// `(count (left right))` at each branch and `(reps actor)` at each leaf.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SasNode {
    /// `(reps actor)`.
    Leaf {
        /// The actor fired at this leaf.
        actor: ActorId,
        /// Residual repetition count.
        reps: u64,
    },
    /// `(count left right)`.
    Branch {
        /// Loop factor of this subschedule.
        count: u64,
        /// Left subschedule.
        left: Box<SasNode>,
        /// Right subschedule.
        right: Box<SasNode>,
    },
}

impl SasNode {
    /// Creates a leaf node.
    pub fn leaf(actor: ActorId, reps: u64) -> Self {
        SasNode::Leaf { actor, reps }
    }

    /// Creates a branch node.
    pub fn branch(count: u64, left: SasNode, right: SasNode) -> Self {
        SasNode::Branch {
            count,
            left: Box::new(left),
            right: Box::new(right),
        }
    }
}

/// A complete R-schedule: a binary schedule tree for a SAS.
///
/// # Examples
///
/// The R-schedule `(1 (1A) ((2 (2B)(4C))))` for Fig. 2's graph:
///
/// ```
/// use sdf_core::{SdfGraph, SasTree, SasNode};
///
/// # fn main() -> Result<(), sdf_core::SdfError> {
/// let mut g = SdfGraph::new("fig2");
/// let a = g.add_actor("A");
/// let b = g.add_actor("B");
/// let c = g.add_actor("C");
/// g.add_edge(a, b, 20, 10)?;
/// g.add_edge(b, c, 20, 10)?;
/// let tree = SasTree::new(SasNode::branch(
///     1,
///     SasNode::leaf(a, 1),
///     SasNode::branch(2, SasNode::leaf(b, 1), SasNode::leaf(c, 2)),
/// ));
/// let s = tree.to_looped_schedule();
/// assert_eq!(s.display(&g).to_string(), "A(2B(2C))");
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SasTree {
    root: SasNode,
}

impl SasTree {
    /// Wraps a root node as a tree.
    pub fn new(root: SasNode) -> Self {
        SasTree { root }
    }

    /// Returns the root node.
    pub fn root(&self) -> &SasNode {
        &self.root
    }

    /// Converts to the equivalent looped schedule, dropping unit loop
    /// factors.
    pub fn to_looped_schedule(&self) -> LoopedSchedule {
        fn conv(node: &SasNode) -> Vec<ScheduleNode> {
            match node {
                SasNode::Leaf { actor, reps } => vec![ScheduleNode::fire_n(*actor, *reps)],
                SasNode::Branch { count, left, right } => {
                    let mut body = conv(left);
                    body.extend(conv(right));
                    if *count == 1 {
                        body
                    } else {
                        vec![ScheduleNode::loop_of(*count, body)]
                    }
                }
            }
        }
        LoopedSchedule::new(conv(&self.root))
    }

    /// The actors in left-to-right (lexical) order.
    pub fn lexical_order(&self) -> Vec<ActorId> {
        let mut order = Vec::new();
        fn walk(node: &SasNode, order: &mut Vec<ActorId>) {
            match node {
                SasNode::Leaf { actor, .. } => order.push(*actor),
                SasNode::Branch { left, right, .. } => {
                    walk(left, order);
                    walk(right, order);
                }
            }
        }
        walk(&self.root, &mut order);
        order
    }

    /// Number of leaves (== number of distinct actors in a SAS).
    pub fn leaf_count(&self) -> usize {
        fn walk(node: &SasNode) -> usize {
            match node {
                SasNode::Leaf { .. } => 1,
                SasNode::Branch { left, right, .. } => walk(left) + walk(right),
            }
        }
        walk(&self.root)
    }

    /// Checks that for every leaf, the product of ancestor loop factors and
    /// the leaf's residual count equals `q(actor)`, and that each actor
    /// appears exactly once.
    ///
    /// # Errors
    ///
    /// * [`SdfError::NotSingleAppearance`] if some actor repeats or is
    ///   missing.
    /// * [`SdfError::InvalidSchedule`] if a leaf's total count differs from
    ///   the repetitions vector.
    pub fn validate(&self, graph: &SdfGraph, q: &RepetitionsVector) -> Result<(), SdfError> {
        let mut seen = vec![false; graph.actor_count()];
        fn walk(
            node: &SasNode,
            mult: u64,
            q: &RepetitionsVector,
            seen: &mut [bool],
        ) -> Result<(), SdfError> {
            match node {
                SasNode::Leaf { actor, reps } => {
                    if seen[actor.index()] {
                        return Err(SdfError::NotSingleAppearance(*actor));
                    }
                    seen[actor.index()] = true;
                    let total = mult * reps;
                    if total != q.get(*actor) {
                        return Err(SdfError::InvalidSchedule(format!(
                            "actor {} fires {} times, repetitions vector requires {}",
                            actor,
                            total,
                            q.get(*actor)
                        )));
                    }
                    Ok(())
                }
                SasNode::Branch { count, left, right } => {
                    walk(left, mult * count, q, seen)?;
                    walk(right, mult * count, q, seen)
                }
            }
        }
        walk(&self.root, 1, q, &mut seen)?;
        if let Some(missing) = seen.iter().position(|&s| !s) {
            return Err(SdfError::NotSingleAppearance(ActorId::from_index(missing)));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig2() -> (SdfGraph, [ActorId; 3]) {
        let mut g = SdfGraph::new("fig2");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        let c = g.add_actor("C");
        g.add_edge(a, b, 20, 10).unwrap();
        g.add_edge(b, c, 20, 10).unwrap();
        (g, [a, b, c])
    }

    #[test]
    fn parse_flat_sas() {
        let (g, [a, b, c]) = fig2();
        let s = LoopedSchedule::parse("(1A)(2B)(4C)", &g).unwrap();
        let counts = s.firing_counts(3);
        assert_eq!(counts, vec![1, 2, 4]);
        assert!(s.is_single_appearance());
        assert_eq!(s.lexical_order(), vec![a, b, c]);
    }

    #[test]
    fn parse_nested() {
        let (g, _) = fig2();
        let s = LoopedSchedule::parse("A(2B(2C))", &g).unwrap();
        assert_eq!(s.firing_counts(3), vec![1, 2, 4]);
        // `(2C)` collapses to a counted firing, so only one Loop node remains.
        assert_eq!(s.depth(), 1);
        assert_eq!(s.display(&g).to_string(), "A(2B(2C))");
    }

    #[test]
    fn parse_non_sas() {
        let (g, [a, b, c]) = fig2();
        let s = LoopedSchedule::parse("A B C C B C C", &g).unwrap();
        assert!(!s.is_single_appearance());
        assert_eq!(s.firing_counts(3), vec![1, 2, 4]);
        let firing: Vec<_> = s.firings().collect();
        assert_eq!(firing, vec![a, b, c, c, b, c, c]);
    }

    #[test]
    fn parse_count_before_paren() {
        let (g, _) = fig2();
        let s = LoopedSchedule::parse("A 2(B(2C))", &g).unwrap();
        assert_eq!(s.display(&g).to_string(), "A(2B(2C))");
    }

    #[test]
    fn parse_rejects_unknown_actor() {
        let (g, _) = fig2();
        assert!(matches!(
            LoopedSchedule::parse("A Z", &g),
            Err(SdfError::InvalidSchedule(_))
        ));
    }

    #[test]
    fn parse_rejects_malformed() {
        let (g, _) = fig2();
        assert!(LoopedSchedule::parse("(2A", &g).is_err());
        assert!(LoopedSchedule::parse("A)", &g).is_err());
        assert!(LoopedSchedule::parse("()", &g).is_err());
        assert!(LoopedSchedule::parse("0A", &g).is_err());
    }

    #[test]
    fn firings_expand_nested_loops() {
        let (g, [a, b, c]) = fig2();
        let s = LoopedSchedule::parse("(2(2B)C)A", &g).unwrap();
        let expanded: Vec<_> = s.firings().collect();
        assert_eq!(expanded, vec![b, b, c, b, b, c, a]);
    }

    #[test]
    fn firing_counts_without_expansion() {
        let (g, _) = fig2();
        let s = LoopedSchedule::parse("(100(100(100A)))", &g).unwrap();
        assert_eq!(s.firing_counts(3)[0], 1_000_000);
    }

    #[test]
    fn appearance_counts() {
        let (g, _) = fig2();
        let s = LoopedSchedule::parse("A B C C B C C", &g).unwrap();
        assert_eq!(s.appearance_counts(3), vec![1, 2, 4]);
        let sas = LoopedSchedule::parse("(2(3B)(5C))(7A)", &g).unwrap();
        assert_eq!(sas.appearance_counts(3), vec![1, 1, 1]);
    }

    #[test]
    fn lexorder_of_paper_example() {
        // lexorder((2(3B)(5C))(7A)) = (B, C, A).
        let (g, [a, b, c]) = fig2();
        let s = LoopedSchedule::parse("(2(3B)(5C))(7A)", &g).unwrap();
        assert_eq!(s.lexical_order(), vec![b, c, a]);
    }

    #[test]
    fn flat_sas_from_order() {
        let (g, [a, b, c]) = fig2();
        let q = RepetitionsVector::compute(&g).unwrap();
        let s = LoopedSchedule::flat_sas(&[a, b, c], &q);
        assert_eq!(s.display(&g).to_string(), "A(2B)(4C)");
        assert_eq!(s.depth(), 0);
    }

    #[test]
    fn sas_tree_roundtrip_and_validation() {
        let (g, [a, b, c]) = fig2();
        let q = RepetitionsVector::compute(&g).unwrap();
        let tree = SasTree::new(SasNode::branch(
            1,
            SasNode::leaf(a, 1),
            SasNode::branch(2, SasNode::leaf(b, 1), SasNode::leaf(c, 2)),
        ));
        tree.validate(&g, &q).unwrap();
        assert_eq!(tree.lexical_order(), vec![a, b, c]);
        assert_eq!(tree.leaf_count(), 3);
        let s = tree.to_looped_schedule();
        assert_eq!(s.firing_counts(3), vec![1, 2, 4]);
    }

    #[test]
    fn sas_tree_validation_catches_bad_counts() {
        let (g, [a, b, c]) = fig2();
        let q = RepetitionsVector::compute(&g).unwrap();
        let tree = SasTree::new(SasNode::branch(
            1,
            SasNode::leaf(a, 2), // should be 1
            SasNode::branch(2, SasNode::leaf(b, 1), SasNode::leaf(c, 2)),
        ));
        assert!(matches!(
            tree.validate(&g, &q),
            Err(SdfError::InvalidSchedule(_))
        ));
    }

    #[test]
    fn sas_tree_validation_catches_duplicates() {
        let (g, [a, b, _]) = fig2();
        let q = RepetitionsVector::compute(&g).unwrap();
        let tree = SasTree::new(SasNode::branch(
            1,
            SasNode::leaf(a, 1),
            SasNode::branch(1, SasNode::leaf(a, 1), SasNode::leaf(b, 2)),
        ));
        assert!(matches!(
            tree.validate(&g, &q),
            Err(SdfError::NotSingleAppearance(_))
        ));
    }

    #[test]
    fn sas_tree_validation_catches_missing_actor() {
        let (g, [a, b, _]) = fig2();
        let q = RepetitionsVector::compute(&g).unwrap();
        let tree = SasTree::new(SasNode::branch(1, SasNode::leaf(a, 1), SasNode::leaf(b, 2)));
        assert!(matches!(
            tree.validate(&g, &q),
            Err(SdfError::NotSingleAppearance(_))
        ));
    }

    #[test]
    fn fact1_factoring_extracts_common_divisors() {
        let (g, _) = fig2();
        // (1 (2B) (4C)) -> (2 B (2C)).
        let s = LoopedSchedule::parse("A (1 (2B)(4C))", &g).unwrap();
        let f = s.fully_factored();
        assert_eq!(f.display(&g).to_string(), "A(2B(2C))");
        assert_eq!(f.firing_counts(3), s.firing_counts(3));
    }

    #[test]
    fn fact1_factoring_is_recursive() {
        let (g, _) = fig2();
        // (1 (4B) (8C)) -> (4 B (2C)).
        let mut g2 = SdfGraph::new("t");
        let a = g2.add_actor("A");
        let b = g2.add_actor("B");
        g2.add_edge(a, b, 2, 1).unwrap();
        let _ = (g, a, b);
        let s = LoopedSchedule::parse("(1 (4A)(8B))", &g2).unwrap();
        let f = s.fully_factored();
        assert_eq!(f.display(&g2).to_string(), "(4A(2B))");
    }

    #[test]
    fn fact1_never_increases_nonshared_bufmem() {
        // Fact 1(b) checked by simulation on Fig. 2 variants.
        let (g, _) = fig2();
        let q = RepetitionsVector::compute(&g).unwrap();
        for text in ["A(1(2B)(4C))", "A(2B(2C))", "(1A(2B(2C)))"] {
            let s = LoopedSchedule::parse(text, &g).unwrap();
            let f = s.fully_factored();
            let before = crate::simulate::validate_schedule(&g, &s, &q)
                .unwrap()
                .bufmem();
            let after = crate::simulate::validate_schedule(&g, &f, &q)
                .unwrap()
                .bufmem();
            assert!(after <= before, "{text}: {after} > {before}");
        }
    }

    #[test]
    fn factoring_leaves_flat_top_level_alone() {
        let (g, _) = fig2();
        let s = LoopedSchedule::parse("A(2B)(4C)", &g).unwrap();
        let f = s.fully_factored();
        assert_eq!(f.display(&g).to_string(), "A(2B)(4C)");
    }

    #[test]
    fn display_parse_round_trip_multichar_names() {
        let mut g = SdfGraph::new("rt");
        let src = g.add_actor("cdSrc");
        let s1 = g.add_actor("stage1");
        let s2 = g.add_actor("stage2");
        g.add_edge(src, s1, 1, 1).unwrap();
        g.add_edge(s1, s2, 2, 3).unwrap();
        let s = LoopedSchedule::new(vec![ScheduleNode::loop_of(
            3,
            vec![
                ScheduleNode::fire(src),
                ScheduleNode::fire(s1),
                ScheduleNode::fire_n(s2, 2),
            ],
        )]);
        let text = s.display(&g).to_string();
        assert_eq!(text, "(3cdSrc stage1(2stage2))");
        let back = LoopedSchedule::parse(&text, &g).unwrap();
        assert_eq!(back.firing_counts(3), s.firing_counts(3));
        assert_eq!(
            back.firings().collect::<Vec<_>>(),
            s.firings().collect::<Vec<_>>()
        );
    }

    #[test]
    fn display_satrec_style_schedule() {
        let mut g = SdfGraph::new("x");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        g.add_edge(a, b, 1, 4).unwrap();
        let s = LoopedSchedule::new(vec![ScheduleNode::loop_of(
            24,
            vec![ScheduleNode::loop_of(
                11,
                vec![ScheduleNode::fire_n(a, 4), ScheduleNode::fire(b)],
            )],
        )]);
        assert_eq!(s.display(&g).to_string(), "(24(11(4A)B))");
    }
}
