//! Core model for synchronous dataflow (SDF) graphs and looped schedules.
//!
//! This crate is the foundation of the `sdfmem` workspace, a reproduction of
//! *Murthy & Bhattacharyya, "Shared Memory Implementations of Synchronous
//! Dataflow Specifications Using Lifetime Analysis Techniques" (DATE 2000)*.
//! It provides:
//!
//! * [`SdfGraph`] — the SDF graph model (actors, rated edges, delays) with
//!   the structural queries scheduling needs;
//! * [`RepetitionsVector`] — exact solutions of the balance equations;
//! * [`LoopedSchedule`] and [`SasTree`] — looped schedules, single
//!   appearance schedules and binary R-schedule trees, with a parser for the
//!   paper's notation;
//! * [`simulate`](crate::simulate::simulate) — token-level execution,
//!   giving ground-truth `max_tokens` / `bufmem` values and schedule
//!   validation;
//! * [`bounds`] — the BMLB and all-schedules buffer lower bounds.
//!
//! # Examples
//!
//! The full round trip on the paper's Fig. 2 example:
//!
//! ```
//! use sdf_core::{SdfGraph, RepetitionsVector, LoopedSchedule};
//! use sdf_core::simulate::validate_schedule;
//!
//! # fn main() -> Result<(), sdf_core::SdfError> {
//! let mut g = SdfGraph::new("fig2");
//! let a = g.add_actor("A");
//! let b = g.add_actor("B");
//! let c = g.add_actor("C");
//! g.add_edge(a, b, 20, 10)?;
//! g.add_edge(b, c, 20, 10)?;
//!
//! let q = RepetitionsVector::compute(&g)?;
//! assert_eq!(q.as_slice(), &[1, 2, 4]);
//!
//! // The buffer-optimal SAS from the paper.
//! let s = LoopedSchedule::parse("A(2B(2C))", &g)?;
//! let report = validate_schedule(&g, &s, &q)?;
//! assert_eq!(report.bufmem(), 40);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod bounds;
pub mod error;
pub mod graph;
pub mod hof;
pub mod io;
pub mod math;
pub mod mode;
pub mod rational;
pub mod repetitions;
pub mod schedule;
pub mod simulate;
pub mod timing;
pub mod transform;

pub use error::SdfError;
pub use graph::{ActorId, Edge, EdgeId, SdfGraph};
pub use mode::{Mode, ModeGraph, PersistentEdge};
pub use rational::Rational;
pub use repetitions::{is_consistent, RepetitionsVector};
pub use schedule::{LoopedSchedule, SasNode, SasTree, ScheduleNode};
