//! Token-level execution of looped schedules.
//!
//! The simulator fires a schedule leaf-by-leaf against an [`SdfGraph`],
//! tracking the token count on every edge.  It is the ground truth the rest
//! of the workspace is checked against: `max_tokens(e, S)` and `bufmem(S)`
//! (Eq. 1) fall out of it directly, and it verifies the defining properties
//! of a *valid schedule* — no deadlock, every actor fired `q(a)` times, and
//! every edge returned to its initial token count.

use crate::error::SdfError;
use crate::graph::{ActorId, EdgeId, SdfGraph};
use crate::repetitions::RepetitionsVector;
use crate::schedule::LoopedSchedule;

/// The result of simulating a schedule to completion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimulationReport {
    /// `max_tokens(e, S)` per edge: the high-water token count observed.
    max_tokens: Vec<u64>,
    /// Firings of each actor over the whole run.
    firings: Vec<u64>,
}

impl SimulationReport {
    /// The maximum number of tokens simultaneously queued on edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range for the simulated graph.
    pub fn max_tokens(&self, e: EdgeId) -> u64 {
        self.max_tokens[e.index()]
    }

    /// All per-edge maxima, indexed by edge index.
    pub fn max_tokens_slice(&self) -> &[u64] {
        &self.max_tokens
    }

    /// The number of times actor `a` fired.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range for the simulated graph.
    pub fn firings(&self, a: ActorId) -> u64 {
        self.firings[a.index()]
    }

    /// `bufmem(S)` under the non-shared model (Eq. 1): the sum over edges of
    /// `max_tokens(e, S)`.
    pub fn bufmem(&self) -> u64 {
        self.max_tokens.iter().sum()
    }
}

/// Fires `schedule` once against `graph`, starting from the initial delays.
///
/// Unlike [`validate_schedule`], this does not require the schedule to be
/// valid — it only requires that every firing is enabled (enough input
/// tokens). Use it to measure `max_tokens` of schedule prefixes or non-period
/// schedules.
///
/// # Errors
///
/// Returns [`SdfError::Deadlock`] if some firing lacks input tokens.
pub fn simulate(graph: &SdfGraph, schedule: &LoopedSchedule) -> Result<SimulationReport, SdfError> {
    let mut tokens: Vec<u64> = graph.edges().map(|(_, e)| e.delay).collect();
    let mut max_tokens = tokens.clone();
    let mut firings = vec![0u64; graph.actor_count()];
    for actor in schedule.firings() {
        fire(graph, actor, &mut tokens, &mut max_tokens)?;
        firings[actor.index()] += 1;
    }
    Ok(SimulationReport {
        max_tokens,
        firings,
    })
}

fn fire(
    graph: &SdfGraph,
    actor: ActorId,
    tokens: &mut [u64],
    max_tokens: &mut [u64],
) -> Result<(), SdfError> {
    for &e in graph.in_edges(actor) {
        let need = graph.edge(e).cons;
        if tokens[e.index()] < need {
            return Err(SdfError::Deadlock { actor });
        }
    }
    for &e in graph.in_edges(actor) {
        tokens[e.index()] -= graph.edge(e).cons;
    }
    for &e in graph.out_edges(actor) {
        let idx = e.index();
        tokens[idx] += graph.edge(e).prod;
        if tokens[idx] > max_tokens[idx] {
            max_tokens[idx] = tokens[idx];
        }
    }
    Ok(())
}

/// Simulates `schedule` and additionally checks that it is a *valid
/// schedule* for `graph`: every actor fires exactly `q(a)` times and every
/// edge returns to its initial token count.
///
/// # Errors
///
/// * [`SdfError::Deadlock`] if a firing is not enabled.
/// * [`SdfError::InvalidSchedule`] if firing counts disagree with the
///   repetitions vector or tokens are displaced at the end.
pub fn validate_schedule(
    graph: &SdfGraph,
    schedule: &LoopedSchedule,
    q: &RepetitionsVector,
) -> Result<SimulationReport, SdfError> {
    let mut tokens: Vec<u64> = graph.edges().map(|(_, e)| e.delay).collect();
    let mut max_tokens = tokens.clone();
    let mut firings = vec![0u64; graph.actor_count()];
    for actor in schedule.firings() {
        fire(graph, actor, &mut tokens, &mut max_tokens)?;
        firings[actor.index()] += 1;
    }
    for a in graph.actors() {
        if firings[a.index()] != q.get(a) {
            return Err(SdfError::InvalidSchedule(format!(
                "actor {} fired {} times, expected {}",
                graph.actor_name(a),
                firings[a.index()],
                q.get(a)
            )));
        }
    }
    for (id, e) in graph.edges() {
        if tokens[id.index()] != e.delay {
            return Err(SdfError::InvalidSchedule(format!(
                "edge {id} ends with {} tokens, started with {}",
                tokens[id.index()],
                e.delay
            )));
        }
    }
    Ok(SimulationReport {
        max_tokens,
        firings,
    })
}

/// Computes `bufmem(S)` (Eq. 1) for a schedule known to be executable.
///
/// # Errors
///
/// Returns [`SdfError::Deadlock`] if the schedule cannot execute.
pub fn bufmem(graph: &SdfGraph, schedule: &LoopedSchedule) -> Result<u64, SdfError> {
    Ok(simulate(graph, schedule)?.bufmem())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::SdfGraph;

    /// Fig. 1 graph: A --2,1--> B --1,3--> C with a unit delay on (A,B).
    fn fig1() -> (SdfGraph, RepetitionsVector) {
        let mut g = SdfGraph::new("fig1");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        let c = g.add_actor("C");
        g.add_edge(a, b, 2, 1).unwrap();
        g.add_edge(b, c, 1, 3).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        let _ = (a, b, c);
        (g, q)
    }

    #[test]
    fn paper_section4_max_tokens_example() {
        // S1 = (3A)(6B)(2C): max_tokens(A,B) = 6... the paper uses a unit
        // delay on (A,B) giving 7; we test the delayless statement first.
        let (g, q) = fig1();
        let s1 = LoopedSchedule::parse("(3A)(6B)(2C)", &g).unwrap();
        let r1 = validate_schedule(&g, &s1, &q).unwrap();
        assert_eq!(r1.max_tokens(EdgeId::from_index(0)), 6);
        assert_eq!(r1.max_tokens(EdgeId::from_index(1)), 6);
        let s2 = LoopedSchedule::parse("(3A(2B))(2C)", &g).unwrap();
        let r2 = validate_schedule(&g, &s2, &q).unwrap();
        assert_eq!(r2.max_tokens(EdgeId::from_index(0)), 2);
        assert_eq!(r2.max_tokens(EdgeId::from_index(1)), 6);
    }

    #[test]
    fn paper_section4_with_delay() {
        // With del(A,B) = 1 the paper reports max_tokens 7 and 3 and
        // bufmem(S1) = 13, bufmem(S2) = 9.
        let mut g = SdfGraph::new("fig1d");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        let c = g.add_actor("C");
        g.add_edge_with_delay(a, b, 2, 1, 1).unwrap();
        g.add_edge(b, c, 1, 3).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        let _ = (a, b, c);
        let s1 = LoopedSchedule::parse("(3A)(6B)(2C)", &g).unwrap();
        let r1 = validate_schedule(&g, &s1, &q).unwrap();
        assert_eq!(r1.max_tokens(EdgeId::from_index(0)), 7);
        assert_eq!(r1.bufmem(), 13);
        let s2 = LoopedSchedule::parse("(3A(2B))(2C)", &g).unwrap();
        let r2 = validate_schedule(&g, &s2, &q).unwrap();
        assert_eq!(r2.max_tokens(EdgeId::from_index(0)), 3);
        assert_eq!(r2.bufmem(), 9);
    }

    #[test]
    fn fig2_buffering_of_four_schedules() {
        // Fig. 2(b): buffering requirements 50, 40, 60, 50.
        let mut g = SdfGraph::new("fig2");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        let c = g.add_actor("C");
        g.add_edge(a, b, 20, 10).unwrap();
        g.add_edge(b, c, 20, 10).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        let _ = (a, b, c);
        let cases = [
            ("A B C B C C C", 50),
            ("A (2 B (2C))", 40),
            ("A (2B) (4C)", 60),
            ("A (2 B C) (2C)", 50),
        ];
        for (text, expect) in cases {
            let s = LoopedSchedule::parse(text, &g).unwrap();
            let r = validate_schedule(&g, &s, &q).unwrap();
            assert_eq!(r.bufmem(), expect, "schedule {text}");
        }
    }

    #[test]
    fn deadlock_detected() {
        let (g, _) = fig1();
        // C before B: no tokens on (B,C).
        let s = LoopedSchedule::parse("C (3A) (6B) C", &g).unwrap();
        assert!(matches!(simulate(&g, &s), Err(SdfError::Deadlock { .. })));
    }

    #[test]
    fn wrong_firing_count_rejected() {
        let (g, q) = fig1();
        let s = LoopedSchedule::parse("(3A)(6B)C", &g).unwrap();
        assert!(matches!(
            validate_schedule(&g, &s, &q),
            Err(SdfError::InvalidSchedule(_))
        ));
    }

    #[test]
    fn displaced_tokens_rejected() {
        // Two periods of A but one of B leaves tokens on the edge.
        let mut g = SdfGraph::new("t");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        g.add_edge(a, b, 1, 1).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        let _ = (a, b);
        let s = LoopedSchedule::parse("A A B", &g).unwrap();
        assert!(matches!(
            validate_schedule(&g, &s, &q),
            Err(SdfError::InvalidSchedule(_))
        ));
    }

    #[test]
    fn delay_enables_sink_first_firing() {
        let mut g = SdfGraph::new("t");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        g.add_edge_with_delay(a, b, 1, 1, 1).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        let _ = (a, b);
        // B first works because of the initial token.
        let s = LoopedSchedule::parse("B A", &g).unwrap();
        let r = validate_schedule(&g, &s, &q).unwrap();
        assert_eq!(r.max_tokens(EdgeId::from_index(0)), 1);
    }

    #[test]
    fn bufmem_helper() {
        let (g, _) = fig1();
        let s = LoopedSchedule::parse("(3A)(6B)(2C)", &g).unwrap();
        assert_eq!(bufmem(&g, &s).unwrap(), 12);
    }

    #[test]
    fn multi_edge_tokens_tracked_separately() {
        let mut g = SdfGraph::new("multi");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        let e1 = g.add_edge(a, b, 1, 1).unwrap();
        let e2 = g.add_edge(a, b, 2, 2).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        let _ = (a, b);
        let s = LoopedSchedule::parse("A B", &g).unwrap();
        let r = validate_schedule(&g, &s, &q).unwrap();
        assert_eq!(r.max_tokens(e1), 1);
        assert_eq!(r.max_tokens(e2), 2);
    }
}
