//! Timed schedule execution and graph input buffering (§11.1.3).
//!
//! The abstract schedule clock of the lifetime analysis counts leaf
//! invocations; sizing the buffer between a real-time input stream and the
//! graph's source actor needs *wall-clock* time instead.  Given per-actor
//! execution times, this module computes schedule makespans and the §11.1.3
//! input-buffer requirement: samples arrive at a constant rate (one sample
//! consumed per source firing, `q(src)` samples per period), and the buffer
//! must absorb the worst-case backlog between arrivals and the schedule's
//! bursty consumption.  Nested schedules spread the source's firings out
//! and need far smaller input buffers than flat ones — the paper's CD-DAT
//! example needs ~11 tokens nested versus 65 flat.

use crate::error::SdfError;
use crate::graph::{ActorId, SdfGraph};
use crate::repetitions::RepetitionsVector;
use crate::schedule::LoopedSchedule;

/// Per-actor execution times in arbitrary wall-clock units.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExecutionTimes {
    times: Vec<u64>,
}

impl ExecutionTimes {
    /// Creates execution times indexed by actor index.
    ///
    /// # Panics
    ///
    /// Panics if `times.len()` differs from the graph's actor count or any
    /// time is zero (zero-time firings break the arrival model).
    pub fn new(graph: &SdfGraph, times: Vec<u64>) -> Self {
        assert_eq!(times.len(), graph.actor_count(), "one time per actor");
        assert!(
            times.iter().all(|&t| t > 0),
            "execution times must be positive"
        );
        ExecutionTimes { times }
    }

    /// All actors take the same time `t`.
    pub fn uniform(graph: &SdfGraph, t: u64) -> Self {
        Self::new(graph, vec![t; graph.actor_count()])
    }

    /// The execution time of one firing of `a`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    pub fn get(&self, a: ActorId) -> u64 {
        self.times[a.index()]
    }
}

/// Total wall-clock time of one pass of `schedule`.
///
/// # Errors
///
/// Returns [`SdfError::InvalidSchedule`] if the schedule fires an actor
/// outside the graph.
pub fn schedule_makespan(
    graph: &SdfGraph,
    schedule: &LoopedSchedule,
    exec: &ExecutionTimes,
) -> Result<u64, SdfError> {
    let mut total = 0u64;
    for a in schedule.firings() {
        if a.index() >= graph.actor_count() {
            return Err(SdfError::UnknownActor(a));
        }
        total += exec.get(a);
    }
    Ok(total)
}

/// The input-buffer requirement at `source` for a periodic external
/// stream.
///
/// One sample is consumed per `source` firing; `q(source)` samples arrive
/// uniformly over the schedule period.  The arrival phase is chosen as
/// late as the schedule allows (samples arrive just in time for the
/// tightest firing), and the result is the worst-case number of samples
/// waiting at any firing instant — the size the interface FIFO must have.
///
/// # Errors
///
/// * [`SdfError::InvalidSchedule`] if `schedule` never fires `source` or
///   fires it a number of times other than `q(source)`.
pub fn source_buffer_requirement(
    graph: &SdfGraph,
    q: &RepetitionsVector,
    schedule: &LoopedSchedule,
    exec: &ExecutionTimes,
    source: ActorId,
) -> Result<u64, SdfError> {
    let period = schedule_makespan(graph, schedule, exec)?;
    let samples = q.get(source);
    if samples == 0 {
        return Err(SdfError::UnknownActor(source));
    }

    // Start times of the source's firings.
    let mut t = 0u64;
    let mut starts = Vec::with_capacity(samples as usize);
    for a in schedule.firings() {
        if a == source {
            starts.push(t);
        }
        t += exec.get(a);
    }
    if starts.len() as u64 != samples {
        return Err(SdfError::InvalidSchedule(format!(
            "schedule fires the source {} times, repetitions vector requires {}",
            starts.len(),
            samples
        )));
    }

    // Sample i arrives at (i * period + phase) / samples; choose the
    // latest feasible phase: phase = min_i (start_i * samples - i * period)
    // (may be negative). All arithmetic scaled by `samples` in i128 to
    // stay exact.
    let phase = starts
        .iter()
        .enumerate()
        .map(|(i, &s)| s as i128 * samples as i128 - i as i128 * period as i128)
        .min()
        .expect("source fires at least once");

    // Backlog just before firing i: arrivals in [0, start_i] minus the i
    // samples already consumed. Sample j arrived iff
    // j * period + phase <= start_i * samples.
    let mut worst = 0u64;
    for (i, &s) in starts.iter().enumerate() {
        let avail = s as i128 * samples as i128 - phase; // >= 0 by phase choice
        let arrivals = (avail / period as i128) as u64 + 1; // j = 0 counts
        let arrivals = arrivals.min(samples);
        worst = worst.max(arrivals - i as u64);
    }
    Ok(worst)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (SdfGraph, RepetitionsVector) {
        let mut g = SdfGraph::new("pair");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        g.add_edge(a, b, 1, 4).unwrap(); // q = (4, 1)
        let q = RepetitionsVector::compute(&g).unwrap();
        (g, q)
    }

    #[test]
    fn makespan_sums_exec_times() {
        let (g, _) = pair();
        let s = LoopedSchedule::parse("(4A)B", &g).unwrap();
        let exec = ExecutionTimes::new(&g, vec![2, 10]);
        assert_eq!(schedule_makespan(&g, &s, &exec).unwrap(), 4 * 2 + 10);
    }

    #[test]
    fn evenly_spread_source_needs_one_slot() {
        // Source fires at a perfectly regular cadence: buffer of 1.
        let mut g = SdfGraph::new("t");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        g.add_edge(a, b, 1, 1).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        let s = LoopedSchedule::parse("A B", &g).unwrap();
        let exec = ExecutionTimes::uniform(&g, 5);
        assert_eq!(source_buffer_requirement(&g, &q, &s, &exec, a).unwrap(), 1);
    }

    #[test]
    fn bursty_flat_schedule_needs_full_period() {
        // (4A) B: all four source firings burst at the start; with B long,
        // samples for the next period pile up... here within one period the
        // burst consumes immediately, so requirement stays small; make B
        // long and compare against an interleaved schedule.
        let (g, q) = pair();
        let a = g.actor_by_name("A").unwrap();
        let exec = ExecutionTimes::new(&g, vec![1, 100]);
        let flat = LoopedSchedule::parse("(4A)B", &g).unwrap();
        let flat_req = source_buffer_requirement(&g, &q, &flat, &exec, a).unwrap();
        // The burst at period start after a long B: arrivals accumulate
        // during B of the previous period — captured by the phase choice:
        // firing i=3 at t=3 vs arrival cadence 104/4=26 apart.
        assert!(flat_req >= 3, "flat requirement {flat_req}");
    }

    #[test]
    fn nested_beats_flat_on_cd_dat_style_chain() {
        // The §11.1.3 claim: nesting spreads source firings, shrinking the
        // interface buffer.
        let mut g = SdfGraph::new("cd");
        let ids: Vec<_> = ["A", "B", "C", "D", "E", "F"]
            .iter()
            .map(|n| g.add_actor(*n))
            .collect();
        for (i, &(p, c)) in [(1, 1), (2, 3), (2, 7), (8, 7), (5, 1)].iter().enumerate() {
            g.add_edge(ids[i], ids[i + 1], p, c).unwrap();
        }
        let q = RepetitionsVector::compute(&g).unwrap();
        let exec = ExecutionTimes::uniform(&g, 3);
        let flat = LoopedSchedule::flat_sas(&ids, &q);
        let flat_req = source_buffer_requirement(&g, &q, &flat, &exec, ids[0]).unwrap();
        // A deeply interleaved (non-SAS) schedule: fire on demand.
        let nested = LoopedSchedule::parse("(7(7(3A)(3B)(2C))(4D))(32E)(160F)", &g);
        // If that particular nesting is invalid fall back to a 2-way split.
        let nested = match nested {
            Ok(s) if crate::simulate::validate_schedule(&g, &s, &q).is_ok() => s,
            _ => LoopedSchedule::parse("(49(3A)(3B)(2C))(28D)(32E)(160F)", &g).unwrap(),
        };
        crate::simulate::validate_schedule(&g, &nested, &q).unwrap();
        let nested_req = source_buffer_requirement(&g, &q, &nested, &exec, ids[0]).unwrap();
        assert!(
            nested_req < flat_req,
            "nested {nested_req} should beat flat {flat_req}"
        );
    }

    #[test]
    fn wrong_source_count_rejected() {
        let (g, q) = pair();
        let a = g.actor_by_name("A").unwrap();
        let s = LoopedSchedule::parse("(2A)B", &g).unwrap();
        let exec = ExecutionTimes::uniform(&g, 1);
        assert!(source_buffer_requirement(&g, &q, &s, &exec, a).is_err());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_exec_time_rejected() {
        let (g, _) = pair();
        let _ = ExecutionTimes::new(&g, vec![0, 1]);
    }
}
