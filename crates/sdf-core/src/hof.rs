//! Higher-order graph constructors (§12's closing discussion).
//!
//! The paper points to Lee's higher-order functions — graphical blocks
//! that expand into regular structures — as the right way to author
//! large, fine-grained specifications (an FIR filter as a `Chain` of
//! multiply-accumulate cells) while preserving the regularity a scheduler
//! can exploit.  This module provides the two combinators that cover the
//! paper's examples:
//!
//! * [`chain`] — replicate a template subgraph `n` times, wiring each
//!   instance's output port to the next instance's chain-input port (the
//!   paper's `Chain` actor);
//! * [`fan`] — replicate a template `n` times in parallel, broadcasting
//!   one upstream actor to every instance.
//!
//! Together with [`crate::schedule`]'s loop machinery these reproduce the
//! §12 FIR example end to end (see `loopify` in `sdf-sched` for the
//! regularity extraction that recovers the loops).

use crate::error::SdfError;
use crate::graph::{ActorId, SdfGraph};

/// A reusable subgraph template: local actors, local edges and the ports
/// the combinators wire up.
///
/// Port indices refer to `actors`.
#[derive(Clone, Debug)]
pub struct Template {
    /// Actor name stems; instance `i` of stem `s` is named `s_i`.
    pub actors: Vec<String>,
    /// Internal edges as `(from, to, prod, cons, delay)` over actor
    /// indices.
    pub edges: Vec<(usize, usize, u64, u64, u64)>,
    /// The actor that receives the chain input, and its consumption rate.
    pub input: (usize, u64),
    /// The actor that drives the chain output, and its production rate.
    pub output: (usize, u64),
}

impl Template {
    /// A single-actor pass-through template (consume 1, produce 1).
    pub fn unit(name: impl Into<String>) -> Self {
        Template {
            actors: vec![name.into()],
            edges: Vec::new(),
            input: (0, 1),
            output: (0, 1),
        }
    }

    fn instantiate(&self, graph: &mut SdfGraph, index: usize) -> Result<Vec<ActorId>, SdfError> {
        let ids: Vec<ActorId> = self
            .actors
            .iter()
            .map(|stem| graph.add_actor(format!("{stem}_{index}")))
            .collect();
        for &(f, t, p, c, d) in &self.edges {
            graph.add_edge_with_delay(ids[f], ids[t], p, c, d)?;
        }
        Ok(ids)
    }
}

/// Expands `template` into `count` chained instances inside `graph`,
/// connecting `source` to the first instance and returning the last
/// instance's output actor.
///
/// Instance `i`'s output feeds instance `i+1`'s input with unit rates
/// between the template's declared port rates.
///
/// # Errors
///
/// Propagates edge-construction errors (zero rates in the template).
///
/// # Examples
///
/// The paper's fine-grained FIR as a chain of MAC cells:
///
/// ```
/// use sdf_core::{SdfGraph, RepetitionsVector};
/// use sdf_core::hof::{chain, Template};
///
/// # fn main() -> Result<(), sdf_core::SdfError> {
/// let mut g = SdfGraph::new("fir8");
/// let src = g.add_actor("in");
/// let mac = Template {
///     actors: vec!["gain".into(), "add".into()],
///     edges: vec![(0, 1, 1, 1, 0)],
///     input: (0, 1),
///     output: (1, 1),
/// };
/// let out = chain(&mut g, src, 1, &mac, 8)?;
/// let sink = g.add_actor("out");
/// g.add_edge(out, sink, 1, 1)?;
/// assert_eq!(g.actor_count(), 2 + 8 * 2);
/// assert!(RepetitionsVector::compute(&g).is_ok());
/// # Ok(())
/// # }
/// ```
pub fn chain(
    graph: &mut SdfGraph,
    source: ActorId,
    source_rate: u64,
    template: &Template,
    count: usize,
) -> Result<ActorId, SdfError> {
    let mut upstream = (source, source_rate);
    for i in 0..count {
        let ids = template.instantiate(graph, i)?;
        let (in_idx, in_rate) = template.input;
        graph.add_edge(upstream.0, ids[in_idx], upstream.1, in_rate)?;
        let (out_idx, out_rate) = template.output;
        upstream = (ids[out_idx], out_rate);
    }
    Ok(upstream.0)
}

/// Expands `template` into `count` parallel instances, each fed from
/// `source`; returns every instance's output actor (e.g. for a collector
/// stage).
///
/// # Errors
///
/// Propagates edge-construction errors.
pub fn fan(
    graph: &mut SdfGraph,
    source: ActorId,
    source_rate: u64,
    template: &Template,
    count: usize,
) -> Result<Vec<ActorId>, SdfError> {
    let mut outputs = Vec::with_capacity(count);
    for i in 0..count {
        let ids = template.instantiate(graph, i)?;
        let (in_idx, in_rate) = template.input;
        graph.add_edge(source, ids[in_idx], source_rate, in_rate)?;
        outputs.push(ids[template.output.0]);
    }
    Ok(outputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repetitions::RepetitionsVector;

    fn mac() -> Template {
        Template {
            actors: vec!["gain".into(), "add".into()],
            edges: vec![(0, 1, 1, 1, 0)],
            input: (0, 1),
            output: (1, 1),
        }
    }

    #[test]
    fn chain_builds_fir_shape() {
        let mut g = SdfGraph::new("fir");
        let src = g.add_actor("in");
        let out = chain(&mut g, src, 1, &mac(), 4).unwrap();
        assert_eq!(g.actor_count(), 1 + 8);
        assert_eq!(g.actor_name(out), "add_3");
        assert!(g.is_acyclic());
        assert!(g.is_connected());
        let q = RepetitionsVector::compute(&g).unwrap();
        assert!(q.as_slice().iter().all(|&x| x == 1));
    }

    #[test]
    fn chain_of_zero_instances_returns_source() {
        let mut g = SdfGraph::new("t");
        let src = g.add_actor("in");
        let out = chain(&mut g, src, 1, &mac(), 0).unwrap();
        assert_eq!(out, src);
        assert_eq!(g.actor_count(), 1);
    }

    #[test]
    fn unit_template_chain_is_a_chain_graph() {
        let mut g = SdfGraph::new("t");
        let src = g.add_actor("in");
        chain(&mut g, src, 1, &Template::unit("stage"), 5).unwrap();
        assert!(g.is_chain());
        assert_eq!(g.actor_count(), 6);
    }

    #[test]
    fn fan_broadcasts() {
        let mut g = SdfGraph::new("bank");
        let src = g.add_actor("in");
        let outs = fan(&mut g, src, 1, &Template::unit("chan"), 3).unwrap();
        assert_eq!(outs.len(), 3);
        assert_eq!(g.out_edges(src).len(), 3);
        assert!(RepetitionsVector::compute(&g).is_ok());
    }

    #[test]
    fn multirate_template_rates_respected() {
        // Each stage decimates 2:1.
        let mut g = SdfGraph::new("dec");
        let src = g.add_actor("in");
        let dec = Template {
            actors: vec!["halve".into()],
            edges: vec![],
            input: (0, 2),
            output: (0, 1),
        };
        chain(&mut g, src, 1, &dec, 3).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        let first = g.actor_by_name("halve_0").unwrap();
        let last = g.actor_by_name("halve_2").unwrap();
        assert_eq!(q.get(first), 4 * q.get(last));
    }

    #[test]
    fn template_zero_rate_rejected() {
        let mut g = SdfGraph::new("bad");
        let src = g.add_actor("in");
        let bad = Template {
            actors: vec!["x".into(), "y".into()],
            edges: vec![(0, 1, 0, 1, 0)],
            input: (0, 1),
            output: (1, 1),
        };
        assert!(chain(&mut g, src, 1, &bad, 1).is_err());
    }
}
