//! Multi-mode (scenario) SDF graphs: named modes, each a complete SDF
//! subgraph with its own repetitions vector, plus declared *persistent*
//! edges whose buffers survive mode transitions.
//!
//! A mode graph models systems that switch behaviour at runtime — a
//! modem alternating between acquisition and tracking, a codec between
//! I- and P-frames (Jung/Oh/Ha, PAPERS.md).  Each mode is an ordinary
//! SDF graph, scheduled and allocated by the existing single-graph
//! pipeline; the modes then share **one** memory pool.  The contract:
//!
//! * a **persistent** edge is declared by producer/consumer actor name
//!   and must appear in *every* mode with identical rates and the same
//!   initial delay (≥ 1 — its delay tokens are the state carried across
//!   a transition), so its buffer is well-defined in every mode and
//!   keeps its pool offset across every switch;
//! * all other (**mode-local**) buffers are dead at a transition: a mode
//!   re-entered later re-initialises its local delays from scratch.
//!
//! # Text format (`.sdfm`)
//!
//! Line-oriented, layered on the single-graph format of [`crate::io`]:
//!
//! ```text
//! # comment
//! modegraph modem
//! persistent sync demod
//! mode acquisition
//! actor src
//! edge src sync 2 1
//! edge sync demod 1 2 delay 2
//! mode tracking
//! edge src demod 1 1
//! edge sync demod 1 2 delay 2
//! ```
//!
//! `modegraph NAME` opens the document, `mode NAME` opens a mode
//! section, `persistent SRC SNK` (anywhere) declares a persistent edge,
//! and `actor`/`edge` lines inside a mode section follow the
//! single-graph grammar exactly.

use std::fmt::Write as _;

use crate::error::SdfError;
use crate::graph::{EdgeId, SdfGraph};
use crate::io::{parse_graph, to_text};

/// One mode of a [`ModeGraph`]: a name plus a complete SDF subgraph.
#[derive(Clone, Debug)]
pub struct Mode {
    /// The mode's name (also the name of `graph`).
    pub name: String,
    /// The mode's SDF graph.
    pub graph: SdfGraph,
}

/// A declared cross-mode persistent edge, identified by actor names.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PersistentEdge {
    /// Producer actor name.
    pub src: String,
    /// Consumer actor name.
    pub snk: String,
}

/// A multi-mode SDF specification: an ordered set of modes plus the
/// persistent edges shared between them.
///
/// Construct with [`ModeGraph::new`] + [`ModeGraph::add_mode`] +
/// [`ModeGraph::add_persistent`], or parse the `.sdfm` text format with
/// [`parse_mode_graph`]; [`ModeGraph::validate`] checks the persistence
/// contract.
#[derive(Clone, Debug)]
pub struct ModeGraph {
    name: String,
    modes: Vec<Mode>,
    persistent: Vec<PersistentEdge>,
}

impl ModeGraph {
    /// Creates an empty mode graph.
    pub fn new(name: impl Into<String>) -> Self {
        ModeGraph {
            name: name.into(),
            modes: Vec::new(),
            persistent: Vec::new(),
        }
    }

    /// The mode graph's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a mode; `graph`'s own name becomes the mode name.
    pub fn add_mode(&mut self, graph: SdfGraph) {
        self.modes.push(Mode {
            name: graph.name().to_string(),
            graph,
        });
    }

    /// Declares the edge `src -> snk` persistent across transitions.
    pub fn add_persistent(&mut self, src: impl Into<String>, snk: impl Into<String>) {
        self.persistent.push(PersistentEdge {
            src: src.into(),
            snk: snk.into(),
        });
    }

    /// The modes, in declaration order.
    pub fn modes(&self) -> &[Mode] {
        &self.modes
    }

    /// The declared persistent edges, in declaration order.
    pub fn persistent(&self) -> &[PersistentEdge] {
        &self.persistent
    }

    /// Looks a mode up by name.
    pub fn mode_by_name(&self, name: &str) -> Option<&Mode> {
        self.modes.iter().find(|m| m.name == name)
    }

    /// Resolves persistent edge `p` inside mode `m`.
    ///
    /// # Errors
    ///
    /// [`SdfError::InvalidSchedule`] when the edge is missing from the
    /// mode — [`ModeGraph::validate`] rules this out up front.
    pub fn resolve_persistent(&self, m: usize, p: usize) -> Result<EdgeId, SdfError> {
        let pe = &self.persistent[p];
        let mode = &self.modes[m];
        find_edge(&mode.graph, &pe.src, &pe.snk).ok_or_else(|| {
            SdfError::InvalidSchedule(format!(
                "persistent edge {} -> {} is missing from mode {:?}",
                pe.src, pe.snk, mode.name
            ))
        })
    }

    /// Checks the multi-mode contract:
    ///
    /// * at least two modes, with unique names;
    /// * persistent declarations unique, each present in **every** mode
    ///   with identical `prod`/`cons` rates and identical `delay ≥ 1`
    ///   (the delay tokens are the carried state).
    ///
    /// # Errors
    ///
    /// [`SdfError::InvalidSchedule`] describing the first violation.
    pub fn validate(&self) -> Result<(), SdfError> {
        let bad = |msg: String| Err(SdfError::InvalidSchedule(msg));
        if self.modes.len() < 2 {
            return bad(format!(
                "mode graph {:?} declares {} mode(s); multi-mode synthesis needs at least 2",
                self.name,
                self.modes.len()
            ));
        }
        for (i, m) in self.modes.iter().enumerate() {
            if self.modes[..i].iter().any(|o| o.name == m.name) {
                return bad(format!("duplicate mode name {:?}", m.name));
            }
        }
        for (p, pe) in self.persistent.iter().enumerate() {
            if self.persistent[..p].iter().any(|o| o == pe) {
                return bad(format!(
                    "duplicate persistent declaration {} -> {}",
                    pe.src, pe.snk
                ));
            }
            let mut seen: Option<(u64, u64, u64)> = None;
            for mode in &self.modes {
                let Some(id) = find_edge(&mode.graph, &pe.src, &pe.snk) else {
                    return bad(format!(
                        "persistent edge {} -> {} is missing from mode {:?} \
                         (persistent edges must appear in every mode)",
                        pe.src, pe.snk, mode.name
                    ));
                };
                let e = mode.graph.edge(id);
                let sig = (e.prod, e.cons, e.delay);
                match seen {
                    None => {
                        if e.delay == 0 {
                            return bad(format!(
                                "persistent edge {} -> {} has no initial delay; its delay \
                                 tokens are the state carried across transitions (need ≥ 1)",
                                pe.src, pe.snk
                            ));
                        }
                        seen = Some(sig);
                    }
                    Some(s) if s != sig => {
                        return bad(format!(
                            "persistent edge {} -> {} changes shape in mode {:?}: \
                             ({}, {}, delay {}) vs ({}, {}, delay {})",
                            pe.src, pe.snk, mode.name, sig.0, sig.1, sig.2, s.0, s.1, s.2
                        ));
                    }
                    Some(_) => {}
                }
            }
        }
        Ok(())
    }
}

/// Finds the (single) edge `src -> snk` by actor name.
fn find_edge(g: &SdfGraph, src: &str, snk: &str) -> Option<EdgeId> {
    let s = g.actor_by_name(src)?;
    let t = g.actor_by_name(snk)?;
    g.edges()
        .find(|(_, e)| e.src == s && e.snk == t)
        .map(|(id, _)| id)
}

/// Serialises a mode graph to the `.sdfm` text format.
///
/// Round-trips through [`parse_mode_graph`]: the `modegraph` header,
/// then `persistent` declarations in order, then each mode as the
/// single-graph format with `graph` replaced by `mode`.  This is the
/// canonical form the service cache keys on.
pub fn to_mode_text(mg: &ModeGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "modegraph {}", mg.name);
    for pe in &mg.persistent {
        let _ = writeln!(out, "persistent {} {}", pe.src, pe.snk);
    }
    for mode in &mg.modes {
        let body = to_text(&mode.graph);
        let body = body
            .strip_prefix(&format!("graph {}\n", mode.graph.name()))
            .expect("to_text starts with the graph header");
        let _ = writeln!(out, "mode {}", mode.name);
        out.push_str(body);
    }
    out
}

/// Parses the `.sdfm` text format.
///
/// # Errors
///
/// [`SdfError::InvalidSchedule`] with the 1-based line number on the
/// first malformed line, and any [`ModeGraph::validate`] violation.
///
/// # Examples
///
/// ```
/// use sdf_core::mode::{parse_mode_graph, to_mode_text};
///
/// let text = "\
/// modegraph toy
/// persistent a b
/// mode one
/// edge a b 1 1 delay 1
/// edge a c 2 1
/// mode two
/// edge a b 1 1 delay 1
/// edge b d 1 3
/// ";
/// let mg = parse_mode_graph(text).unwrap();
/// assert_eq!(mg.modes().len(), 2);
/// assert_eq!(to_mode_text(&parse_mode_graph(&to_mode_text(&mg)).unwrap()), to_mode_text(&mg));
/// ```
pub fn parse_mode_graph(text: &str) -> Result<ModeGraph, SdfError> {
    let parse_err = |lineno: usize, msg: &str, raw: &str| -> SdfError {
        SdfError::InvalidSchedule(format!("line {}: {msg}: {raw:?}", lineno + 1))
    };
    let lines: Vec<&str> = text.lines().collect();
    let mut name: Option<String> = None;
    let mut persistent: Vec<PersistentEdge> = Vec::new();
    // Each mode: (header line number, mode name, masked source lines).
    let mut sections: Vec<(usize, String, Vec<String>)> = Vec::new();
    for (lineno, raw) in lines.iter().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let keyword = tokens.next().expect("non-empty line has a token");
        match keyword {
            "modegraph" => {
                if name.is_some() {
                    return Err(parse_err(lineno, "duplicate modegraph line", raw));
                }
                if !sections.is_empty() {
                    return Err(parse_err(
                        lineno,
                        "modegraph must precede mode sections",
                        raw,
                    ));
                }
                let n = tokens
                    .next()
                    .ok_or_else(|| parse_err(lineno, "modegraph needs a name", raw))?;
                if tokens.next().is_some() {
                    return Err(parse_err(
                        lineno,
                        "trailing tokens after modegraph name",
                        raw,
                    ));
                }
                name = Some(n.to_string());
            }
            "persistent" => {
                let src = tokens
                    .next()
                    .ok_or_else(|| parse_err(lineno, "persistent needs SRC SNK", raw))?;
                let snk = tokens
                    .next()
                    .ok_or_else(|| parse_err(lineno, "persistent needs SRC SNK", raw))?;
                if tokens.next().is_some() {
                    return Err(parse_err(
                        lineno,
                        "trailing tokens after persistent edge",
                        raw,
                    ));
                }
                persistent.push(PersistentEdge {
                    src: src.to_string(),
                    snk: snk.to_string(),
                });
            }
            "mode" => {
                if name.is_none() {
                    return Err(parse_err(lineno, "mode section before modegraph line", raw));
                }
                let n = tokens
                    .next()
                    .ok_or_else(|| parse_err(lineno, "mode needs a name", raw))?;
                if tokens.next().is_some() {
                    return Err(parse_err(lineno, "trailing tokens after mode name", raw));
                }
                // The section's masked source: blank up to the header so
                // the delegated parser reports original line numbers.
                let mut masked = vec![String::new(); lineno];
                masked.push(format!("graph {n}"));
                sections.push((lineno, n.to_string(), masked));
            }
            _ => {
                // Everything else (actor/edge/garbage) belongs to the
                // current mode section and is judged by the single-graph
                // parser — with original line numbers, thanks to the
                // blank-line padding.
                let Some((_, _, masked)) = sections.last_mut() else {
                    return Err(parse_err(
                        lineno,
                        "graph line outside any mode section",
                        raw,
                    ));
                };
                while masked.len() < lineno {
                    masked.push(String::new());
                }
                masked.push((*raw).to_string());
            }
        }
    }
    let Some(name) = name else {
        return Err(SdfError::InvalidSchedule(
            "empty mode graph: expected a modegraph line".to_string(),
        ));
    };
    let mut mg = ModeGraph::new(name);
    mg.persistent = persistent;
    for (lineno, mode_name, masked) in sections {
        let graph = parse_graph(&masked.join("\n"))?;
        if graph.edge_count() == 0 && graph.actor_count() == 0 {
            return Err(SdfError::InvalidSchedule(format!(
                "line {}: mode {:?} is empty",
                lineno + 1,
                mode_name
            )));
        }
        mg.add_mode(graph);
    }
    mg.validate()?;
    Ok(mg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_mode_text() -> &'static str {
        "# toy two-mode graph\n\
         modegraph toy\n\
         persistent a b\n\
         mode one\n\
         actor a\n\
         edge a b 1 1 delay 1\n\
         edge a c 2 1\n\
         mode two\n\
         edge a b 1 1 delay 1\n\
         edge b d 1 3\n"
    }

    #[test]
    fn parses_modes_and_persistent_edges() {
        let mg = parse_mode_graph(two_mode_text()).unwrap();
        assert_eq!(mg.name(), "toy");
        assert_eq!(mg.modes().len(), 2);
        assert_eq!(mg.modes()[0].name, "one");
        assert_eq!(mg.modes()[1].name, "two");
        assert_eq!(mg.persistent().len(), 1);
        assert_eq!(mg.modes()[0].graph.actor_count(), 3);
        assert_eq!(mg.modes()[1].graph.edge_count(), 2);
        let id = mg.resolve_persistent(1, 0).unwrap();
        assert_eq!(mg.modes()[1].graph.edge(id).delay, 1);
    }

    #[test]
    fn text_round_trips_canonically() {
        let mg = parse_mode_graph(two_mode_text()).unwrap();
        let canon = to_mode_text(&mg);
        let back = parse_mode_graph(&canon).unwrap();
        assert_eq!(to_mode_text(&back), canon);
    }

    #[test]
    fn errors_carry_original_line_numbers() {
        let text = "modegraph t\nmode one\nedge a b 1 1\nedge a b nope 1\n";
        let e = parse_mode_graph(text).unwrap_err().to_string();
        assert!(e.contains("line 4"), "{e}");
    }

    #[test]
    fn missing_persistent_edge_is_rejected() {
        let text = "modegraph t\npersistent a b\nmode one\nedge a b 1 1 delay 1\n\
                    mode two\nedge a c 1 1\n";
        let e = parse_mode_graph(text).unwrap_err().to_string();
        assert!(e.contains("missing from mode"), "{e}");
    }

    #[test]
    fn persistent_shape_mismatch_is_rejected() {
        let text = "modegraph t\npersistent a b\nmode one\nedge a b 1 1 delay 1\n\
                    mode two\nedge a b 2 1 delay 1\n";
        let e = parse_mode_graph(text).unwrap_err().to_string();
        assert!(e.contains("changes shape"), "{e}");
    }

    #[test]
    fn zero_delay_persistent_edge_is_rejected() {
        let text = "modegraph t\npersistent a b\nmode one\nedge a b 1 1\n\
                    mode two\nedge a b 1 1\n";
        let e = parse_mode_graph(text).unwrap_err().to_string();
        assert!(e.contains("delay"), "{e}");
    }

    #[test]
    fn single_mode_graph_is_rejected() {
        let text = "modegraph t\nmode only\nedge a b 1 1\n";
        let e = parse_mode_graph(text).unwrap_err().to_string();
        assert!(e.contains("at least 2"), "{e}");
    }

    #[test]
    fn graph_lines_outside_a_mode_are_rejected() {
        let text = "modegraph t\nedge a b 1 1\n";
        let e = parse_mode_graph(text).unwrap_err().to_string();
        assert!(e.contains("outside any mode"), "{e}");
    }
}
