//! A plain-text interchange format for SDF graphs.
//!
//! The format is line-oriented and diff-friendly, close to how the paper
//! annotates its figures:
//!
//! ```text
//! # comment
//! graph cd2dat
//! actor cdSrc
//! actor stage1
//! edge cdSrc stage1 1 1
//! edge stage1 stage2 2 3 delay 4
//! ```
//!
//! `edge SRC SNK PROD CONS [delay D]` — actors may also be declared
//! implicitly by their first use in an `edge` line.

use std::fmt::Write as _;

use crate::error::SdfError;
use crate::graph::SdfGraph;

/// Serialises a graph to the text format.
///
/// Round-trips through [`parse_graph`]: actor declarations come first (in
/// id order, preserving ids), then edges in id order.
///
/// # Examples
///
/// ```
/// use sdf_core::{SdfGraph, io::{to_text, parse_graph}};
///
/// # fn main() -> Result<(), sdf_core::SdfError> {
/// let mut g = SdfGraph::new("pair");
/// let a = g.add_actor("A");
/// let b = g.add_actor("B");
/// g.add_edge_with_delay(a, b, 2, 3, 1)?;
/// let text = to_text(&g);
/// let back = parse_graph(&text)?;
/// assert_eq!(back.name(), "pair");
/// assert_eq!(back.edge_count(), 1);
/// assert_eq!(back.edge(sdf_core::EdgeId::from_index(0)).delay, 1);
/// # Ok(())
/// # }
/// ```
pub fn to_text(graph: &SdfGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph {}", graph.name());
    for a in graph.actors() {
        let _ = writeln!(out, "actor {}", graph.actor_name(a));
    }
    for (_, e) in graph.edges() {
        let _ = write!(
            out,
            "edge {} {} {} {}",
            graph.actor_name(e.src),
            graph.actor_name(e.snk),
            e.prod,
            e.cons
        );
        if e.delay > 0 {
            let _ = write!(out, " delay {}", e.delay);
        }
        out.push('\n');
    }
    out
}

/// Parses a graph from the text format.
///
/// # Errors
///
/// Returns [`SdfError::InvalidSchedule`] (reused as the generic parse-error
/// carrier) with a line-numbered message for malformed input, and
/// [`SdfError::ZeroRate`] via graph construction for zero rates.
pub fn parse_graph(text: &str) -> Result<SdfGraph, SdfError> {
    let mut graph = SdfGraph::new("unnamed");
    let mut named = false;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut words = line.split_whitespace();
        let keyword = words.next().expect("nonempty line has a first word");
        let parse_err =
            |msg: &str| SdfError::InvalidSchedule(format!("line {}: {msg}: {raw:?}", lineno + 1));
        match keyword {
            "graph" => {
                let name = words
                    .next()
                    .ok_or_else(|| parse_err("missing graph name"))?;
                if named {
                    return Err(parse_err("duplicate graph declaration"));
                }
                graph = rename(graph, name);
                named = true;
            }
            "actor" => {
                let name = words
                    .next()
                    .ok_or_else(|| parse_err("missing actor name"))?;
                if graph.actor_by_name(name).is_some() {
                    return Err(parse_err("duplicate actor"));
                }
                graph.add_actor(name);
            }
            "edge" => {
                let src = words.next().ok_or_else(|| parse_err("missing source"))?;
                let snk = words.next().ok_or_else(|| parse_err("missing sink"))?;
                let prod: u64 = words
                    .next()
                    .and_then(|w| w.parse().ok())
                    .ok_or_else(|| parse_err("missing/bad production rate"))?;
                let cons: u64 = words
                    .next()
                    .and_then(|w| w.parse().ok())
                    .ok_or_else(|| parse_err("missing/bad consumption rate"))?;
                let delay = match words.next() {
                    None => 0,
                    Some("delay") => words
                        .next()
                        .and_then(|w| w.parse().ok())
                        .ok_or_else(|| parse_err("missing/bad delay value"))?,
                    Some(_) => return Err(parse_err("expected `delay D` or end of line")),
                };
                if words.next().is_some() {
                    return Err(parse_err("trailing tokens"));
                }
                let s = graph
                    .actor_by_name(src)
                    .unwrap_or_else(|| graph.add_actor(src));
                let t = graph
                    .actor_by_name(snk)
                    .unwrap_or_else(|| graph.add_actor(snk));
                graph.add_edge_with_delay(s, t, prod, cons, delay)?;
            }
            other => return Err(parse_err(&format!("unknown keyword `{other}`"))),
        }
    }
    Ok(graph)
}

/// Serialises a graph to Graphviz DOT, with rates and delays as edge
/// labels — handy for visually checking reconstructed benchmarks.
///
/// # Examples
///
/// ```
/// use sdf_core::{SdfGraph, io::to_dot};
///
/// # fn main() -> Result<(), sdf_core::SdfError> {
/// let mut g = SdfGraph::new("pair");
/// let a = g.add_actor("A");
/// let b = g.add_actor("B");
/// g.add_edge_with_delay(a, b, 2, 3, 1)?;
/// let dot = to_dot(&g);
/// assert!(dot.contains("digraph \"pair\""));
/// assert!(dot.contains("label=\"2,3,1D\""));
/// # Ok(())
/// # }
/// ```
pub fn to_dot(graph: &SdfGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", graph.name());
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=box];");
    for a in graph.actors() {
        let _ = writeln!(out, "  n{} [label=\"{}\"];", a.index(), graph.actor_name(a));
    }
    for (_, e) in graph.edges() {
        let label = if e.delay > 0 {
            format!("{},{},{}D", e.prod, e.cons, e.delay)
        } else {
            format!("{},{}", e.prod, e.cons)
        };
        let _ = writeln!(
            out,
            "  n{} -> n{} [label=\"{label}\"];",
            e.src.index(),
            e.snk.index()
        );
    }
    out.push_str("}\n");
    out
}

/// Rebuilds `graph` under a new name (names are immutable on [`SdfGraph`]).
fn rename(graph: SdfGraph, name: &str) -> SdfGraph {
    let mut g = SdfGraph::new(name);
    for a in graph.actors() {
        g.add_actor(graph.actor_name(a));
    }
    for (_, e) in graph.edges() {
        g.add_edge_with_delay(e.src, e.snk, e.prod, e.cons, e.delay)
            .expect("edges of a valid graph stay valid");
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::EdgeId;

    #[test]
    fn parse_minimal() {
        let g = parse_graph("graph t\nedge A B 2 3\n").unwrap();
        assert_eq!(g.name(), "t");
        assert_eq!(g.actor_count(), 2);
        let e = g.edge(EdgeId::from_index(0));
        assert_eq!((e.prod, e.cons, e.delay), (2, 3, 0));
    }

    #[test]
    fn parse_with_delay_comments_blanks() {
        let text = "
# the paper's Fig. 1
graph fig1
actor A
actor B
actor C

edge A B 2 1 delay 1   # unit delay
edge B C 1 3
";
        let g = parse_graph(text).unwrap();
        assert_eq!(g.actor_count(), 3);
        assert_eq!(g.edge(EdgeId::from_index(0)).delay, 1);
        assert_eq!(g.edge(EdgeId::from_index(1)).cons, 3);
    }

    #[test]
    fn implicit_actor_declaration() {
        let g = parse_graph("edge X Y 1 1\nedge Y Z 1 1\n").unwrap();
        assert_eq!(g.actor_count(), 3);
        assert_eq!(g.name(), "unnamed");
    }

    #[test]
    fn round_trip() {
        let mut g = SdfGraph::new("rt");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        let c = g.add_actor("C");
        g.add_edge(a, b, 20, 10).unwrap();
        g.add_edge_with_delay(b, c, 1, 3, 7).unwrap();
        let back = parse_graph(&to_text(&g)).unwrap();
        assert_eq!(back.name(), g.name());
        assert_eq!(back.actor_count(), g.actor_count());
        let edges: Vec<_> = back.edges().map(|(_, e)| *e).collect();
        let orig: Vec<_> = g.edges().map(|(_, e)| *e).collect();
        assert_eq!(edges, orig);
    }

    #[test]
    fn errors_are_line_numbered() {
        let err = parse_graph("graph t\nedge A\n").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        assert!(parse_graph("bogus X\n").is_err());
        assert!(parse_graph("edge A B 1\n").is_err());
        assert!(parse_graph("edge A B 1 2 delay\n").is_err());
        assert!(parse_graph("edge A B 1 2 junk 3\n").is_err());
        assert!(parse_graph("edge A B 1 2 delay 3 junk\n").is_err());
        assert!(parse_graph("graph a\ngraph b\n").is_err());
        assert!(parse_graph("actor A\nactor A\n").is_err());
    }

    #[test]
    fn dot_export_lists_all_actors_and_edges() {
        let mut g = SdfGraph::new("d");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        let c = g.add_actor("C");
        g.add_edge(a, b, 2, 1).unwrap();
        g.add_edge_with_delay(b, c, 1, 3, 4).unwrap();
        let dot = to_dot(&g);
        assert_eq!(dot.matches("->").count(), 2);
        assert!(dot.contains("label=\"2,1\""));
        assert!(dot.contains("label=\"1,3,4D\""));
        assert!(dot.contains("label=\"C\""));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn zero_rate_propagates_graph_error() {
        assert!(matches!(
            parse_graph("edge A B 0 1\n"),
            Err(SdfError::ZeroRate { .. })
        ));
    }
}
