//! Balance equations and the repetitions vector.
//!
//! A valid SDF schedule must return every edge to its initial token count,
//! which forces the firing counts `q` to satisfy
//! `prod(e) · q(src(e)) = cns(e) · q(snk(e))` for every edge `e` — the
//! *balance equations* of §2.  This module solves them exactly, returning the
//! minimal positive integer solution per connected component, or reporting
//! sample-rate inconsistency.

use crate::error::SdfError;
use crate::graph::{ActorId, EdgeId, SdfGraph};
use crate::math::{gcd_iter, lcm};
use crate::rational::Rational;

/// The minimal positive repetitions vector of a consistent SDF graph.
///
/// Indexed by [`ActorId`]; `q(a)` is the number of times actor `a` fires in
/// one minimal schedule period.
///
/// # Examples
///
/// ```
/// use sdf_core::{SdfGraph, RepetitionsVector};
///
/// # fn main() -> Result<(), sdf_core::SdfError> {
/// let mut g = SdfGraph::new("fig1");
/// let a = g.add_actor("A");
/// let b = g.add_actor("B");
/// let c = g.add_actor("C");
/// g.add_edge(a, b, 2, 1)?;
/// g.add_edge(b, c, 1, 3)?;
/// let q = RepetitionsVector::compute(&g)?;
/// assert_eq!(q.get(a), 3);
/// assert_eq!(q.get(b), 6);
/// assert_eq!(q.get(c), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RepetitionsVector {
    q: Vec<u64>,
}

impl RepetitionsVector {
    /// Solves the balance equations for `graph`.
    ///
    /// Each connected component is normalised independently to its minimal
    /// positive integer solution (the standard convention; a disconnected
    /// graph's components do not constrain each other).
    ///
    /// # Errors
    ///
    /// * [`SdfError::EmptyGraph`] if the graph has no actors.
    /// * [`SdfError::Inconsistent`] if some balance equation has no positive
    ///   solution.
    pub fn compute(graph: &SdfGraph) -> Result<Self, SdfError> {
        let n = graph.actor_count();
        if n == 0 {
            return Err(SdfError::EmptyGraph);
        }
        // Rational firing rates per actor, propagated by BFS over the
        // undirected structure of each component.
        let mut rate: Vec<Option<Rational>> = vec![None; n];
        let mut q = vec![0u64; n];
        for root in graph.actors() {
            if rate[root.index()].is_some() {
                continue;
            }
            let component = Self::propagate(graph, root, &mut rate)?;
            Self::normalise(&component, &rate, &mut q);
        }
        let result = RepetitionsVector { q };
        // Double-check every edge: propagation covers spanning-tree edges,
        // this validates the rest (and catches inconsistency on multi-edges).
        for (id, e) in graph.edges() {
            if e.prod * result.get(e.src) != e.cons * result.get(e.snk) {
                return Err(SdfError::Inconsistent { edge: id });
            }
        }
        Ok(result)
    }

    /// BFS from `root`, filling `rate` for its component; returns the
    /// component's actors.
    fn propagate(
        graph: &SdfGraph,
        root: ActorId,
        rate: &mut [Option<Rational>],
    ) -> Result<Vec<ActorId>, SdfError> {
        rate[root.index()] = Some(Rational::ONE);
        let mut queue = std::collections::VecDeque::from([root]);
        let mut component = vec![root];
        while let Some(a) = queue.pop_front() {
            let ra = rate[a.index()].expect("queued actor must have a rate");
            // Forward edges: q(snk) = q(src) * prod / cons.
            for &eid in graph.out_edges(a) {
                let e = graph.edge(eid);
                let expected = ra.mul_ratio(e.prod, e.cons);
                match rate[e.snk.index()] {
                    None => {
                        rate[e.snk.index()] = Some(expected);
                        component.push(e.snk);
                        queue.push_back(e.snk);
                    }
                    Some(existing) if existing != expected => {
                        return Err(SdfError::Inconsistent { edge: eid });
                    }
                    Some(_) => {}
                }
            }
            // Backward edges: q(src) = q(snk) * cons / prod.
            for &eid in graph.in_edges(a) {
                let e = graph.edge(eid);
                let expected = ra.mul_ratio(e.cons, e.prod);
                match rate[e.src.index()] {
                    None => {
                        rate[e.src.index()] = Some(expected);
                        component.push(e.src);
                        queue.push_back(e.src);
                    }
                    Some(existing) if existing != expected => {
                        return Err(SdfError::Inconsistent { edge: eid });
                    }
                    Some(_) => {}
                }
            }
        }
        Ok(component)
    }

    /// Scales one component's rational rates to the minimal positive integer
    /// vector and writes it into `q`.
    fn normalise(component: &[ActorId], rate: &[Option<Rational>], q: &mut [u64]) {
        let scale = component
            .iter()
            .map(|a| {
                rate[a.index()]
                    .expect("component actor must have a rate")
                    .denom()
            })
            .fold(1u64, lcm);
        for &a in component {
            let r = rate[a.index()].expect("component actor must have a rate");
            q[a.index()] = r.numer() * (scale / r.denom());
        }
        // Divide out any common factor so the solution is minimal.
        let g = gcd_iter(component.iter().map(|a| q[a.index()]));
        if g > 1 {
            for &a in component {
                q[a.index()] /= g;
            }
        }
    }

    /// Returns `q(a)`, the firings of actor `a` per schedule period.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range for the graph this vector was computed
    /// from.
    pub fn get(&self, a: ActorId) -> u64 {
        self.q[a.index()]
    }

    /// Returns the vector as a slice indexed by actor index.
    pub fn as_slice(&self) -> &[u64] {
        &self.q
    }

    /// Total firings in one schedule period (the length of a fully expanded
    /// flat schedule).
    pub fn total_firings(&self) -> u64 {
        self.q.iter().sum()
    }

    /// Total Number of Samples Exchanged on edge `e` per schedule period:
    /// `TNSE(e) = prod(e) · q(src(e))`.
    ///
    /// # Panics
    ///
    /// Panics if `e` does not belong to `graph` or the vector was computed
    /// from a different graph.
    pub fn tnse(&self, graph: &SdfGraph, e: EdgeId) -> u64 {
        let edge = graph.edge(e);
        edge.prod * self.get(edge.src)
    }
}

/// Returns true if `graph` is consistent (its balance equations admit a
/// positive solution).
///
/// # Examples
///
/// ```
/// use sdf_core::{SdfGraph, is_consistent};
///
/// # fn main() -> Result<(), sdf_core::SdfError> {
/// let mut g = SdfGraph::new("bad");
/// let a = g.add_actor("A");
/// let b = g.add_actor("B");
/// g.add_edge(a, b, 2, 1)?;
/// g.add_edge(a, b, 1, 1)?; // conflicting rate ratio
/// assert!(!is_consistent(&g));
/// # Ok(())
/// # }
/// ```
pub fn is_consistent(graph: &SdfGraph) -> bool {
    RepetitionsVector::compute(graph).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_repetitions() {
        let mut g = SdfGraph::new("fig1");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        let c = g.add_actor("C");
        g.add_edge_with_delay(a, b, 2, 1, 1).unwrap();
        g.add_edge(b, c, 1, 3).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        assert_eq!(q.as_slice(), &[3, 6, 2]);
        assert_eq!(q.total_firings(), 11);
    }

    #[test]
    fn fig2_repetitions() {
        // Paper Fig. 2: A --20,10--> B --20,10--> C gives q = (1, 2, 4).
        let mut g = SdfGraph::new("fig2");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        let c = g.add_actor("C");
        g.add_edge(a, b, 20, 10).unwrap();
        g.add_edge(b, c, 20, 10).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        assert_eq!(q.as_slice(), &[1, 2, 4]);
    }

    #[test]
    fn cd_dat_repetitions() {
        // Classic CD-to-DAT rate converter: q = (147, 147, 98, 28, 32, 160).
        let mut g = SdfGraph::new("cd-dat");
        let ids: Vec<_> = ["A", "B", "C", "D", "E", "F"]
            .iter()
            .map(|n| g.add_actor(*n))
            .collect();
        let rates = [(1, 1), (2, 3), (2, 7), (8, 7), (5, 1)];
        for (i, &(p, c)) in rates.iter().enumerate() {
            g.add_edge(ids[i], ids[i + 1], p, c).unwrap();
        }
        let q = RepetitionsVector::compute(&g).unwrap();
        assert_eq!(q.as_slice(), &[147, 147, 98, 28, 32, 160]);
    }

    #[test]
    fn delays_do_not_affect_repetitions() {
        let mut g = SdfGraph::new("d");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        g.add_edge_with_delay(a, b, 3, 2, 17).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        assert_eq!((q.get(a), q.get(b)), (2, 3));
    }

    #[test]
    fn inconsistent_multi_edge_detected() {
        let mut g = SdfGraph::new("bad");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        g.add_edge(a, b, 2, 1).unwrap();
        let e2 = g.add_edge(a, b, 1, 1).unwrap();
        assert_eq!(
            RepetitionsVector::compute(&g),
            Err(SdfError::Inconsistent { edge: e2 })
        );
        assert!(!is_consistent(&g));
    }

    #[test]
    fn inconsistent_cycle_detected() {
        // A -> B (1,2), B -> A (1,1): around the loop q(A) would need to be
        // both 2·q(B) and q(B).
        let mut g = SdfGraph::new("badloop");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        g.add_edge(a, b, 2, 1).unwrap();
        g.add_edge(b, a, 1, 1).unwrap();
        assert!(RepetitionsVector::compute(&g).is_err());
    }

    #[test]
    fn consistent_cycle() {
        let mut g = SdfGraph::new("loop");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        g.add_edge(a, b, 2, 3).unwrap();
        g.add_edge_with_delay(b, a, 3, 2, 6).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        assert_eq!((q.get(a), q.get(b)), (3, 2));
    }

    #[test]
    fn disconnected_components_normalised_independently() {
        let mut g = SdfGraph::new("two");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        let c = g.add_actor("C");
        let d = g.add_actor("D");
        g.add_edge(a, b, 2, 1).unwrap(); // q = (1, 2)
        g.add_edge(c, d, 1, 5).unwrap(); // q = (5, 1)
        let q = RepetitionsVector::compute(&g).unwrap();
        assert_eq!(q.as_slice(), &[1, 2, 5, 1]);
    }

    #[test]
    fn empty_graph_rejected() {
        let g = SdfGraph::new("empty");
        assert_eq!(RepetitionsVector::compute(&g), Err(SdfError::EmptyGraph));
    }

    #[test]
    fn single_actor() {
        let mut g = SdfGraph::new("one");
        let a = g.add_actor("A");
        let q = RepetitionsVector::compute(&g).unwrap();
        assert_eq!(q.get(a), 1);
    }

    #[test]
    fn common_factor_divided_out() {
        // Rates 4 -> 4 would naively give q = (1,1); make sure a scaled
        // version also lands on the minimal vector.
        let mut g = SdfGraph::new("scaled");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        g.add_edge(a, b, 6, 4).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        assert_eq!((q.get(a), q.get(b)), (2, 3));
    }

    #[test]
    fn tnse_matches_both_sides() {
        let mut g = SdfGraph::new("t");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        let e = g.add_edge(a, b, 2, 3).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        assert_eq!(q.tnse(&g, e), 6);
        assert_eq!(q.tnse(&g, e), g.edge(e).cons * q.get(b));
    }

    #[test]
    fn homogeneous_graph_all_ones() {
        let mut g = SdfGraph::new("h");
        let ids: Vec<_> = (0..5).map(|i| g.add_actor(format!("n{i}"))).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1], 1, 1).unwrap();
        }
        let q = RepetitionsVector::compute(&g).unwrap();
        assert!(q.as_slice().iter().all(|&x| x == 1));
    }
}
