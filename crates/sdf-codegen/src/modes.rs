//! Multi-mode executable plans and their transition-aware interpreter.
//!
//! A [`ModeExecutablePlan`] packages one [`ExecutablePlan`] per mode,
//! all bound into the **same** shared pool, plus the persistent-buffer
//! table: for every declared persistent edge, its (mode-invariant) pool
//! offset and its binding index inside each mode's plan.  Each mode's
//! op stream ends with a [`PlanOp::ModeSwitch`] marker naming the next
//! mode of the default round-robin cycle.
//!
//! [`execute_mode_plan`] is the transition oracle: it fires a sequence
//! of mode activations, carrying the persistent delay tokens (with
//! their pool-word stamps) across every switch while resetting all
//! mode-local state, and proves the multi-mode contract:
//!
//! * **static disjointness** — every persistent region lies inside the
//!   pool, disjoint from every other persistent region and from every
//!   mode-local binding of every mode, and keeps one offset everywhere;
//! * **token conservation across switches** — each activation returns
//!   every edge to its initial delay, and the carried persistent tokens
//!   arrive in the next mode bit-stamped exactly as they left;
//! * **per-activation oracle invariants** — the single-plan checks
//!   (stamped reads, live-region disjointness, peak ≤ pool) hold inside
//!   every activation.

use crate::interp::{err, ExecError, Interp};
use crate::plan::{ExecutablePlan, PlanOp};

/// One mode's entry in a multi-mode plan.
#[derive(Clone, Debug)]
pub struct ModePlanEntry {
    /// Mode name.
    pub name: String,
    /// The mode's plan, bound into the shared pool (its
    /// [`ExecutablePlan::pool_words`] equals the merged pool size).
    pub plan: ExecutablePlan,
}

/// One persistent edge's place in the shared pool.
#[derive(Clone, Debug)]
pub struct PersistentBinding {
    /// Producer actor name.
    pub src: String,
    /// Consumer actor name.
    pub snk: String,
    /// The region's first word — identical in every mode.
    pub offset: u64,
    /// Reserved words (the max of the per-mode buffer sizes).
    pub size: u64,
    /// Initial delay tokens — the state carried across transitions.
    pub delay: u64,
    /// Binding index of this edge inside each mode's plan, mode order.
    pub bindings: Vec<usize>,
}

/// A multi-mode plan: per-mode [`ExecutablePlan`]s sharing one pool.
#[derive(Clone, Debug)]
pub struct ModeExecutablePlan {
    /// The mode graph's name.
    pub graph: String,
    /// The merged shared pool, words.
    pub pool_words: u64,
    /// Bytes per token (same for every mode).
    pub token_bytes: u64,
    /// Per-mode plans, in mode order.
    pub modes: Vec<ModePlanEntry>,
    /// Persistent-buffer table, in declaration order.
    pub persistent: Vec<PersistentBinding>,
}

impl ModeExecutablePlan {
    /// Assembles and validates a multi-mode plan, appending the
    /// [`PlanOp::ModeSwitch`] marker (default round-robin successor) to
    /// each mode's op stream.
    ///
    /// # Errors
    ///
    /// [`ExecError`] when any static invariant fails: mismatched pool
    /// sizes, a persistent offset that differs between modes, or a
    /// persistent region overlapping any other region (see the module
    /// docs).
    pub fn assemble(
        graph: impl Into<String>,
        mut modes: Vec<ModePlanEntry>,
        persistent: Vec<PersistentBinding>,
    ) -> Result<ModeExecutablePlan, ExecError> {
        if modes.is_empty() {
            return Err(err("a multi-mode plan needs at least one mode".to_string()));
        }
        let pool_words = modes[0].plan.pool_words;
        let token_bytes = modes[0].plan.token_bytes;
        let n = modes.len();
        for (m, entry) in modes.iter_mut().enumerate() {
            if entry.plan.pool_words != pool_words {
                return Err(err(format!(
                    "mode {:?} binds a {}-word pool but the merged pool is {} words",
                    entry.name, entry.plan.pool_words, pool_words
                )));
            }
            entry
                .plan
                .ops
                .push(PlanOp::ModeSwitch { next: (m + 1) % n });
        }
        let plan = ModeExecutablePlan {
            graph: graph.into(),
            pool_words,
            token_bytes,
            modes,
            persistent,
        };
        plan.validate_static()?;
        Ok(plan)
    }

    /// The static half of the transition oracle (see the module docs).
    ///
    /// # Errors
    ///
    /// [`ExecError`] naming the first violated invariant.
    pub fn validate_static(&self) -> Result<(), ExecError> {
        for p in &self.persistent {
            if p.bindings.len() != self.modes.len() {
                return Err(err(format!(
                    "persistent edge {} -> {} binds {} modes, plan has {}",
                    p.src,
                    p.snk,
                    p.bindings.len(),
                    self.modes.len()
                )));
            }
            if p.offset + p.size > self.pool_words {
                return Err(err(format!(
                    "persistent edge {} -> {} spans words {}..{} outside the {}-word pool",
                    p.src,
                    p.snk,
                    p.offset,
                    p.offset + p.size,
                    self.pool_words
                )));
            }
            for (m, entry) in self.modes.iter().enumerate() {
                let b = &entry.plan.bindings[p.bindings[m]];
                if b.offset != p.offset {
                    return Err(err(format!(
                        "persistent edge {} -> {} moved: offset {} in mode {:?} \
                         but {} in the shared table — offsets must survive transitions",
                        p.src, p.snk, b.offset, entry.name, p.offset
                    )));
                }
                if b.size > p.size {
                    return Err(err(format!(
                        "persistent edge {} -> {} needs {} words in mode {:?} \
                         but the shared table reserves only {}",
                        p.src, p.snk, b.size, entry.name, p.size
                    )));
                }
                if b.delay != p.delay {
                    return Err(err(format!(
                        "persistent edge {} -> {} carries {} delay tokens in mode {:?} \
                         but the shared table says {}",
                        p.src, p.snk, b.delay, entry.name, p.delay
                    )));
                }
            }
        }
        // Persistent regions: pairwise disjoint, and disjoint from every
        // mode-local binding of every mode (a local overlapping a
        // persistent region would clobber carried tokens).
        for (i, p) in self.persistent.iter().enumerate() {
            for q in &self.persistent[i + 1..] {
                if p.offset < q.offset + q.size && q.offset < p.offset + p.size {
                    return Err(err(format!(
                        "persistent regions overlap: {} -> {} (words {}..{}) and \
                         {} -> {} (words {}..{})",
                        p.src,
                        p.snk,
                        p.offset,
                        p.offset + p.size,
                        q.src,
                        q.snk,
                        q.offset,
                        q.offset + q.size
                    )));
                }
            }
            for (m, entry) in self.modes.iter().enumerate() {
                for (bi, b) in entry.plan.bindings.iter().enumerate() {
                    if bi == p.bindings[m] {
                        continue;
                    }
                    if p.offset < b.offset + b.size && b.offset < p.offset + p.size {
                        return Err(err(format!(
                            "mode {:?} binds edge {} ({} -> {}, words {}..{}) inside the \
                             persistent region of {} -> {} (words {}..{})",
                            entry.name,
                            b.edge,
                            b.src,
                            b.snk,
                            b.offset,
                            b.offset + b.size,
                            p.src,
                            p.snk,
                            p.offset,
                            p.offset + p.size
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// The default oracle sequence: every mode once in order, then back
    /// to mode 0 — every transition of the round-robin cycle is crossed
    /// and re-entry is proven.
    pub fn default_sequence(&self) -> Vec<usize> {
        let mut seq: Vec<usize> = (0..self.modes.len()).collect();
        seq.push(0);
        seq
    }

    /// Total firings of one pass over `sequence`.
    pub fn total_firings(&self, sequence: &[usize]) -> u64 {
        sequence
            .iter()
            .map(|&m| self.modes[m].plan.total_firings())
            .sum()
    }
}

/// What one mode activation measured.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ActivationReport {
    /// Which mode fired.
    pub mode: usize,
    /// Firings in this activation (one period of the mode).
    pub firings: u64,
    /// Peak simultaneously-live words during the activation.
    pub peak_live_words: u64,
}

/// What a clean multi-mode interpretation measured.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModeExecReport {
    /// Per-activation measurements, in sequence order.
    pub activations: Vec<ActivationReport>,
    /// Total firings across the sequence.
    pub firings: u64,
    /// Peak live words over every activation.
    pub peak_live_words: u64,
    /// The shared pool size, for the `peak ≤ pool` headline.
    pub pool_words: u64,
    /// Mode switches crossed (`sequence.len() − 1`).
    pub transitions: u64,
}

/// Executes `sequence` of mode activations against the shared pool,
/// carrying persistent tokens across every switch (see module docs).
///
/// # Errors
///
/// [`ExecError`] naming the violated invariant: any single-plan oracle
/// failure inside an activation, a token leak at a period end, or a
/// persistent token corrupted or lost across a transition.
pub fn execute_mode_plan(
    plan: &ModeExecutablePlan,
    sequence: &[usize],
) -> Result<ModeExecReport, ExecError> {
    let _span = sdf_trace::span!(
        "exec.mode.run",
        modes = plan.modes.len(),
        activations = sequence.len()
    );
    plan.validate_static()?;
    if sequence.is_empty() {
        return Err(err("empty mode sequence".to_string()));
    }
    for &m in sequence {
        if m >= plan.modes.len() {
            return Err(err(format!(
                "sequence names mode {m} but the plan has only {}",
                plan.modes.len()
            )));
        }
    }
    // Carried persistent state: the firing stamps of each edge's delay
    // tokens, oldest first, as they left the previous activation.
    let mut carry: Vec<Option<Vec<u64>>> = vec![None; plan.persistent.len()];
    let mut activations = Vec::with_capacity(sequence.len());
    let mut firings = 0u64;
    let mut peak_live_words = 0u64;
    for (step, &m) in sequence.iter().enumerate() {
        let entry = &plan.modes[m];
        let mut interp = Interp::new(&entry.plan)?;
        // Seed carried persistent tokens: same owner, the stamps they
        // wore when the previous activation ended.  Local buffers keep
        // the fresh-delay state `Interp::new` gave them — a re-entered
        // mode re-initialises its local delays from scratch.
        for (pi, p) in plan.persistent.iter().enumerate() {
            let Some(stamps) = &carry[pi] else { continue };
            let ib = p.bindings[m];
            let b = &entry.plan.bindings[ib];
            if stamps.len() as u64 != b.delay {
                return Err(err(format!(
                    "token leak across transition into mode {:?} (step {step}): \
                     persistent edge {} -> {} carried {} tokens, expected its delay {}",
                    entry.name,
                    p.src,
                    p.snk,
                    stamps.len(),
                    b.delay
                )));
            }
            for (k, &stamp) in stamps.iter().enumerate() {
                interp.cells[(b.offset + k as u64) as usize] = Some((ib, stamp));
            }
        }
        interp.run_ops().map_err(|e| {
            err(format!(
                "mode {:?} (step {step}): {}",
                entry.name, e.message
            ))
        })?;
        // Token conservation at the period end — for persistent edges
        // this *is* conservation across the upcoming switch.
        for (i, b) in entry.plan.bindings.iter().enumerate() {
            if interp.fifos[i].tokens != b.delay {
                return Err(err(format!(
                    "token leak in mode {:?} (step {step}): edge {} ({} -> {}) ended \
                     with {} tokens, expected its initial delay {}",
                    entry.name, b.edge, b.src, b.snk, interp.fifos[i].tokens, b.delay
                )));
            }
        }
        if interp.peak_live_words > plan.pool_words {
            return Err(err(format!(
                "mode {:?} (step {step}): peak live footprint {} words exceeds the \
                 {}-word shared pool",
                entry.name, interp.peak_live_words, plan.pool_words
            )));
        }
        // Harvest the persistent tokens for the next activation,
        // verifying every carried word still wears this edge's stamp —
        // a foreign stamp means some local buffer clobbered state that
        // must survive the switch.
        for (pi, p) in plan.persistent.iter().enumerate() {
            let ib = p.bindings[m];
            let b = &entry.plan.bindings[ib];
            let fifo = &interp.fifos[ib];
            let mut stamps = Vec::with_capacity(fifo.tokens as usize);
            for k in 0..fifo.tokens {
                let pos = (b.offset + (fifo.front + k) % b.size) as usize;
                match interp.cells[pos] {
                    Some((owner, stamp)) if owner == ib => stamps.push(stamp),
                    Some((owner, _)) => {
                        let o = &entry.plan.bindings[owner];
                        return Err(err(format!(
                            "persistent token corrupted at the switch out of mode {:?} \
                             (step {step}): word {} of edge {} -> {} overwritten by \
                             edge {} ({} -> {})",
                            entry.name, pos, p.src, p.snk, o.edge, o.src, o.snk
                        )));
                    }
                    None => {
                        return Err(err(format!(
                            "persistent token lost at the switch out of mode {:?} \
                             (step {step}): word {} of edge {} -> {} is dead",
                            entry.name, pos, p.src, p.snk
                        )));
                    }
                }
            }
            carry[pi] = Some(stamps);
        }
        firings += interp.firings;
        peak_live_words = peak_live_words.max(interp.peak_live_words);
        activations.push(ActivationReport {
            mode: m,
            firings: interp.firings,
            peak_live_words: interp.peak_live_words,
        });
    }
    sdf_trace::counter_add("exec.mode.firings", firings);
    sdf_trace::counter_add("exec.mode.transitions", sequence.len() as u64 - 1);
    Ok(ModeExecReport {
        activations,
        firings,
        peak_live_words,
        pool_words: plan.pool_words,
        transitions: sequence.len() as u64 - 1,
    })
}
