//! The [`ExecutablePlan`] IR: the single hand-off point between analysis
//! and the backends.
//!
//! Analysis (the candidate-lattice engine, or a hand-driven pipeline)
//! lowers its winning schedule plus buffer placement into this typed
//! plan; everything downstream — the C emitter in
//! [`crate::c_backend`] and the executable-schedule oracle in
//! [`crate::interp`] — consumes *only* the plan, so the two can never
//! disagree about offsets, sizes or firing order.
//!
//! A plan holds three things:
//!
//! * **ops** — the loop schedule flattened into a linear op stream
//!   ([`PlanOp`]) with loop structure preserved as explicit
//!   begin/end markers;
//! * **buffer bindings** — one [`BufferBinding`] per edge: pool offset,
//!   region size in tokens, rates and initial delay;
//! * **pool layout** — the memory model and total pool size
//!   ([`MemoryModel`], [`ExecutablePlan::pool_words`]).

use std::fmt::Write as _;

use sdf_alloc::Allocation;
use sdf_core::error::SdfError;
use sdf_core::graph::SdfGraph;
use sdf_core::repetitions::RepetitionsVector;
use sdf_core::schedule::{LoopedSchedule, SasTree, ScheduleNode};
use sdf_core::simulate::validate_schedule;
use sdf_lifetime::wig::IntersectionGraph;

/// Bytes per token in the generated code (buffers are `float`).
pub const TOKEN_BYTES: u64 = 4;

/// Which buffer placement the plan encodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemoryModel {
    /// One disjoint region per edge (regions laid out back to back, so
    /// the pool is the non-shared `bufmem` total).
    NonShared,
    /// One lifetime-packed pool with first-fit offsets; regions of
    /// non-conflicting buffers may overlap.
    Shared,
}

impl MemoryModel {
    /// Lower-case name used in reports and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            MemoryModel::NonShared => "nonshared",
            MemoryModel::Shared => "shared",
        }
    }
}

/// One operation of the flattened loop schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanOp {
    /// Fire actor `actor` (an index into [`ExecutablePlan::actors`])
    /// `count` times back to back.
    Fire {
        /// Index into [`ExecutablePlan::actors`].
        actor: usize,
        /// Consecutive firings (a counted leaf, e.g. the `3B` of
        /// `(3B)`).
        count: u64,
    },
    /// Open a loop executing the ops up to the matching [`PlanOp::EndLoop`]
    /// `count` times.
    BeginLoop {
        /// Iteration count of the loop.
        count: u64,
    },
    /// Close the innermost open loop.
    EndLoop,
    /// End the current mode's period and hand control to mode `next`
    /// (an index into the owning
    /// [`ModeExecutablePlan`](crate::modes::ModeExecutablePlan)).  Only
    /// multi-mode plans contain this op — it terminates a per-mode op
    /// stream, so single-graph execution treats it as a period
    /// boundary; the mode interpreter performs the transition
    /// bookkeeping (persistent-token carry, local-buffer reset) when it
    /// reaches it.
    ModeSwitch {
        /// Mode index the transition targets.
        next: usize,
    },
}

/// Where one edge's buffer lives in the pool.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BufferBinding {
    /// Edge index in the source graph (`buf_e{edge}` in emitted C).
    pub edge: usize,
    /// Producer actor name (for comments and diagnostics).
    pub src: String,
    /// Consumer actor name.
    pub snk: String,
    /// First word of the region inside the pool.
    pub offset: u64,
    /// Region size in tokens (words).
    pub size: u64,
    /// Tokens appended per producer firing.
    pub prod: u64,
    /// Tokens removed per consumer firing.
    pub cons: u64,
    /// Initial tokens on the edge.
    pub delay: u64,
}

/// One actor's firing interface: which buffer regions its firing
/// function reads and writes, in parameter order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlanActor {
    /// Original actor name (sanitised by the backend, kept verbatim
    /// here).
    pub name: String,
    /// Binding indices of the input edges, in `in_edges` order.
    pub inputs: Vec<usize>,
    /// Binding indices of the output edges, in `out_edges` order.
    pub outputs: Vec<usize>,
}

/// A complete, self-contained executable schedule: the only input the
/// code generator and the interpreter accept.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExecutablePlan {
    /// Graph name (for the generated header comment).
    pub graph: String,
    /// Buffer placement model.
    pub model: MemoryModel,
    /// Total pool size in words: the allocator total for
    /// [`MemoryModel::Shared`], the summed `bufmem` for
    /// [`MemoryModel::NonShared`].
    pub pool_words: u64,
    /// Token width in bytes ([`TOKEN_BYTES`]).
    pub token_bytes: u64,
    /// One binding per edge, in edge-index order.
    pub bindings: Vec<BufferBinding>,
    /// One entry per actor, in actor-index order.
    pub actors: Vec<PlanActor>,
    /// The flattened loop schedule.
    pub ops: Vec<PlanOp>,
}

fn lower_body(body: &[ScheduleNode], ops: &mut Vec<PlanOp>) {
    for node in body {
        match node {
            ScheduleNode::Fire { actor, count } => ops.push(PlanOp::Fire {
                actor: actor.index(),
                count: *count,
            }),
            ScheduleNode::Loop { count, body } => {
                ops.push(PlanOp::BeginLoop { count: *count });
                lower_body(body, ops);
                ops.push(PlanOp::EndLoop);
            }
        }
    }
}

impl ExecutablePlan {
    fn assemble(
        graph: &SdfGraph,
        model: MemoryModel,
        pool_words: u64,
        bindings: Vec<BufferBinding>,
        body: &[ScheduleNode],
    ) -> ExecutablePlan {
        // Bindings arrive in edge-index order, so an edge's binding
        // index is its position in the vector.
        let actors = graph
            .actors()
            .map(|a| PlanActor {
                name: graph.actor_name(a).to_string(),
                inputs: graph.in_edges(a).iter().map(|e| e.index()).collect(),
                outputs: graph.out_edges(a).iter().map(|e| e.index()).collect(),
            })
            .collect();
        let mut ops = Vec::new();
        lower_body(body, &mut ops);
        sdf_trace::counter_add("codegen.plan.ops", ops.len() as u64);
        ExecutablePlan {
            graph: graph.name().to_string(),
            model,
            pool_words,
            token_bytes: TOKEN_BYTES,
            bindings,
            actors,
            ops,
        }
    }

    /// Lowers a looped schedule into a non-shared plan: one region per
    /// edge, sized to its `max_tokens` under `schedule`, laid out back
    /// to back in edge order.
    ///
    /// # Errors
    ///
    /// Returns an error if `schedule` is not a valid schedule for
    /// `graph` (the simulation that sizes the buffers must complete).
    pub fn lower_nonshared(
        graph: &SdfGraph,
        q: &RepetitionsVector,
        schedule: &LoopedSchedule,
    ) -> Result<ExecutablePlan, SdfError> {
        let _span = sdf_trace::span!("codegen.lower", model = "nonshared");
        let report = validate_schedule(graph, schedule, q)?;
        let mut offset = 0u64;
        let mut bindings = Vec::with_capacity(graph.edge_count());
        for (id, e) in graph.edges() {
            let size = report.max_tokens(id);
            bindings.push(BufferBinding {
                edge: id.index(),
                src: graph.actor_name(e.src).to_string(),
                snk: graph.actor_name(e.snk).to_string(),
                offset,
                size,
                prod: e.prod,
                cons: e.cons,
                delay: e.delay,
            });
            offset += size;
        }
        Ok(ExecutablePlan::assemble(
            graph,
            MemoryModel::NonShared,
            report.bufmem(),
            bindings,
            schedule.body(),
        ))
    }

    /// Lowers a SAS plus its intersection graph and first-fit
    /// allocation into a shared-pool plan.
    ///
    /// `wig` and `allocation` must come from the same schedule as `sas`
    /// (the usual pipeline guarantees this).  The lowering copies the
    /// allocator's offsets verbatim — whether they are *safe* is what
    /// the interpreter oracle checks.
    ///
    /// # Errors
    ///
    /// Returns an error if the SAS is invalid for the graph, or if the
    /// allocation does not cover every edge of the graph.
    pub fn lower_shared(
        graph: &SdfGraph,
        q: &RepetitionsVector,
        sas: &SasTree,
        wig: &IntersectionGraph,
        allocation: &Allocation,
    ) -> Result<ExecutablePlan, SdfError> {
        let _span = sdf_trace::span!("codegen.lower", model = "shared");
        sas.validate(graph, q)?;
        let schedule = sas.to_looped_schedule();
        let mut bindings = Vec::with_capacity(graph.edge_count());
        for (id, e) in graph.edges() {
            let i = wig.buffer_of_edge(id)?;
            bindings.push(BufferBinding {
                edge: id.index(),
                src: graph.actor_name(e.src).to_string(),
                snk: graph.actor_name(e.snk).to_string(),
                offset: allocation.offset(i),
                size: wig.buffer(i).lifetime.size(),
                prod: e.prod,
                cons: e.cons,
                delay: e.delay,
            });
        }
        Ok(ExecutablePlan::assemble(
            graph,
            MemoryModel::Shared,
            allocation.total(),
            bindings,
            schedule.body(),
        ))
    }

    /// Total firings one period of the plan performs (loop counts
    /// multiplied out).
    pub fn total_firings(&self) -> u64 {
        let mut stack: Vec<u64> = vec![1];
        let mut total = 0u64;
        for op in &self.ops {
            match op {
                PlanOp::Fire { count, .. } => {
                    total += count * stack.last().copied().unwrap_or(1);
                }
                PlanOp::BeginLoop { count } => {
                    let outer = stack.last().copied().unwrap_or(1);
                    stack.push(outer * count);
                }
                PlanOp::EndLoop => {
                    stack.pop();
                }
                PlanOp::ModeSwitch { .. } => {}
            }
        }
        total
    }

    /// Serialises the plan as a self-contained JSON object (parseable
    /// with `sdf_trace::json`, see `docs/file-format.md`).
    pub fn to_json(&self) -> String {
        let mut s = sdf_trace::json::document_header("executable_plan");
        s.reserve(256 + 64 * self.bindings.len() + 32 * self.ops.len());
        let _ = write!(
            s,
            "\"graph\":\"{}\",\
             \"model\":\"{}\",\"pool_words\":{},\"token_bytes\":{},\"bindings\":[",
            json_escape(&self.graph),
            self.model.as_str(),
            self.pool_words,
            self.token_bytes,
        );
        for (i, b) in self.bindings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"edge\":{},\"src\":\"{}\",\"snk\":\"{}\",\"offset\":{},\"size\":{},\
                 \"prod\":{},\"cons\":{},\"delay\":{}}}",
                b.edge,
                json_escape(&b.src),
                json_escape(&b.snk),
                b.offset,
                b.size,
                b.prod,
                b.cons,
                b.delay,
            );
        }
        s.push_str("],\"ops\":[");
        for (i, op) in self.ops.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            match op {
                PlanOp::Fire { actor, count } => {
                    let _ = write!(
                        s,
                        "{{\"op\":\"fire\",\"actor\":\"{}\",\"count\":{}}}",
                        json_escape(&self.actors[*actor].name),
                        count
                    );
                }
                PlanOp::BeginLoop { count } => {
                    let _ = write!(s, "{{\"op\":\"loop\",\"count\":{count}}}");
                }
                PlanOp::EndLoop => s.push_str("{\"op\":\"end\"}"),
                PlanOp::ModeSwitch { next } => {
                    let _ = write!(s, "{{\"op\":\"switch\",\"next\":{next}}}");
                }
            }
        }
        let _ = write!(s, "],\"op_count\":{}}}", self.ops.len());
        s
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdf_alloc::{allocate, AllocationOrder, PlacementPolicy};
    use sdf_core::schedule::SasNode;
    use sdf_lifetime::tree::ScheduleTree;

    fn fig2() -> (SdfGraph, RepetitionsVector, SasTree) {
        let mut g = SdfGraph::new("fig2");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        let c = g.add_actor("C");
        g.add_edge(a, b, 20, 10).unwrap();
        g.add_edge(b, c, 20, 10).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        let sas = SasTree::new(SasNode::branch(
            1,
            SasNode::leaf(a, 1),
            SasNode::branch(2, SasNode::leaf(b, 1), SasNode::leaf(c, 2)),
        ));
        (g, q, sas)
    }

    #[test]
    fn nonshared_lowering_lays_regions_back_to_back() {
        let (g, q, sas) = fig2();
        let plan = ExecutablePlan::lower_nonshared(&g, &q, &sas.to_looped_schedule()).unwrap();
        assert_eq!(plan.model, MemoryModel::NonShared);
        assert_eq!(plan.bindings.len(), 2);
        assert_eq!(plan.bindings[0].offset, 0);
        assert_eq!(plan.bindings[0].size, 20);
        assert_eq!(plan.bindings[1].offset, 20);
        assert_eq!(plan.pool_words, 40);
        assert_eq!(plan.total_firings(), 1 + 2 + 4);
    }

    #[test]
    fn shared_lowering_copies_allocator_offsets() {
        let (g, q, sas) = fig2();
        let tree = ScheduleTree::build(&g, &q, &sas).unwrap();
        let wig = IntersectionGraph::build(&g, &q, &tree);
        let alloc = allocate(
            &wig,
            AllocationOrder::DurationDescending,
            PlacementPolicy::FirstFit,
        );
        let plan = ExecutablePlan::lower_shared(&g, &q, &sas, &wig, &alloc).unwrap();
        assert_eq!(plan.model, MemoryModel::Shared);
        assert_eq!(plan.pool_words, alloc.total());
        for b in &plan.bindings {
            assert!(b.offset + b.size <= plan.pool_words);
        }
        // Loop structure survives flattening: A (2 (B 2C)).
        assert!(plan
            .ops
            .iter()
            .any(|op| matches!(op, PlanOp::BeginLoop { count: 2 })));
        assert_eq!(
            plan.ops
                .iter()
                .filter(|op| matches!(op, PlanOp::EndLoop))
                .count(),
            plan.ops
                .iter()
                .filter(|op| matches!(op, PlanOp::BeginLoop { .. }))
                .count()
        );
    }

    #[test]
    fn invalid_schedules_rejected() {
        let (g, q, sas) = fig2();
        // `A B C` under-fires B and C, so the sizing simulation fails.
        let flat = LoopedSchedule::parse("A B C", &g).unwrap();
        assert!(ExecutablePlan::lower_nonshared(&g, &q, &flat).is_err());
        // A SAS missing two of the three actors fails validation.
        let a = g.actors().next().unwrap();
        let bogus = SasTree::new(SasNode::leaf(a, 1));
        let tree = ScheduleTree::build(&g, &q, &sas).unwrap();
        let wig = IntersectionGraph::build(&g, &q, &tree);
        let alloc = allocate(
            &wig,
            AllocationOrder::DurationDescending,
            PlacementPolicy::FirstFit,
        );
        assert!(ExecutablePlan::lower_shared(&g, &q, &bogus, &wig, &alloc).is_err());
    }

    #[test]
    fn plan_json_parses_with_the_workspace_parser() {
        let (g, q, sas) = fig2();
        let plan = ExecutablePlan::lower_nonshared(&g, &q, &sas.to_looped_schedule()).unwrap();
        let doc = sdf_trace::json::parse(&plan.to_json()).expect("plan JSON parses");
        assert_eq!(
            doc.get("schema_version").and_then(|v| v.as_num()),
            Some(f64::from(sdf_trace::SCHEMA_VERSION))
        );
        assert_eq!(
            doc.get("kind").and_then(|v| v.as_str()),
            Some("executable_plan")
        );
        let ops = doc.get("ops").unwrap().as_array().unwrap();
        assert_eq!(
            ops.len() as f64,
            doc.get("op_count").unwrap().as_num().unwrap()
        );
        let bindings = doc.get("bindings").unwrap().as_array().unwrap();
        assert_eq!(bindings.len(), 2);
        assert_eq!(bindings[0].get("src").and_then(|v| v.as_str()), Some("A"));
    }
}
