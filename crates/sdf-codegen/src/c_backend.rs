//! C emission from an [`ExecutablePlan`].
//!
//! Both memory models share one traversal: a header comment, the buffer
//! declarations (the only part that differs between the models), the
//! extern firing-function declarations, and `run_schedule` re-nesting
//! the plan's flattened loop ops into `for` loops.  The emitted bytes
//! are pinned by golden files in `tests/golden/` — change them
//! deliberately or not at all.

use std::fmt::Write as _;

use crate::plan::{ExecutablePlan, MemoryModel, PlanActor, PlanOp};

/// Sanitises a name into a C identifier (alphanumerics and underscores,
/// never starting with a digit).
pub(crate) fn c_ident(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, ch) in name.chars().enumerate() {
        if ch.is_ascii_alphanumeric() || ch == '_' {
            if i == 0 && ch.is_ascii_digit() {
                out.push('_');
            }
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// The parameter list of one actor's firing function, in declaration
/// order: `const float *in0, …, float *out0, …` (or `void`).
fn param_list(actor: &PlanActor) -> String {
    let mut params: Vec<String> = Vec::with_capacity(actor.inputs.len() + actor.outputs.len());
    for i in 0..actor.inputs.len() {
        params.push(format!("const float *in{i}"));
    }
    for i in 0..actor.outputs.len() {
        params.push(format!("float *out{i}"));
    }
    if params.is_empty() {
        "void".to_string()
    } else {
        params.join(", ")
    }
}

/// Emits the buffer declarations: one array per edge (non-shared) or
/// the pool plus per-edge offset macros (shared).
fn emit_buffers(plan: &ExecutablePlan, out: &mut String) {
    match plan.model {
        MemoryModel::NonShared => {
            for b in &plan.bindings {
                let _ = writeln!(
                    out,
                    "float buf_e{}[{}]; /* {} -> {} */",
                    b.edge,
                    b.size.max(1),
                    b.src,
                    b.snk
                );
            }
        }
        MemoryModel::Shared => {
            let _ = writeln!(out, "float mem[{}];", plan.pool_words.max(1));
            for b in &plan.bindings {
                let _ = writeln!(
                    out,
                    "#define buf_e{} (mem + {}) /* {} -> {}, {} words */",
                    b.edge, b.offset, b.src, b.snk, b.size
                );
            }
        }
    }
}

fn emit_actor_decls(plan: &ExecutablePlan, out: &mut String) {
    for actor in &plan.actors {
        let _ = writeln!(
            out,
            "extern void fire_{}({});",
            c_ident(&actor.name),
            param_list(actor)
        );
    }
}

/// Emits one firing call, passing the actor's edge buffers (inputs
/// first, then outputs).
fn emit_fire(plan: &ExecutablePlan, actor: usize, indent: usize, out: &mut String) {
    let a = &plan.actors[actor];
    let args: Vec<String> = a
        .inputs
        .iter()
        .chain(&a.outputs)
        .map(|&b| format!("buf_e{}", plan.bindings[b].edge))
        .collect();
    let _ = writeln!(
        out,
        "{:indent$}fire_{}({});",
        "",
        c_ident(&a.name),
        args.join(", "),
        indent = indent
    );
}

fn emit_loop_header(depth: usize, count: u64, indent: usize, out: &mut String) {
    let _ = writeln!(
        out,
        "{:indent$}for (int i{depth} = 0; i{depth} < {count}; ++i{depth}) {{",
        "",
        indent = indent
    );
}

fn emit_ops(plan: &ExecutablePlan, out: &mut String) {
    let mut depth = 0usize;
    let mut indent = 4usize;
    for op in &plan.ops {
        match op {
            PlanOp::Fire { actor, count } => {
                if *count == 1 {
                    emit_fire(plan, *actor, indent, out);
                } else {
                    emit_loop_header(depth, *count, indent, out);
                    emit_fire(plan, *actor, indent + 4, out);
                    let _ = writeln!(out, "{:indent$}}}", "", indent = indent);
                }
            }
            PlanOp::BeginLoop { count } => {
                emit_loop_header(depth, *count, indent, out);
                depth += 1;
                indent += 4;
            }
            PlanOp::EndLoop => {
                depth -= 1;
                indent -= 4;
                let _ = writeln!(out, "{:indent$}}}", "", indent = indent);
            }
            PlanOp::ModeSwitch { next } => {
                // Single-mode emission never sees this op; a multi-mode
                // driver would branch to the next mode's period here.
                let _ = writeln!(
                    out,
                    "{:indent$}/* mode switch -> mode {next} */",
                    "",
                    indent = indent
                );
            }
        }
    }
}

fn emit_schedule_function(plan: &ExecutablePlan, out: &mut String) {
    out.push_str("\nvoid run_schedule(void) {\n");
    emit_ops(plan, out);
    out.push_str("}\n");
}

fn emit_actor_stubs(plan: &ExecutablePlan, out: &mut String) {
    for actor in &plan.actors {
        let _ = writeln!(
            out,
            "static void fire_{}({}) {{",
            c_ident(&actor.name),
            param_list(actor)
        );
        for i in 0..actor.inputs.len() {
            let _ = writeln!(out, "    (void)in{i};");
        }
        for i in 0..actor.outputs.len() {
            let _ = writeln!(out, "    out{i}[0] = 0.0f;");
        }
        out.push_str("}\n");
    }
}

fn emit_document(plan: &ExecutablePlan, standalone: bool) -> String {
    let _span = sdf_trace::span!("codegen.emit", model = plan.model.as_str());
    let mut out = String::new();
    match plan.model {
        MemoryModel::NonShared => {
            let _ = writeln!(
                out,
                "/* Generated by sdfmem: graph \"{}\", non-shared buffers ({} words). */",
                plan.graph, plan.pool_words
            );
        }
        MemoryModel::Shared => {
            let _ = writeln!(
                out,
                "/* Generated by sdfmem: graph \"{}\", shared pool of {} words. */",
                plan.graph, plan.pool_words
            );
        }
    }
    out.push('\n');
    emit_buffers(plan, &mut out);
    out.push('\n');
    if standalone {
        emit_actor_stubs(plan, &mut out);
    } else {
        emit_actor_decls(plan, &mut out);
    }
    emit_schedule_function(plan, &mut out);
    if standalone {
        out.push_str("\nint main(void) {\n    run_schedule();\n    return 0;\n}\n");
    }
    out
}

/// Emits the C implementation of `plan`: header comment, buffer
/// declarations for the plan's memory model, extern actor declarations
/// and `run_schedule`.
pub fn emit_c(plan: &ExecutablePlan) -> String {
    emit_document(plan, false)
}

/// Emits a self-contained, runnable C program: like [`emit_c`], but the
/// extern actor declarations become trivial stub definitions (each
/// writes its first output word) and a `main` runs one schedule period.
/// Used by the CI `codegen-smoke` step to prove the emitted scaffolding
/// compiles under `-Wall -Werror` and runs to completion.
pub fn emit_standalone_c(plan: &ExecutablePlan) -> String {
    emit_document(plan, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identifiers_sanitised() {
        assert_eq!(c_ident("16qamModem"), "_16qamModem");
        assert_eq!(c_ident("r_alp"), "r_alp");
        assert_eq!(c_ident("a-b c"), "a_b_c");
        assert_eq!(c_ident(""), "_");
    }
}
