//! A deterministic interpreter for [`ExecutablePlan`]s: the runtime
//! oracle behind `sdfmem simulate`.
//!
//! [`execute_plan`] fires the flattened schedule one firing at a time,
//! maintaining two views of the pool:
//!
//! * **token counts** per edge (exactly what `sdf_core::simulate`
//!   tracks), checked for conservation — after one period every edge
//!   must hold precisely its initial delay again;
//! * **poisoned pool bytes**: every produced token stamps its pool word
//!   with `(producing edge, firing number)`, every consumed token
//!   checks the stamp before clearing it.  If the allocator ever placed
//!   two simultaneously-live buffers on overlapping words, a consumer
//!   reads a foreign stamp (or a producer clobbers a live word) and the
//!   run aborts with both edges named.
//!
//! On top of the byte stamps, the interpreter checks *region* liveness
//! directly: whenever a buffer becomes live (goes from empty to
//! holding tokens) its `[offset, offset+size)` region must be disjoint
//! from every other live buffer's region — the end-to-end version of
//! the WIG + first-fit guarantee, at firing granularity (a strict
//! refinement of the schedule-step granularity the lifetime analysis
//! uses, so a correct allocation never trips it).
//!
//! The interpreter is pure: same plan in, same report out, no clocks
//! and no randomness — its counters (`exec.firings`,
//! `exec.peak_live_bytes`) are safe for regression baselines.

use std::fmt;

use crate::plan::{ExecutablePlan, PlanOp};

/// A violation found while executing a plan.
///
/// The message names the offending edges and firing so the failure is
/// actionable without re-running.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExecError {
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for ExecError {}

pub(crate) fn err(message: String) -> ExecError {
    ExecError { message }
}

/// What one clean interpretation of a plan measured.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExecReport {
    /// Actor firings executed (one schedule period).
    pub firings: u64,
    /// Peak of the summed sizes of simultaneously-live buffers, words.
    pub peak_live_words: u64,
    /// `peak_live_words` × the plan's token width.
    pub peak_live_bytes: u64,
    /// The plan's pool size, for the `peak ≤ pool` headline check.
    pub pool_words: u64,
    /// Final token count per binding (equal to the initial delays —
    /// enforced, not just reported).
    pub final_tokens: Vec<u64>,
}

/// One edge's FIFO state inside the pool: a ring over its region.
pub(crate) struct Fifo {
    /// Ring index of the oldest token (0..size).
    pub(crate) front: u64,
    /// Tokens currently on the edge.
    pub(crate) tokens: u64,
}

pub(crate) struct Interp<'p> {
    pub(crate) plan: &'p ExecutablePlan,
    /// One stamp per pool word: `Some((binding, firing))` while the
    /// word holds a live token.
    pub(crate) cells: Vec<Option<(usize, u64)>>,
    pub(crate) fifos: Vec<Fifo>,
    pub(crate) live: Vec<bool>,
    pub(crate) live_words: u64,
    pub(crate) peak_live_words: u64,
    pub(crate) firings: u64,
}

impl<'p> Interp<'p> {
    pub(crate) fn new(plan: &'p ExecutablePlan) -> Result<Interp<'p>, ExecError> {
        for b in &plan.bindings {
            if b.offset + b.size > plan.pool_words {
                return Err(err(format!(
                    "binding for edge {} ({} -> {}) spans words {}..{} outside the {}-word pool",
                    b.edge,
                    b.src,
                    b.snk,
                    b.offset,
                    b.offset + b.size,
                    plan.pool_words
                )));
            }
            if b.delay > b.size {
                return Err(err(format!(
                    "edge {} ({} -> {}) holds {} delay tokens but its region is only {} words",
                    b.edge, b.src, b.snk, b.delay, b.size
                )));
            }
        }
        let mut interp = Interp {
            plan,
            cells: vec![None; plan.pool_words as usize],
            fifos: plan
                .bindings
                .iter()
                .map(|b| Fifo {
                    front: 0,
                    tokens: b.delay,
                })
                .collect(),
            live: vec![false; plan.bindings.len()],
            live_words: 0,
            peak_live_words: 0,
            firings: 0,
        };
        // Pre-poison the initial delay tokens (producing firing 0) and
        // establish the initial live set.
        for i in 0..plan.bindings.len() {
            let b = &plan.bindings[i];
            if b.delay == 0 {
                continue;
            }
            interp.mark_live(i)?;
            for k in 0..b.delay {
                interp.cells[(b.offset + k) as usize] = Some((i, 0));
            }
        }
        interp.peak_live_words = interp.live_words;
        Ok(interp)
    }

    /// Marks binding `i` live, first checking its region against every
    /// currently-live region — the paper's allocation invariant, at
    /// runtime.
    fn mark_live(&mut self, i: usize) -> Result<(), ExecError> {
        if self.live[i] {
            return Ok(());
        }
        let b = &self.plan.bindings[i];
        for (j, other) in self.plan.bindings.iter().enumerate() {
            if !self.live[j] {
                continue;
            }
            let overlap = b.offset < other.offset + other.size && other.offset < b.offset + b.size;
            if overlap {
                return Err(err(format!(
                    "live-buffer overlap at firing {}: edge {} ({} -> {}, words {}..{}) and \
                     edge {} ({} -> {}, words {}..{}) are live at once",
                    self.firings,
                    b.edge,
                    b.src,
                    b.snk,
                    b.offset,
                    b.offset + b.size,
                    other.edge,
                    other.src,
                    other.snk,
                    other.offset,
                    other.offset + other.size
                )));
            }
        }
        self.live[i] = true;
        self.live_words += b.size;
        Ok(())
    }

    fn fire(&mut self, actor: usize) -> Result<(), ExecError> {
        self.firings += 1;
        let seq = self.firings;
        let a = &self.plan.actors[actor];
        // A buffer read or written by this firing is live *during* it,
        // matching the step-granularity lifetime model: outputs join
        // the live set before the inputs they may replace are retired.
        for &ob in &a.outputs {
            self.mark_live(ob)?;
        }
        self.peak_live_words = self.peak_live_words.max(self.live_words);
        // Consume: pop `cons` tokens from each input FIFO, verifying
        // every word still carries the producing edge's stamp.
        for &ib in &a.inputs {
            let b = &self.plan.bindings[ib];
            if self.fifos[ib].tokens < b.cons {
                return Err(err(format!(
                    "deadlock at firing {seq}: actor {} needs {} tokens on edge {} \
                     ({} -> {}) but only {} are present",
                    a.name, b.cons, b.edge, b.src, b.snk, self.fifos[ib].tokens
                )));
            }
            for k in 0..b.cons {
                let pos = (b.offset + (self.fifos[ib].front + k) % b.size) as usize;
                match self.cells[pos] {
                    Some((owner, _)) if owner == ib => self.cells[pos] = None,
                    Some((owner, written)) => {
                        let o = &self.plan.bindings[owner];
                        return Err(err(format!(
                            "poisoned read at firing {seq}: actor {} reading edge {} \
                             ({} -> {}) found word {} overwritten by edge {} \
                             ({} -> {}) at firing {written}",
                            a.name, b.edge, b.src, b.snk, pos, o.edge, o.src, o.snk
                        )));
                    }
                    None => {
                        return Err(err(format!(
                            "poisoned read at firing {seq}: actor {} reading edge {} \
                             ({} -> {}) found word {} dead (never written or already \
                             consumed)",
                            a.name, b.edge, b.src, b.snk, pos
                        )));
                    }
                }
            }
            self.fifos[ib].front = (self.fifos[ib].front + b.cons) % b.size;
            self.fifos[ib].tokens -= b.cons;
        }
        // Produce: push `prod` stamped tokens onto each output FIFO.
        for &ob in &a.outputs {
            let b = &self.plan.bindings[ob];
            if self.fifos[ob].tokens + b.prod > b.size {
                return Err(err(format!(
                    "overflow at firing {seq}: actor {} producing {} tokens on edge {} \
                     ({} -> {}) exceeds its {}-word region ({} already buffered)",
                    a.name, b.prod, b.edge, b.src, b.snk, b.size, self.fifos[ob].tokens
                )));
            }
            for k in 0..b.prod {
                let pos = (b.offset + (self.fifos[ob].front + self.fifos[ob].tokens + k) % b.size)
                    as usize;
                if let Some((owner, _)) = self.cells[pos] {
                    let o = &self.plan.bindings[owner];
                    return Err(err(format!(
                        "poisoned write at firing {seq}: actor {} producing on edge {} \
                         ({} -> {}) would clobber live word {} of edge {} ({} -> {})",
                        a.name, b.edge, b.src, b.snk, pos, o.edge, o.src, o.snk
                    )));
                }
                self.cells[pos] = Some((ob, seq));
            }
            self.fifos[ob].tokens += b.prod;
        }
        // Retire buffers this firing drained.
        for &ib in &a.inputs {
            if self.fifos[ib].tokens == 0 && self.live[ib] {
                self.live[ib] = false;
                self.live_words -= self.plan.bindings[ib].size;
            }
        }
        Ok(())
    }

    pub(crate) fn run_ops(&mut self) -> Result<(), ExecError> {
        // Iterative loop execution over the flattened ops: a stack of
        // (op index of BeginLoop, remaining iterations).
        let mut stack: Vec<(usize, u64)> = Vec::new();
        let mut pc = 0usize;
        while pc < self.plan.ops.len() {
            match self.plan.ops[pc] {
                PlanOp::Fire { actor, count } => {
                    for _ in 0..count {
                        self.fire(actor)?;
                    }
                    pc += 1;
                }
                PlanOp::BeginLoop { count } => {
                    if count == 0 {
                        // Skip the whole loop body.
                        let mut depth = 1usize;
                        pc += 1;
                        while depth > 0 {
                            match self.plan.ops[pc] {
                                PlanOp::BeginLoop { .. } => depth += 1,
                                PlanOp::EndLoop => depth -= 1,
                                PlanOp::Fire { .. } | PlanOp::ModeSwitch { .. } => {}
                            }
                            pc += 1;
                        }
                    } else {
                        stack.push((pc, count));
                        pc += 1;
                    }
                }
                PlanOp::EndLoop => {
                    let (start, remaining) = stack.pop().expect("balanced plan ops");
                    if remaining > 1 {
                        stack.push((start, remaining - 1));
                        pc = start + 1;
                    } else {
                        pc += 1;
                    }
                }
                // A period-terminating marker: the mode interpreter
                // performs the actual transition after this period's
                // conservation checks pass.
                PlanOp::ModeSwitch { .. } => {
                    pc += 1;
                }
            }
        }
        Ok(())
    }
}

/// Executes one period of `plan`, enforcing the four oracle invariants:
/// token conservation, stamp-checked reads, peak live bytes within the
/// pool, and no two simultaneously-live buffers on overlapping words.
///
/// # Errors
///
/// Returns an [`ExecError`] naming the firing and edges involved when
/// any invariant is violated — in particular when the allocation placed
/// two buffers that are live at once on overlapping pool words.
pub fn execute_plan(plan: &ExecutablePlan) -> Result<ExecReport, ExecError> {
    let _span = sdf_trace::span!(
        "exec.run",
        model = plan.model.as_str(),
        ops = plan.ops.len()
    );
    let mut interp = Interp::new(plan)?;
    interp.run_ops()?;
    // (a) token conservation: one period returns every edge to its
    // initial delay.
    for (i, b) in plan.bindings.iter().enumerate() {
        if interp.fifos[i].tokens != b.delay {
            return Err(err(format!(
                "token leak: edge {} ({} -> {}) ended the period with {} tokens, \
                 expected its initial delay {}",
                b.edge, b.src, b.snk, interp.fifos[i].tokens, b.delay
            )));
        }
    }
    let peak_live_bytes = interp.peak_live_words * plan.token_bytes;
    // (c) the live set never needs more words than the allocator's pool.
    if interp.peak_live_words > plan.pool_words {
        return Err(err(format!(
            "peak live footprint {} words exceeds the {}-word pool",
            interp.peak_live_words, plan.pool_words
        )));
    }
    sdf_trace::counter_add("exec.firings", interp.firings);
    sdf_trace::counter_add("exec.peak_live_bytes", peak_live_bytes);
    Ok(ExecReport {
        firings: interp.firings,
        peak_live_words: interp.peak_live_words,
        peak_live_bytes,
        pool_words: plan.pool_words,
        final_tokens: interp.fifos.iter().map(|f| f.tokens).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ExecutablePlan;
    use sdf_alloc::{allocate, Allocation, AllocationOrder, PlacementPolicy};
    use sdf_core::schedule::{SasNode, SasTree};
    use sdf_core::{RepetitionsVector, SdfGraph};
    use sdf_lifetime::tree::ScheduleTree;
    use sdf_lifetime::wig::IntersectionGraph;

    fn fig2() -> (SdfGraph, RepetitionsVector, SasTree) {
        let mut g = SdfGraph::new("fig2");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        let c = g.add_actor("C");
        g.add_edge(a, b, 20, 10).unwrap();
        g.add_edge(b, c, 20, 10).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        let sas = SasTree::new(SasNode::branch(
            1,
            SasNode::leaf(a, 1),
            SasNode::branch(2, SasNode::leaf(b, 1), SasNode::leaf(c, 2)),
        ));
        (g, q, sas)
    }

    fn shared_plan() -> ExecutablePlan {
        let (g, q, sas) = fig2();
        let tree = ScheduleTree::build(&g, &q, &sas).unwrap();
        let wig = IntersectionGraph::build(&g, &q, &tree);
        let alloc = allocate(
            &wig,
            AllocationOrder::DurationDescending,
            PlacementPolicy::FirstFit,
        );
        ExecutablePlan::lower_shared(&g, &q, &sas, &wig, &alloc).unwrap()
    }

    #[test]
    fn clean_shared_plan_executes_and_conserves_tokens() {
        let plan = shared_plan();
        let report = execute_plan(&plan).expect("clean execution");
        assert_eq!(report.firings, plan.total_firings());
        assert!(report.peak_live_words <= report.pool_words);
        assert_eq!(report.peak_live_bytes, report.peak_live_words * 4);
        for (i, b) in plan.bindings.iter().enumerate() {
            assert_eq!(report.final_tokens[i], b.delay);
        }
    }

    #[test]
    fn nonshared_plan_peak_matches_liveness() {
        let (g, q, sas) = fig2();
        let plan = ExecutablePlan::lower_nonshared(&g, &q, &sas.to_looped_schedule()).unwrap();
        let report = execute_plan(&plan).expect("clean execution");
        // Both 20-word buffers are live at once under A(2B(2C)).
        assert_eq!(report.peak_live_words, 40);
        assert_eq!(report.pool_words, 40);
    }

    #[test]
    fn deliberate_overlap_trips_the_oracle() {
        // Hand the interpreter a corrupt allocation: both fig2 buffers
        // at offset 0 even though their lifetimes overlap.  The oracle
        // must fire — this is the negative control proving the
        // invariant checks are not vacuous.
        let (g, q, sas) = fig2();
        let tree = ScheduleTree::build(&g, &q, &sas).unwrap();
        let wig = IntersectionGraph::build(&g, &q, &tree);
        let bad = Allocation::from_parts(vec![0, 0], 20);
        let plan = ExecutablePlan::lower_shared(&g, &q, &sas, &wig, &bad).unwrap();
        let e = execute_plan(&plan).unwrap_err();
        assert!(
            e.message.contains("live-buffer overlap") || e.message.contains("poisoned"),
            "{e}"
        );
    }

    #[test]
    fn delay_tokens_count_as_live_from_the_start() {
        let mut g = SdfGraph::new("delayed");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        g.add_edge_with_delay(a, b, 1, 1, 2).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        let sas = SasTree::new(SasNode::branch(1, SasNode::leaf(a, 1), SasNode::leaf(b, 1)));
        let tree = ScheduleTree::build(&g, &q, &sas).unwrap();
        let wig = IntersectionGraph::build(&g, &q, &tree);
        let alloc = allocate(
            &wig,
            AllocationOrder::DurationDescending,
            PlacementPolicy::FirstFit,
        );
        let plan = ExecutablePlan::lower_shared(&g, &q, &sas, &wig, &alloc).unwrap();
        let report = execute_plan(&plan).expect("clean execution");
        assert_eq!(report.final_tokens, vec![2]);
        assert!(report.peak_live_words >= 2);
    }

    #[test]
    fn corrupt_binding_rejected_before_execution() {
        let mut plan = shared_plan();
        plan.bindings[0].offset = plan.pool_words; // off the end
        let e = execute_plan(&plan).unwrap_err();
        assert!(e.message.contains("outside"), "{e}");
    }
}
