//! C code generation from looped SDF schedules.
//!
//! The paper's synthesis flow threads actor code blocks together following
//! the schedule; this crate emits that scaffolding as compilable C:
//! nested `for` loops mirroring the loop hierarchy, one extern firing
//! function per actor, and buffer definitions under either memory model:
//!
//! * **non-shared** — one statically sized array per edge
//!   ([`generate_nonshared_c`]);
//! * **shared** — a single memory pool with per-edge offsets taken from a
//!   first-fit allocation ([`generate_shared_c`]).
//!
//! # Examples
//!
//! ```
//! use sdf_core::{SdfGraph, RepetitionsVector, LoopedSchedule};
//! use sdf_codegen::generate_nonshared_c;
//!
//! # fn main() -> Result<(), sdf_core::SdfError> {
//! let mut g = SdfGraph::new("fig2");
//! let a = g.add_actor("A");
//! let b = g.add_actor("B");
//! let c = g.add_actor("C");
//! g.add_edge(a, b, 20, 10)?;
//! g.add_edge(b, c, 20, 10)?;
//! let q = RepetitionsVector::compute(&g)?;
//! let s = LoopedSchedule::parse("A(2B(2C))", &g)?;
//! let code = generate_nonshared_c(&g, &q, &s)?;
//! assert!(code.contains("float buf_e0[20]"));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

use std::fmt::Write as _;

use sdf_alloc::Allocation;
use sdf_core::error::SdfError;
use sdf_core::graph::{ActorId, SdfGraph};
use sdf_core::repetitions::RepetitionsVector;
use sdf_core::schedule::{LoopedSchedule, SasTree, ScheduleNode};
use sdf_core::simulate::validate_schedule;
use sdf_lifetime::wig::IntersectionGraph;

/// Sanitises a name into a C identifier (alphanumerics and underscores,
/// never starting with a digit).
fn c_ident(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, ch) in name.chars().enumerate() {
        if ch.is_ascii_alphanumeric() || ch == '_' {
            if i == 0 && ch.is_ascii_digit() {
                out.push('_');
            }
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Emits the extern firing-function declarations, one per actor, with a
/// pointer parameter per incident edge.
fn emit_actor_decls(graph: &SdfGraph, out: &mut String) {
    for a in graph.actors() {
        let ins = graph.in_edges(a).len();
        let outs = graph.out_edges(a).len();
        let mut params: Vec<String> = Vec::with_capacity(ins + outs);
        for (i, _) in graph.in_edges(a).iter().enumerate() {
            params.push(format!("const float *in{i}"));
        }
        for (i, _) in graph.out_edges(a).iter().enumerate() {
            params.push(format!("float *out{i}"));
        }
        let params = if params.is_empty() {
            "void".to_string()
        } else {
            params.join(", ")
        };
        let _ = writeln!(
            out,
            "extern void fire_{}({});",
            c_ident(graph.actor_name(a)),
            params
        );
    }
}

/// Emits one firing call for `actor`, passing its edge buffers.
fn emit_fire(graph: &SdfGraph, actor: ActorId, indent: usize, out: &mut String) {
    let mut args: Vec<String> = Vec::new();
    for &e in graph.in_edges(actor) {
        args.push(format!("buf_e{}", e.index()));
    }
    for &e in graph.out_edges(actor) {
        args.push(format!("buf_e{}", e.index()));
    }
    let _ = writeln!(
        out,
        "{:indent$}fire_{}({});",
        "",
        c_ident(graph.actor_name(actor)),
        args.join(", "),
        indent = indent
    );
}

fn emit_body(
    graph: &SdfGraph,
    body: &[ScheduleNode],
    indent: usize,
    depth: usize,
    out: &mut String,
) {
    for node in body {
        match node {
            ScheduleNode::Fire { actor, count } => {
                if *count == 1 {
                    emit_fire(graph, *actor, indent, out);
                } else {
                    let _ = writeln!(
                        out,
                        "{:indent$}for (int i{depth} = 0; i{depth} < {count}; ++i{depth}) {{",
                        "",
                        indent = indent
                    );
                    emit_fire(graph, *actor, indent + 4, out);
                    let _ = writeln!(out, "{:indent$}}}", "", indent = indent);
                }
            }
            ScheduleNode::Loop { count, body } => {
                let _ = writeln!(
                    out,
                    "{:indent$}for (int i{depth} = 0; i{depth} < {count}; ++i{depth}) {{",
                    "",
                    indent = indent
                );
                emit_body(graph, body, indent + 4, depth + 1, out);
                let _ = writeln!(out, "{:indent$}}}", "", indent = indent);
            }
        }
    }
}

fn emit_schedule_function(graph: &SdfGraph, schedule: &LoopedSchedule, out: &mut String) {
    out.push_str("\nvoid run_schedule(void) {\n");
    emit_body(graph, schedule.body(), 4, 0, out);
    out.push_str("}\n");
}

/// Generates C for the non-shared model: one array per edge sized to its
/// `max_tokens` under `schedule`.
///
/// # Errors
///
/// Returns an error if `schedule` is not a valid schedule for `graph`
/// (the simulation that sizes the buffers must complete).
pub fn generate_nonshared_c(
    graph: &SdfGraph,
    q: &RepetitionsVector,
    schedule: &LoopedSchedule,
) -> Result<String, SdfError> {
    let report = validate_schedule(graph, schedule, q)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "/* Generated by sdfmem: graph \"{}\", non-shared buffers ({} words). */",
        graph.name(),
        report.bufmem()
    );
    out.push('\n');
    for (id, e) in graph.edges() {
        let _ = writeln!(
            out,
            "float buf_e{}[{}]; /* {} -> {} */",
            id.index(),
            report.max_tokens(id).max(1),
            graph.actor_name(e.src),
            graph.actor_name(e.snk)
        );
    }
    out.push('\n');
    emit_actor_decls(graph, &mut out);
    emit_schedule_function(graph, schedule, &mut out);
    Ok(out)
}

/// Generates C for the shared model: a single `float mem[total]` pool with
/// per-edge offset macros taken from `allocation`.
///
/// `wig` and `allocation` must come from the same schedule as `sas` (the
/// usual pipeline guarantees this).
///
/// # Errors
///
/// Returns an error if the SAS is invalid for the graph, or if the
/// allocation does not cover every edge of the graph.
pub fn generate_shared_c(
    graph: &SdfGraph,
    q: &RepetitionsVector,
    sas: &SasTree,
    wig: &IntersectionGraph,
    allocation: &Allocation,
) -> Result<String, SdfError> {
    sas.validate(graph, q)?;
    let schedule = sas.to_looped_schedule();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "/* Generated by sdfmem: graph \"{}\", shared pool of {} words. */",
        graph.name(),
        allocation.total()
    );
    out.push('\n');
    let _ = writeln!(out, "float mem[{}];", allocation.total().max(1));
    for (id, e) in graph.edges() {
        let i = wig.buffer_of_edge(id)?;
        let _ = writeln!(
            out,
            "#define buf_e{} (mem + {}) /* {} -> {}, {} words */",
            id.index(),
            allocation.offset(i),
            graph.actor_name(e.src),
            graph.actor_name(e.snk),
            wig.buffer(i).lifetime.size()
        );
    }
    out.push('\n');
    emit_actor_decls(graph, &mut out);
    emit_schedule_function(graph, &schedule, &mut out);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdf_alloc::{allocate, AllocationOrder, PlacementPolicy};
    use sdf_core::schedule::{SasNode, SasTree};
    use sdf_lifetime::tree::ScheduleTree;

    fn fig2() -> (SdfGraph, RepetitionsVector, SasTree) {
        let mut g = SdfGraph::new("fig2");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        let c = g.add_actor("C");
        g.add_edge(a, b, 20, 10).unwrap();
        g.add_edge(b, c, 20, 10).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        let sas = SasTree::new(SasNode::branch(
            1,
            SasNode::leaf(a, 1),
            SasNode::branch(2, SasNode::leaf(b, 1), SasNode::leaf(c, 2)),
        ));
        (g, q, sas)
    }

    fn balanced(code: &str) {
        let mut depth = 0i64;
        for ch in code.chars() {
            match ch {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0, "unbalanced braces in:\n{code}");
        }
        assert_eq!(depth, 0, "unbalanced braces in:\n{code}");
    }

    #[test]
    fn nonshared_arrays_sized_by_max_tokens() {
        let (g, q, sas) = fig2();
        let code = generate_nonshared_c(&g, &q, &sas.to_looped_schedule()).unwrap();
        assert!(code.contains("float buf_e0[20]"), "{code}");
        assert!(code.contains("float buf_e1[20]"), "{code}");
        assert!(code.contains("for (int i0 = 0; i0 < 2; ++i0)"), "{code}");
        assert!(code.contains("fire_A(buf_e0);"), "{code}");
        assert!(code.contains("fire_B(buf_e0, buf_e1);"), "{code}");
        assert!(code.contains("fire_C(buf_e1);"), "{code}");
        balanced(&code);
    }

    #[test]
    fn shared_pool_and_offsets() {
        let (g, q, sas) = fig2();
        let tree = ScheduleTree::build(&g, &q, &sas).unwrap();
        let wig = IntersectionGraph::build(&g, &q, &tree);
        let alloc = allocate(
            &wig,
            AllocationOrder::DurationDescending,
            PlacementPolicy::FirstFit,
        );
        let code = generate_shared_c(&g, &q, &sas, &wig, &alloc).unwrap();
        assert!(
            code.contains(&format!("float mem[{}];", alloc.total())),
            "{code}"
        );
        assert!(code.contains("#define buf_e0 (mem + "), "{code}");
        assert!(code.contains("#define buf_e1 (mem + "), "{code}");
        balanced(&code);
    }

    #[test]
    fn counted_firings_become_loops() {
        let (g, q, _) = fig2();
        let flat = LoopedSchedule::parse("A(2B)(4C)", &g).unwrap();
        let code = generate_nonshared_c(&g, &q, &flat).unwrap();
        assert!(code.contains("i0 < 4"), "{code}");
        balanced(&code);
    }

    #[test]
    fn identifiers_sanitised() {
        assert_eq!(c_ident("16qamModem"), "_16qamModem");
        assert_eq!(c_ident("r_alp"), "r_alp");
        assert_eq!(c_ident("a-b c"), "a_b_c");
        assert_eq!(c_ident(""), "_");
    }

    #[test]
    fn invalid_schedule_rejected() {
        let (g, q, _) = fig2();
        let bad = LoopedSchedule::parse("A B C", &g).unwrap();
        assert!(generate_nonshared_c(&g, &q, &bad).is_err());
    }

    #[test]
    fn source_only_actor_gets_void_params() {
        let mut g = SdfGraph::new("src");
        let a = g.add_actor("A");
        let q = RepetitionsVector::compute(&g).unwrap();
        let s = LoopedSchedule::parse("A", &g).unwrap();
        let code = generate_nonshared_c(&g, &q, &s).unwrap();
        assert!(code.contains("extern void fire_A(void);"), "{code}");
        let _ = a;
    }
}
