//! C code generation and plan execution for looped SDF schedules.
//!
//! The paper's synthesis flow threads actor code blocks together
//! following the schedule; this crate owns everything downstream of the
//! analysis, organised around one IR:
//!
//! * [`plan`] — the typed [`ExecutablePlan`]: the flattened loop
//!   schedule, one buffer binding per edge (pool offset, size, token
//!   width) and the pool layout.  Analysis results are *lowered* into a
//!   plan ([`ExecutablePlan::lower_nonshared`],
//!   [`ExecutablePlan::lower_shared`]); the plan is the only input the
//!   backends accept.
//! * [`c_backend`] — emits compilable C from a plan ([`emit_c`]):
//!   nested `for` loops mirroring the loop hierarchy, one extern firing
//!   function per actor, and buffer definitions under either memory
//!   model (one array per edge, or one pool with per-edge offsets).
//! * [`interp`] — a deterministic interpreter ([`execute_plan`]) that
//!   fires the flattened schedule with write-poisoned pool bytes: the
//!   runtime oracle proving token conservation and that no two
//!   simultaneously-live buffers share pool words.
//!
//! The classic one-call emitters are kept as thin wrappers:
//!
//! * **non-shared** — [`generate_nonshared_c`];
//! * **shared** — [`generate_shared_c`].
//!
//! # Examples
//!
//! ```
//! use sdf_core::{SdfGraph, RepetitionsVector, LoopedSchedule};
//! use sdf_codegen::{generate_nonshared_c, ExecutablePlan, execute_plan};
//!
//! # fn main() -> Result<(), sdf_core::SdfError> {
//! let mut g = SdfGraph::new("fig2");
//! let a = g.add_actor("A");
//! let b = g.add_actor("B");
//! let c = g.add_actor("C");
//! g.add_edge(a, b, 20, 10)?;
//! g.add_edge(b, c, 20, 10)?;
//! let q = RepetitionsVector::compute(&g)?;
//! let s = LoopedSchedule::parse("A(2B(2C))", &g)?;
//! let code = generate_nonshared_c(&g, &q, &s)?;
//! assert!(code.contains("float buf_e0[20]"));
//! // The same schedule, executed instead of emitted:
//! let plan = ExecutablePlan::lower_nonshared(&g, &q, &s)?;
//! let report = execute_plan(&plan).expect("clean run");
//! assert_eq!(report.firings, 7);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod c_backend;
pub mod interp;
pub mod modes;
pub mod plan;

pub use c_backend::{emit_c, emit_standalone_c};
pub use interp::{execute_plan, ExecError, ExecReport};
pub use modes::{
    execute_mode_plan, ActivationReport, ModeExecReport, ModeExecutablePlan, ModePlanEntry,
    PersistentBinding,
};
pub use plan::{BufferBinding, ExecutablePlan, MemoryModel, PlanActor, PlanOp, TOKEN_BYTES};

use sdf_alloc::Allocation;
use sdf_core::error::SdfError;
use sdf_core::graph::SdfGraph;
use sdf_core::repetitions::RepetitionsVector;
use sdf_core::schedule::{LoopedSchedule, SasTree};
use sdf_lifetime::wig::IntersectionGraph;

/// Generates C for the non-shared model: one array per edge sized to its
/// `max_tokens` under `schedule`.
///
/// Equivalent to [`ExecutablePlan::lower_nonshared`] followed by
/// [`emit_c`].
///
/// # Errors
///
/// Returns an error if `schedule` is not a valid schedule for `graph`
/// (the simulation that sizes the buffers must complete).
pub fn generate_nonshared_c(
    graph: &SdfGraph,
    q: &RepetitionsVector,
    schedule: &LoopedSchedule,
) -> Result<String, SdfError> {
    Ok(emit_c(&ExecutablePlan::lower_nonshared(
        graph, q, schedule,
    )?))
}

/// Generates C for the shared model: a single `float mem[total]` pool with
/// per-edge offset macros taken from `allocation`.
///
/// `wig` and `allocation` must come from the same schedule as `sas` (the
/// usual pipeline guarantees this).  Equivalent to
/// [`ExecutablePlan::lower_shared`] followed by [`emit_c`].
///
/// # Errors
///
/// Returns an error if the SAS is invalid for the graph, or if the
/// allocation does not cover every edge of the graph.
pub fn generate_shared_c(
    graph: &SdfGraph,
    q: &RepetitionsVector,
    sas: &SasTree,
    wig: &IntersectionGraph,
    allocation: &Allocation,
) -> Result<String, SdfError> {
    Ok(emit_c(&ExecutablePlan::lower_shared(
        graph, q, sas, wig, allocation,
    )?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdf_alloc::{allocate, AllocationOrder, PlacementPolicy};
    use sdf_core::schedule::{SasNode, SasTree};
    use sdf_lifetime::tree::ScheduleTree;

    fn fig2() -> (SdfGraph, RepetitionsVector, SasTree) {
        let mut g = SdfGraph::new("fig2");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        let c = g.add_actor("C");
        g.add_edge(a, b, 20, 10).unwrap();
        g.add_edge(b, c, 20, 10).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        let sas = SasTree::new(SasNode::branch(
            1,
            SasNode::leaf(a, 1),
            SasNode::branch(2, SasNode::leaf(b, 1), SasNode::leaf(c, 2)),
        ));
        (g, q, sas)
    }

    fn balanced(code: &str) {
        let mut depth = 0i64;
        for ch in code.chars() {
            match ch {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0, "unbalanced braces in:\n{code}");
        }
        assert_eq!(depth, 0, "unbalanced braces in:\n{code}");
    }

    #[test]
    fn nonshared_arrays_sized_by_max_tokens() {
        let (g, q, sas) = fig2();
        let code = generate_nonshared_c(&g, &q, &sas.to_looped_schedule()).unwrap();
        assert!(code.contains("float buf_e0[20]"), "{code}");
        assert!(code.contains("float buf_e1[20]"), "{code}");
        assert!(code.contains("for (int i0 = 0; i0 < 2; ++i0)"), "{code}");
        assert!(code.contains("fire_A(buf_e0);"), "{code}");
        assert!(code.contains("fire_B(buf_e0, buf_e1);"), "{code}");
        assert!(code.contains("fire_C(buf_e1);"), "{code}");
        balanced(&code);
    }

    #[test]
    fn shared_pool_and_offsets() {
        let (g, q, sas) = fig2();
        let tree = ScheduleTree::build(&g, &q, &sas).unwrap();
        let wig = IntersectionGraph::build(&g, &q, &tree);
        let alloc = allocate(
            &wig,
            AllocationOrder::DurationDescending,
            PlacementPolicy::FirstFit,
        );
        let code = generate_shared_c(&g, &q, &sas, &wig, &alloc).unwrap();
        assert!(
            code.contains(&format!("float mem[{}];", alloc.total())),
            "{code}"
        );
        assert!(code.contains("#define buf_e0 (mem + "), "{code}");
        assert!(code.contains("#define buf_e1 (mem + "), "{code}");
        balanced(&code);
    }

    #[test]
    fn counted_firings_become_loops() {
        let (g, q, _) = fig2();
        let flat = LoopedSchedule::parse("A(2B)(4C)", &g).unwrap();
        let code = generate_nonshared_c(&g, &q, &flat).unwrap();
        assert!(code.contains("i0 < 4"), "{code}");
        balanced(&code);
    }

    #[test]
    fn invalid_schedule_rejected() {
        let (g, q, _) = fig2();
        let bad = LoopedSchedule::parse("A B C", &g).unwrap();
        assert!(generate_nonshared_c(&g, &q, &bad).is_err());
    }

    #[test]
    fn source_only_actor_gets_void_params() {
        let mut g = SdfGraph::new("src");
        let a = g.add_actor("A");
        let q = RepetitionsVector::compute(&g).unwrap();
        let s = LoopedSchedule::parse("A", &g).unwrap();
        let code = generate_nonshared_c(&g, &q, &s).unwrap();
        assert!(code.contains("extern void fire_A(void);"), "{code}");
        let _ = a;
    }

    #[test]
    fn standalone_program_has_stubs_and_main() {
        let (g, q, sas) = fig2();
        let tree = ScheduleTree::build(&g, &q, &sas).unwrap();
        let wig = IntersectionGraph::build(&g, &q, &tree);
        let alloc = allocate(
            &wig,
            AllocationOrder::DurationDescending,
            PlacementPolicy::FirstFit,
        );
        let plan = ExecutablePlan::lower_shared(&g, &q, &sas, &wig, &alloc).unwrap();
        let code = emit_standalone_c(&plan);
        assert!(code.contains("static void fire_A(float *out0) {"), "{code}");
        assert!(code.contains("(void)in0;"), "{code}");
        assert!(code.contains("int main(void) {"), "{code}");
        assert!(!code.contains("extern"), "{code}");
        balanced(&code);
    }
}
