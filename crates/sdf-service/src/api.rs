//! The unified Request/Response API.
//!
//! Every way of asking the toolkit a question — the `sdfmem` CLI
//! subcommands and the `sdfmemd` daemon's wire protocol — goes through
//! the same two types: a [`ServiceRequest`] names the operation and
//! its options, [`execute_request`] runs it against the engine, and
//! the resulting [`ServiceResponse`] owns the typed result.  One API,
//! two transports.
//!
//! On the wire both directions are single-line JSON documents under
//! the standard envelope (`kind` + `schema_version` first).  Response
//! envelopes always place the `payload` member **last**, so a client
//! can lift the embedded result document out as a verbatim byte range
//! without a round-tripping JSON serializer — byte identity between
//! cached and fresh results is part of the service contract.
//!
//! Requests that embed a graph are *content-addressed*: the graph text
//! is canonicalised by parsing and re-printing it (normalising
//! whitespace, comments and `actor` declarations while preserving the
//! author's actor order — reordering actors can legitimately change
//! heuristic tie-breaks, so order is semantic here), and the
//! [`canonical string`](ServiceRequest::canonical_string) prepends the
//! operation and every option that affects the result.

use std::fmt::Write as _;
use std::time::Instant;

use sdf_codegen::{execute_plan, ExecReport, ExecutablePlan};
use sdf_core::graph::SdfGraph;
use sdf_core::repetitions::RepetitionsVector;
use sdf_regress::{diff, DiffOptions, Profile, RegressionReport, ReportFormat as DiffFormat};
use sdf_trace::flight::stages_json;
use sdf_trace::json::{self, escape, Json};
use sdf_trace::{CacheStatus, FlightRecord, Histogram, StageSpan};
use sdfmem::engine::{AnalysisBuilder, StageTimings, Synthesis};
use sdfmem::incremental::{apply_edits, dirty_edges, EditScript};
use sdfmem::modes::{synthesize_modes, ModeSynthesis};
use sdfmem::pipeline::Analysis;
use sdfmem::sentinel::{capture_profile, CaptureOptions};

use crate::explain::ExplainReport;
use crate::hash::fingerprint;

/// Topological-sort heuristic selector shared by plan-shaped requests.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum OrderMethod {
    /// APGAN (bottom-up clustering).
    #[default]
    Apgan,
    /// RPMC (top-down min-cut partitioning).
    Rpmc,
}

impl OrderMethod {
    /// The wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            OrderMethod::Apgan => "apgan",
            OrderMethod::Rpmc => "rpmc",
        }
    }

    /// Parses a wire name.
    pub fn parse(name: &str) -> Option<OrderMethod> {
        match name {
            "apgan" => Some(OrderMethod::Apgan),
            "rpmc" => Some(OrderMethod::Rpmc),
            _ => None,
        }
    }
}

/// Buffer-model selector shared by plan-shaped requests.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum MemoryModel {
    /// One shared pool, lifetime-packed (the paper's contribution).
    #[default]
    Shared,
    /// One array per edge (the DPPO baseline).
    NonShared,
}

impl MemoryModel {
    /// The wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            MemoryModel::Shared => "shared",
            MemoryModel::NonShared => "nonshared",
        }
    }

    /// Parses a wire name.
    pub fn parse(name: &str) -> Option<MemoryModel> {
        match name {
            "shared" => Some(MemoryModel::Shared),
            "nonshared" => Some(MemoryModel::NonShared),
            _ => None,
        }
    }
}

/// Machine-readable failure class of a [`ServiceError`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request envelope itself is malformed or names an unknown or
    /// inapplicable operation.
    BadRequest,
    /// An embedded input document (graph or profile) does not parse.
    ParseError,
    /// The engine rejected the graph (inconsistency, deadlock, …) or
    /// failed while executing the operation.
    EngineError,
    /// The daemon is shutting down or the job queue dropped the job.
    Unavailable,
}

impl ErrorCode {
    /// The wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::ParseError => "parse_error",
            ErrorCode::EngineError => "engine_error",
            ErrorCode::Unavailable => "unavailable",
        }
    }
}

/// A typed failure: which class, which input (when one is at fault)
/// and a human-readable message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServiceError {
    /// Failure class.
    pub code: ErrorCode,
    /// The request member at fault (`"graph"`, `"baseline"`,
    /// `"candidate"`), when the failure is attributable to one.
    pub input: Option<&'static str>,
    /// Human-readable detail.
    pub message: String,
}

impl ServiceError {
    fn bad_request(message: impl Into<String>) -> ServiceError {
        ServiceError {
            code: ErrorCode::BadRequest,
            input: None,
            message: message.into(),
        }
    }

    fn parse(input: &'static str, message: impl Into<String>) -> ServiceError {
        ServiceError {
            code: ErrorCode::ParseError,
            input: Some(input),
            message: message.into(),
        }
    }

    pub(crate) fn engine(message: impl Into<String>) -> ServiceError {
        ServiceError {
            code: ErrorCode::EngineError,
            input: None,
            message: message.into(),
        }
    }
}

/// One operation against the synthesis engine.
///
/// The first five variants are the CLI's `analyze`, `codegen`/plan,
/// `simulate`, `baseline` and `compare` in request form; `Stats` and
/// `Shutdown` are daemon-side control operations and are rejected by
/// the in-process backend.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceRequest {
    /// Sweep the candidate lattice and return the engine report.
    Analyze {
        /// Graph text in the [`sdf_core::io`] format.
        graph: String,
        /// Evaluate candidates serially instead of in parallel.
        serial: bool,
        /// Sweep every loop-optimizer variant, not just SDPPO.
        full: bool,
    },
    /// Lower the graph to an [`ExecutablePlan`].
    Plan {
        /// Graph text.
        graph: String,
        /// Topological-sort heuristic.
        method: OrderMethod,
        /// Buffer model.
        model: MemoryModel,
    },
    /// Lower the graph and execute the plan under the interpreter
    /// oracle.
    Simulate {
        /// Graph text.
        graph: String,
        /// Topological-sort heuristic.
        method: OrderMethod,
        /// Buffer model.
        model: MemoryModel,
    },
    /// Build the allocation-provenance report for the default shared
    /// lowering (the `allocation_explain` document).
    Explain {
        /// Graph text.
        graph: String,
    },
    /// Re-synthesise an edited graph: a base graph plus a textual edit
    /// script ([`EditScript`] lines). The daemon routes this through a
    /// per-graph [`sdfmem::IncrementalSession`] (delta path, warm
    /// chain-DP memo), falling back to a cold run when no session
    /// matches the base; the in-process backend always runs cold. The
    /// payload is deterministic either way — the delta path is
    /// bit-identical to cold synthesis — so `edit` is cacheable.
    Edit {
        /// Base graph text.
        graph: String,
        /// Edit script text (`set-rate`/`set-delay`/`add-edge`/
        /// `remove-edge` lines).
        edits: String,
    },
    /// Synthesise a multi-mode scenario graph into one shared pool
    /// (the `mode_report` document): per-mode plans on the candidate
    /// lattice, merged cross-mode allocation, persistent-buffer table
    /// and the transition oracle's verdict. Deterministic, so
    /// cacheable.
    Modes {
        /// Mode-graph text in the [`sdf_core::mode`] format.
        graph: String,
    },
    /// Capture a regression-sentinel baseline profile. Never cached:
    /// the profile embeds wall-clock timing statistics.
    Baseline {
        /// Graph text.
        graph: String,
        /// Timing repeats.
        repeats: u32,
        /// Sweep every loop-optimizer variant.
        full: bool,
        /// Perturbation spec (test hook).
        perturb: Option<String>,
    },
    /// Diff two baseline profiles.
    Compare {
        /// Baseline profile document text.
        baseline: String,
        /// Candidate profile document text.
        candidate: String,
        /// Also gate on timing-band violations.
        gate: bool,
        /// Gate exemptions (trailing `*` matches a prefix).
        allow: Vec<String>,
    },
    /// Daemon only: report the `service.*` counters, gauges and
    /// histogram summaries.
    Stats,
    /// Daemon only: dump every instrument as Prometheus-style text
    /// exposition.
    Metrics,
    /// Daemon only: drain the flight recorder (per-request summaries,
    /// oldest first).
    Events,
    /// Daemon only: stop accepting work and exit (responds with final
    /// stats).
    Shutdown,
}

impl ServiceRequest {
    /// The wire name of the operation.
    pub fn op(&self) -> &'static str {
        match self {
            ServiceRequest::Analyze { .. } => "analyze",
            ServiceRequest::Plan { .. } => "plan",
            ServiceRequest::Simulate { .. } => "simulate",
            ServiceRequest::Explain { .. } => "explain",
            ServiceRequest::Edit { .. } => "edit",
            ServiceRequest::Modes { .. } => "modes",
            ServiceRequest::Baseline { .. } => "baseline",
            ServiceRequest::Compare { .. } => "compare",
            ServiceRequest::Stats => "stats",
            ServiceRequest::Metrics => "metrics",
            ServiceRequest::Events => "events",
            ServiceRequest::Shutdown => "shutdown",
        }
    }

    /// Whether results of this request may be served from the cache.
    ///
    /// `analyze`, `plan`, `simulate`, `explain`, `edit` and `modes`
    /// are deterministic functions of the canonical request (`edit`'s
    /// delta path is bit-identical to a cold run, so both produce the
    /// same payload bytes). `baseline` embeds timing statistics and
    /// `compare` is cheap pure post-processing; neither is cached.
    pub fn cacheable(&self) -> bool {
        matches!(
            self,
            ServiceRequest::Analyze { .. }
                | ServiceRequest::Plan { .. }
                | ServiceRequest::Simulate { .. }
                | ServiceRequest::Explain { .. }
                | ServiceRequest::Edit { .. }
                | ServiceRequest::Modes { .. }
        )
    }

    /// The canonical text this request is content-addressed by: the
    /// operation, every result-affecting option, and the canonicalised
    /// graph.
    ///
    /// # Errors
    ///
    /// Fails when the embedded graph does not parse (the same error
    /// the execution path would report).
    pub fn canonical_string(&self) -> Result<String, ServiceError> {
        match self {
            ServiceRequest::Analyze { graph, full, .. } => {
                // `serial` is excluded: the engine guarantees the
                // winner is identical either way, so both forms share
                // a cache slot (the report's `parallel` field would
                // differ, so canonicalise to the parallel form on the
                // daemon — see `execute_request_cached`).
                let g = parse_graph_input(graph)?;
                Ok(format!(
                    "analyze full={full}\n{}",
                    sdf_core::io::to_text(&g)
                ))
            }
            ServiceRequest::Plan {
                graph,
                method,
                model,
            } => {
                let g = parse_graph_input(graph)?;
                Ok(format!(
                    "plan method={} model={}\n{}",
                    method.as_str(),
                    model.as_str(),
                    sdf_core::io::to_text(&g)
                ))
            }
            ServiceRequest::Simulate {
                graph,
                method,
                model,
            } => {
                let g = parse_graph_input(graph)?;
                Ok(format!(
                    "simulate method={} model={}\n{}",
                    method.as_str(),
                    model.as_str(),
                    sdf_core::io::to_text(&g)
                ))
            }
            ServiceRequest::Explain { graph } => {
                let g = parse_graph_input(graph)?;
                Ok(format!("explain\n{}", sdf_core::io::to_text(&g)))
            }
            ServiceRequest::Edit { graph, edits } => {
                // The key covers the *base* graph and the canonical
                // edit script, because the payload reports the edit
                // delta (dirty edges) alongside the edited graph's
                // synthesis. A `@edits` line separates the two parts;
                // it cannot collide with canonical graph text (whose
                // lines all start with `graph`/`actor`/`edge`).
                let g = parse_graph_input(graph)?;
                let script = parse_edits_input(edits)?;
                Ok(format!(
                    "edit\n{}@edits\n{}",
                    sdf_core::io::to_text(&g),
                    script.to_text()
                ))
            }
            ServiceRequest::Modes { graph } => {
                let mg = parse_mode_graph_input(graph)?;
                Ok(format!("modes\n{}", sdf_core::mode::to_mode_text(&mg)))
            }
            _ => Err(ServiceError::bad_request(format!(
                "`{}` requests are not content-addressable",
                self.op()
            ))),
        }
    }

    /// The `(fingerprint, canonical)` cache key pair, for cacheable
    /// requests.
    ///
    /// # Errors
    ///
    /// Same as [`ServiceRequest::canonical_string`].
    pub fn cache_key(&self) -> Result<(String, String), ServiceError> {
        let canonical = self.canonical_string()?;
        Ok((fingerprint(&canonical), canonical))
    }

    /// Serializes the request as a one-line wire document.
    pub fn to_json(&self, request_id: &str) -> String {
        let mut s = json::document_header("service_request");
        let _ = write!(
            s,
            "\"request_id\":\"{}\",\"op\":\"{}\"",
            escape(request_id),
            self.op()
        );
        match self {
            ServiceRequest::Analyze {
                graph,
                serial,
                full,
            } => {
                let _ = write!(
                    s,
                    ",\"serial\":{serial},\"full\":{full},\"graph\":\"{}\"",
                    escape(graph)
                );
            }
            ServiceRequest::Plan {
                graph,
                method,
                model,
            }
            | ServiceRequest::Simulate {
                graph,
                method,
                model,
            } => {
                let _ = write!(
                    s,
                    ",\"method\":\"{}\",\"model\":\"{}\",\"graph\":\"{}\"",
                    method.as_str(),
                    model.as_str(),
                    escape(graph)
                );
            }
            ServiceRequest::Explain { graph } | ServiceRequest::Modes { graph } => {
                let _ = write!(s, ",\"graph\":\"{}\"", escape(graph));
            }
            ServiceRequest::Edit { graph, edits } => {
                let _ = write!(
                    s,
                    ",\"edits\":\"{}\",\"graph\":\"{}\"",
                    escape(edits),
                    escape(graph)
                );
            }
            ServiceRequest::Baseline {
                graph,
                repeats,
                full,
                perturb,
            } => {
                let _ = write!(s, ",\"repeats\":{repeats},\"full\":{full}");
                if let Some(p) = perturb {
                    let _ = write!(s, ",\"perturb\":\"{}\"", escape(p));
                }
                let _ = write!(s, ",\"graph\":\"{}\"", escape(graph));
            }
            ServiceRequest::Compare {
                baseline,
                candidate,
                gate,
                allow,
            } => {
                let _ = write!(s, ",\"gate\":{gate},\"allow\":[");
                for (i, name) in allow.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    let _ = write!(s, "\"{}\"", escape(name));
                }
                let _ = write!(
                    s,
                    "],\"baseline\":\"{}\",\"candidate\":\"{}\"",
                    escape(baseline),
                    escape(candidate)
                );
            }
            ServiceRequest::Stats
            | ServiceRequest::Metrics
            | ServiceRequest::Events
            | ServiceRequest::Shutdown => {}
        }
        s.push('}');
        s
    }

    /// Parses a wire line into `(request_id, request)`.
    ///
    /// # Errors
    ///
    /// Returns a [`ErrorCode::BadRequest`] error for anything that is
    /// not a well-formed `service_request` document of the current
    /// schema version.
    pub fn parse(line: &str) -> Result<(String, ServiceRequest), ServiceError> {
        let doc =
            json::parse(line).map_err(|e| ServiceError::bad_request(format!("bad JSON: {e}")))?;
        let kind = doc.get("kind").and_then(Json::as_str).unwrap_or("");
        if kind != "service_request" {
            return Err(ServiceError::bad_request(format!(
                "expected kind \"service_request\", got \"{kind}\""
            )));
        }
        let version = doc.get("schema_version").and_then(Json::as_num);
        if version != Some(f64::from(sdf_trace::SCHEMA_VERSION)) {
            return Err(ServiceError::bad_request(format!(
                "unsupported schema_version {:?} (this server speaks {})",
                version,
                sdf_trace::SCHEMA_VERSION
            )));
        }
        let request_id = doc
            .get("request_id")
            .and_then(Json::as_str)
            .unwrap_or("-")
            .to_string();
        let op = doc
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| ServiceError::bad_request("missing \"op\""))?;
        let str_field = |name: &str| doc.get(name).and_then(Json::as_str).map(str::to_string);
        let bool_field = |name: &str| doc.get(name).and_then(Json::as_bool).unwrap_or(false);
        let graph = || {
            str_field("graph").ok_or_else(|| ServiceError::bad_request("missing \"graph\" text"))
        };
        let method = || -> Result<OrderMethod, ServiceError> {
            match doc.get("method").and_then(Json::as_str) {
                None => Ok(OrderMethod::default()),
                Some(name) => OrderMethod::parse(name)
                    .ok_or_else(|| ServiceError::bad_request(format!("bad method \"{name}\""))),
            }
        };
        let model = || -> Result<MemoryModel, ServiceError> {
            match doc.get("model").and_then(Json::as_str) {
                None => Ok(MemoryModel::default()),
                Some(name) => MemoryModel::parse(name)
                    .ok_or_else(|| ServiceError::bad_request(format!("bad model \"{name}\""))),
            }
        };
        let request = match op {
            "analyze" => ServiceRequest::Analyze {
                graph: graph()?,
                serial: bool_field("serial"),
                full: bool_field("full"),
            },
            "plan" => ServiceRequest::Plan {
                graph: graph()?,
                method: method()?,
                model: model()?,
            },
            "simulate" => ServiceRequest::Simulate {
                graph: graph()?,
                method: method()?,
                model: model()?,
            },
            "explain" => ServiceRequest::Explain { graph: graph()? },
            "modes" => ServiceRequest::Modes { graph: graph()? },
            "edit" => ServiceRequest::Edit {
                graph: graph()?,
                edits: str_field("edits")
                    .ok_or_else(|| ServiceError::bad_request("missing \"edits\" text"))?,
            },
            "baseline" => {
                let repeats = match doc.get("repeats").and_then(Json::as_num) {
                    None => 3,
                    Some(n) if n >= 1.0 && n.fract() == 0.0 && n <= f64::from(u32::MAX) => n as u32,
                    Some(n) => {
                        return Err(ServiceError::bad_request(format!("bad repeats {n}")));
                    }
                };
                ServiceRequest::Baseline {
                    graph: graph()?,
                    repeats,
                    full: bool_field("full"),
                    perturb: str_field("perturb"),
                }
            }
            "compare" => {
                let allow = match doc.get("allow") {
                    None => Vec::new(),
                    Some(value) => value
                        .as_array()
                        .ok_or_else(|| ServiceError::bad_request("\"allow\" must be an array"))?
                        .iter()
                        .map(|v| {
                            v.as_str().map(str::to_string).ok_or_else(|| {
                                ServiceError::bad_request("\"allow\" entries must be strings")
                            })
                        })
                        .collect::<Result<Vec<_>, _>>()?,
                };
                ServiceRequest::Compare {
                    baseline: str_field("baseline")
                        .ok_or_else(|| ServiceError::bad_request("missing \"baseline\" text"))?,
                    candidate: str_field("candidate")
                        .ok_or_else(|| ServiceError::bad_request("missing \"candidate\" text"))?,
                    gate: bool_field("gate"),
                    allow,
                }
            }
            "stats" => ServiceRequest::Stats,
            "metrics" => ServiceRequest::Metrics,
            "events" => ServiceRequest::Events,
            "shutdown" => ServiceRequest::Shutdown,
            other => {
                return Err(ServiceError::bad_request(format!("unknown op \"{other}\"")));
            }
        };
        Ok((request_id, request))
    }
}

/// The typed result of a successful request.
pub enum ResponsePayload {
    /// `analyze`: the parsed graph (kept for text rendering) and the
    /// full synthesis.
    Analyze {
        /// The parsed input graph.
        graph: SdfGraph,
        /// Winner, candidate lattice and engine report.
        synthesis: Box<Synthesis>,
    },
    /// `plan`: the lowered executable plan.
    Plan {
        /// The plan.
        plan: Box<ExecutablePlan>,
    },
    /// `simulate`: the plan plus the oracle verdict.
    Simulate {
        /// The executed plan.
        plan: Box<ExecutablePlan>,
        /// Oracle result (`Err` carries the violation message).
        exec: Result<ExecReport, String>,
    },
    /// `explain`: the allocation-provenance report.
    Explain {
        /// The report (ledger, occupancy timeline, waste breakdown).
        report: Box<ExplainReport>,
    },
    /// `edit`: the edited graph's synthesis plus the edit delta.
    ///
    /// Every member is a deterministic function of (base graph, edit
    /// script): the delta path is bit-identical to a cold run, so this
    /// payload is cacheable. Session statistics (memo hits, splice
    /// counts, elapsed time) are *not* here — they depend on daemon
    /// history and travel in the per-request telemetry instead.
    Edit {
        /// The edited graph.
        graph: SdfGraph,
        /// The winning analysis of the edited graph.
        analysis: Box<Analysis>,
        /// The lowered shared-model plan of the winning analysis.
        plan: Box<ExecutablePlan>,
        /// Operations the edit script applied.
        edits_applied: usize,
        /// Edited-graph edges whose record or endpoints changed from
        /// the base (positional diff, as the delta path sees it).
        dirty_edges: usize,
    },
    /// `modes`: the multi-mode synthesis (merged pool, per-mode plans,
    /// persistent table, gate, transition-oracle verdict).
    Modes {
        /// The full multi-mode synthesis.
        synthesis: Box<ModeSynthesis>,
    },
    /// `baseline`: the captured profile.
    Baseline {
        /// The profile.
        profile: Box<Profile>,
    },
    /// `compare`: the diff report.
    Compare {
        /// The regression report.
        report: Box<RegressionReport>,
    },
    /// `stats` / `shutdown`: the daemon's instruments.
    Stats {
        /// Counter values, sorted by name.
        counters: Vec<(String, u64)>,
        /// Gauge values, sorted by name.
        gauges: Vec<(String, u64)>,
        /// Histogram summaries, sorted by name.
        histograms: Vec<(String, Histogram)>,
    },
    /// `metrics`: the daemon's instruments as Prometheus-style text.
    Metrics {
        /// The full exposition document
        /// (see [`sdf_trace::expo::write_exposition`]).
        exposition: String,
    },
    /// `events`: one flight-recorder drain.
    Events {
        /// The ring's configured capacity.
        capacity: usize,
        /// Records the ring dropped since the previous drain.
        dropped: u64,
        /// The drained records, oldest first.
        records: Vec<FlightRecord>,
    },
}

impl ResponsePayload {
    /// Serializes the payload as a complete top-level document (its own
    /// `kind` + `schema_version` envelope), without a trailing newline.
    pub fn to_json(&self) -> String {
        match self {
            ResponsePayload::Analyze { synthesis, .. } => {
                synthesis.report.to_json().trim_end().to_string()
            }
            ResponsePayload::Plan { plan } => plan.to_json().trim_end().to_string(),
            ResponsePayload::Simulate { plan, exec } => {
                simulation_report_json(plan, exec).trim_end().to_string()
            }
            ResponsePayload::Explain { report } => report.to_json(),
            ResponsePayload::Edit {
                graph,
                analysis,
                plan,
                edits_applied,
                dirty_edges,
            } => {
                let mut s = json::document_header("edit_report");
                let _ = write!(
                    s,
                    "\"graph\":\"{}\",\"edits_applied\":{edits_applied},\
                     \"dirty_edges\":{dirty_edges},\"total_edges\":{},\
                     \"nonshared_bufmem\":{},\"shared_total\":{},\
                     \"schedule\":\"{}\",\"plan\":{}}}",
                    escape(graph.name()),
                    graph.edge_count(),
                    analysis.nonshared_bufmem,
                    analysis.shared_total(),
                    escape(
                        &analysis
                            .schedule
                            .to_looped_schedule()
                            .display(graph)
                            .to_string()
                    ),
                    plan.to_json().trim_end()
                );
                s
            }
            ResponsePayload::Modes { synthesis } => mode_report_json(synthesis),
            ResponsePayload::Baseline { profile } => profile.to_json().trim_end().to_string(),
            ResponsePayload::Compare { report } => {
                report.render(DiffFormat::Json).trim_end().to_string()
            }
            ResponsePayload::Stats {
                counters,
                gauges,
                histograms,
            } => {
                let mut s = json::document_header("service_stats");
                let write_table = |s: &mut String, name: &str, rows: &[(String, u64)]| {
                    let _ = write!(s, "\"{name}\":{{");
                    for (i, (key, value)) in rows.iter().enumerate() {
                        if i > 0 {
                            s.push(',');
                        }
                        let _ = write!(s, "\"{}\":{value}", escape(key));
                    }
                    s.push('}');
                };
                write_table(&mut s, "counters", counters);
                s.push(',');
                write_table(&mut s, "gauges", gauges);
                s.push_str(",\"histograms\":{");
                for (i, (name, h)) in histograms.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    let _ = write!(
                        s,
                        "\"{}\":{{\"count\":{},\"sum\":{},\"buckets\":[",
                        escape(name),
                        h.count(),
                        h.sum()
                    );
                    for (j, (lo, hi, count)) in h.nonzero_buckets().iter().enumerate() {
                        if j > 0 {
                            s.push(',');
                        }
                        let _ = write!(s, "[{lo},{hi},{count}]");
                    }
                    s.push_str("]}");
                }
                s.push_str("}}");
                s
            }
            ResponsePayload::Metrics { exposition } => {
                let mut s = json::document_header("service_metrics");
                let _ = write!(s, "\"exposition\":\"{}\"}}", escape(exposition));
                s
            }
            ResponsePayload::Events {
                capacity,
                dropped,
                records,
            } => {
                let mut s = json::document_header("service_events");
                let _ = write!(
                    s,
                    "\"capacity\":{capacity},\"dropped\":{dropped},\"events\":["
                );
                for (i, record) in records.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    s.push_str(&record.to_json());
                }
                s.push_str("]}");
                s
            }
        }
    }
}

/// Per-request telemetry, composed by the daemon *outside* the cached
/// payload bytes.
///
/// Cached and fresh responses share payload bytes (the byte-identity
/// contract) but each gets its own telemetry: how long the request
/// queued, how long service took, whether the cache answered, the
/// per-stage breakdown, and which `service.*` counters moved while the
/// job ran. In the response envelope it is the `telemetry` member,
/// placed *before* the final `payload` member so payload extraction by
/// byte range keeps working.
///
/// The counter deltas are exact when one job runs at a time and
/// approximate attribution under concurrency (workers share one
/// recorder); the timing fields are always request-scoped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RequestTelemetry {
    /// Cache interaction of this request.
    pub cache: CacheStatus,
    /// Nanoseconds spent queued before a worker started (zero for
    /// cache hits and inline daemon ops).
    pub queue_wait_ns: u64,
    /// Nanoseconds of service time (execution + rendering, or cache
    /// lookup for hits).
    pub service_ns: u64,
    /// Per-stage breakdown of the service time.
    pub stages: Vec<StageSpan>,
    /// `service.*` counters that moved while the job ran, as sorted
    /// `(name, delta)` pairs.
    pub counters: Vec<(String, u64)>,
}

impl RequestTelemetry {
    /// The telemetry as a JSON object (an envelope member, not a
    /// standalone document — no `kind` header).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"cache\":\"{}\",\"queue_wait_ns\":{},\"service_ns\":{},\"stages\":{},\"counters\":{{",
            self.cache.as_str(),
            self.queue_wait_ns,
            self.service_ns,
            stages_json(&self.stages),
        );
        for (i, (name, delta)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{}\":{delta}", escape(name));
        }
        s.push_str("}}");
        s
    }

    /// The matching flight-recorder entry (`seq` is assigned by the
    /// recorder; `op`/`outcome` come from the job).
    pub fn to_flight_record(&self, op: &'static str, outcome: &'static str) -> FlightRecord {
        FlightRecord {
            seq: 0,
            op,
            outcome,
            cache: self.cache,
            queue_wait_ns: self.queue_wait_ns,
            service_ns: self.service_ns,
            stages: self.stages.clone(),
        }
    }
}

/// The outcome of a request: success with a payload, backpressure
/// rejection, or a typed error.
pub enum ServiceResponse {
    /// The operation succeeded.
    Ok(ResponsePayload),
    /// The daemon's job queue was full; the request never ran.
    Rejected {
        /// Human-readable detail.
        message: String,
    },
    /// The operation failed.
    Err(ServiceError),
}

impl ServiceResponse {
    /// The wire status string.
    pub fn status(&self) -> &'static str {
        match self {
            ServiceResponse::Ok(_) => "ok",
            ServiceResponse::Rejected { .. } => "rejected",
            ServiceResponse::Err(_) => "error",
        }
    }

    /// Serializes the full response envelope (one line, newline
    /// terminated) without telemetry — the in-process transport. The
    /// `payload` member, when present, is last.
    pub fn to_json(&self, request_id: &str, cached: bool) -> String {
        self.to_json_with_telemetry(request_id, cached, None)
    }

    /// Serializes the full response envelope with an optional
    /// `telemetry` member — the daemon's wire transport. Telemetry is
    /// written *before* the payload (or error) member, keeping the
    /// payload last for byte-range extraction.
    pub fn to_json_with_telemetry(
        &self,
        request_id: &str,
        cached: bool,
        telemetry: Option<&RequestTelemetry>,
    ) -> String {
        match self {
            ServiceResponse::Ok(payload) => {
                envelope_ok(request_id, cached, telemetry, &payload.to_json())
            }
            ServiceResponse::Rejected { message } => envelope_error(
                request_id,
                "rejected",
                ErrorCode::Unavailable.as_str(),
                None,
                message,
                telemetry,
            ),
            ServiceResponse::Err(error) => envelope_error(
                request_id,
                "error",
                error.code.as_str(),
                error.input,
                &error.message,
                telemetry,
            ),
        }
    }
}

fn envelope_prefix(
    request_id: &str,
    status: &str,
    cached: bool,
    telemetry: Option<&RequestTelemetry>,
) -> String {
    let mut s = json::document_header("service_response");
    let _ = write!(
        s,
        "\"request_id\":\"{}\",\"status\":\"{status}\",\"cached\":{cached}",
        escape(request_id)
    );
    if let Some(t) = telemetry {
        let _ = write!(s, ",\"telemetry\":{}", t.to_json());
    }
    s
}

/// Wraps an already-serialized payload document into an `ok` envelope.
/// Public to the crate so the server can wrap cached payload bytes
/// without re-serializing the typed payload.
pub(crate) fn envelope_ok(
    request_id: &str,
    cached: bool,
    telemetry: Option<&RequestTelemetry>,
    payload_json: &str,
) -> String {
    let mut s = envelope_prefix(request_id, "ok", cached, telemetry);
    let _ = write!(s, ",\"payload\":{payload_json}}}");
    s.push('\n');
    s
}

pub(crate) fn envelope_error(
    request_id: &str,
    status: &str,
    code: &str,
    input: Option<&str>,
    message: &str,
    telemetry: Option<&RequestTelemetry>,
) -> String {
    let mut s = envelope_prefix(request_id, status, false, telemetry);
    let _ = write!(s, ",\"error\":{{\"code\":\"{code}\"");
    if let Some(input) = input {
        let _ = write!(s, ",\"input\":\"{}\"", escape(input));
    }
    let _ = write!(s, ",\"message\":\"{}\"}}}}", escape(message));
    s.push('\n');
    s
}

/// Parses graph text, mapping failures to the service's typed error.
///
/// # Errors
///
/// [`ErrorCode::ParseError`] with `input: "graph"` — shared between
/// the CLI and daemon paths so both report byte-identical messages.
pub fn parse_graph_input(text: &str) -> Result<SdfGraph, ServiceError> {
    sdf_core::io::parse_graph(text).map_err(|e| ServiceError::parse("graph", e.to_string()))
}

/// Parses edit-script text, mapping failures to the service's typed
/// error ([`ErrorCode::ParseError`] with `input: "edits"`).
///
/// # Errors
///
/// [`ErrorCode::ParseError`] when any line fails to parse.
pub fn parse_edits_input(text: &str) -> Result<EditScript, ServiceError> {
    EditScript::parse(text).map_err(|e| ServiceError::parse("edits", e))
}

/// Parses mode-graph text, mapping failures to the service's typed
/// error ([`ErrorCode::ParseError`] with `input: "graph"`).
///
/// # Errors
///
/// [`ErrorCode::ParseError`] when the text is not a well-formed
/// [`sdf_core::mode`] document.
pub fn parse_mode_graph_input(text: &str) -> Result<sdf_core::mode::ModeGraph, ServiceError> {
    sdf_core::mode::parse_mode_graph(text).map_err(|e| ServiceError::parse("graph", e.to_string()))
}

/// Assembles the deterministic `edit` payload from an edited graph and
/// its analysis. Shared between the in-process cold path and the
/// daemon's session-backed delta path so both produce identical bytes
/// (the cache contract).
///
/// # Errors
///
/// [`ErrorCode::EngineError`] when the shared-model lowering fails.
pub(crate) fn edit_payload(
    base: &SdfGraph,
    edited: SdfGraph,
    analysis: Analysis,
    edits_applied: usize,
) -> Result<ResponsePayload, ServiceError> {
    let plan = analysis
        .plan(&edited)
        .map_err(|e| ServiceError::engine(e.to_string()))?;
    let dirty = dirty_edges(base, &edited).iter().filter(|d| **d).count();
    Ok(ResponsePayload::Edit {
        graph: edited,
        analysis: Box::new(analysis),
        plan: Box::new(plan),
        edits_applied,
        dirty_edges: dirty,
    })
}

/// Lowers `graph` to the [`ExecutablePlan`] shared by the `plan`,
/// `simulate` and CLI `codegen` paths: the chosen heuristic order, then
/// DPPO (non-shared) or SDPPO + first-fit allocation (shared).
///
/// # Errors
///
/// [`ErrorCode::EngineError`] on consistency, scheduling or lowering
/// failures.
pub fn lower_plan(
    g: &SdfGraph,
    method: OrderMethod,
    model: MemoryModel,
) -> Result<ExecutablePlan, ServiceError> {
    use sdf_alloc::{allocate, AllocationOrder, PlacementPolicy};
    use sdf_lifetime::tree::ScheduleTree;
    use sdf_lifetime::wig::IntersectionGraph;
    use sdf_sched::{apgan, dppo, rpmc, sdppo};

    let engine = ServiceError::engine;
    let q = RepetitionsVector::compute(g).map_err(|e| engine(e.to_string()))?;
    let order = match method {
        OrderMethod::Apgan => apgan(g, &q),
        OrderMethod::Rpmc => rpmc(g, &q),
    }
    .map_err(|e| engine(e.to_string()))?;
    match model {
        MemoryModel::NonShared => {
            let r = dppo(g, &q, &order).map_err(|e| engine(e.to_string()))?;
            ExecutablePlan::lower_nonshared(g, &q, &r.tree.to_looped_schedule())
                .map_err(|e| engine(e.to_string()))
        }
        MemoryModel::Shared => {
            let r = sdppo(g, &q, &order).map_err(|e| engine(e.to_string()))?;
            let tree = ScheduleTree::build(g, &q, &r.tree).map_err(|e| engine(e.to_string()))?;
            let wig = IntersectionGraph::build(g, &q, &tree);
            let alloc = allocate(
                &wig,
                AllocationOrder::DurationDescending,
                PlacementPolicy::FirstFit,
            );
            ExecutablePlan::lower_shared(g, &q, &r.tree, &wig, &alloc)
                .map_err(|e| engine(e.to_string()))
        }
    }
}

/// The `mode_report` document (also what `sdfmem modes --report json`
/// prints): per-mode summaries and plans, the persistent-buffer table,
/// the merged-pool accounting with its gate, and the transition
/// oracle's verdict.
fn mode_report_json(synthesis: &ModeSynthesis) -> String {
    let mut s = json::document_header("mode_report");
    let _ = write!(
        s,
        "\"graph\":\"{}\",\"token_bytes\":{},\"modes\":[",
        escape(&synthesis.plan.graph),
        synthesis.plan.token_bytes
    );
    for (i, summary) in synthesis.summaries.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"name\":\"{}\",\"actors\":{},\"edges\":{},\
             \"standalone_pool_words\":{},\"nonshared_bufmem\":{},\
             \"firings\":{},\"plan\":{}}}",
            escape(&summary.name),
            summary.actors,
            summary.edges,
            summary.standalone_pool_words,
            summary.nonshared_bufmem,
            summary.firings,
            synthesis.plan.modes[i].plan.to_json().trim_end()
        );
    }
    s.push_str("],\"persistent\":[");
    for (i, p) in synthesis.plan.persistent.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"src\":\"{}\",\"snk\":\"{}\",\"offset\":{},\"size\":{},\"delay\":{}}}",
            escape(&p.src),
            escape(&p.snk),
            p.offset,
            p.size,
            p.delay
        );
    }
    let _ = write!(
        s,
        "],\"merged_pool_words\":{},\"sum_pool_words\":{},\"max_pool_words\":{},\
         \"persistent_words\":{},\"gate_bound\":{},\"gate_ok\":{},\
         \"savings_percent\":{:.2},\"clean\":{}",
        synthesis.merged_pool_words,
        synthesis.sum_pool_words,
        synthesis.max_pool_words,
        synthesis.persistent_words,
        synthesis.gate_bound,
        synthesis.gate_ok,
        synthesis.savings_percent(),
        synthesis.exec.is_ok()
    );
    match &synthesis.exec {
        Ok(r) => {
            let _ = write!(
                s,
                ",\"exec\":{{\"firings\":{},\"peak_live_words\":{},\
                 \"pool_words\":{},\"transitions\":{},\"activations\":[",
                r.firings, r.peak_live_words, r.pool_words, r.transitions
            );
            for (i, a) in r.activations.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(
                    s,
                    "{{\"mode\":{},\"firings\":{},\"peak_live_words\":{}}}",
                    a.mode, a.firings, a.peak_live_words
                );
            }
            s.push_str("]}");
        }
        Err(e) => {
            let _ = write!(s, ",\"error\":\"{}\"", escape(e));
        }
    }
    s.push('}');
    s
}

/// The `simulation_report` document (also what `sdfmem simulate
/// --report json` prints).
fn simulation_report_json(plan: &ExecutablePlan, exec: &Result<ExecReport, String>) -> String {
    let mut s = json::document_header("simulation_report");
    let _ = write!(
        s,
        "\"graph\":\"{}\",\"model\":\"{}\",\"clean\":{}",
        escape(&plan.graph),
        plan.model.as_str(),
        exec.is_ok()
    );
    match exec {
        Ok(r) => {
            let _ = write!(
                s,
                ",\"exec\":{{\"firings\":{},\"peak_live_words\":{},\
                 \"peak_live_bytes\":{},\"pool_words\":{}}}",
                r.firings, r.peak_live_words, r.peak_live_bytes, r.pool_words
            );
        }
        Err(e) => {
            let _ = write!(s, ",\"error\":\"{}\"", escape(e));
        }
    }
    let _ = write!(s, ",\"plan\":{}}}", plan.to_json());
    s
}

/// Measures coarse request stages directly with [`Instant`], producing
/// the [`StageSpan`] tree of [`RequestTelemetry`].
///
/// Deliberately *not* built on the global recorder: daemon workers
/// never install one (the byte-identity contract — a globally traced
/// run would bleed process-wide counters into `engine_report` payload
/// bytes), so stage timing measures its own intervals relative to the
/// start of service.
pub(crate) struct StageClock {
    epoch: Instant,
    pub(crate) stages: Vec<StageSpan>,
}

impl StageClock {
    pub(crate) fn new() -> StageClock {
        StageClock {
            epoch: Instant::now(),
            stages: Vec::new(),
        }
    }

    fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Runs `f` as the named stage, recording its span.
    pub(crate) fn time<T>(&mut self, name: &'static str, f: impl FnOnce() -> T) -> T {
        let start_ns = self.elapsed_ns();
        let value = f();
        let dur_ns = self.elapsed_ns().saturating_sub(start_ns);
        self.stages.push(StageSpan::leaf(name, start_ns, dur_ns));
        value
    }

    /// Attaches `children` to the most recently recorded stage.
    fn attach_children(&mut self, children: Vec<StageSpan>) {
        if let Some(last) = self.stages.last_mut() {
            last.children = children;
        }
    }
}

/// The winner candidate's per-stage timings as child spans of the
/// `engine` stage, laid end to end from the stage's start. The engine
/// measured these durations itself; only the offsets are synthesized.
fn winner_stage_children(start_ns: u64, timings: &StageTimings) -> Vec<StageSpan> {
    let mut cursor = start_ns;
    let mut children = Vec::with_capacity(4);
    for (name, dur_ns) in [
        ("engine.schedule", timings.schedule_ns),
        ("engine.lifetime", timings.lifetime_ns),
        ("engine.wig", timings.wig_ns),
        ("engine.alloc", timings.alloc_ns),
    ] {
        children.push(StageSpan::leaf(name, cursor, dur_ns));
        cursor = cursor.saturating_add(dur_ns);
    }
    children
}

/// Executes a request in-process — the single backend behind both the
/// CLI subcommands and the daemon's workers.
///
/// `Stats`, `Metrics`, `Events` and `Shutdown` are daemon-side control
/// operations and return a [`ErrorCode::BadRequest`] error here.
pub fn execute_request(request: &ServiceRequest) -> ServiceResponse {
    execute_request_timed(request).0
}

/// [`execute_request`] plus the measured stage tree, for callers (the
/// daemon's workers) that compose per-request telemetry.
pub fn execute_request_timed(request: &ServiceRequest) -> (ServiceResponse, Vec<StageSpan>) {
    let mut clock = StageClock::new();
    let response = match execute_request_inner(request, &mut clock) {
        Ok(payload) => ServiceResponse::Ok(payload),
        Err(error) => ServiceResponse::Err(error),
    };
    (response, clock.stages)
}

fn execute_request_inner(
    request: &ServiceRequest,
    clock: &mut StageClock,
) -> Result<ResponsePayload, ServiceError> {
    match request {
        ServiceRequest::Analyze {
            graph,
            serial,
            full,
        } => {
            let g = clock.time("parse", || parse_graph_input(graph))?;
            let synthesis = clock.time("engine", || {
                let mut builder = AnalysisBuilder::new().parallel(!serial);
                if *full {
                    builder = builder.loop_opts(sdf_sched::LoopVariant::ALL);
                }
                builder
                    .run_full(&g)
                    .map_err(|e| ServiceError::engine(e.to_string()))
            })?;
            // Break the engine stage down by the winner's own timings.
            let report = &synthesis.report;
            if let (Some(stage), Some(winner)) =
                (clock.stages.last(), report.candidates.get(report.winner))
            {
                let children = winner_stage_children(stage.start_ns, &winner.timings);
                clock.attach_children(children);
            }
            Ok(ResponsePayload::Analyze {
                graph: g,
                synthesis: Box::new(synthesis),
            })
        }
        ServiceRequest::Plan {
            graph,
            method,
            model,
        } => {
            let g = clock.time("parse", || parse_graph_input(graph))?;
            let plan = clock.time("lower", || lower_plan(&g, *method, *model))?;
            Ok(ResponsePayload::Plan {
                plan: Box::new(plan),
            })
        }
        ServiceRequest::Simulate {
            graph,
            method,
            model,
        } => {
            let g = clock.time("parse", || parse_graph_input(graph))?;
            let plan = clock.time("lower", || lower_plan(&g, *method, *model))?;
            let exec = clock.time("execute", || execute_plan(&plan).map_err(|e| e.to_string()));
            Ok(ResponsePayload::Simulate {
                plan: Box::new(plan),
                exec,
            })
        }
        ServiceRequest::Explain { graph } => {
            let g = clock.time("parse", || parse_graph_input(graph))?;
            let report = clock.time("explain", || ExplainReport::build(&g))?;
            Ok(ResponsePayload::Explain {
                report: Box::new(report),
            })
        }
        ServiceRequest::Edit { graph, edits } => {
            let (base, script) = clock.time("parse", || {
                let g = parse_graph_input(graph)?;
                let s = parse_edits_input(edits)?;
                Ok::<_, ServiceError>((g, s))
            })?;
            let edited = clock.time("apply", || {
                apply_edits(&base, &script).map_err(|e| ServiceError::engine(e.to_string()))
            })?;
            let analysis = clock.time("engine", || {
                AnalysisBuilder::new()
                    .run(&edited)
                    .map_err(|e| ServiceError::engine(e.to_string()))
            })?;
            edit_payload(&base, edited, analysis, script.ops.len())
        }
        ServiceRequest::Modes { graph } => {
            let mg = clock.time("parse", || parse_mode_graph_input(graph))?;
            let synthesis = clock.time("engine", || {
                synthesize_modes(&mg).map_err(|e| ServiceError::engine(e.to_string()))
            })?;
            Ok(ResponsePayload::Modes {
                synthesis: Box::new(synthesis),
            })
        }
        ServiceRequest::Baseline {
            graph,
            repeats,
            full,
            perturb,
        } => {
            let g = clock.time("parse", || parse_graph_input(graph))?;
            let profile = clock.time("capture", || {
                let options = CaptureOptions {
                    repeats: *repeats,
                    full: *full,
                    perturb: perturb.clone(),
                };
                capture_profile(&g, &options).map_err(ServiceError::engine)
            })?;
            Ok(ResponsePayload::Baseline {
                profile: Box::new(profile),
            })
        }
        ServiceRequest::Compare {
            baseline,
            candidate,
            gate,
            allow,
        } => {
            let (base, cand) = clock.time("parse", || {
                let base =
                    Profile::parse(baseline).map_err(|e| ServiceError::parse("baseline", e))?;
                let cand =
                    Profile::parse(candidate).map_err(|e| ServiceError::parse("candidate", e))?;
                Ok::<_, ServiceError>((base, cand))
            })?;
            let report = clock.time("diff", || {
                let options = DiffOptions {
                    allow: allow.clone(),
                    gate_timings: *gate,
                    ..DiffOptions::default()
                };
                diff(&base, &cand, &options)
            });
            Ok(ResponsePayload::Compare {
                report: Box::new(report),
            })
        }
        ServiceRequest::Stats
        | ServiceRequest::Metrics
        | ServiceRequest::Events
        | ServiceRequest::Shutdown => Err(ServiceError::bad_request(format!(
            "`{}` is a daemon-side operation; submit it to a running sdfmemd",
            request.op()
        ))),
    }
}

/// Executes a cacheable request the way a daemon worker does: any
/// `serial` preference is dropped first, so serial and parallel
/// submissions of the same graph share one cache slot *and* one
/// payload byte-form (the engine report records `parallel`).
pub fn execute_request_cached(request: &ServiceRequest) -> ServiceResponse {
    execute_request_cached_timed(request).0
}

/// [`execute_request_cached`] plus the measured stage tree.
pub fn execute_request_cached_timed(request: &ServiceRequest) -> (ServiceResponse, Vec<StageSpan>) {
    match request {
        ServiceRequest::Analyze { graph, full, .. } => {
            execute_request_timed(&ServiceRequest::Analyze {
                graph: graph.clone(),
                serial: false,
                full: *full,
            })
        }
        other => execute_request_timed(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG2: &str = "graph fig2\nedge A B 20 10\nedge B C 20 10\n";

    #[test]
    fn request_wire_round_trip() {
        let requests = [
            ServiceRequest::Analyze {
                graph: FIG2.into(),
                serial: true,
                full: true,
            },
            ServiceRequest::Plan {
                graph: FIG2.into(),
                method: OrderMethod::Rpmc,
                model: MemoryModel::NonShared,
            },
            ServiceRequest::Simulate {
                graph: FIG2.into(),
                method: OrderMethod::Apgan,
                model: MemoryModel::Shared,
            },
            ServiceRequest::Baseline {
                graph: FIG2.into(),
                repeats: 2,
                full: false,
                perturb: Some("sched.dppo.cells=+7".into()),
            },
            ServiceRequest::Compare {
                baseline: "{}".into(),
                candidate: "{}".into(),
                gate: true,
                allow: vec!["sched.*".into()],
            },
            ServiceRequest::Edit {
                graph: FIG2.into(),
                edits: "set-rate A B 40 10\nset-delay B C 3\n".into(),
            },
            ServiceRequest::Modes {
                graph: "modegraph toy\npersistent x y\nmode one\nedge x y 1 1 delay 1\n\
                        mode two\nedge x y 1 1 delay 1\nedge y c 1 3\n"
                    .into(),
            },
            ServiceRequest::Stats,
            ServiceRequest::Metrics,
            ServiceRequest::Events,
            ServiceRequest::Shutdown,
        ];
        for request in requests {
            let line = request.to_json("req-1");
            let (id, parsed) = ServiceRequest::parse(&line).expect("round trip");
            assert_eq!(id, "req-1");
            assert_eq!(parsed, request, "{line}");
        }
    }

    #[test]
    fn edit_payload_reports_the_edited_graph() {
        let request = ServiceRequest::Edit {
            graph: FIG2.into(),
            edits: "# double A's rate\nset-rate A B 40 10\n".into(),
        };
        let response = execute_request(&request);
        assert_eq!(response.status(), "ok");
        let line = response.to_json("r", false);
        let doc = json::parse(&line).expect("envelope parses");
        let payload = doc.get("payload").expect("payload");
        assert_eq!(
            payload.get("kind").and_then(Json::as_str),
            Some("edit_report")
        );
        assert_eq!(
            payload.get("edits_applied").and_then(Json::as_num),
            Some(1.0)
        );
        assert_eq!(payload.get("dirty_edges").and_then(Json::as_num), Some(1.0));
        assert_eq!(payload.get("total_edges").and_then(Json::as_num), Some(2.0));
        // The report describes the *edited* graph: A B 40 10 doubles
        // the A->B buffer versus the base's 20.
        let nonshared = payload
            .get("nonshared_bufmem")
            .and_then(Json::as_num)
            .expect("nonshared_bufmem");
        assert!(nonshared > 0.0);
        assert!(payload.get("plan").is_some(), "embedded executable plan");
        assert!(payload.get("schedule").and_then(Json::as_str).is_some());
    }

    #[test]
    fn edit_errors_are_typed_by_input() {
        let bad_script = ServiceRequest::Edit {
            graph: FIG2.into(),
            edits: "frobnicate A B\n".into(),
        };
        let ServiceResponse::Err(err) = execute_request(&bad_script) else {
            panic!("bad edit script must fail");
        };
        assert_eq!(err.code, ErrorCode::ParseError);
        assert_eq!(err.input, Some("edits"));
        let bad_target = ServiceRequest::Edit {
            graph: FIG2.into(),
            edits: "remove-edge X Y\n".into(),
        };
        let ServiceResponse::Err(err) = execute_request(&bad_target) else {
            panic!("edit addressing a nonexistent edge must fail");
        };
        assert_eq!(err.code, ErrorCode::EngineError);
    }

    #[test]
    fn edit_cache_key_separates_graph_from_script() {
        let key = |graph: &str, edits: &str| {
            ServiceRequest::Edit {
                graph: graph.into(),
                edits: edits.into(),
            }
            .cache_key()
            .expect("parses")
            .0
        };
        // Formatting of the script does not change the key...
        assert_eq!(
            key(FIG2, "set-delay A B 2\n"),
            key(FIG2, "# note\nset-delay  A  B  2\n")
        );
        // ...but different edits, or a different base, do.
        assert_ne!(
            key(FIG2, "set-delay A B 2\n"),
            key(FIG2, "set-delay A B 3\n")
        );
        let other = "graph fig2\nedge A B 20 10\nedge B C 10 10\n";
        assert_ne!(
            key(FIG2, "set-delay A B 2\n"),
            key(other, "set-delay A B 2\n")
        );
    }

    #[test]
    fn parse_rejects_foreign_documents() {
        assert!(ServiceRequest::parse("not json").is_err());
        assert!(ServiceRequest::parse("{\"kind\":\"engine_report\"}").is_err());
        let wrong_version = format!(
            "{{\"kind\":\"service_request\",\"schema_version\":{},\"op\":\"stats\"}}",
            sdf_trace::SCHEMA_VERSION + 1
        );
        assert!(ServiceRequest::parse(&wrong_version).is_err());
        let no_graph = format!(
            "{{\"kind\":\"service_request\",\"schema_version\":{},\"op\":\"analyze\"}}",
            sdf_trace::SCHEMA_VERSION
        );
        let err = ServiceRequest::parse(&no_graph).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);
        assert!(err.message.contains("graph"), "{}", err.message);
    }

    #[test]
    fn canonicalisation_ignores_formatting_but_not_actor_order() {
        let spaced = "graph fig2\n\n# comment\nedge  A  B  20 10\nedge B C 20 10\n";
        let key = |text: &str| {
            ServiceRequest::Analyze {
                graph: text.into(),
                serial: false,
                full: false,
            }
            .cache_key()
            .expect("parses")
            .0
        };
        assert_eq!(key(FIG2), key(spaced));
        // Same topology declared with the actor order flipped is a
        // *different* canonical graph: order can steer tie-breaks.
        let flipped = "graph fig2\nactor C\nactor B\nactor A\nedge A B 20 10\nedge B C 20 10\n";
        assert_ne!(key(FIG2), key(flipped));
    }

    #[test]
    fn serial_and_parallel_analyze_share_a_cache_slot() {
        let key = |serial: bool| {
            ServiceRequest::Analyze {
                graph: FIG2.into(),
                serial,
                full: false,
            }
            .cache_key()
            .expect("parses")
            .0
        };
        assert_eq!(key(true), key(false));
        // ... and the cached execution path drops the serial
        // preference, so the payload a serial submission would insert
        // is structurally the payload a parallel one expects. (Full
        // byte identity across *independent* analyze runs is not
        // claimed — engine reports embed wall-clock timings; the
        // byte-identity contract is cached-vs-inserting run.)
        let serial = ServiceRequest::Analyze {
            graph: FIG2.into(),
            serial: true,
            full: false,
        };
        let payload = match execute_request_cached(&serial) {
            ServiceResponse::Ok(p) => p.to_json(),
            _ => panic!("analyze fails"),
        };
        let doc = json::parse(&payload).expect("payload parses");
        assert_eq!(doc.get("parallel").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn analyze_payload_is_a_complete_engine_report() {
        let request = ServiceRequest::Analyze {
            graph: FIG2.into(),
            serial: true,
            full: false,
        };
        let response = execute_request(&request);
        assert_eq!(response.status(), "ok");
        let line = response.to_json("r", false);
        let doc = json::parse(&line).expect("envelope parses");
        assert_eq!(
            doc.get("kind").and_then(Json::as_str),
            Some("service_response")
        );
        assert_eq!(doc.get("cached").and_then(Json::as_bool), Some(false));
        let payload = doc.get("payload").expect("payload");
        assert_eq!(
            payload.get("kind").and_then(Json::as_str),
            Some("engine_report")
        );
        assert_eq!(payload.get("graph").and_then(Json::as_str), Some("fig2"));
    }

    #[test]
    fn simulate_payload_matches_cli_shape() {
        let request = ServiceRequest::Simulate {
            graph: FIG2.into(),
            method: OrderMethod::Apgan,
            model: MemoryModel::Shared,
        };
        let ServiceResponse::Ok(payload) = execute_request(&request) else {
            panic!("simulate fails");
        };
        let doc = json::parse(&payload.to_json()).expect("payload parses");
        assert_eq!(
            doc.get("kind").and_then(Json::as_str),
            Some("simulation_report")
        );
        assert_eq!(doc.get("clean").and_then(Json::as_bool), Some(true));
        assert_eq!(
            doc.get("exec")
                .and_then(|e| e.get("firings"))
                .and_then(Json::as_num),
            Some(7.0)
        );
        assert_eq!(
            doc.get("plan")
                .and_then(|p| p.get("kind"))
                .and_then(Json::as_str),
            Some("executable_plan")
        );
    }

    #[test]
    fn bad_graph_is_a_typed_parse_error() {
        let request = ServiceRequest::Analyze {
            graph: "graph broken\nedge A".into(),
            serial: false,
            full: false,
        };
        let ServiceResponse::Err(error) = execute_request(&request) else {
            panic!("expected error");
        };
        assert_eq!(error.code, ErrorCode::ParseError);
        assert_eq!(error.input, Some("graph"));
        // The cache-key path reports the identical error.
        assert_eq!(request.cache_key().unwrap_err(), error);
    }

    #[test]
    fn control_ops_are_daemon_side_only() {
        for request in [
            ServiceRequest::Stats,
            ServiceRequest::Metrics,
            ServiceRequest::Events,
            ServiceRequest::Shutdown,
        ] {
            let ServiceResponse::Err(error) = execute_request(&request) else {
                panic!("expected error");
            };
            assert_eq!(error.code, ErrorCode::BadRequest);
            assert!(!request.cacheable());
        }
    }

    #[test]
    fn error_envelope_has_no_payload_and_parses() {
        let response = ServiceResponse::Err(ServiceError::parse("graph", "line 2: bad edge"));
        let line = response.to_json("r-9", false);
        let doc = json::parse(&line).expect("envelope parses");
        assert_eq!(doc.get("status").and_then(Json::as_str), Some("error"));
        assert!(doc.get("payload").is_none());
        let error = doc.get("error").expect("error object");
        assert_eq!(
            error.get("code").and_then(Json::as_str),
            Some("parse_error")
        );
        assert_eq!(error.get("input").and_then(Json::as_str), Some("graph"));
    }

    #[test]
    fn stats_payload_is_a_service_stats_document() {
        let mut latency = Histogram::default();
        latency.record(3);
        latency.record(700);
        let payload = ResponsePayload::Stats {
            counters: vec![("service.cache.hits".into(), 3)],
            gauges: vec![("service.queue.depth".into(), 0)],
            histograms: vec![("service.op.analyze.latency".into(), latency)],
        };
        let doc = json::parse(&payload.to_json()).expect("parses");
        assert_eq!(
            doc.get("kind").and_then(Json::as_str),
            Some("service_stats")
        );
        assert_eq!(
            doc.get("counters")
                .and_then(|c| c.get("service.cache.hits"))
                .and_then(Json::as_num),
            Some(3.0)
        );
        let hist = doc
            .get("histograms")
            .and_then(|h| h.get("service.op.analyze.latency"))
            .expect("histogram summary");
        assert_eq!(hist.get("count").and_then(Json::as_num), Some(2.0));
        assert_eq!(hist.get("sum").and_then(Json::as_num), Some(703.0));
        let buckets = hist.get("buckets").and_then(Json::as_array).unwrap();
        assert_eq!(buckets.len(), 2, "two occupied buckets");
    }

    #[test]
    fn metrics_payload_embeds_valid_exposition() {
        let mut h = Histogram::default();
        h.record(5);
        let exposition = sdf_trace::expo::write_exposition(
            &[("service.requests".into(), 4)],
            &[],
            &[("service.op.plan.latency".into(), h)],
        );
        let payload = ResponsePayload::Metrics { exposition };
        let doc = json::parse(&payload.to_json()).expect("parses");
        assert_eq!(
            doc.get("kind").and_then(Json::as_str),
            Some("service_metrics")
        );
        let text = doc
            .get("exposition")
            .and_then(Json::as_str)
            .expect("exposition text");
        sdf_trace::expo::validate_exposition(text).expect("valid exposition");
        assert!(text.contains("service_requests 4"));
    }

    #[test]
    fn events_payload_lists_drained_records() {
        let telemetry = RequestTelemetry {
            cache: CacheStatus::Miss,
            queue_wait_ns: 10,
            service_ns: 100,
            stages: vec![StageSpan::leaf("parse", 0, 8)],
            counters: vec![("service.jobs.complete".into(), 1)],
        };
        let mut record = telemetry.to_flight_record("analyze", "complete");
        record.seq = 7;
        let payload = ResponsePayload::Events {
            capacity: 16,
            dropped: 2,
            records: vec![record],
        };
        let doc = json::parse(&payload.to_json()).expect("parses");
        assert_eq!(
            doc.get("kind").and_then(Json::as_str),
            Some("service_events")
        );
        assert_eq!(doc.get("capacity").and_then(Json::as_num), Some(16.0));
        assert_eq!(doc.get("dropped").and_then(Json::as_num), Some(2.0));
        let events = doc.get("events").and_then(Json::as_array).unwrap();
        assert_eq!(events[0].get("seq").and_then(Json::as_num), Some(7.0));
        assert_eq!(
            events[0].get("outcome").and_then(Json::as_str),
            Some("complete")
        );
    }

    #[test]
    fn timed_execution_produces_a_stage_tree() {
        let (response, stages) = execute_request_timed(&ServiceRequest::Analyze {
            graph: FIG2.into(),
            serial: false,
            full: false,
        });
        assert_eq!(response.status(), "ok");
        let names: Vec<&str> = stages.iter().map(|s| s.name).collect();
        assert_eq!(names, ["parse", "engine"]);
        let engine = &stages[1];
        assert!(engine.start_ns >= stages[0].start_ns);
        let child_names: Vec<&str> = engine.children.iter().map(|c| c.name).collect();
        assert_eq!(
            child_names,
            [
                "engine.schedule",
                "engine.lifetime",
                "engine.wig",
                "engine.alloc"
            ]
        );
        // Children are laid end to end inside the engine stage.
        for pair in engine.children.windows(2) {
            assert_eq!(pair[1].start_ns, pair[0].start_ns + pair[0].dur_ns);
        }
        // A failing stage is still timed.
        let (response, stages) = execute_request_timed(&ServiceRequest::Analyze {
            graph: "graph broken\nedge A".into(),
            serial: false,
            full: false,
        });
        assert_eq!(response.status(), "error");
        assert_eq!(stages.len(), 1);
        assert_eq!(stages[0].name, "parse");
    }

    #[test]
    fn telemetry_json_is_an_object_not_a_document() {
        let telemetry = RequestTelemetry {
            cache: CacheStatus::Hit,
            queue_wait_ns: 0,
            service_ns: 42,
            stages: vec![],
            counters: vec![("service.cache.hits".into(), 1)],
        };
        let doc = json::parse(&telemetry.to_json()).expect("parses");
        assert!(doc.get("kind").is_none(), "envelope member, not a document");
        assert_eq!(doc.get("cache").and_then(Json::as_str), Some("hit"));
        assert_eq!(doc.get("service_ns").and_then(Json::as_num), Some(42.0));
        assert_eq!(
            doc.get("counters")
                .and_then(|c| c.get("service.cache.hits"))
                .and_then(Json::as_num),
            Some(1.0)
        );
    }
}
