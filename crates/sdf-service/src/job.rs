//! The daemon's job state machine and bounded work queue.
//!
//! Every cache-missing request becomes a [`Job`]: it is *pending* while
//! queued, *running* while a worker executes it, and ends in exactly
//! one terminal state — *complete*, *failed* or (when the queue is
//! full at submission time) *rejected*.  The connection thread that
//! accepted the request blocks on the job's channel and writes the
//! outcome back to the client, so backpressure propagates to the
//! submitter instead of growing an unbounded backlog.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Condvar, Mutex};

use crate::api::{RequestTelemetry, ServiceError, ServiceRequest};

/// Lifecycle of a job. `Pending → Running → Complete | Failed`;
/// `Rejected` is entered directly from submission when the queue is
/// full and is also terminal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Queued, waiting for a worker.
    Pending,
    /// A worker is executing the request.
    Running,
    /// Finished with an `ok` response.
    Complete,
    /// Finished with an `error` response.
    Failed,
    /// Never ran: the queue was full at submission.
    Rejected,
}

impl JobState {
    /// The wire/trace name of the state.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Pending => "pending",
            JobState::Running => "running",
            JobState::Complete => "complete",
            JobState::Failed => "failed",
            JobState::Rejected => "rejected",
        }
    }
}

/// What a worker hands back to the submitting connection thread: the
/// result plus the request-scoped telemetry the connection thread
/// composes into the response envelope (outside any cached bytes).
pub enum JobOutcome {
    /// The request succeeded; the serialized payload document.
    Complete(std::sync::Arc<String>, RequestTelemetry),
    /// The request failed inside the engine or on graph parse.
    Failed(ServiceError, RequestTelemetry),
}

/// One unit of queued work.
pub struct Job {
    /// The parsed request to execute.
    pub request: ServiceRequest,
    /// The client-chosen id, echoed in the response envelope.
    pub request_id: String,
    /// `(fingerprint, canonical)` when the request is cacheable; the
    /// connection thread uses it to populate the cache from the
    /// outcome.
    pub cache_key: Option<(String, String)>,
    /// Queue-entry time on the server recorder's clock, for the
    /// `service.job` span.
    pub enqueued_ns: u64,
    /// Where the worker sends the outcome.
    pub tx: mpsc::Sender<JobOutcome>,
}

struct QueueInner {
    jobs: VecDeque<Job>,
    closed: bool,
}

/// A bounded MPMC queue: submitters `try_push` (rejection, never
/// blocking), workers block on `pop` until work arrives or the queue
/// closes.
pub struct JobQueue {
    inner: Mutex<QueueInner>,
    ready: Condvar,
    capacity: usize,
}

impl JobQueue {
    /// An open queue holding at most `capacity` pending jobs.
    pub fn new(capacity: usize) -> JobQueue {
        JobQueue {
            inner: Mutex::new(QueueInner {
                jobs: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Enqueues `job`, or returns it when the queue is full or closed
    /// (the caller responds `rejected` without blocking).
    // Handing the whole job back on rejection is the point — the caller
    // needs the request id and channel to answer the client — mirroring
    // `mpsc::TrySendError`, so the large Err variant is deliberate.
    #[allow(clippy::result_large_err)]
    pub fn try_push(&self, job: Job) -> Result<(), Job> {
        let mut inner = self.lock();
        if inner.closed || inner.jobs.len() >= self.capacity {
            return Err(job);
        }
        inner.jobs.push_back(job);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until a job is available (returning it) or the queue has
    /// been closed and drained (returning `None`, the worker's signal
    /// to exit).
    pub fn pop(&self) -> Option<Job> {
        let mut inner = self.lock();
        loop {
            if let Some(job) = inner.jobs.pop_front() {
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Closes the queue: pending jobs are dropped (their submitters see
    /// a disconnected channel), future pushes are rejected, and blocked
    /// workers wake up and exit.
    pub fn close(&self) {
        let mut inner = self.lock();
        inner.closed = true;
        inner.jobs.clear();
        drop(inner);
        self.ready.notify_all();
    }

    /// Jobs currently pending (for the `service.queue.depth` gauge).
    pub fn depth(&self) -> usize {
        self.lock().jobs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(tx: mpsc::Sender<JobOutcome>) -> Job {
        Job {
            request: ServiceRequest::Stats,
            request_id: "t".into(),
            cache_key: None,
            enqueued_ns: 0,
            tx,
        }
    }

    #[test]
    fn push_pop_round_trips() {
        let q = JobQueue::new(2);
        let (tx, _rx) = mpsc::channel();
        assert!(q.try_push(job(tx.clone())).is_ok());
        assert_eq!(q.depth(), 1);
        assert!(q.pop().is_some());
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn full_queue_rejects_without_blocking() {
        let q = JobQueue::new(1);
        let (tx, _rx) = mpsc::channel();
        assert!(q.try_push(job(tx.clone())).is_ok());
        assert!(q.try_push(job(tx.clone())).is_err());
        q.pop();
        assert!(q.try_push(job(tx)).is_ok());
    }

    #[test]
    fn close_wakes_blocked_workers_and_rejects_pushes() {
        let q = std::sync::Arc::new(JobQueue::new(4));
        let waiter = {
            let q = std::sync::Arc::clone(&q);
            std::thread::spawn(move || q.pop().is_none())
        };
        // Give the worker a moment to block, then close.
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.close();
        assert!(waiter.join().expect("worker exits"));
        let (tx, _rx) = mpsc::channel();
        assert!(q.try_push(job(tx)).is_err());
    }

    #[test]
    fn state_names_are_stable() {
        let names: Vec<&str> = [
            JobState::Pending,
            JobState::Running,
            JobState::Complete,
            JobState::Failed,
            JobState::Rejected,
        ]
        .iter()
        .map(|s| s.as_str())
        .collect();
        assert_eq!(
            names,
            ["pending", "running", "complete", "failed", "rejected"]
        );
    }
}
