//! The allocation-provenance report: why the shared pool looks the way
//! it does.
//!
//! [`ExplainReport::build`] runs the paper's default shared-memory
//! pipeline (APGAN order → SDPPO loop DP → lifetime analysis → WIG →
//! first-fit in `ffdur` order) with the allocator's provenance ledger
//! and the pool occupancy timeline enabled, then packages the result as
//! the `allocation_explain` document (schema v8): one ledger entry per
//! buffer in placement order, the occupancy timeline with its two peaks,
//! and the waste-vs-lower-bound breakdown.
//!
//! Two invariants hold by construction and are asserted in tests:
//!
//! * the per-buffer fragmentation attributions sum exactly to the run's
//!   `alloc.fragmentation_words`;
//! * the occupancy timeline's occupied-words peak equals the shared
//!   pool size (`Allocation::total`) bit for bit.
//!
//! The document embeds no wall-clock data, so cached `explain`
//! responses repeat byte-identically.

use std::fmt::Write as _;

use sdf_alloc::provenance::GapRejection;
use sdf_alloc::{allocate_with_provenance, AllocationOrder, PlacementPolicy};
use sdf_core::graph::SdfGraph;
use sdf_core::repetitions::RepetitionsVector;
use sdf_lifetime::clique::mcw_optimistic;
use sdf_lifetime::occupancy::OccupancyTimeline;
use sdf_lifetime::tree::ScheduleTree;
use sdf_lifetime::wig::IntersectionGraph;
use sdf_sched::{apgan, sdppo};
use sdf_trace::json::{self, escape};

use crate::api::ServiceError;

/// One gap an allocation decision considered and rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExplainRejectedGap {
    /// First address of the gap.
    pub start: u64,
    /// One past the last address of the gap.
    pub end: u64,
    /// `too_small` or `policy_skip`.
    pub reason: &'static str,
    /// Words missing (`too_small`) or spare (`policy_skip`).
    pub words: u64,
}

/// One buffer's placement decision, in placement order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExplainLedgerEntry {
    /// Buffer name: `src->dst` actor names of the SDF edge.
    pub buffer: String,
    /// WIG buffer index (SDF edge order).
    pub index: usize,
    /// Position in the placement sequence (0 = placed first).
    pub sequence: usize,
    /// Buffer size in words.
    pub size: u64,
    /// Earliest start of the buffer's lifetime (schedule clock).
    pub start: u64,
    /// Envelope duration of the lifetime.
    pub duration: u64,
    /// The chosen address.
    pub offset: u64,
    /// Positions probed (conflicting ranges inspected + final placement).
    pub probes: u64,
    /// Pool waste words attributed to this single decision.
    pub fragmentation: u64,
    /// Gaps below the chosen offset, with rejection reasons.
    pub rejected: Vec<ExplainRejectedGap>,
}

/// One coalesced occupancy sample (step function, sampled at every
/// envelope transition).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExplainTimelinePoint {
    /// Logical time of the transition.
    pub time: u64,
    /// Live buffer count after it.
    pub live_buffers: u64,
    /// Live data words after it.
    pub live_words: u64,
    /// Pool high-water mark (`max(offset + size)` over live buffers).
    pub occupied_words: u64,
}

/// The complete allocation-provenance report of one graph
/// (the `allocation_explain` document).
#[derive(Clone, Debug)]
pub struct ExplainReport {
    /// Graph name.
    pub graph: String,
    /// Actor count.
    pub actors: usize,
    /// Edge (buffer) count.
    pub edges: usize,
    /// Allocation order used (`ffdur`).
    pub order: &'static str,
    /// Placement policy used (`first_fit`).
    pub policy: &'static str,
    /// Shared pool size in words (`max(offset + size)`).
    pub pool_total: u64,
    /// Sum of all buffer sizes — the non-shared requirement.
    pub non_shared_total: u64,
    /// The optimistic maximum-clique-weight estimate (§9.1): a lower
    /// bound on any valid shared pool for the analysed
    /// (SDPPO-optimised) schedule.
    pub lower_bound: u64,
    /// `pool_total - lower_bound`: words the layout wastes versus that
    /// lower bound.
    pub waste: u64,
    /// Sum of the per-buffer fragmentation attributions (the run's
    /// `alloc.fragmentation_words`).
    pub fragmentation_words: u64,
    /// One decision per buffer, in placement order.
    pub ledger: Vec<ExplainLedgerEntry>,
    /// The occupancy timeline, coalesced per transition instant.
    pub timeline: Vec<ExplainTimelinePoint>,
    /// Peak of the envelope-model live-words series. Informational:
    /// exact lifetimes can interleave within overlapping envelopes, so
    /// this may exceed `pool_total`.
    pub peak_live: u64,
    /// Peak of the occupied-words series (== `pool_total`).
    pub peak_occupied: u64,
    /// Time of the last envelope end.
    pub end_time: u64,
}

impl ExplainReport {
    /// Runs the default shared-memory pipeline on `g` with provenance
    /// enabled and assembles the report.
    ///
    /// # Errors
    ///
    /// [`ServiceError`] with an engine code on consistency or
    /// scheduling failures (same paths as `plan`).
    pub fn build(g: &SdfGraph) -> Result<ExplainReport, ServiceError> {
        let engine = ServiceError::engine;
        let q = RepetitionsVector::compute(g).map_err(|e| engine(e.to_string()))?;
        let order = apgan(g, &q).map_err(|e| engine(e.to_string()))?;
        let r = sdppo(g, &q, &order).map_err(|e| engine(e.to_string()))?;
        let tree = ScheduleTree::build(g, &q, &r.tree).map_err(|e| engine(e.to_string()))?;
        let wig = IntersectionGraph::build(g, &q, &tree);
        let (alloc, log) = allocate_with_provenance(
            &wig,
            AllocationOrder::DurationDescending,
            PlacementPolicy::FirstFit,
        );
        let timeline = OccupancyTimeline::build(&wig, alloc.offsets());

        let name_of = |index: usize| {
            let edge = &wig.buffer(index).edge;
            g.edges()
                .find(|(id, _)| id == edge)
                .map(|(_, e)| format!("{}->{}", g.actor_name(e.src), g.actor_name(e.snk)))
                .unwrap_or_else(|| format!("buffer{index}"))
        };
        let ledger: Vec<ExplainLedgerEntry> = log
            .decisions
            .iter()
            .map(|d| ExplainLedgerEntry {
                buffer: name_of(d.buffer),
                index: d.buffer,
                sequence: d.sequence,
                size: d.size,
                start: d.start,
                duration: d.duration,
                offset: d.offset,
                probes: d.probes,
                fragmentation: d.fragmentation,
                rejected: d
                    .rejected
                    .iter()
                    .map(|r| {
                        let (reason, words) = match r.reason {
                            GapRejection::TooSmall { shortfall } => ("too_small", shortfall),
                            GapRejection::PolicySkip { waste } => ("policy_skip", waste),
                        };
                        ExplainRejectedGap {
                            start: r.start,
                            end: r.end,
                            reason,
                            words,
                        }
                    })
                    .collect(),
            })
            .collect();

        let pool_total = alloc.total();
        // The envelope-model live peak is NOT a valid pool bound (exact
        // periodic lifetimes can interleave inside overlapping
        // envelopes), so the waste breakdown measures against the
        // paper's MCW lower bound instead.
        let lower_bound = mcw_optimistic(&wig);
        Ok(ExplainReport {
            graph: g.name().to_string(),
            actors: g.actor_count(),
            edges: wig.len(),
            order: "ffdur",
            policy: "first_fit",
            pool_total,
            non_shared_total: wig.total_size(),
            lower_bound,
            waste: pool_total - lower_bound,
            fragmentation_words: log.fragmentation_words(),
            ledger,
            timeline: timeline
                .samples()
                .iter()
                .map(|s| ExplainTimelinePoint {
                    time: s.time,
                    live_buffers: s.live_buffers,
                    live_words: s.live_words,
                    occupied_words: s.occupied_words,
                })
                .collect(),
            peak_live: timeline.peak_live(),
            peak_occupied: timeline.peak_occupied(),
            end_time: timeline.end_time(),
        })
    }

    /// Serializes the report as the `allocation_explain` document (one
    /// line, standard envelope, no wall-clock data).
    pub fn to_json(&self) -> String {
        let mut s = json::document_header("allocation_explain");
        let _ = write!(
            s,
            "\"graph\":\"{}\",\"actors\":{},\"edges\":{},\"order\":\"{}\",\"policy\":\"{}\",\
             \"pool_total\":{},\"non_shared_total\":{},\"lower_bound\":{},\"waste\":{},\
             \"fragmentation_words\":{},\"ledger\":[",
            escape(&self.graph),
            self.actors,
            self.edges,
            self.order,
            self.policy,
            self.pool_total,
            self.non_shared_total,
            self.lower_bound,
            self.waste,
            self.fragmentation_words,
        );
        for (i, entry) in self.ledger.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"buffer\":\"{}\",\"index\":{},\"sequence\":{},\"size\":{},\"start\":{},\
                 \"duration\":{},\"offset\":{},\"probes\":{},\"fragmentation\":{},\"rejected\":[",
                escape(&entry.buffer),
                entry.index,
                entry.sequence,
                entry.size,
                entry.start,
                entry.duration,
                entry.offset,
                entry.probes,
                entry.fragmentation,
            );
            for (j, gap) in entry.rejected.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                let field = match gap.reason {
                    "too_small" => "shortfall",
                    _ => "waste",
                };
                let _ = write!(
                    s,
                    "{{\"start\":{},\"end\":{},\"reason\":\"{}\",\"{}\":{}}}",
                    gap.start, gap.end, gap.reason, field, gap.words
                );
            }
            s.push_str("]}");
        }
        let _ = write!(
            s,
            "],\"timeline\":{{\"peak_live\":{},\"peak_occupied\":{},\"end_time\":{},\"samples\":[",
            self.peak_live, self.peak_occupied, self.end_time
        );
        for (i, p) in self.timeline.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "[{},{},{},{}]",
                p.time, p.live_buffers, p.live_words, p.occupied_words
            );
        }
        s.push_str("]}}");
        s
    }

    /// Renders the per-buffer placement stories as human-readable text,
    /// optionally restricted to the buffer named `only` (`src->dst`).
    /// Returns `None` if `only` matches no ledger entry.
    pub fn render_text(&self, only: Option<&str>) -> Option<String> {
        if let Some(name) = only {
            if !self.ledger.iter().any(|e| e.buffer == name) {
                return None;
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "allocation provenance for `{}` ({} actors, {} buffers, {}/{})",
            self.graph, self.actors, self.edges, self.order, self.policy
        );
        let _ = writeln!(
            out,
            "pool {} words | non-shared {} | lower bound {} | waste {} \
             (fragmentation attributed: {})",
            self.pool_total,
            self.non_shared_total,
            self.lower_bound,
            self.waste,
            self.fragmentation_words
        );
        out.push('\n');
        for entry in &self.ledger {
            if only.is_some_and(|name| entry.buffer != name) {
                continue;
            }
            let _ = write!(
                out,
                "#{} `{}` ({} words, live [{},{})) placed at {}",
                entry.sequence,
                entry.buffer,
                entry.size,
                entry.start,
                entry.start + entry.duration,
                entry.offset
            );
            if entry.rejected.is_empty() {
                let _ = writeln!(out, " — first feasible address");
            } else {
                let _ = writeln!(
                    out,
                    " after rejecting {} gap{}:",
                    entry.rejected.len(),
                    if entry.rejected.len() == 1 { "" } else { "s" }
                );
                for gap in &entry.rejected {
                    let why = match gap.reason {
                        "too_small" => format!("{} words short", gap.words),
                        _ => format!("policy skip, {} words spare", gap.words),
                    };
                    let _ = writeln!(out, "    gap [{},{}) — {}", gap.start, gap.end, why);
                }
            }
            if entry.fragmentation > 0 {
                let _ = writeln!(
                    out,
                    "    this decision cost {} words of fragmentation",
                    entry.fragmentation
                );
            }
        }
        if only.is_none() {
            out.push('\n');
            out.push_str(&self.ascii_profile(56, 8));
        }
        Some(out)
    }

    /// Renders the occupancy timeline as an ASCII profile: `#` for live
    /// words, `:` above them up to the occupied high-water mark (the
    /// visible gap between the two is the layout's waste).
    pub fn ascii_profile(&self, width: usize, height: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "pool occupancy (peak {} of {} words, t in [0,{}])",
            self.peak_occupied, self.pool_total, self.end_time
        );
        if self.peak_occupied == 0 || self.timeline.is_empty() {
            out.push_str("(pool never occupied)\n");
            return out;
        }
        let width = width.max(8);
        let height = height.max(2);
        // Per-column maxima of the two step series. Column c covers the
        // logical time window [end*c/width, end*(c+1)/width); a step
        // function's value entering the window is carried forward.
        let end = self.end_time.max(1);
        let mut live_cols = vec![0u64; width];
        let mut occ_cols = vec![0u64; width];
        let mut sample_at = 0usize;
        let (mut live, mut occ) = (0u64, 0u64);
        for (c, (lc, oc)) in live_cols.iter_mut().zip(occ_cols.iter_mut()).enumerate() {
            let window_end = end * (c as u64 + 1) / width as u64;
            *lc = live;
            *oc = occ;
            while sample_at < self.timeline.len() && self.timeline[sample_at].time < window_end {
                let p = self.timeline[sample_at];
                live = p.live_words;
                occ = p.occupied_words;
                *lc = (*lc).max(live);
                *oc = (*oc).max(occ);
                sample_at += 1;
            }
        }
        let peak = self.peak_occupied;
        let label_width = peak.to_string().len();
        for row in 0..height {
            // Threshold for this row, highest row first.
            let threshold = peak * (height - row) as u64;
            let _ = write!(out, "{:>label_width$} |", threshold.div_ceil(height as u64));
            for c in 0..width {
                let ch = if live_cols[c] * height as u64 >= threshold {
                    '#'
                } else if occ_cols[c] * height as u64 >= threshold {
                    ':'
                } else {
                    ' '
                };
                out.push(ch);
            }
            out.push('\n');
        }
        let _ = writeln!(out, "{:>label_width$} +{}", 0, "-".repeat(width));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdf_trace::json::{parse, Json};

    const FIG2: &str = "graph fig2\nedge A B 20 10\nedge B C 20 10\n";

    fn report() -> ExplainReport {
        let g = sdf_core::io::parse_graph(FIG2).unwrap();
        ExplainReport::build(&g).unwrap()
    }

    #[test]
    fn invariants_hold_on_fig2() {
        let r = report();
        assert_eq!(r.peak_occupied, r.pool_total);
        assert_eq!(r.waste, r.pool_total - r.lower_bound);
        assert_eq!(
            r.ledger.iter().map(|e| e.fragmentation).sum::<u64>(),
            r.fragmentation_words
        );
        assert_eq!(r.ledger.len(), r.edges);
        assert!(r.lower_bound <= r.pool_total);
    }

    #[test]
    fn document_parses_and_has_the_envelope() {
        let r = report();
        let doc_text = r.to_json();
        assert!(doc_text.starts_with(&format!(
            "{{\"kind\":\"allocation_explain\",\"schema_version\":{},",
            sdf_trace::SCHEMA_VERSION
        )));
        let doc = parse(&doc_text).expect("valid JSON");
        assert_eq!(doc.get("graph").and_then(Json::as_str), Some("fig2"));
        let ledger = doc.get("ledger").and_then(Json::as_array).unwrap();
        assert_eq!(ledger.len(), 2);
        let timeline = doc.get("timeline").unwrap();
        assert_eq!(
            timeline.get("peak_occupied").and_then(Json::as_num),
            Some(r.pool_total as f64)
        );
        assert!(timeline
            .get("samples")
            .and_then(Json::as_array)
            .is_some_and(|s| !s.is_empty()));
    }

    #[test]
    fn document_is_deterministic() {
        assert_eq!(report().to_json(), report().to_json());
    }

    #[test]
    fn text_rendering_covers_every_buffer() {
        let r = report();
        let text = r.render_text(None).unwrap();
        assert!(text.contains("`A->B`"));
        assert!(text.contains("`B->C`"));
        assert!(text.contains("pool occupancy"));
        // Filtered rendering keeps only the named buffer.
        let only = r.render_text(Some("A->B")).unwrap();
        assert!(only.contains("`A->B`"));
        assert!(!only.contains("`B->C`"));
        assert!(r.render_text(Some("no-such")).is_none());
    }

    #[test]
    fn ascii_profile_shows_live_words() {
        let r = report();
        let chart = r.ascii_profile(40, 6);
        assert!(chart.contains('#'));
        assert!(chart.lines().count() >= 8);
    }
}
