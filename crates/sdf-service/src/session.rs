//! Daemon-side incremental sessions for the `edit` operation.
//!
//! A [`SessionRegistry`] keeps a bounded pool of
//! [`IncrementalSession`]s keyed by the fingerprint of their current
//! graph's canonical text, all sharing one cross-request
//! [`MemoStore`]. An `edit` request naming a base graph the registry
//! has seen rides the delta path (chain-DP memo hits, lifetime/WIG/
//! allocation splicing); an unknown base falls back to a cold
//! synthesis that *seeds* a session, so the next edit against the
//! edited graph chains. After every edit the session is re-keyed under
//! the edited graph's fingerprint.
//!
//! The payload stays deterministic either way: both paths are
//! bit-identical to a cold [`AnalysisBuilder`] run (the incremental
//! module's contract, enforced by its test suite), and the payload is
//! assembled by the same [`edit_payload`] the stateless in-process
//! backend uses. Session-history-dependent numbers — memo hits,
//! splice counts, elapsed time — travel in [`DeltaStats`], which the
//! daemon worker folds into its private recorder and the per-request
//! telemetry, never into cached payload bytes.
//!
//! [`AnalysisBuilder`]: sdfmem::engine::AnalysisBuilder

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

use sdf_sched::memo::{MemoStats, MemoStore};
use sdf_trace::StageSpan;
use sdfmem::engine::SynthesisOptions;
use sdfmem::incremental::{apply_edits, DeltaStats, IncrementalSession};

use crate::api::{
    edit_payload, parse_edits_input, parse_graph_input, ServiceError, ServiceResponse, StageClock,
};
use crate::hash::fingerprint;

/// How many live sessions the registry retains (LRU eviction). Each
/// session holds one graph plus per-stage delta state; the shared memo
/// store is bounded separately.
const SESSION_CAPACITY: usize = 32;

/// A bounded pool of incremental sessions sharing one memo store.
pub struct SessionRegistry {
    memo: Arc<MemoStore>,
    inner: Mutex<Inner>,
}

struct Inner {
    sessions: HashMap<String, IncrementalSession>,
    /// Recency order for LRU eviction, least recently used at the
    /// front; keys here are always present in `sessions` and vice
    /// versa. `take_session` removes a key and every insert pushes it
    /// to the back, so a session touched by an edit moves to the back
    /// even when its fingerprint is unchanged.
    order: VecDeque<String>,
}

impl Default for SessionRegistry {
    fn default() -> Self {
        SessionRegistry::new()
    }
}

impl SessionRegistry {
    /// An empty registry with a fresh shared [`MemoStore`].
    pub fn new() -> SessionRegistry {
        SessionRegistry {
            memo: Arc::new(MemoStore::new()),
            inner: Mutex::new(Inner {
                sessions: HashMap::new(),
                order: VecDeque::new(),
            }),
        }
    }

    /// Point-in-time stats of the shared memo store.
    pub fn memo_stats(&self) -> MemoStats {
        self.memo.stats()
    }

    /// Number of live sessions.
    pub fn session_count(&self) -> usize {
        self.inner.lock().map(|i| i.sessions.len()).unwrap_or(0)
    }

    fn take_session(&self, key: &str) -> Option<IncrementalSession> {
        let mut inner = self.inner.lock().ok()?;
        let session = inner.sessions.remove(key)?;
        inner.order.retain(|k| k != key);
        Some(session)
    }

    fn insert_session(&self, key: String, session: IncrementalSession) {
        let Ok(mut inner) = self.inner.lock() else {
            return;
        };
        if inner.sessions.insert(key.clone(), session).is_some() {
            // Overwriting an existing key is a use: move it to the
            // most-recently-used end instead of leaving it at its old
            // (possibly about-to-be-evicted) position.
            inner.order.retain(|k| k != &key);
        }
        inner.order.push_back(key);
        while inner.sessions.len() > SESSION_CAPACITY {
            let Some(oldest) = inner.order.pop_front() else {
                break;
            };
            inner.sessions.remove(&oldest);
        }
    }

    /// Executes an `edit` request against the registry: delta path when
    /// the base graph has a live session, cold synthesis (seeding one)
    /// otherwise. Returns the response, the measured stage tree, and —
    /// when the engine ran — the delta statistics for the caller's
    /// recorder. The payload is byte-identical to the stateless
    /// [`execute_request`](crate::api::execute_request) path.
    pub fn execute_edit_timed(
        &self,
        graph_text: &str,
        edits_text: &str,
    ) -> (ServiceResponse, Vec<StageSpan>, Option<DeltaStats>) {
        let mut clock = StageClock::new();
        let mut stats = None;
        let response = match self.edit_inner(graph_text, edits_text, &mut clock, &mut stats) {
            Ok(payload) => ServiceResponse::Ok(payload),
            Err(error) => ServiceResponse::Err(error),
        };
        (response, clock.stages, stats)
    }

    fn edit_inner(
        &self,
        graph_text: &str,
        edits_text: &str,
        clock: &mut StageClock,
        stats_out: &mut Option<DeltaStats>,
    ) -> Result<crate::api::ResponsePayload, ServiceError> {
        let (base, script) = clock.time("parse", || {
            let g = parse_graph_input(graph_text)?;
            let s = parse_edits_input(edits_text)?;
            Ok::<_, ServiceError>((g, s))
        })?;
        // The payload's edited graph is computed directly from the
        // request — never from session state — so its bytes cannot
        // depend on what the registry happens to remember.
        let edited = clock.time("apply", || {
            apply_edits(&base, &script).map_err(|e| ServiceError::engine(e.to_string()))
        })?;
        let base_key = fingerprint(&sdf_core::io::to_text(&base));
        let session = self.take_session(&base_key);
        let result = clock.time("engine", || match session {
            Some(mut session) => match session.apply_edits(&script) {
                Ok(result) => Ok((session, result)),
                Err(e) => {
                    // apply_edits keeps the session's previous state on
                    // error, so the stream is not wedged by a bad edit.
                    self.insert_session(base_key.clone(), session);
                    Err(ServiceError::engine(e.to_string()))
                }
            },
            None => {
                let mut session =
                    IncrementalSession::with_store(SynthesisOptions::default(), self.memo.clone());
                session
                    .synthesize(&edited)
                    .map(|result| (session, result))
                    .map_err(|e| ServiceError::engine(e.to_string()))
            }
        });
        let (session, result) = result?;
        let edited_key = fingerprint(&sdf_core::io::to_text(&edited));
        self.insert_session(edited_key, session);
        *stats_out = Some(result.stats);
        edit_payload(&base, edited, result.analysis, script.ops.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{execute_request, ServiceRequest};

    const FIG2: &str = "graph fig2\nedge A B 20 10\nedge B C 20 10\n";

    fn payload_json(response: &ServiceResponse) -> String {
        match response {
            ServiceResponse::Ok(p) => p.to_json(),
            other => panic!("unexpected response status: {}", other.status()),
        }
    }

    #[test]
    fn cold_then_delta_bytes_match_stateless_path() {
        let registry = SessionRegistry::new();
        let edits = "set-rate A B 40 10\n";
        let stateless = execute_request(&ServiceRequest::Edit {
            graph: FIG2.into(),
            edits: edits.into(),
        });
        // Cold (no session for FIG2 yet).
        let (cold, _, cold_stats) = registry.execute_edit_timed(FIG2, edits);
        let cold_stats = cold_stats.expect("stats on success");
        assert!(cold_stats.cold);
        assert_eq!(payload_json(&cold), payload_json(&stateless));
        assert_eq!(registry.session_count(), 1);
        // Same request again: the session was re-keyed under the edited
        // graph, so the base FIG2 is once more unknown — still cold,
        // still identical bytes.
        let (again, _, again_stats) = registry.execute_edit_timed(FIG2, edits);
        assert!(again_stats.expect("stats").cold);
        assert_eq!(payload_json(&again), payload_json(&stateless));
    }

    #[test]
    fn chained_edit_rides_the_delta_path() {
        let registry = SessionRegistry::new();
        let (first, _, _) = registry.execute_edit_timed(FIG2, "set-delay A B 5\n");
        assert!(matches!(first, ServiceResponse::Ok(_)));
        // The edited graph's text is FIG2 with a delay on A->B; an edit
        // whose base is that graph finds the live session.
        let edited = "graph fig2\nedge A B 20 10 delay 5\nedge B C 20 10\n";
        let next_edits = "set-delay A B 7\n";
        let (second, _, stats) = registry.execute_edit_timed(edited, next_edits);
        let stats = stats.expect("stats on success");
        assert!(!stats.cold, "chained edit should take the delta path");
        let stateless = execute_request(&ServiceRequest::Edit {
            graph: edited.into(),
            edits: next_edits.into(),
        });
        assert_eq!(payload_json(&second), payload_json(&stateless));
    }

    #[test]
    fn bad_edit_keeps_the_session_alive() {
        let registry = SessionRegistry::new();
        let (_, _, _) = registry.execute_edit_timed(FIG2, "set-delay A B 5\n");
        let edited = "graph fig2\nedge A B 20 10 delay 5\nedge B C 20 10\n";
        let (err, _, stats) = registry.execute_edit_timed(edited, "remove-edge X Y\n");
        assert!(matches!(err, ServiceResponse::Err(_)));
        assert!(stats.is_none());
        assert_eq!(registry.session_count(), 1, "session survives a bad edit");
        // And the stream continues on the delta path afterwards.
        let (ok, _, stats) = registry.execute_edit_timed(edited, "set-delay A B 9\n");
        assert!(matches!(ok, ServiceResponse::Ok(_)));
        assert!(!stats.expect("stats").cold);
    }

    #[test]
    fn registry_is_lru_bounded() {
        let registry = SessionRegistry::new();
        let base = |i: usize| format!("graph g{i}\nedge A B {} 10\nedge B C 20 10\n", 10 * (i + 1));
        let edited = |i: usize, d: u64| {
            format!(
                "graph g{i}\nedge A B {} 10 delay {d}\nedge B C 20 10\n",
                10 * (i + 1)
            )
        };
        // Fill to capacity; each session ends up keyed by its edited
        // graph (delay 1 on A->B).
        for i in 0..SESSION_CAPACITY {
            let (resp, _, _) = registry.execute_edit_timed(&base(i), "set-delay A B 1\n");
            assert!(matches!(resp, ServiceResponse::Ok(_)));
        }
        assert_eq!(registry.session_count(), SESSION_CAPACITY);
        // Touch session 0, the least recently used: its edit rides the
        // delta path and must move it to the most-recently-used end.
        let (touch, _, stats) = registry.execute_edit_timed(&edited(0, 1), "set-delay A B 2\n");
        assert!(matches!(touch, ServiceResponse::Ok(_)));
        assert!(!stats.expect("stats").cold, "touch rides the delta path");
        // A brand-new session overflows the bound. FIFO would evict the
        // just-touched session 0; LRU evicts session 1 instead.
        let (fresh, _, _) =
            registry.execute_edit_timed(&base(SESSION_CAPACITY), "set-delay A B 1\n");
        assert!(matches!(fresh, ServiceResponse::Ok(_)));
        assert_eq!(registry.session_count(), SESSION_CAPACITY);
        // The hot session survived the eviction...
        let (s0, _, stats) = registry.execute_edit_timed(&edited(0, 2), "set-delay A B 3\n");
        assert!(matches!(s0, ServiceResponse::Ok(_)));
        assert!(!stats.expect("stats").cold, "hot session was evicted");
        // ...and the least recently used one was the victim.
        let (s1, _, stats) = registry.execute_edit_timed(&edited(1, 1), "set-delay A B 3\n");
        assert!(matches!(s1, ServiceResponse::Ok(_)));
        assert!(stats.expect("stats").cold, "LRU victim should be gone");
    }
}
