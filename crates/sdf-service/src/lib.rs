//! Synthesis as a service.
//!
//! One Request/Response API over the `sdfmem` synthesis engine, with
//! two transports:
//!
//! - **in-process** — the CLI subcommands build a [`ServiceRequest`],
//!   call [`execute_request`] and render the typed
//!   [`ServiceResponse`];
//! - **wire** — the `sdfmemd` daemon ([`Server`]) accepts the same
//!   requests as line-delimited JSON over TCP, runs them on a bounded
//!   worker pool behind a content-addressed LRU result cache, and
//!   streams back response envelopes a [`Client`] can consume.
//!
//! The service contract that shapes everything here: **a cached
//! response is byte-identical to a freshly computed one.** Cache keys
//! are fingerprints of a canonical request form (op + options +
//! re-printed graph text, actor order preserved), entries verify the
//! canonical text so hash collisions cannot leak foreign results, and
//! workers never install a global trace recorder (which would bleed
//! cross-job counter totals into `engine_report` bytes). The daemon's
//! own observability — `service.*` counters, gauges and latency
//! histograms, per-job `service.job` spans, a bounded flight recorder
//! of per-request summaries — lives on a private
//! [`sdf_trace::Recorder`] and is exported through the `stats`,
//! `metrics` (Prometheus-style exposition text) and `events`
//! (flight-recorder drain) operations.
//!
//! Every request additionally carries its own story back to the
//! client: the response envelope's `telemetry` member (cache status,
//! queue wait, service time, per-stage span tree, counter deltas) is
//! composed per request *outside* the cached payload bytes, so the
//! byte-identity contract and per-request observability coexist.
//!
//! Module map:
//!
//! | module | contents |
//! |---|---|
//! | [`api`] | [`ServiceRequest`] / [`ServiceResponse`], wire envelopes, the in-process backend |
//! | [`hash`] | dependency-free 128-bit FNV-1a content fingerprints |
//! | [`cache`] | bounded LRU result cache with collision verification |
//! | [`job`] | job state machine and the bounded work queue |
//! | [`session`] | incremental edit sessions sharing a cross-request memo store |
//! | [`server`] | the `sdfmemd` TCP daemon |
//! | [`client`] | blocking wire client with verbatim payload extraction |

#![warn(missing_docs)]

pub mod api;
pub mod cache;
pub mod client;
pub mod explain;
pub mod hash;
pub mod job;
pub mod server;
pub mod session;

pub use api::{
    execute_request, execute_request_cached, execute_request_cached_timed, execute_request_timed,
    lower_plan, parse_edits_input, parse_graph_input, ErrorCode, MemoryModel, OrderMethod,
    RequestTelemetry, ResponsePayload, ServiceError, ServiceRequest, ServiceResponse,
};
pub use cache::{CacheLookup, ResultCache};
pub use client::{Client, WireError, WireResponse};
pub use explain::{ExplainLedgerEntry, ExplainRejectedGap, ExplainReport, ExplainTimelinePoint};
pub use hash::fingerprint;
pub use job::{Job, JobOutcome, JobQueue, JobState};
pub use server::{Server, ServerConfig};
pub use session::SessionRegistry;
