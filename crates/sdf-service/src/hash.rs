//! Hand-rolled content hashing for cache keys.
//!
//! The result cache is *content-addressed*: the key of a request is a
//! hash of its canonical form (op tag, options, canonicalised graph
//! text).  The workspace is dependency-free, so the hash is a pair of
//! independent FNV-1a streams — 128 bits total, far beyond birthday
//! collisions for any realistic corpus — and the cache additionally
//! stores the canonical string itself, so even a colliding key can
//! never serve the wrong payload (see [`crate::cache::ResultCache`]).

/// FNV-1a offset basis (the standard 64-bit parameters).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
/// Offset basis of the second, independent stream (the first basis
/// scrambled once through the FNV round itself, so the two streams
/// never start in the same state).
const FNV_OFFSET_B: u64 = (FNV_OFFSET ^ 0x9e37_79b9_7f4a_7c15).wrapping_mul(FNV_PRIME);

/// A 128-bit FNV-1a-style streaming hasher (two independent 64-bit
/// lanes; the second lane also whitens each input byte so the lanes
/// cannot cancel each other).
#[derive(Clone, Copy, Debug)]
pub struct Fnv128 {
    lo: u64,
    hi: u64,
}

impl Default for Fnv128 {
    fn default() -> Self {
        Fnv128::new()
    }
}

impl Fnv128 {
    /// A hasher in its initial state.
    pub fn new() -> Self {
        Fnv128 {
            lo: FNV_OFFSET,
            hi: FNV_OFFSET_B,
        }
    }

    /// Feeds `bytes` into both lanes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.lo = (self.lo ^ u64::from(b)).wrapping_mul(FNV_PRIME);
            self.hi = (self.hi ^ u64::from(b ^ 0x5c)).wrapping_mul(FNV_PRIME);
        }
    }

    /// The 32-hex-digit digest of everything written so far.
    pub fn finish_hex(&self) -> String {
        format!("{:016x}{:016x}", self.lo, self.hi)
    }
}

/// One-shot convenience: the 32-hex-digit fingerprint of `text`.
pub fn fingerprint(text: &str) -> String {
    let mut h = Fnv128::new();
    h.write(text.as_bytes());
    h.finish_hex()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_stable_and_input_sensitive() {
        let a = fingerprint("graph fig2\nedge A B 20 10\n");
        let b = fingerprint("graph fig2\nedge A B 20 10\n");
        let c = fingerprint("graph fig2\nedge A B 20 11\n");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 32);
        assert!(a.bytes().all(|ch| ch.is_ascii_hexdigit()));
    }

    #[test]
    fn streaming_equals_one_shot() {
        let mut h = Fnv128::new();
        h.write(b"hello ");
        h.write(b"world");
        assert_eq!(h.finish_hex(), fingerprint("hello world"));
    }

    #[test]
    fn lanes_are_independent() {
        // A one-byte input must move both lanes differently.
        let a = fingerprint("x");
        let (lo, hi) = a.split_at(16);
        assert_ne!(lo, hi);
    }
}
