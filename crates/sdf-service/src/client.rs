//! Blocking client for the `sdfmemd` wire protocol.
//!
//! The client keeps the embedded result document as the **verbatim
//! byte range** of the response line — the envelope places `payload`
//! last precisely so this extraction needs no JSON re-serialization,
//! and a cached payload compares byte-for-byte against a fresh one.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use sdf_trace::json::{self, Json};

use crate::api::ServiceRequest;

/// The error object of an `error` or `rejected` response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// Machine-readable failure class (`bad_request`, `parse_error`,
    /// `engine_error`, `unavailable`).
    pub code: String,
    /// The request member at fault, when attributable.
    pub input: Option<String>,
    /// Human-readable detail.
    pub message: String,
}

/// One parsed response envelope.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireResponse {
    /// Echo of the submitted request id.
    pub request_id: String,
    /// `ok`, `rejected` or `error`.
    pub status: String,
    /// Whether the payload was served from the result cache.
    pub cached: bool,
    /// The embedded result document, verbatim (present iff `ok`).
    pub payload: Option<String>,
    /// The request-scoped `telemetry` object, verbatim (present on
    /// responses composed by the daemon's service path; absent from
    /// envelopes that never took it, like pre-queue parse failures).
    pub telemetry: Option<String>,
    /// The error object (present iff not `ok`).
    pub error: Option<WireError>,
}

impl WireResponse {
    /// Whether the request succeeded.
    pub fn is_ok(&self) -> bool {
        self.status == "ok"
    }

    /// Parses a response line, keeping the payload bytes verbatim.
    ///
    /// # Errors
    ///
    /// A human-readable message when the line is not a well-formed
    /// `service_response` envelope.
    pub fn parse(line: &str) -> Result<WireResponse, String> {
        let doc = json::parse(line).map_err(|e| format!("bad response JSON: {e}"))?;
        let kind = doc.get("kind").and_then(Json::as_str).unwrap_or("");
        if kind != "service_response" {
            return Err(format!("expected a service_response, got kind \"{kind}\""));
        }
        let status = doc
            .get("status")
            .and_then(Json::as_str)
            .ok_or("response missing \"status\"")?
            .to_string();
        let payload = if status == "ok" {
            Some(extract_payload(line)?)
        } else {
            None
        };
        let error = doc.get("error").map(|e| WireError {
            code: e
                .get("code")
                .and_then(Json::as_str)
                .unwrap_or("unknown")
                .to_string(),
            input: e.get("input").and_then(Json::as_str).map(str::to_string),
            message: e
                .get("message")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
        });
        Ok(WireResponse {
            request_id: doc
                .get("request_id")
                .and_then(Json::as_str)
                .unwrap_or("-")
                .to_string(),
            status,
            cached: doc.get("cached").and_then(Json::as_bool).unwrap_or(false),
            payload,
            telemetry: extract_telemetry(line),
            error,
        })
    }
}

/// Slices the raw payload document out of an `ok` envelope.
///
/// The envelope contract makes this safe: `payload` is the last
/// member, and the raw byte sequence `,"payload":` cannot occur inside
/// any JSON string (its quotes would be escaped there), so the first
/// match is the member boundary.
fn extract_payload(line: &str) -> Result<String, String> {
    const MARKER: &str = ",\"payload\":";
    let start = line.find(MARKER).ok_or("ok response missing \"payload\"")? + MARKER.len();
    let end = line
        .trim_end()
        .strip_suffix('}')
        .map(str::len)
        .ok_or("response envelope not closed")?;
    if start > end {
        return Err("empty payload".to_string());
    }
    Ok(line[start..end].to_string())
}

/// Slices the raw `telemetry` object out of an envelope, if present.
///
/// Telemetry sits between `cached` and the `payload`/`error` member, so
/// its verbatim bytes run from the marker to whichever of those
/// markers follows first (the same escaped-quotes argument that makes
/// [`extract_payload`] safe applies to all three markers).
fn extract_telemetry(line: &str) -> Option<String> {
    const MARKER: &str = ",\"telemetry\":";
    let start = line.find(MARKER)? + MARKER.len();
    let rest = &line[start..];
    let end = [",\"payload\":", ",\"error\":"]
        .iter()
        .filter_map(|m| rest.find(m))
        .min()
        .unwrap_or_else(|| {
            rest.trim_end()
                .strip_suffix('}')
                .map_or(rest.len(), str::len)
        });
    Some(rest[..end].to_string())
}

/// A blocking connection to a daemon.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to `addr` (`host:port`).
    ///
    /// # Errors
    ///
    /// A human-readable message when the connection fails.
    pub fn connect(addr: &str) -> Result<Client, String> {
        let stream =
            TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| format!("cannot clone stream: {e}"))?,
        );
        Ok(Client {
            writer: stream,
            reader,
        })
    }

    /// Submits one request and blocks for its response.
    ///
    /// # Errors
    ///
    /// A human-readable message on I/O failure or a malformed response
    /// (protocol errors inside a well-formed envelope come back as a
    /// [`WireResponse`] with a non-`ok` status instead).
    pub fn call(
        &mut self,
        request_id: &str,
        request: &ServiceRequest,
    ) -> Result<WireResponse, String> {
        self.send_raw(&request.to_json(request_id))
    }

    /// Like [`Client::call`], but also returns the verbatim response
    /// line (for callers that relay the envelope, like `sdfmem
    /// submit`).
    ///
    /// # Errors
    ///
    /// Same as [`Client::call`].
    pub fn call_line(
        &mut self,
        request_id: &str,
        request: &ServiceRequest,
    ) -> Result<(String, WireResponse), String> {
        let line = self.exchange(&request.to_json(request_id))?;
        let parsed = WireResponse::parse(&line)?;
        Ok((line, parsed))
    }

    /// Submits a raw request line (for protocol tests) and blocks for
    /// the response.
    ///
    /// # Errors
    ///
    /// Same as [`Client::call`].
    pub fn send_raw(&mut self, line: &str) -> Result<WireResponse, String> {
        let response = self.exchange(line)?;
        WireResponse::parse(&response)
    }

    fn exchange(&mut self, line: &str) -> Result<String, String> {
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("cannot send request: {e}"))?;
        let mut response = String::new();
        let n = self
            .reader
            .read_line(&mut response)
            .map_err(|e| format!("cannot read response: {e}"))?;
        if n == 0 {
            return Err("server closed the connection".to_string());
        }
        Ok(response)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_extraction_is_verbatim() {
        let envelope = "{\"kind\":\"service_response\",\"schema_version\":7,\
                        \"request_id\":\"r\",\"status\":\"ok\",\"cached\":true,\
                        \"payload\":{\"kind\":\"engine_report\",\"graph\":\"fig2\"}}\n";
        let r = WireResponse::parse(envelope).expect("parses");
        assert!(r.is_ok());
        assert!(r.cached);
        assert!(r.telemetry.is_none());
        assert_eq!(
            r.payload.as_deref(),
            Some("{\"kind\":\"engine_report\",\"graph\":\"fig2\"}")
        );
    }

    #[test]
    fn telemetry_extraction_is_verbatim() {
        let telemetry = "{\"cache\":\"hit\",\"queue_wait_ns\":0,\"service_ns\":41,\
                         \"stages\":[],\"counters\":{}}";
        let envelope = format!(
            "{{\"kind\":\"service_response\",\"schema_version\":7,\
             \"request_id\":\"r\",\"status\":\"ok\",\"cached\":true,\
             \"telemetry\":{telemetry},\
             \"payload\":{{\"kind\":\"engine_report\",\"graph\":\"fig2\"}}}}\n"
        );
        let r = WireResponse::parse(&envelope).expect("parses");
        assert_eq!(r.telemetry.as_deref(), Some(telemetry));
        assert_eq!(
            r.payload.as_deref(),
            Some("{\"kind\":\"engine_report\",\"graph\":\"fig2\"}")
        );
    }

    #[test]
    fn telemetry_extraction_stops_at_the_error_member() {
        let envelope = "{\"kind\":\"service_response\",\"schema_version\":7,\
                        \"request_id\":\"r\",\"status\":\"error\",\"cached\":false,\
                        \"telemetry\":{\"cache\":\"uncached\",\"queue_wait_ns\":2,\
                        \"service_ns\":9,\"stages\":[],\"counters\":{}},\
                        \"error\":{\"code\":\"parse_error\",\"message\":\"m\"}}\n";
        let r = WireResponse::parse(envelope).expect("parses");
        let t = r.telemetry.expect("telemetry object");
        assert!(t.starts_with("{\"cache\":\"uncached\""));
        assert!(t.ends_with("\"counters\":{}}"));
        assert_eq!(r.error.expect("error").code, "parse_error");
    }

    #[test]
    fn payload_marker_in_string_values_is_escaped_away() {
        // A message containing the text `,"payload":` arrives escaped,
        // so extraction still finds the real member.
        let message = "tricky ,\\\"payload\\\": text";
        let envelope = format!(
            "{{\"kind\":\"service_response\",\"schema_version\":7,\
             \"request_id\":\"{message}\",\"status\":\"ok\",\"cached\":false,\
             \"payload\":{{\"x\":1}}}}\n"
        );
        let r = WireResponse::parse(&envelope).expect("parses");
        assert_eq!(r.payload.as_deref(), Some("{\"x\":1}"));
    }

    #[test]
    fn error_envelope_parses_without_payload() {
        let envelope = "{\"kind\":\"service_response\",\"schema_version\":7,\
                        \"request_id\":\"r\",\"status\":\"error\",\"cached\":false,\
                        \"error\":{\"code\":\"parse_error\",\"input\":\"graph\",\
                        \"message\":\"line 2: bad edge\"}}\n";
        let r = WireResponse::parse(envelope).expect("parses");
        assert!(!r.is_ok());
        assert!(r.payload.is_none());
        let e = r.error.expect("error object");
        assert_eq!(e.code, "parse_error");
        assert_eq!(e.input.as_deref(), Some("graph"));
    }

    #[test]
    fn foreign_documents_are_rejected() {
        assert!(WireResponse::parse("{\"kind\":\"engine_report\"}").is_err());
        assert!(WireResponse::parse("not json").is_err());
    }
}
