//! Bounded, content-addressed LRU cache of finished result payloads.
//!
//! Keys are the 128-bit [`crate::hash::fingerprint`] of a request's
//! canonical form; values are the serialized payload document the
//! worker produced.  Every entry also stores the canonical string
//! itself, so a fingerprint collision can never serve a foreign
//! payload: [`ResultCache::get`] compares the canonical text and
//! reports [`CacheLookup::Collision`] on mismatch, which the server
//! treats as a miss (and counts under `service.cache.collisions`).
//!
//! Recency is tracked lazily: each touch appends a `(stamp, key)`
//! record to a queue, and eviction pops records until it finds one
//! whose stamp still matches the entry's latest stamp.  That keeps
//! both hit and insert O(1) amortised without a linked list.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// One cached result.
struct Entry {
    /// The full canonical request text, for collision verification.
    canonical: String,
    /// The serialized payload document.
    payload: Arc<String>,
    /// The stamp of this entry's newest recency record.
    stamp: u64,
}

/// Outcome of a cache probe.
pub enum CacheLookup {
    /// The key is present and its canonical text matches.
    Hit(Arc<String>),
    /// The key is present but belongs to a *different* canonical text —
    /// a fingerprint collision. The caller must treat this as a miss
    /// (the colliding entry keeps its slot; newest-wins would let an
    /// attacker-shaped workload thrash the slot).
    Collision,
    /// The key is absent.
    Miss,
}

/// A bounded LRU map from request fingerprints to result payloads.
pub struct ResultCache {
    capacity: usize,
    map: HashMap<String, Entry>,
    recency: VecDeque<(u64, String)>,
    next_stamp: u64,
}

impl ResultCache {
    /// An empty cache holding at most `capacity` entries (a capacity of
    /// zero disables caching: every insert evicts itself).
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            capacity,
            map: HashMap::new(),
            recency: VecDeque::new(),
            next_stamp: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn stamp(&mut self) -> u64 {
        self.next_stamp += 1;
        self.next_stamp
    }

    /// Probes for `key`, verifying against `canonical`. A hit refreshes
    /// the entry's recency.
    pub fn get(&mut self, key: &str, canonical: &str) -> CacheLookup {
        let stamp = self.stamp();
        match self.map.get_mut(key) {
            None => CacheLookup::Miss,
            Some(entry) if entry.canonical != canonical => CacheLookup::Collision,
            Some(entry) => {
                entry.stamp = stamp;
                self.recency.push_back((stamp, key.to_string()));
                CacheLookup::Hit(Arc::clone(&entry.payload))
            }
        }
    }

    /// Inserts (or refreshes) `key`, evicting least-recently-used
    /// entries while over capacity. Returns how many entries were
    /// evicted.
    pub fn insert(&mut self, key: String, canonical: String, payload: Arc<String>) -> usize {
        let stamp = self.stamp();
        self.recency.push_back((stamp, key.clone()));
        self.map.insert(
            key,
            Entry {
                canonical,
                payload,
                stamp,
            },
        );
        let mut evicted = 0;
        while self.map.len() > self.capacity {
            match self.recency.pop_front() {
                None => break, // unreachable: every entry has a record
                Some((record_stamp, record_key)) => {
                    // Stale record (the entry was touched again later):
                    // skip it, the newer record protects the entry.
                    let is_current = self
                        .map
                        .get(&record_key)
                        .is_some_and(|e| e.stamp == record_stamp);
                    if is_current {
                        self.map.remove(&record_key);
                        evicted += 1;
                    }
                }
            }
        }
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(text: &str) -> Arc<String> {
        Arc::new(text.to_string())
    }

    #[test]
    fn hit_returns_inserted_payload() {
        let mut c = ResultCache::new(4);
        assert!(matches!(c.get("k", "canon"), CacheLookup::Miss));
        c.insert("k".into(), "canon".into(), payload("{\"x\":1}"));
        match c.get("k", "canon") {
            CacheLookup::Hit(p) => assert_eq!(p.as_str(), "{\"x\":1}"),
            _ => panic!("expected hit"),
        }
    }

    #[test]
    fn collision_is_not_served() {
        let mut c = ResultCache::new(4);
        c.insert("k".into(), "canon-a".into(), payload("A"));
        assert!(matches!(c.get("k", "canon-b"), CacheLookup::Collision));
        // The original entry is untouched.
        assert!(matches!(c.get("k", "canon-a"), CacheLookup::Hit(_)));
    }

    #[test]
    fn eviction_is_least_recently_used() {
        let mut c = ResultCache::new(2);
        c.insert("a".into(), "a".into(), payload("A"));
        c.insert("b".into(), "b".into(), payload("B"));
        // Touch `a` so `b` is now the LRU entry.
        assert!(matches!(c.get("a", "a"), CacheLookup::Hit(_)));
        let evicted = c.insert("c".into(), "c".into(), payload("C"));
        assert_eq!(evicted, 1);
        assert_eq!(c.len(), 2);
        assert!(matches!(c.get("b", "b"), CacheLookup::Miss));
        assert!(matches!(c.get("a", "a"), CacheLookup::Hit(_)));
        assert!(matches!(c.get("c", "c"), CacheLookup::Hit(_)));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = ResultCache::new(0);
        let evicted = c.insert("k".into(), "k".into(), payload("X"));
        assert_eq!(evicted, 1);
        assert!(c.is_empty());
        assert!(matches!(c.get("k", "k"), CacheLookup::Miss));
    }

    #[test]
    fn reinsert_refreshes_without_growth() {
        let mut c = ResultCache::new(2);
        for _ in 0..10 {
            c.insert("k".into(), "k".into(), payload("X"));
        }
        assert_eq!(c.len(), 1);
    }
}
