//! The `sdfmemd` daemon: a TCP server over the unified API.
//!
//! Protocol: line-delimited JSON. Each connection may submit any
//! number of [`ServiceRequest`](crate::api::ServiceRequest) lines and
//! receives one [`ServiceResponse`](crate::api::ServiceResponse) line
//! per request, in order.
//!
//! Architecture: an accept thread spawns one lightweight thread per
//! connection. Connection threads parse requests, probe the result
//! cache, and on a miss enqueue a [`Job`] on the bounded queue, then
//! block on the job's channel; a fixed pool of worker threads drains
//! the queue through [`execute_request_cached`]. A full queue rejects
//! the submission immediately (state `rejected`) — backpressure
//! reaches the client as a response, never as a hang.
//!
//! **Byte-identity invariant.** Workers never install a global
//! [`sdf_trace`] recorder around job execution: engine counters are
//! process-global totals, so a recorder would make the embedded
//! `counters` section of an `engine_report` depend on what ran
//! before, and a cached payload would no longer be byte-identical to
//! a fresh run. All `service.*` instruments and per-job `service.job`
//! spans go directly onto the server's private [`Recorder`] instead.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

use sdf_trace::Recorder;

use crate::api::{
    envelope_error, envelope_ok, execute_request_cached, ErrorCode, ResponsePayload,
    ServiceRequest, ServiceResponse,
};
use crate::cache::{CacheLookup, ResultCache};
use crate::job::{Job, JobOutcome, JobQueue, JobState};

/// Daemon tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Worker threads draining the job queue. Zero is allowed (useful
    /// for deterministic backpressure tests): nothing drains the
    /// queue, so the first `queue_capacity` misses park and later ones
    /// are rejected.
    pub workers: usize,
    /// Result-cache capacity, in entries.
    pub cache_capacity: usize,
    /// Job-queue capacity; submissions beyond it are rejected.
    pub queue_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            cache_capacity: 256,
            queue_capacity: 64,
        }
    }
}

struct Shared {
    recorder: Arc<Recorder>,
    cache: Mutex<ResultCache>,
    queue: JobQueue,
    stopping: AtomicBool,
    addr: SocketAddr,
}

impl Shared {
    fn count(&self, name: &'static str) {
        self.recorder.counter_add(name, 1);
    }

    fn stats_payload(&self) -> ResponsePayload {
        ResponsePayload::Stats {
            counters: self.recorder.counters(),
            gauges: self.recorder.gauges(),
        }
    }
}

/// A running daemon. Dropping the handle does not stop it; call
/// [`Server::shutdown`] (or submit a `shutdown` request) and then
/// [`Server::wait`].
pub struct Server {
    shared: Arc<Shared>,
    accept_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// starts the accept loop and worker pool.
    ///
    /// # Errors
    ///
    /// A human-readable message when the address cannot be bound.
    pub fn bind(addr: &str, config: ServerConfig) -> Result<Server, String> {
        let listener = TcpListener::bind(addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
        let local = listener
            .local_addr()
            .map_err(|e| format!("cannot resolve bound address: {e}"))?;
        let shared = Arc::new(Shared {
            recorder: Arc::new(Recorder::new()),
            cache: Mutex::new(ResultCache::new(config.cache_capacity)),
            queue: JobQueue::new(config.queue_capacity),
            stopping: AtomicBool::new(false),
            addr: local,
        });
        let worker_handles = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sdfmemd-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .map_err(|e| format!("cannot spawn worker: {e}"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let accept_handle = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("sdfmemd-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared))
                .map_err(|e| format!("cannot spawn accept thread: {e}"))?
        };
        Ok(Server {
            shared,
            accept_handle: Some(accept_handle),
            worker_handles,
        })
    }

    /// The bound address (with the real port when `:0` was requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The daemon's private recorder — `service.*` counters, gauges
    /// and `service.job` spans.
    pub fn recorder(&self) -> Arc<Recorder> {
        Arc::clone(&self.shared.recorder)
    }

    /// Initiates shutdown: the queue closes (pending jobs are
    /// dropped), workers drain out and the accept loop is unblocked.
    pub fn shutdown(&self) {
        initiate_shutdown(&self.shared);
    }

    /// Blocks until the accept loop and every worker have exited.
    pub fn wait(mut self) {
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        for handle in self.worker_handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn initiate_shutdown(shared: &Shared) {
    if shared.stopping.swap(true, Ordering::SeqCst) {
        return; // already stopping
    }
    shared.queue.close();
    // Unblock `accept` with a throwaway connection; the loop re-checks
    // the flag before handling it.
    let _ = TcpStream::connect(shared.addr);
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.stopping.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        // Connection threads are detached: they exit when the client
        // closes the line or shutdown drops their jobs.
        let _ = std::thread::Builder::new()
            .name("sdfmemd-conn".to_string())
            .spawn(move || handle_connection(stream, &shared));
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.queue.pop() {
        shared
            .recorder
            .gauge_set("service.queue.depth", shared.queue.depth() as u64);
        let started = shared.recorder.now_ns();
        // Job state: pending → running. No global recorder here — see
        // the module docs for why that would break byte identity.
        let response = execute_request_cached(&job.request);
        let finished = shared.recorder.now_ns();
        let (outcome, state) = match response {
            ServiceResponse::Ok(payload) => (
                JobOutcome::Complete(Arc::new(payload.to_json())),
                JobState::Complete,
            ),
            ServiceResponse::Err(error) => (JobOutcome::Failed(error), JobState::Failed),
            ServiceResponse::Rejected { message } => (
                // Unreachable from `execute_request_cached`, but keep
                // the state machine total.
                JobOutcome::Failed(crate::api::ServiceError {
                    code: ErrorCode::Unavailable,
                    input: None,
                    message,
                }),
                JobState::Failed,
            ),
        };
        shared.count(match state {
            JobState::Complete => "service.jobs.complete",
            _ => "service.jobs.failed",
        });
        shared.recorder.record_span(
            "service.job",
            vec![
                ("op", job.request.op().to_string()),
                ("request_id", job.request_id.clone()),
                ("state", state.as_str().to_string()),
                (
                    "queued_ns",
                    (started.saturating_sub(job.enqueued_ns)).to_string(),
                ),
            ],
            started,
            finished.saturating_sub(started),
        );
        // The submitting connection thread may have gone away; the
        // outcome is then dropped with the channel.
        let _ = job.tx.send(outcome);
    }
}

fn respond(stream: &mut TcpStream, line: &str) -> bool {
    stream.write_all(line.as_bytes()).is_ok() && stream.flush().is_ok()
}

fn handle_connection(stream: TcpStream, shared: &Shared) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        shared.count("service.requests");
        let (request_id, request) = match ServiceRequest::parse(&line) {
            Ok(parsed) => parsed,
            Err(error) => {
                shared.count("service.requests.malformed");
                let envelope = ServiceResponse::Err(error).to_json("-", false);
                if !respond(&mut writer, &envelope) {
                    break;
                }
                continue;
            }
        };
        let done = match request {
            ServiceRequest::Stats => {
                let envelope =
                    ServiceResponse::Ok(shared.stats_payload()).to_json(&request_id, false);
                !respond(&mut writer, &envelope)
            }
            ServiceRequest::Shutdown => {
                shared.count("service.requests.shutdown");
                let envelope =
                    ServiceResponse::Ok(shared.stats_payload()).to_json(&request_id, false);
                respond(&mut writer, &envelope);
                initiate_shutdown(shared);
                true
            }
            request => !handle_job_request(&mut writer, shared, &request_id, request),
        };
        if done {
            break;
        }
    }
}

/// Runs one engine-backed request through cache + queue. Returns
/// `false` when the client connection is gone.
fn handle_job_request(
    writer: &mut TcpStream,
    shared: &Shared,
    request_id: &str,
    request: ServiceRequest,
) -> bool {
    // Cacheable requests are content-addressed up front; a graph that
    // does not parse fails here, before taking a queue slot (state
    // `failed` without ever being `pending`).
    let cache_key = if request.cacheable() {
        match request.cache_key() {
            Ok(pair) => Some(pair),
            Err(error) => {
                shared.count("service.jobs.failed");
                return respond(
                    writer,
                    &ServiceResponse::Err(error).to_json(request_id, false),
                );
            }
        }
    } else {
        None
    };
    if let Some((fp, canonical)) = &cache_key {
        let lookup = lock_cache(shared).get(fp, canonical);
        match lookup {
            CacheLookup::Hit(payload) => {
                shared.count("service.cache.hits");
                return respond(writer, &envelope_ok(request_id, true, &payload));
            }
            CacheLookup::Collision => {
                shared.count("service.cache.collisions");
                shared.count("service.cache.misses");
            }
            CacheLookup::Miss => shared.count("service.cache.misses"),
        }
    }
    let (tx, rx) = mpsc::channel();
    let job = Job {
        request,
        request_id: request_id.to_string(),
        cache_key: cache_key.clone(),
        enqueued_ns: shared.recorder.now_ns(),
        tx,
    };
    match shared.queue.try_push(job) {
        Err(_rejected) => {
            shared.count("service.jobs.rejected");
            let envelope = ServiceResponse::Rejected {
                message: format!(
                    "job queue full ({} pending); retry later",
                    shared.queue.depth()
                ),
            }
            .to_json(request_id, false);
            respond(writer, &envelope)
        }
        Ok(()) => {
            shared.count("service.jobs.enqueued");
            shared
                .recorder
                .gauge_set("service.queue.depth", shared.queue.depth() as u64);
            match rx.recv() {
                Ok(JobOutcome::Complete(payload)) => {
                    if let Some((fp, canonical)) = cache_key {
                        let mut cache = lock_cache(shared);
                        let evicted = cache.insert(fp, canonical, Arc::clone(&payload));
                        let entries = cache.len() as u64;
                        drop(cache);
                        shared
                            .recorder
                            .counter_add("service.cache.evictions", evicted as u64);
                        shared.recorder.gauge_set("service.cache.entries", entries);
                    }
                    respond(writer, &envelope_ok(request_id, false, &payload))
                }
                Ok(JobOutcome::Failed(error)) => respond(
                    writer,
                    &ServiceResponse::Err(error).to_json(request_id, false),
                ),
                Err(_) => {
                    // The queue was closed with the job still pending.
                    let envelope = envelope_error(
                        request_id,
                        "error",
                        ErrorCode::Unavailable.as_str(),
                        None,
                        "server shutting down before the job ran",
                    );
                    respond(writer, &envelope)
                }
            }
        }
    }
}

fn lock_cache(shared: &Shared) -> std::sync::MutexGuard<'_, ResultCache> {
    shared.cache.lock().unwrap_or_else(|e| e.into_inner())
}
