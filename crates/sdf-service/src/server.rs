//! The `sdfmemd` daemon: a TCP server over the unified API.
//!
//! Protocol: line-delimited JSON. Each connection may submit any
//! number of [`ServiceRequest`](crate::api::ServiceRequest) lines and
//! receives one [`ServiceResponse`](crate::api::ServiceResponse) line
//! per request, in order.
//!
//! Architecture: an accept thread spawns one lightweight thread per
//! connection. Connection threads parse requests, probe the result
//! cache, and on a miss enqueue a [`Job`] on the bounded queue, then
//! block on the job's channel; a fixed pool of worker threads drains
//! the queue through [`execute_request_cached`]. A full queue rejects
//! the submission immediately (state `rejected`) — backpressure
//! reaches the client as a response, never as a hang.
//!
//! **Byte-identity invariant.** Workers never install a global
//! [`sdf_trace`] recorder around job execution: engine counters are
//! process-global totals, so a recorder would make the embedded
//! `counters` section of an `engine_report` depend on what ran
//! before, and a cached payload would no longer be byte-identical to
//! a fresh run. All `service.*` instruments and per-job `service.job`
//! spans go directly onto the server's private [`Recorder`] instead —
//! and the per-request `telemetry` envelope member is composed on the
//! connection thread from [`RequestTelemetry`], *outside* the cached
//! payload bytes, so hits and misses share payload bytes while each
//! carries its own timings.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

use sdf_trace::{
    expo, CacheStatus, Event, FlightRecorder, Recorder, StageSpan, TraceSnapshot, SCHEMA_VERSION,
};

use crate::api::{
    envelope_error, envelope_ok, execute_request_cached_timed, ErrorCode, RequestTelemetry,
    ResponsePayload, ServiceRequest, ServiceResponse,
};
use crate::cache::{CacheLookup, ResultCache};
use crate::job::{Job, JobOutcome, JobQueue, JobState};
use crate::session::SessionRegistry;
use sdf_trace::CounterSnapshot;
use sdfmem::incremental::DeltaStats;

/// Daemon tuning knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads draining the job queue. Zero is allowed (useful
    /// for deterministic backpressure tests): nothing drains the
    /// queue, so the first `queue_capacity` misses park and later ones
    /// are rejected.
    pub workers: usize,
    /// Result-cache capacity, in entries.
    pub cache_capacity: usize,
    /// Job-queue capacity; submissions beyond it are rejected.
    pub queue_capacity: usize,
    /// Flight-recorder capacity: per-request summaries kept for the
    /// `events` op.
    pub flight_capacity: usize,
    /// When set, a Perfetto-format span export is written into this
    /// directory for every completed job (`job-<seq>.json`).
    pub trace_dir: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            cache_capacity: 256,
            queue_capacity: 64,
            flight_capacity: 128,
            trace_dir: None,
        }
    }
}

struct Shared {
    recorder: Arc<Recorder>,
    flight: FlightRecorder,
    cache: Mutex<ResultCache>,
    queue: JobQueue,
    sessions: SessionRegistry,
    stopping: AtomicBool,
    addr: SocketAddr,
    trace_dir: Option<PathBuf>,
    trace_seq: AtomicU64,
}

impl Shared {
    fn count(&self, name: &'static str) {
        self.recorder.counter_add(name, 1);
    }

    fn stats_payload(&self) -> ResponsePayload {
        ResponsePayload::Stats {
            counters: self.recorder.counters(),
            gauges: self.recorder.gauges(),
            histograms: self.recorder.histograms(),
        }
    }

    fn metrics_payload(&self) -> ResponsePayload {
        ResponsePayload::Metrics {
            exposition: expo::write_exposition(
                &self.recorder.counters(),
                &self.recorder.gauges(),
                &self.recorder.histograms(),
            ),
        }
    }

    fn events_payload(&self) -> ResponsePayload {
        let (records, dropped) = self.flight.drain();
        ResponsePayload::Events {
            capacity: self.flight.capacity(),
            dropped,
            records,
        }
    }

    /// Folds one edit's [`DeltaStats`] (absent when the request failed
    /// before the engine ran) into the `engine.incremental.*` counters
    /// and refreshes the memo/session gauges. These live on the private
    /// recorder like every other instrument, so they surface through
    /// `stats` and `metrics` — and, being counters, their per-request
    /// deltas ride the telemetry envelope too.
    fn record_incremental(&self, stats: Option<&DeltaStats>) {
        let r = &self.recorder;
        if let Some(s) = stats {
            if s.cold {
                r.counter_add("engine.incremental.cold_runs", 1);
            } else {
                r.counter_add("engine.incremental.delta_runs", 1);
            }
            r.counter_add("engine.incremental.dirty_edges", s.dirty_edges);
            r.counter_add("engine.incremental.memo.hits", s.memo_hits);
            r.counter_add("engine.incremental.memo.misses", s.memo_misses);
            r.counter_add("engine.incremental.lifetimes.reused", s.lifetimes_reused);
            r.counter_add(
                "engine.incremental.alloc.placements_reused",
                s.placements_reused,
            );
        }
        let memo = self.sessions.memo_stats();
        r.gauge_set("engine.incremental.memo.occupancy", memo.occupancy);
        r.gauge_set("engine.incremental.memo.capacity", memo.capacity);
        r.gauge_set(
            "engine.incremental.sessions",
            self.sessions.session_count() as u64,
        );
    }
}

/// The latency-histogram name for an op, from a static vocabulary (the
/// recorder keys instruments by `&'static str`).
fn op_latency_histogram(op: &str) -> &'static str {
    match op {
        "analyze" => "service.op.analyze.latency",
        "plan" => "service.op.plan.latency",
        "simulate" => "service.op.simulate.latency",
        "explain" => "service.op.explain.latency",
        "edit" => "service.op.edit.latency",
        "modes" => "service.op.modes.latency",
        "baseline" => "service.op.baseline.latency",
        "compare" => "service.op.compare.latency",
        "stats" => "service.op.stats.latency",
        "metrics" => "service.op.metrics.latency",
        "events" => "service.op.events.latency",
        _ => "service.op.other.latency",
    }
}

/// A running daemon. Dropping the handle does not stop it; call
/// [`Server::shutdown`] (or submit a `shutdown` request) and then
/// [`Server::wait`].
pub struct Server {
    shared: Arc<Shared>,
    accept_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// starts the accept loop and worker pool.
    ///
    /// # Errors
    ///
    /// A human-readable message when the address cannot be bound.
    pub fn bind(addr: &str, config: ServerConfig) -> Result<Server, String> {
        let listener = TcpListener::bind(addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
        let local = listener
            .local_addr()
            .map_err(|e| format!("cannot resolve bound address: {e}"))?;
        let shared = Arc::new(Shared {
            recorder: Arc::new(Recorder::new()),
            flight: FlightRecorder::new(config.flight_capacity),
            cache: Mutex::new(ResultCache::new(config.cache_capacity)),
            queue: JobQueue::new(config.queue_capacity),
            sessions: SessionRegistry::new(),
            stopping: AtomicBool::new(false),
            addr: local,
            trace_dir: config.trace_dir.clone(),
            trace_seq: AtomicU64::new(1),
        });
        let worker_handles = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sdfmemd-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .map_err(|e| format!("cannot spawn worker: {e}"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let accept_handle = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("sdfmemd-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared))
                .map_err(|e| format!("cannot spawn accept thread: {e}"))?
        };
        Ok(Server {
            shared,
            accept_handle: Some(accept_handle),
            worker_handles,
        })
    }

    /// The bound address (with the real port when `:0` was requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The daemon's private recorder — `service.*` counters, gauges
    /// and `service.job` spans.
    pub fn recorder(&self) -> Arc<Recorder> {
        Arc::clone(&self.shared.recorder)
    }

    /// Initiates shutdown: the queue closes (pending jobs are
    /// dropped), workers drain out and the accept loop is unblocked.
    pub fn shutdown(&self) {
        initiate_shutdown(&self.shared);
    }

    /// Blocks until the accept loop and every worker have exited.
    pub fn wait(mut self) {
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        for handle in self.worker_handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn initiate_shutdown(shared: &Shared) {
    if shared.stopping.swap(true, Ordering::SeqCst) {
        return; // already stopping
    }
    shared.queue.close();
    // Unblock `accept` with a throwaway connection; the loop re-checks
    // the flag before handling it.
    let _ = TcpStream::connect(shared.addr);
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.stopping.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        // Connection threads are detached: they exit when the client
        // closes the line or shutdown drops their jobs.
        let _ = std::thread::Builder::new()
            .name("sdfmemd-conn".to_string())
            .spawn(move || handle_connection(stream, &shared));
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.queue.pop() {
        shared
            .recorder
            .gauge_set("service.queue.depth", shared.queue.depth() as u64);
        let started = shared.recorder.now_ns();
        let queue_wait_ns = started.saturating_sub(job.enqueued_ns);
        let counters_before = CounterSnapshot::capture_from(&shared.recorder);
        // Job state: pending → running. No global recorder here — see
        // the module docs for why that would break byte identity;
        // stages are measured directly by the timed executor instead.
        let (response, mut stages) = match &job.request {
            // Edits route through the stateful session registry: delta
            // path on a live session, cold seed otherwise. Payload
            // bytes are identical either way (the incremental module's
            // bit-identity contract), so the result cache stays sound.
            ServiceRequest::Edit { graph, edits } => {
                let (response, stages, stats) = shared.sessions.execute_edit_timed(graph, edits);
                shared.record_incremental(stats.as_ref());
                (response, stages)
            }
            other => execute_request_cached_timed(other),
        };
        let (outcome_result, state) = match response {
            ServiceResponse::Ok(payload) => {
                // Rendering the payload is part of service time; time
                // it as its own stage (offsets relative to `started`).
                let render_start = shared.recorder.now_ns();
                let rendered = Arc::new(payload.to_json());
                let render_end = shared.recorder.now_ns();
                stages.push(StageSpan::leaf(
                    "render",
                    render_start.saturating_sub(started),
                    render_end.saturating_sub(render_start),
                ));
                (Ok(rendered), JobState::Complete)
            }
            ServiceResponse::Err(error) => (Err(error), JobState::Failed),
            ServiceResponse::Rejected { message } => (
                // Unreachable from `execute_request_cached_timed`, but
                // keep the state machine total.
                Err(crate::api::ServiceError {
                    code: ErrorCode::Unavailable,
                    input: None,
                    message,
                }),
                JobState::Failed,
            ),
        };
        let finished = shared.recorder.now_ns();
        let service_ns = finished.saturating_sub(started);
        shared.count(match state {
            JobState::Complete => "service.jobs.complete",
            _ => "service.jobs.failed",
        });
        let telemetry = RequestTelemetry {
            cache: if job.cache_key.is_some() {
                CacheStatus::Miss
            } else {
                CacheStatus::Uncached
            },
            queue_wait_ns,
            service_ns,
            stages,
            counters: counters_before.delta_since_from(&shared.recorder),
        };
        shared
            .recorder
            .histogram_record(op_latency_histogram(job.request.op()), service_ns);
        shared
            .recorder
            .histogram_record("service.queue.wait", queue_wait_ns);
        let seq = shared
            .flight
            .record(telemetry.to_flight_record(job.request.op(), state.as_str()));
        shared.recorder.record_span(
            "service.job",
            vec![
                ("op", job.request.op().to_string()),
                ("request_id", job.request_id.clone()),
                ("state", state.as_str().to_string()),
                ("queued_ns", queue_wait_ns.to_string()),
            ],
            started,
            service_ns,
        );
        if state == JobState::Complete {
            write_job_trace(shared, &job, seq, &telemetry);
        }
        let outcome = match outcome_result {
            Ok(payload) => JobOutcome::Complete(payload, telemetry),
            Err(error) => JobOutcome::Failed(error, telemetry),
        };
        // The submitting connection thread may have gone away; the
        // outcome is then dropped with the channel.
        let _ = job.tx.send(outcome);
    }
}

/// Writes one Perfetto-format trace file for a completed job when the
/// daemon was started with a trace directory: a synthetic root
/// `service.job` span plus the telemetry stage tree, rendered through
/// the standard chrome-tracing exporter. Best-effort — I/O failures
/// are counted, not fatal.
fn write_job_trace(shared: &Shared, job: &Job, flight_seq: u64, telemetry: &RequestTelemetry) {
    let Some(dir) = &shared.trace_dir else { return };
    let mut events = Vec::new();
    let mut next_id = 1u64;
    let root_id = next_id;
    next_id += 1;
    events.push(Event {
        id: root_id,
        parent: None,
        name: "service.job",
        args: vec![
            ("op", job.request.op().to_string()),
            ("request_id", job.request_id.clone()),
            ("cache", telemetry.cache.as_str().to_string()),
            ("queue_wait_ns", telemetry.queue_wait_ns.to_string()),
            ("flight_seq", flight_seq.to_string()),
        ],
        thread: 1,
        start_ns: 0,
        dur_ns: telemetry.service_ns,
    });
    fn push_stages(events: &mut Vec<Event>, next_id: &mut u64, parent: u64, stages: &[StageSpan]) {
        for stage in stages {
            let id = *next_id;
            *next_id += 1;
            events.push(Event {
                id,
                parent: Some(parent),
                name: stage.name,
                args: vec![],
                thread: 1,
                start_ns: stage.start_ns,
                dur_ns: stage.dur_ns,
            });
            push_stages(events, next_id, id, &stage.children);
        }
    }
    push_stages(&mut events, &mut next_id, root_id, &telemetry.stages);
    let snapshot = TraceSnapshot {
        schema_version: SCHEMA_VERSION,
        events,
        counters: telemetry.counters.clone(),
        gauges: Vec::new(),
        histograms: Vec::new(),
    };
    let seq = shared.trace_seq.fetch_add(1, Ordering::Relaxed);
    let path = dir.join(format!("job-{seq:06}.json"));
    match std::fs::write(&path, snapshot.to_chrome_trace_json()) {
        Ok(()) => shared.count("service.trace.exports"),
        Err(_) => shared.count("service.trace.export_errors"),
    }
}

fn respond(stream: &mut TcpStream, line: &str) -> bool {
    stream.write_all(line.as_bytes()).is_ok() && stream.flush().is_ok()
}

fn handle_connection(stream: TcpStream, shared: &Shared) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        shared.count("service.requests");
        let (request_id, request) = match ServiceRequest::parse(&line) {
            Ok(parsed) => parsed,
            Err(error) => {
                shared.count("service.requests.malformed");
                let envelope = ServiceResponse::Err(error).to_json("-", false);
                if !respond(&mut writer, &envelope) {
                    break;
                }
                continue;
            }
        };
        let done = match request {
            ServiceRequest::Stats => {
                let envelope = inline_envelope(shared, &request_id, "stats", |s| s.stats_payload());
                !respond(&mut writer, &envelope)
            }
            ServiceRequest::Metrics => {
                let envelope =
                    inline_envelope(shared, &request_id, "metrics", |s| s.metrics_payload());
                !respond(&mut writer, &envelope)
            }
            ServiceRequest::Events => {
                let envelope =
                    inline_envelope(shared, &request_id, "events", |s| s.events_payload());
                !respond(&mut writer, &envelope)
            }
            ServiceRequest::Shutdown => {
                shared.count("service.requests.shutdown");
                let envelope =
                    ServiceResponse::Ok(shared.stats_payload()).to_json(&request_id, false);
                respond(&mut writer, &envelope);
                initiate_shutdown(shared);
                true
            }
            request => !handle_job_request(&mut writer, shared, &request_id, request),
        };
        if done {
            break;
        }
    }
}

/// Serves a daemon-side op on the connection thread (no queue, no
/// cache) with request-scoped telemetry: one `render` stage covering
/// payload construction.
fn inline_envelope(
    shared: &Shared,
    request_id: &str,
    op: &str,
    payload: impl FnOnce(&Shared) -> ResponsePayload,
) -> String {
    let started = shared.recorder.now_ns();
    let counters_before = CounterSnapshot::capture_from(&shared.recorder);
    let rendered = payload(shared).to_json();
    let service_ns = shared.recorder.now_ns().saturating_sub(started);
    shared
        .recorder
        .histogram_record(op_latency_histogram(op), service_ns);
    let telemetry = RequestTelemetry {
        cache: CacheStatus::Uncached,
        queue_wait_ns: 0,
        service_ns,
        stages: vec![StageSpan::leaf("render", 0, service_ns)],
        counters: counters_before.delta_since_from(&shared.recorder),
    };
    envelope_ok(request_id, false, Some(&telemetry), &rendered)
}

/// Runs one engine-backed request through cache + queue. Returns
/// `false` when the client connection is gone.
fn handle_job_request(
    writer: &mut TcpStream,
    shared: &Shared,
    request_id: &str,
    request: ServiceRequest,
) -> bool {
    let received = shared.recorder.now_ns();
    // Cacheable requests are content-addressed up front; a graph that
    // does not parse fails here, before taking a queue slot (state
    // `failed` without ever being `pending`). No telemetry: the
    // request never reached the service path.
    let cache_key = if request.cacheable() {
        match request.cache_key() {
            Ok(pair) => Some(pair),
            Err(error) => {
                shared.count("service.jobs.failed");
                return respond(
                    writer,
                    &ServiceResponse::Err(error).to_json(request_id, false),
                );
            }
        }
    } else {
        None
    };
    if let Some((fp, canonical)) = &cache_key {
        let lookup = lock_cache(shared).get(fp, canonical);
        match lookup {
            CacheLookup::Hit(payload) => {
                shared.count("service.cache.hits");
                // A hit's service time is the lookup itself; telemetry
                // is composed fresh around the shared payload bytes.
                let service_ns = shared.recorder.now_ns().saturating_sub(received);
                let telemetry = RequestTelemetry {
                    cache: CacheStatus::Hit,
                    queue_wait_ns: 0,
                    service_ns,
                    stages: vec![StageSpan::leaf("cache.lookup", 0, service_ns)],
                    counters: vec![("service.cache.hits".to_string(), 1)],
                };
                shared
                    .recorder
                    .histogram_record(op_latency_histogram(request.op()), service_ns);
                shared
                    .flight
                    .record(telemetry.to_flight_record(request.op(), JobState::Complete.as_str()));
                return respond(
                    writer,
                    &envelope_ok(request_id, true, Some(&telemetry), &payload),
                );
            }
            CacheLookup::Collision => {
                shared.count("service.cache.collisions");
                shared.count("service.cache.misses");
            }
            CacheLookup::Miss => shared.count("service.cache.misses"),
        }
    }
    let (tx, rx) = mpsc::channel();
    let job = Job {
        request,
        request_id: request_id.to_string(),
        cache_key: cache_key.clone(),
        enqueued_ns: shared.recorder.now_ns(),
        tx,
    };
    match shared.queue.try_push(job) {
        Err(_rejected) => {
            shared.count("service.jobs.rejected");
            let envelope = ServiceResponse::Rejected {
                message: format!(
                    "job queue full ({} pending); retry later",
                    shared.queue.depth()
                ),
            }
            .to_json(request_id, false);
            respond(writer, &envelope)
        }
        Ok(()) => {
            shared.count("service.jobs.enqueued");
            shared
                .recorder
                .gauge_set("service.queue.depth", shared.queue.depth() as u64);
            match rx.recv() {
                Ok(JobOutcome::Complete(payload, telemetry)) => {
                    if let Some((fp, canonical)) = cache_key {
                        let mut cache = lock_cache(shared);
                        let evicted = cache.insert(fp, canonical, Arc::clone(&payload));
                        let entries = cache.len() as u64;
                        drop(cache);
                        shared
                            .recorder
                            .counter_add("service.cache.evictions", evicted as u64);
                        shared.recorder.gauge_set("service.cache.entries", entries);
                    }
                    respond(
                        writer,
                        &envelope_ok(request_id, false, Some(&telemetry), &payload),
                    )
                }
                Ok(JobOutcome::Failed(error, telemetry)) => respond(
                    writer,
                    &ServiceResponse::Err(error).to_json_with_telemetry(
                        request_id,
                        false,
                        Some(&telemetry),
                    ),
                ),
                Err(_) => {
                    // The queue was closed with the job still pending.
                    let envelope = envelope_error(
                        request_id,
                        "error",
                        ErrorCode::Unavailable.as_str(),
                        None,
                        "server shutting down before the job ran",
                        None,
                    );
                    respond(writer, &envelope)
                }
            }
        }
    }
}

fn lock_cache(shared: &Shared) -> std::sync::MutexGuard<'_, ResultCache> {
    shared.cache.lock().unwrap_or_else(|e| e.into_inner())
}
