//! Multi-mode benchmark scenario graphs.
//!
//! Two hand-built mode graphs exercise the cross-mode shared pool:
//!
//! * [`modem_acq_track`] — a receiver that alternates between an
//!   acquisition mode (wideband search) and a tracking mode (narrow
//!   equalised loop), carrying the symbol-timing state on a persistent
//!   `sync -> demod` buffer;
//! * [`codec_ip`] — a video coder alternating between intra-coded and
//!   predicted frames, carrying the reconstructed reference frame on a
//!   persistent `recon -> predict` buffer.
//!
//! [`random_mode_graph`] extends the §10.3 random-graph generator to
//! mode sets for property tests: every mode is an independent random
//! SDF graph plus one shared persistent `ps -> pd` edge with identical
//! rates and delay in all modes.

use rand::Rng;

use sdf_core::graph::SdfGraph;
use sdf_core::mode::ModeGraph;

use crate::random::{random_sdf_graph, RandomGraphConfig};

/// Builds the modem acquisition/tracking scenario graph: two modes over
/// the same front end (`src -> agc -> sync -> demod -> sink`), tracking
/// adding an equaliser branch, with the symbol-timing state carried on
/// the persistent `sync -> demod` edge (2 delay tokens).
///
/// # Examples
///
/// ```
/// use sdf_apps::modes::modem_acq_track;
///
/// let mg = modem_acq_track();
/// assert_eq!(mg.modes().len(), 2);
/// mg.validate().unwrap();
/// ```
pub fn modem_acq_track() -> ModeGraph {
    let mut mg = ModeGraph::new("modem_acq_track");

    let mut acq = SdfGraph::new("acquisition");
    {
        let src = acq.add_actor("src");
        let agc = acq.add_actor("agc");
        let sync = acq.add_actor("sync");
        let demod = acq.add_actor("demod");
        let sink = acq.add_actor("sink");
        acq.add_edge(src, agc, 2, 1).expect("valid rates");
        acq.add_edge(agc, sync, 2, 1).expect("valid rates");
        acq.add_edge_with_delay(sync, demod, 1, 2, 2)
            .expect("valid rates");
        acq.add_edge(demod, sink, 2, 1).expect("valid rates");
    }
    mg.add_mode(acq);

    let mut track = SdfGraph::new("tracking");
    {
        let src = track.add_actor("src");
        let agc = track.add_actor("agc");
        let eq = track.add_actor("eq");
        let sync = track.add_actor("sync");
        let demod = track.add_actor("demod");
        let sink = track.add_actor("sink");
        track.add_edge(src, agc, 2, 1).expect("valid rates");
        track.add_edge(agc, eq, 1, 1).expect("valid rates");
        track.add_edge(eq, demod, 1, 1).expect("valid rates");
        track.add_edge(agc, sync, 2, 1).expect("valid rates");
        track
            .add_edge_with_delay(sync, demod, 1, 2, 2)
            .expect("valid rates");
        track.add_edge(demod, sink, 1, 2).expect("valid rates");
    }
    mg.add_mode(track);

    mg.add_persistent("sync", "demod");
    mg
}

/// Builds the intra/predicted video-coder scenario graph: an `i_frame`
/// mode (`src -> transf -> quant -> vlc -> sink` with a reconstruction
/// side chain) and a `p_frame` mode (difference coding against the
/// prediction), with the reference frame carried on the persistent
/// `recon -> predict` edge (1 delay token).
///
/// # Examples
///
/// ```
/// use sdf_apps::modes::codec_ip;
///
/// let mg = codec_ip();
/// assert_eq!(mg.modes().len(), 2);
/// mg.validate().unwrap();
/// ```
pub fn codec_ip() -> ModeGraph {
    let mut mg = ModeGraph::new("codec_ip");

    let mut ifr = SdfGraph::new("i_frame");
    {
        let src = ifr.add_actor("src");
        let transf = ifr.add_actor("transf");
        let quant = ifr.add_actor("quant");
        let vlc = ifr.add_actor("vlc");
        let sink = ifr.add_actor("sink");
        let recon = ifr.add_actor("recon");
        let predict = ifr.add_actor("predict");
        ifr.add_edge(src, transf, 4, 1).expect("valid rates");
        ifr.add_edge(transf, quant, 1, 1).expect("valid rates");
        ifr.add_edge(quant, vlc, 2, 1).expect("valid rates");
        ifr.add_edge(vlc, sink, 1, 4).expect("valid rates");
        ifr.add_edge(quant, recon, 1, 2).expect("valid rates");
        ifr.add_edge_with_delay(recon, predict, 1, 1, 1)
            .expect("valid rates");
    }
    mg.add_mode(ifr);

    let mut pfr = SdfGraph::new("p_frame");
    {
        let src = pfr.add_actor("src");
        let diff = pfr.add_actor("diff");
        let recon = pfr.add_actor("recon");
        let predict = pfr.add_actor("predict");
        let transf = pfr.add_actor("transf");
        let quant = pfr.add_actor("quant");
        let vlc = pfr.add_actor("vlc");
        let sink = pfr.add_actor("sink");
        pfr.add_edge(src, diff, 4, 1).expect("valid rates");
        pfr.add_edge(src, recon, 2, 1).expect("valid rates");
        pfr.add_edge_with_delay(recon, predict, 1, 1, 1)
            .expect("valid rates");
        pfr.add_edge(predict, diff, 2, 1).expect("valid rates");
        pfr.add_edge(diff, transf, 1, 1).expect("valid rates");
        pfr.add_edge(transf, quant, 1, 1).expect("valid rates");
        pfr.add_edge(quant, vlc, 2, 1).expect("valid rates");
        pfr.add_edge(vlc, sink, 1, 4).expect("valid rates");
    }
    mg.add_mode(pfr);

    mg.add_persistent("recon", "predict");
    mg
}

/// Every registered mode graph as `(name, builder result)`, the
/// multi-mode counterpart of [`crate::registry::table1_systems`].
pub fn mode_graphs() -> Vec<(&'static str, ModeGraph)> {
    vec![
        ("modem_acq_track", modem_acq_track()),
        ("codec_ip", codec_ip()),
    ]
}

/// Looks a registered mode graph up by name.
pub fn mode_graph_by_name(name: &str) -> Option<ModeGraph> {
    mode_graphs()
        .into_iter()
        .find(|(n, _)| *n == name)
        .map(|(_, mg)| mg)
}

/// Generates a random mode graph for property tests: `n_modes`
/// independent random SDF graphs (per `config`), each extended with the
/// same persistent `ps -> pd` chain — `n0 -> ps` at unit rates keeps
/// the graph connected, and `ps -> pd` carries identical `(1, 1)` rates
/// and `delay` initial tokens in every mode, as
/// [`sdf_core::mode::ModeGraph::validate`] requires.
///
/// # Panics
///
/// Panics if `n_modes < 2` or `delay == 0` (the resulting graph could
/// never validate).
pub fn random_mode_graph<R: Rng + ?Sized>(
    config: &RandomGraphConfig,
    n_modes: usize,
    delay: u64,
    rng: &mut R,
) -> ModeGraph {
    assert!(n_modes >= 2, "a mode graph needs at least two modes");
    assert!(delay >= 1, "persistent edges need at least one delay token");
    let mut mg = ModeGraph::new(format!("random_modes_{n_modes}"));
    for m in 0..n_modes {
        let base = random_sdf_graph(config, rng);
        // Rebuild under a unique per-mode name, then graft the
        // persistent chain onto actor n0.
        let mut g = SdfGraph::new(format!("m{m}"));
        let ids: Vec<_> = base
            .actors()
            .map(|a| g.add_actor(base.actor_name(a)))
            .collect();
        for (_, e) in base.edges() {
            g.add_edge_with_delay(
                ids[e.src.index()],
                ids[e.snk.index()],
                e.prod,
                e.cons,
                e.delay,
            )
            .expect("copied rates stay valid");
        }
        let ps = g.add_actor("ps");
        let pd = g.add_actor("pd");
        g.add_edge(ids[0], ps, 1, 1).expect("valid rates");
        g.add_edge_with_delay(ps, pd, 1, 1, delay)
            .expect("valid rates");
        mg.add_mode(g);
    }
    mg.add_persistent("ps", "pd");
    mg
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn registered_mode_graphs_validate() {
        for (name, mg) in mode_graphs() {
            assert_eq!(mg.name(), name);
            mg.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            for mode in mg.modes() {
                assert!(
                    sdf_core::RepetitionsVector::compute(&mode.graph).is_ok(),
                    "{name}/{} is inconsistent",
                    mode.name
                );
            }
        }
    }

    #[test]
    fn random_mode_graphs_validate() {
        let cfg = RandomGraphConfig::paper_style(8);
        for seed in 0..10 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mg = random_mode_graph(&cfg, 2 + (seed as usize % 3), 1 + seed % 3, &mut rng);
            mg.validate().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(mode_graph_by_name("codec_ip").is_some());
        assert!(mode_graph_by_name("nope").is_none());
    }
}
