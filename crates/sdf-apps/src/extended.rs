//! Extended benchmark systems beyond Table 1: the reverse DAT→CD
//! converter, an analysis-only filterbank, a cyclic LMS adaptive filter
//! and a spectrum analyser.  They widen the structural variety the test
//! suite and ablations run over (deep trees, wide fan-out, feedback).

use sdf_core::graph::SdfGraph;

/// DAT (48 kHz) → CD (44.1 kHz): the CD→DAT chain with inverted stage
/// rates; q = (160, 32, 28, 98, 147, 147).
pub fn dat_to_cd() -> SdfGraph {
    let mut g = SdfGraph::new("dat2cd");
    let ids: Vec<_> = ["datSrc", "stage1", "stage2", "stage3", "stage4", "cdSink"]
        .iter()
        .map(|n| g.add_actor(*n))
        .collect();
    for (i, &(p, c)) in [(1, 5), (7, 8), (7, 2), (3, 2), (1, 1)].iter().enumerate() {
        g.add_edge(ids[i], ids[i + 1], p, c).expect("valid rates");
    }
    g
}

/// Analysis-only octave filterbank of the given depth: a binary tree of
/// analysis pairs with `2^depth` leaf channels (no synthesis side).
pub fn analysis_tree(depth: usize) -> SdfGraph {
    let mut g = SdfGraph::new(format!("anatree_{depth}d"));
    let src = g.add_actor("src");
    build_analysis(&mut g, src, depth, "r");
    g
}

fn build_analysis(g: &mut SdfGraph, input: sdf_core::ActorId, depth: usize, prefix: &str) {
    if depth == 0 {
        let sink = g.add_actor(format!("{prefix}_chan"));
        g.add_edge(input, sink, 1, 1).expect("valid rates");
        return;
    }
    let lp = g.add_actor(format!("{prefix}_lp"));
    let hp = g.add_actor(format!("{prefix}_hp"));
    g.add_edge(input, lp, 1, 2).expect("valid rates");
    g.add_edge(input, hp, 1, 2).expect("valid rates");
    build_analysis(g, lp, depth - 1, &format!("{prefix}l"));
    build_analysis(g, hp, depth - 1, &format!("{prefix}h"));
}

/// A cyclic LMS adaptive filter: the coefficient-update loop feeds back
/// into the FIR with a unit-frame delay, making the graph cyclic with
/// exactly enough initial tokens to execute.
pub fn lms_adaptive() -> SdfGraph {
    let mut g = SdfGraph::new("lmsAdaptive");
    let x = g.add_actor("signalIn");
    let d = g.add_actor("desiredIn");
    let fir = g.add_actor("fir");
    let err = g.add_actor("errorSum");
    let upd = g.add_actor("coeffUpdate");
    let out = g.add_actor("out");
    g.add_edge(x, fir, 1, 1).expect("valid rates");
    g.add_edge(fir, err, 1, 1).expect("valid rates");
    g.add_edge(d, err, 1, 1).expect("valid rates");
    g.add_edge(err, out, 1, 1).expect("valid rates");
    g.add_edge(err, upd, 1, 1).expect("valid rates");
    // Feedback: updated coefficients reach the FIR one iteration later.
    g.add_edge_with_delay(upd, fir, 8, 8, 8)
        .expect("valid rates");
    g
}

/// A spectrum analyser: windowed 64-point FFT frames at 4× decimation
/// with exponential averaging.
pub fn spectrum_analyzer() -> SdfGraph {
    let mut g = SdfGraph::new("spectrum");
    let src = g.add_actor("adc");
    let dec = g.add_actor("decim4");
    let win = g.add_actor("window64");
    let fft = g.add_actor("fft64");
    let mag = g.add_actor("magSq");
    let avg = g.add_actor("expAvg");
    let disp = g.add_actor("display");
    let edges = [
        (src, dec, 1, 4),
        (dec, win, 1, 64),
        (win, fft, 64, 64),
        (fft, mag, 64, 64),
        (mag, avg, 64, 64),
        (avg, disp, 64, 64),
    ];
    for (s, t, p, c) in edges {
        g.add_edge(s, t, p, c).expect("valid rates");
    }
    g
}

/// All extended systems (acyclic ones only — `lms_adaptive` is exposed
/// separately because it needs the feedback machinery).
pub fn extended_systems() -> Vec<SdfGraph> {
    vec![dat_to_cd(), analysis_tree(3), spectrum_analyzer()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdf_core::RepetitionsVector;

    #[test]
    fn dat_to_cd_repetitions() {
        let g = dat_to_cd();
        let q = RepetitionsVector::compute(&g).unwrap();
        assert_eq!(q.as_slice(), &[160, 32, 28, 98, 147, 147]);
        assert!(g.is_chain());
    }

    #[test]
    fn analysis_tree_structure() {
        for depth in 0..=4 {
            let g = analysis_tree(depth);
            // src + (2^(depth+1) - 2) filters + 2^depth channels.
            let filters = (1usize << (depth + 1)) - 2;
            let channels = 1usize << depth;
            assert_eq!(g.actor_count(), 1 + filters + channels, "depth {depth}");
            let q = RepetitionsVector::compute(&g).unwrap();
            let src = g.actor_by_name("src").unwrap();
            assert_eq!(q.get(src), 1 << depth);
        }
    }

    #[test]
    fn lms_is_cyclic_but_schedulable() {
        use sdf_sched::apgan::apgan;
        use sdf_sched::cycles::acyclic_skeleton;
        use sdf_sched::sdppo::sdppo;
        let g = lms_adaptive();
        assert!(!g.is_acyclic());
        let q = RepetitionsVector::compute(&g).unwrap();
        let (skeleton, feedback) = acyclic_skeleton(&g, &q).unwrap();
        assert_eq!(feedback.len(), 1);
        let order = apgan(&skeleton, &q).unwrap();
        let sas = sdppo(&skeleton, &q, &order).unwrap().tree;
        sdf_core::simulate::validate_schedule(&g, &sas.to_looped_schedule(), &q).unwrap();
    }

    #[test]
    fn spectrum_analyzer_rates() {
        let g = spectrum_analyzer();
        let q = RepetitionsVector::compute(&g).unwrap();
        let adc = g.actor_by_name("adc").unwrap();
        let fft = g.actor_by_name("fft64").unwrap();
        assert_eq!(q.get(adc), 4 * 64 * q.get(fft));
    }

    #[test]
    fn extended_systems_all_consistent() {
        for g in extended_systems() {
            assert!(RepetitionsVector::compute(&g).is_ok(), "{}", g.name());
            assert!(g.is_acyclic());
            assert!(g.is_connected());
        }
    }
}
