//! Benchmark SDF application graphs.
//!
//! Every system the paper's evaluation section (§10) uses:
//!
//! * [`filterbank`] — parametric one-/two-sided QMF filterbanks
//!   (Figs. 22–23) with the paper's node counts;
//! * [`satrec`] — the satellite receiver (Fig. 24), rebuilt so its
//!   repetitions vector matches the published APGAN schedule;
//! * [`comms`] / [`dsp`] — the remaining Ptolemy-demo reconstructions
//!   (16-QAM modem, 4-PAM link, block vocoder, overlap-add FFT, phased
//!   array) plus the CD-to-DAT chain;
//! * [`homogeneous`] — the M×N graphs of §10.2 (Fig. 26);
//! * [`modes`] — multi-mode scenario graphs (modem acquisition/
//!   tracking, intra/predicted video coder) plus a random mode-set
//!   generator for property tests;
//! * [`random`] — consistent-by-construction random SDF graphs (§10.3);
//! * [`registry`] — all Table 1 systems by name;
//! * [`scale`] — deterministic large systems (128–2048 actors) for the
//!   scale benchmark.
//!
//! # Examples
//!
//! ```
//! use sdf_apps::registry::by_name;
//! use sdf_core::RepetitionsVector;
//!
//! let satrec = by_name("satrec").expect("registered benchmark");
//! assert!(RepetitionsVector::compute(&satrec).is_ok());
//! ```

#![warn(missing_docs)]

pub mod comms;
pub mod dsp;
pub mod extended;
pub mod filterbank;
pub mod homogeneous;
pub mod modes;
pub mod random;
pub mod registry;
pub mod satrec;
pub mod scale;
