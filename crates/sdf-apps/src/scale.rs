//! Large synthetic systems for the scale benchmark (`scale_bench`).
//!
//! The registry graphs top out below 200 actors, which hides the
//! asymptotic cost of the loop-hierarchy DPs and the WIG build.  This
//! module generates structurally realistic systems at n ∈ {128, 512,
//! 2048} actors in three families:
//!
//! * [`scale_chain`] — a CD-to-DAT-style chain: long unit-rate filter
//!   cascades with a sample-rate converter every [`CHANGER_SPACING`]
//!   actors, the structure practical multistage converters share;
//! * [`scale_tree`] — a deep analysis filterbank: each tree node is a
//!   short filter cascade feeding a 1:2 decimating splitter with two
//!   subtrees;
//! * [`scale_dag`] — the chain spine plus sparse consistent skip edges,
//!   giving actors with fan-in/fan-out > 1 (side-chains) while keeping
//!   the mostly-homogeneous rate profile of real DSP systems.
//!
//! All generators are deterministic: the same `n` (and seed) always
//! yields the same graph, so benchmark trajectories stay comparable.

use sdf_core::graph::SdfGraph;
use sdf_core::math::gcd;
use sdf_core::repetitions::RepetitionsVector;

/// The benchmark tiers: small (CI smoke), medium, large.
pub const SIZES: [usize; 3] = [128, 512, 2048];

/// Actors between consecutive rate converters in [`scale_chain`] (and the
/// spine of [`scale_dag`]).  Converters alternate 2:3 and 3:2 so the
/// repetition counts stay in a bounded set instead of growing along the
/// chain.
pub const CHANGER_SPACING: usize = 16;

/// Filters preceding each decimating splitter in [`scale_tree`].
const TREE_CASCADE: usize = 7;

/// A CD-DAT-style rate-changing chain with `n` actors.
///
/// # Panics
///
/// Panics if `n < 2`.
///
/// # Examples
///
/// ```
/// use sdf_apps::scale::scale_chain;
/// use sdf_core::RepetitionsVector;
///
/// let g = scale_chain(128);
/// assert_eq!(g.actor_count(), 128);
/// assert!(g.is_chain());
/// assert!(RepetitionsVector::compute(&g).is_ok());
/// ```
pub fn scale_chain(n: usize) -> SdfGraph {
    build_spine(format!("scale_chain_{n}"), n)
}

fn build_spine(name: String, n: usize) -> SdfGraph {
    assert!(n >= 2, "a chain needs at least two actors");
    let mut g = SdfGraph::new(name);
    let ids: Vec<_> = (0..n).map(|i| g.add_actor(format!("a{i}"))).collect();
    let mut flip = false;
    for i in 0..n - 1 {
        let (prod, cons) = if i % CHANGER_SPACING == CHANGER_SPACING / 2 {
            flip = !flip;
            if flip {
                (2, 3)
            } else {
                (3, 2)
            }
        } else {
            (1, 1)
        };
        g.add_edge(ids[i], ids[i + 1], prod, cons)
            .expect("positive rates");
    }
    g
}

/// A deep decimating filterbank tree with roughly `n` actors (complete
/// binary tree of cascade-plus-splitter nodes, sized to the largest full
/// tree within the budget).
///
/// # Panics
///
/// Panics if `n` is smaller than one tree node
/// (`TREE_CASCADE + 1 = 8` actors).
///
/// # Examples
///
/// ```
/// use sdf_apps::scale::scale_tree;
/// use sdf_core::RepetitionsVector;
///
/// let g = scale_tree(128);
/// assert_eq!(g.actor_count(), 120); // 15 nodes x 8 actors
/// assert!(g.is_acyclic());
/// assert!(RepetitionsVector::compute(&g).is_ok());
/// ```
pub fn scale_tree(n: usize) -> SdfGraph {
    let node_actors = TREE_CASCADE + 1;
    assert!(n >= node_actors, "tree needs at least {node_actors} actors");
    // Largest complete binary tree of 8-actor nodes within the budget.
    let mut levels = 1usize;
    while ((1 << (levels + 1)) - 1) * node_actors <= n {
        levels += 1;
    }
    let mut g = SdfGraph::new(format!("scale_tree_{n}"));
    // One node: TREE_CASCADE unit-rate filters then a splitter whose two
    // out-edges each decimate by 2.  Returns (first, splitter) actor ids.
    struct Builder<'g> {
        g: &'g mut SdfGraph,
        next: usize,
    }
    impl Builder<'_> {
        fn node(&mut self, depth: usize, levels: usize) -> sdf_core::ActorId {
            let first = self.g.add_actor(format!("f{}", self.next));
            self.next += 1;
            let mut prev = first;
            for _ in 1..TREE_CASCADE {
                let a = self.g.add_actor(format!("f{}", self.next));
                self.next += 1;
                self.g.add_edge(prev, a, 1, 1).expect("positive rates");
                prev = a;
            }
            let split = self.g.add_actor(format!("s{}", self.next));
            self.next += 1;
            self.g.add_edge(prev, split, 1, 1).expect("positive rates");
            if depth + 1 < levels {
                for _ in 0..2 {
                    let child = self.node(depth + 1, levels);
                    // Decimate by 2 into each subtree.
                    self.g.add_edge(split, child, 1, 2).expect("positive rates");
                }
            }
            first
        }
    }
    Builder { g: &mut g, next: 0 }.node(0, levels);
    g
}

/// The chain spine of [`scale_chain`] plus sparse, consistent skip edges
/// (one per [`CHANGER_SPACING`]·2 actors), seeded deterministically.
///
/// Skip rates are derived from the spine's repetitions vector
/// (`prod = q(snk)/g`, `cons = q(src)/g`), so the graph stays consistent
/// by algebra and the spine's repetition counts are unchanged.
///
/// # Panics
///
/// Panics if `n < 2`.
///
/// # Examples
///
/// ```
/// use sdf_apps::scale::scale_dag;
/// use sdf_core::RepetitionsVector;
///
/// let g = scale_dag(128, 7);
/// assert_eq!(g.actor_count(), 128);
/// assert!(g.edge_count() > 127); // spine + skip edges
/// assert!(g.is_acyclic());
/// assert!(RepetitionsVector::compute(&g).is_ok());
/// ```
pub fn scale_dag(n: usize, seed: u64) -> SdfGraph {
    let mut g = build_spine(format!("scale_dag_{n}"), n);
    let q = RepetitionsVector::compute(&g).expect("spine is consistent");
    let actors: Vec<_> = g.actors().collect();
    // Small deterministic LCG for skip placement.
    let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
    let mut next = move |m: u64| {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        (state >> 33) % m.max(1)
    };
    let stride = CHANGER_SPACING * 2;
    for block in 0..n / stride {
        let i = block * stride + next(stride as u64 / 2) as usize;
        let jump = 2 + next(62) as usize;
        let j = (i + jump).min(n - 1);
        if j <= i + 1 {
            continue; // would duplicate a spine edge
        }
        let (qi, qj) = (q.get(actors[i]), q.get(actors[j]));
        let gij = gcd(qi, qj);
        g.add_edge(actors[i], actors[j], qj / gij, qi / gij)
            .expect("positive rates");
    }
    g
}

/// All three families at size `n`, in deterministic order.
pub fn scale_systems(n: usize) -> Vec<SdfGraph> {
    vec![scale_chain(n), scale_tree(n), scale_dag(n, n as u64)]
}

/// Looks up one scale system by its generated name, e.g.
/// `"scale_chain_128"` or `"scale_dag_2048"`.
pub fn by_name(name: &str) -> Option<SdfGraph> {
    let (family, n) = name.rsplit_once('_')?;
    let n: usize = n.parse().ok()?;
    match family {
        "scale_chain" => Some(scale_chain(n)),
        "scale_tree" => Some(scale_tree(n)),
        "scale_dag" => Some(scale_dag(n, n as u64)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdf_core::RepetitionsVector;

    #[test]
    fn all_families_consistent_at_every_size() {
        for &n in &SIZES {
            for g in scale_systems(n) {
                let q = RepetitionsVector::compute(&g)
                    .unwrap_or_else(|e| panic!("{} inconsistent: {e}", g.name()));
                assert!(g.is_acyclic(), "{} cyclic", g.name());
                assert!(g.is_connected(), "{} disconnected", g.name());
                // Bounded repetition counts: the alternating converters must
                // not let q grow along the chain.
                assert!(
                    q.as_slice().iter().all(|&v| v <= 4096),
                    "{} has runaway repetitions",
                    g.name()
                );
            }
        }
    }

    #[test]
    fn chain_has_sparse_rate_changers() {
        let g = scale_chain(128);
        let changers = g.edges().filter(|(_, e)| e.prod != e.cons).count();
        assert_eq!(changers, 128 / CHANGER_SPACING);
    }

    #[test]
    fn generators_are_deterministic() {
        let a = scale_dag(128, 128);
        let b = scale_dag(128, 128);
        assert_eq!(a.edge_count(), b.edge_count());
        for ((ia, ea), (_, eb)) in a.edges().zip(b.edges()) {
            assert_eq!(
                (ea.prod, ea.cons, ea.delay),
                (eb.prod, eb.cons, eb.delay),
                "{ia:?}"
            );
        }
    }

    #[test]
    fn by_name_round_trips() {
        for &n in &SIZES {
            for g in scale_systems(n) {
                let again = by_name(g.name()).expect("name resolves");
                assert_eq!(again.actor_count(), g.actor_count(), "{}", g.name());
                assert_eq!(again.edge_count(), g.edge_count(), "{}", g.name());
            }
        }
        assert!(by_name("scale_mesh_128").is_none());
        assert!(by_name("scale_chain_x").is_none());
    }

    #[test]
    fn tree_is_a_decimating_tree() {
        let g = scale_tree(512);
        assert_eq!(g.actor_count(), 504); // 63 nodes x 8 actors
                                          // Every actor has at most one inbound edge (it is a tree).
        for a in g.actors() {
            assert!(g.in_edges(a).len() <= 1);
        }
        let q = RepetitionsVector::compute(&g).unwrap();
        // Root fires 2^(levels-1) = 32 times as often as the leaves.
        let max = q.as_slice().iter().max().unwrap();
        let min = q.as_slice().iter().min().unwrap();
        assert_eq!(max / min, 32);
    }
}
