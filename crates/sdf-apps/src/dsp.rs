//! DSP benchmarks: block vocoder, overlap-add FFT filter, phased-array
//! detector and the classic CD-to-DAT rate converter (§10.1 and §11.1.3).
//!
//! Like the comms benchmarks, the vocoder / overlap-add / phased-array
//! graphs are structural reconstructions of the Ptolemy demos the paper
//! cites: frame-oriented multirate graphs whose block sizes (frame 80 with
//! hop 64; FFT 256 with hop 128; 4-sensor beamforming over 64-bin spectra)
//! are the canonical choices for those applications.

use sdf_core::graph::SdfGraph;

/// Builds the block vocoder: LPC analysis of a voice signal modulating a
/// synthesised excitation (about 25 actors).
pub fn block_vocoder() -> SdfGraph {
    let mut g = SdfGraph::new("blockVox");
    let chain = |g: &mut SdfGraph, edges: &[(&str, &str, u64, u64)]| {
        for &(s, t, p, c) in edges {
            let sid = g.actor_by_name(s).unwrap_or_else(|| g.add_actor(s));
            let tid = g.actor_by_name(t).unwrap_or_else(|| g.add_actor(t));
            g.add_edge(sid, tid, p, c).expect("valid rates");
        }
    };
    // Voice analysis path: frame 80 samples with hop 64.
    chain(
        &mut g,
        &[
            ("voiceSrc", "preemph", 1, 1),
            ("preemph", "framer", 1, 64),
            ("framer", "window", 80, 80),
            ("window", "autocorr", 80, 80),
            ("autocorr", "levinson", 12, 12),
            ("levinson", "lpcCoeffs", 12, 12),
            ("window", "pitchTrack", 80, 80),
            ("window", "gainCalc", 80, 80),
        ],
    );
    // Excitation path: music source framed at the same rate.
    chain(
        &mut g,
        &[
            ("musicSrc", "musFramer", 1, 64),
            ("musFramer", "musWindow", 80, 80),
        ],
    );
    // Synthesis: all-pole filter driven by coefficients, gain and pitch.
    chain(
        &mut g,
        &[
            ("lpcCoeffs", "synthFilter", 12, 12),
            ("gainCalc", "synthFilter", 1, 1),
            ("pitchTrack", "synthFilter", 1, 1),
            ("musWindow", "synthFilter", 80, 80),
            ("synthFilter", "deemph", 80, 80),
            ("deemph", "overlapAdd", 80, 80),
            ("overlapAdd", "dcBlock", 64, 1), // frame in, samples out
            ("dcBlock", "agc", 1, 1),
            ("agc", "limiter", 1, 1),
            ("limiter", "dac", 1, 1),
            ("dac", "out", 1, 1),
        ],
    );
    g
}

/// Builds the overlap-add FFT filter: hop 128, FFT size 256.
pub fn overlap_add_fft() -> SdfGraph {
    let mut g = SdfGraph::new("overAddFFT");
    let src = g.add_actor("src");
    let seg = g.add_actor("segment"); // 128 in -> 256 out (zero padded)
    let fft = g.add_actor("fft256");
    let coef = g.add_actor("freqResponse");
    let mult = g.add_actor("specMultiply");
    let ifft = g.add_actor("ifft256");
    let ola = g.add_actor("overlapAdd"); // 256 in -> 128 out
    let sink = g.add_actor("sink");
    let edges = [
        (src, seg, 1, 128),
        (seg, fft, 256, 256),
        (fft, mult, 256, 256),
        (coef, mult, 256, 256),
        (mult, ifft, 256, 256),
        (ifft, ola, 256, 256),
        (ola, sink, 128, 1),
    ];
    for (s, t, p, c) in edges {
        g.add_edge(s, t, p, c).expect("valid rates");
    }
    g
}

/// Builds a 4-sensor phased-array detector: per-sensor conditioning,
/// beamforming, spectral analysis and thresholding.
pub fn phased_array() -> SdfGraph {
    let mut g = SdfGraph::new("phasedArray");
    let beam = g.add_actor("beamformer");
    for s in 0..4 {
        let src = g.add_actor(format!("sensor{s}"));
        let bpf = g.add_actor(format!("bandpass{s}"));
        let dec = g.add_actor(format!("decim{s}"));
        g.add_edge(src, bpf, 1, 1).expect("valid rates");
        g.add_edge(bpf, dec, 1, 4).expect("valid rates");
        g.add_edge(dec, beam, 1, 1).expect("valid rates");
    }
    let fft = g.add_actor("fft64");
    let mag = g.add_actor("magnitude");
    let avg = g.add_actor("average");
    let detect = g.add_actor("detector");
    let sink = g.add_actor("display");
    let edges = [
        (beam, fft, 1, 64),
        (fft, mag, 64, 64),
        (mag, avg, 64, 64),
        (avg, detect, 64, 1),
        (detect, sink, 1, 1),
    ];
    for (s, t, p, c) in edges {
        g.add_edge(s, t, p, c).expect("valid rates");
    }
    g
}

/// Builds the classic CD-to-DAT sample-rate converter chain
/// (44.1 kHz → 48 kHz through stages 1:1, 2:3, 2:7, 8:7, 5:1), the
/// §11.1.3 input-buffering example; q = (147, 147, 98, 28, 32, 160).
///
/// # Examples
///
/// ```
/// use sdf_apps::dsp::cd_to_dat;
/// use sdf_core::RepetitionsVector;
///
/// let g = cd_to_dat();
/// let q = RepetitionsVector::compute(&g).unwrap();
/// assert_eq!(q.as_slice(), &[147, 147, 98, 28, 32, 160]);
/// ```
pub fn cd_to_dat() -> SdfGraph {
    let mut g = SdfGraph::new("cd2dat");
    let ids: Vec<_> = ["cdSrc", "stage1", "stage2", "stage3", "stage4", "datSink"]
        .iter()
        .map(|n| g.add_actor(*n))
        .collect();
    for (i, &(p, c)) in [(1, 1), (2, 3), (2, 7), (8, 7), (5, 1)].iter().enumerate() {
        g.add_edge(ids[i], ids[i + 1], p, c).expect("valid rates");
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdf_core::RepetitionsVector;

    #[test]
    fn vocoder_consistent() {
        let g = block_vocoder();
        let q = RepetitionsVector::compute(&g).unwrap();
        assert!(g.is_acyclic() && g.is_connected());
        assert!(g.actor_count() >= 20, "has {} actors", g.actor_count());
        // The frame-rate actors fire once per 64 input samples.
        let src = g.actor_by_name("voiceSrc").unwrap();
        let framer = g.actor_by_name("framer").unwrap();
        assert_eq!(q.get(src), 64 * q.get(framer));
    }

    #[test]
    fn overlap_add_consistent() {
        let g = overlap_add_fft();
        let q = RepetitionsVector::compute(&g).unwrap();
        let src = g.actor_by_name("src").unwrap();
        let fft = g.actor_by_name("fft256").unwrap();
        assert_eq!(q.get(src), 128 * q.get(fft));
        assert!(g.is_acyclic() && g.is_connected());
    }

    #[test]
    fn phased_array_consistent() {
        let g = phased_array();
        let q = RepetitionsVector::compute(&g).unwrap();
        assert!(g.is_acyclic() && g.is_connected());
        let sensor = g.actor_by_name("sensor0").unwrap();
        let fft = g.actor_by_name("fft64").unwrap();
        // 4x decimation then 64-sample blocks.
        assert_eq!(q.get(sensor), 4 * 64 * q.get(fft));
    }

    #[test]
    fn cd_dat_repetitions() {
        let g = cd_to_dat();
        let q = RepetitionsVector::compute(&g).unwrap();
        assert_eq!(q.as_slice(), &[147, 147, 98, 28, 32, 160]);
        assert!(g.is_chain());
    }
}
